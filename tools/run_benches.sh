#!/usr/bin/env bash
# Build the release preset and run every bench binary, capturing each run
# as BENCH_<name>.json in the output directory. This gives the perf
# trajectory a reproducible baseline: run it on main before and after an
# optimisation PR and diff the JSON.
#
# The two Google Benchmark harnesses (socket_latency, threaded_throughput)
# emit native benchmark JSON; the remaining drivers print text tables,
# which are wrapped in a JSON envelope with run metadata.
#
# Usage:
#   tools/run_benches.sh [--quick] [output-dir]  (default dir: repo root)
#   TBR_BENCH_FILTER=msgs tools/run_benches.sh   # only benches matching a regex
#
# --quick is the CI smoke mode: drivers that read TBR_BENCH_QUICK shrink
# their sweeps/repetitions (see bench_common.hpp quick_mode()), and the
# Google Benchmark harnesses run with minimal time/repetitions. Every
# BENCH_*.json is still produced — the perf trajectory keeps accumulating,
# just at smoke resolution.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
quick=0
if [ "${1:-}" = "--quick" ]; then
  quick=1
  shift
fi
out_dir="${1:-${repo_root}}"
filter="${TBR_BENCH_FILTER:-}"
build_dir="${repo_root}/build/release"

gbench_args=()
if [ "${quick}" = "1" ]; then
  export TBR_BENCH_QUICK=1
  gbench_args=(--benchmark_min_time=0.05 --benchmark_repetitions=1)
fi

mkdir -p "${out_dir}"

cmake --preset release -S "${repo_root}"
cmake --build --preset release -j "$(nproc)" --target benches

commit="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

wrap_json() {  # wrap_json <bench-name> <raw-output-file> <out.json>
  python3 - "$1" "$2" "$3" "${commit}" "${stamp}" <<'EOF'
import json, sys
name, raw_path, out_path, commit, stamp = sys.argv[1:6]
with open(raw_path) as f:
    text = f.read()
with open(out_path, "w") as f:
    json.dump({"bench": name, "commit": commit, "utc": stamp,
               "format": "text-table", "output": text}, f, indent=2)
    f.write("\n")
EOF
}

status=0
for bench in "${build_dir}"/bench/bench_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  if [ -n "${filter}" ] && ! [[ "${name}" =~ ${filter} ]]; then
    continue
  fi
  out="${out_dir}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  case "${name}" in
    bench_socket_latency|bench_threaded_throughput)
      if ! "${bench}" --benchmark_format=json ${gbench_args[@]+"${gbench_args[@]}"} > "${out}"; then
        echo "!! ${name} failed" >&2
        rm -f "${out}"
        status=1
      fi
      ;;
    *)
      raw="$(mktemp)"
      if "${bench}" > "${raw}"; then
        wrap_json "${name}" "${raw}" "${out}"
      else
        echo "!! ${name} failed" >&2
        status=1
      fi
      rm -f "${raw}"
      ;;
  esac
done

exit "${status}"
