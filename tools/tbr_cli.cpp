// tbr_cli — drive the register implementations from the command line.
//
// Subcommands:
//   run        run a closed-loop workload on the simulator and report
//              traffic, latency and the atomicity verdict
//   kv         drive the sharded KV engine (read-dominated, zipf-skewed)
//              and report throughput + batching effectiveness
//   trace      run a small scripted scenario and print the full protocol
//              trace
//   ops        print per-operation cost identities for a given n
//   modelcheck enumerate (or sample) every schedule of a small scenario
//              and report the verification verdict
//
// Examples:
//   tbr_cli run --algo=twobit --n=7 --ops=50 --crashes=2 --seed=42
//   tbr_cli run --algo=abd-bounded --n=5 --delay=flipflop
//   tbr_cli kv --shards=4 --keys=512 --ops=3000 --read-fraction=0.9
//   tbr_cli trace --algo=twobit --n=3 --writes=2 --reads=1
//   tbr_cli ops --n=9
//   tbr_cli modelcheck --scenario=write-read --n=3
//   tbr_cli modelcheck --scenario=write-read --ablate=line20
//   tbr_cli modelcheck --scenario=two-writes-read --walks=5000
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/twobit_process.hpp"
#include "modelcheck/explorer.hpp"
#include "workload/sharded_workload.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

Algorithm parse_algorithm(const std::string& name) {
  for (const auto algo : all_algorithms()) {
    if (algorithm_name(algo) == name) return algo;
  }
  throw ContractViolation("unknown --algo '" + name +
                          "' (twobit, abd-unbounded, abd-bounded, attiya)");
}

// The register engine knob: the two-bit default or a fast-path read
// engine. Orthogonal to --algo, which picks among the Table-1 baselines.
Algorithm parse_engine(const std::string& name) {
  if (name == "twobit") return Algorithm::kTwoBit;
  for (const auto algo : fastread_algorithms()) {
    if (algorithm_name(algo) == name) return algo;
  }
  throw ContractViolation("unknown --engine '" + name +
                          "' (twobit, ohram, timeeff)");
}

// run/trace accept both knobs; a non-default --engine takes over the
// whole group (mixing a fast-read engine with a baseline --algo in one
// run makes no sense, so that combination is rejected).
Algorithm resolve_run_algorithm(FlagParser& flags) {
  const Algorithm engine = parse_engine(flags.get_string("engine"));
  const Algorithm algo = parse_algorithm(flags.get_string("algo"));
  if (engine == Algorithm::kTwoBit) return algo;
  if (algo != Algorithm::kTwoBit) {
    throw ContractViolation(
        "--engine and --algo both set: pick one register protocol");
  }
  return engine;
}

std::unique_ptr<DelayModel> parse_delay(const std::string& kind,
                                        const GroupConfig& cfg, Tick delta) {
  if (kind == "const") return make_constant_delay(delta);
  if (kind == "uniform") return make_uniform_delay(1, delta);
  if (kind == "expo") return make_exponential_delay(delta / 4, delta * 8);
  if (kind == "flipflop") return make_flipflop_delay(5, delta * 2, cfg.n);
  if (kind == "straggler") {
    return make_straggler_delay(cfg.n - 1, delta * 20, delta);
  }
  throw ContractViolation("unknown --delay '" + kind +
                          "' (const, uniform, expo, flipflop, straggler)");
}

EventQueue::Policy parse_scheduler(const std::string& kind) {
  if (kind == "heap") return EventQueue::Policy::kHeap;
  if (kind == "calendar") return EventQueue::Policy::kCalendar;
  if (kind == "auto") return EventQueue::Policy::kAuto;
  throw ContractViolation("unknown --scheduler '" + kind +
                          "' (heap, calendar, auto)");
}

int cmd_run(FlagParser& flags) {
  SimWorkloadOptions opt;
  opt.cfg.n = static_cast<std::uint32_t>(flags.get_int("n"));
  opt.cfg.t = flags.get_int("t") < 0
                  ? (opt.cfg.n - 1) / 2
                  : static_cast<std::uint32_t>(flags.get_int("t"));
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = resolve_run_algorithm(flags);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  opt.ops_per_process = static_cast<std::uint32_t>(flags.get_int("ops"));
  opt.writer_read_fraction = flags.get_double("writer-read-fraction");
  opt.think_time_max = flags.get_int("think");
  opt.crashes = static_cast<std::uint32_t>(flags.get_int("crashes"));
  opt.allow_writer_crash = flags.get_bool("crash-writer");
  opt.invariant_checks =
      flags.get_bool("invariants") && opt.algo == Algorithm::kTwoBit;
  opt.scheduler_policy = parse_scheduler(flags.get_string("scheduler"));
  const Tick delta = flags.get_int("delta");
  const std::string delay = flags.get_string("delay");
  opt.delay_factory = [delay, delta](const GroupConfig& cfg) {
    return parse_delay(delay, cfg, delta);
  };

  const auto result = run_sim_workload(opt);
  const auto check = result.check_atomicity(opt.cfg.initial);

  TextTable table({"metric", "value"});
  table.add_row({"algorithm", algorithm_name(opt.algo)});
  table.add_row({"n / t / crashes",
                 std::to_string(opt.cfg.n) + " / " + std::to_string(opt.cfg.t) +
                     " / " + std::to_string(result.crashes)});
  table.add_row({"ops done by correct procs",
                 format_count(result.completed_by_correct) + " / " +
                     format_count(result.quota_of_correct)});
  table.add_row({"virtual duration (ticks)", format_count(
                                                 static_cast<std::uint64_t>(
                                                     result.duration))});
  table.add_row({"messages sent", format_count(result.stats.total_sent())});
  table.add_row(
      {"control bits total",
       format_count(result.stats.total_control_bits())});
  table.add_row({"max control bits/frame",
                 format_count(result.stats.max_control_bits_per_msg())});
  if (!result.write_latency.empty()) {
    table.add_row({"write latency (ticks, min/p50/p99/max)",
                   result.write_latency.summary(1.0, 0)});
  }
  if (!result.read_latency.empty()) {
    table.add_row({"read latency (ticks, min/p50/p99/max)",
                   result.read_latency.summary(1.0, 0)});
  }
  if (result.invariant_checks > 0) {
    table.add_row({"lemma-invariant checks",
                   format_count(result.invariant_checks)});
  }
  table.add_row({"atomicity", check.ok ? "OK" : check.error});
  std::cout << table.render();
  return check.ok ? 0 : 1;
}

int cmd_kv(FlagParser& flags) {
  ShardedWorkloadOptions opt;
  opt.shards = static_cast<std::uint32_t>(flags.get_int("shards"));
  opt.n = static_cast<std::uint32_t>(flags.get_int("n"));
  opt.t = flags.get_int("t") < 0
              ? (opt.n - 1) / 2
              : static_cast<std::uint32_t>(flags.get_int("t"));
  opt.slots_per_shard = static_cast<std::uint32_t>(flags.get_int("slots"));
  opt.keys = static_cast<std::uint32_t>(flags.get_int("keys"));
  opt.zipf_s = flags.get_double("skew");
  opt.read_fraction = flags.get_double("read-fraction");
  opt.total_ops = static_cast<std::uint64_t>(flags.get_int("ops"));
  opt.client_threads = static_cast<std::uint32_t>(flags.get_int("clients"));
  opt.coalesce_writes = flags.get_bool("coalesce-writes");
  opt.min_batch = static_cast<std::size_t>(flags.get_int("min-batch"));
  opt.pin_shard_threads = flags.get_bool("pin");
  opt.engine = parse_engine(flags.get_string("engine"));
  opt.scheduler_policy = parse_scheduler(flags.get_string("scheduler"));
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const auto engine = run_sharded_workload(opt);
  const auto projection = project_sharded_capacity(opt);

  TextTable table({"metric", "value"});
  table.add_row({"shards x replicas", std::to_string(opt.shards) + " x " +
                                          std::to_string(opt.n)});
  table.add_row({"register engine", algorithm_name(opt.engine)});
  table.add_row({"keys / slots per shard",
                 std::to_string(opt.keys) + " / " +
                     std::to_string(opt.slots_per_shard)});
  table.add_row({"op mix", format_double(100.0 * opt.read_fraction, 0) +
                               "% reads, zipf s=" +
                               format_double(opt.zipf_s, 2)});
  table.add_row({"engine ops ok / failed",
                 format_count(engine.ops_completed) + " / " +
                     format_count(engine.ops_failed)});
  table.add_row({"engine wall ops/sec",
                 format_double(engine.ops_per_sec, 0)});
  table.add_row({"projected ops/Mtick (capacity model)",
                 format_double(projection.ops_per_mtick, 0)});
  table.add_row({"batching windows", format_count(engine.batch.batches)});
  table.add_row({"largest window (ops)",
                 format_count(engine.batch.max_batch_ops)});
  table.add_row({"protocol reads / client reads",
                 format_count(engine.batch.protocol_reads) + " / " +
                     format_count(engine.batch.protocol_reads +
                                  engine.batch.coalesced_reads)});
  table.add_row({"writes absorbed (last-write-wins)",
                 format_count(engine.batch.absorbed_writes)});
  table.add_row({"frames sent (engine)", format_count(engine.frames)});
  std::cout << table.render();
  return engine.ops_failed == 0 ? 0 : 1;
}

int cmd_trace(FlagParser& flags) {
  GroupConfig cfg;
  cfg.n = static_cast<std::uint32_t>(flags.get_int("n"));
  cfg.t = (cfg.n - 1) / 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  const auto algo = resolve_run_algorithm(flags);
  const Tick delta = flags.get_int("delta");

  SimRegisterGroup::Options gopt;
  gopt.cfg = cfg;
  gopt.algo = algo;
  gopt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  gopt.delay = make_constant_delay(delta);
  gopt.scheduler_policy = parse_scheduler(flags.get_string("scheduler"));
  SimRegisterGroup group(std::move(gopt));

  TraceLog trace;
  group.net().set_trace(&trace);

  const auto writes = flags.get_int("writes");
  const auto reads = flags.get_int("reads");
  for (std::int64_t k = 1; k <= writes; ++k) {
    group.client().write_sync(Value::from_int64(k * 10));
    group.settle();
  }
  for (std::int64_t r = 0; r < reads; ++r) {
    const OpResult out =
        group.client().read_sync(static_cast<ProcessId>((r + 1) % cfg.n));
    std::cout << "read -> value #" << out.version << " ("
              << out.value.debug_string() << ")\n";
    group.settle();
  }

  std::cout << "\nprotocol trace (" << trace.size() << " events, times in D="
            << delta << " ticks):\n";
  std::cout << trace.render(group.process(0).codec(), delta);
  return 0;
}

int cmd_ops(FlagParser& flags) {
  const auto n = static_cast<std::uint64_t>(flags.get_int("n"));
  TextTable table({"algorithm", "msgs/write", "msgs/read", "write time",
                   "read time (worst)"});
  table.add_row({"abd-unbounded", format_count(2 * (n - 1)),
                 format_count(4 * (n - 1)), "2 D", "4 D"});
  table.add_row({"abd-bounded", format_count(6 * n * (n - 1)),
                 format_count(6 * n * (n - 1)), "12 D", "12 D"});
  table.add_row({"attiya", format_count(14 * (n - 1)),
                 format_count(18 * (n - 1)), "14 D", "18 D"});
  table.add_row({"twobit", format_count(n * (n - 1)),
                 format_count(2 * (n - 1)), "2 D", "4 D"});
  std::cout << table.render();
  return 0;
}

int cmd_modelcheck(FlagParser& flags) {
  Scenario scenario;
  scenario.cfg.n = static_cast<std::uint32_t>(flags.get_int("n"));
  scenario.cfg.t = flags.get_int("t") < 0
                       ? (scenario.cfg.n - 1) / 2
                       : static_cast<std::uint32_t>(flags.get_int("t"));
  scenario.cfg.writer = 0;
  scenario.cfg.initial = Value::from_int64(0);

  const std::string shape = flags.get_string("scenario");
  const auto write = [](std::int64_t v, int after = -1) {
    return McOp{McOp::Kind::kWrite, 0, Value::from_int64(v), after};
  };
  const auto read = [](ProcessId p, int after = -1) {
    return McOp{McOp::Kind::kRead, p, Value(), after};
  };
  if (shape == "write") {
    scenario.ops = {write(1)};
  } else if (shape == "write-read") {
    scenario.ops = {write(1), read(1)};
  } else if (shape == "write-then-read") {
    scenario.ops = {write(1), read(scenario.cfg.n - 1, 0)};
  } else if (shape == "two-writes-read") {
    scenario.ops = {write(1), write(2, 0), read(1)};
  } else if (shape == "write-crash") {
    scenario.ops = {write(1)};
    scenario.max_crashes = 1;
    for (ProcessId p = 1; p < scenario.cfg.n; ++p) {
      scenario.crash_candidates.push_back(p);
    }
  } else {
    throw ContractViolation(
        "unknown --scenario '" + shape +
        "' (write, write-read, write-then-read, two-writes-read, "
        "write-crash)");
  }

  const std::string ablate = flags.get_string("ablate");
  if (ablate != "none") {
    TwoBitOptions topt;
    if (ablate == "line20") {
      topt.eager_proceed = true;
    } else if (ablate == "line9") {
      topt.skip_read_second_wait = true;
    } else if (ablate == "window") {
      topt.history_window = 1;
    } else {
      throw ContractViolation("unknown --ablate '" + ablate +
                              "' (none, line20, line9, window)");
    }
    scenario.factory = [topt](const GroupConfig& cfg, ProcessId pid) {
      return std::make_unique<TwoBitProcess>(cfg, pid, topt);
    };
  }

  ExploreOptions mc_opt;
  mc_opt.max_nodes =
      static_cast<std::uint64_t>(flags.get_int("max-nodes"));
  const auto walks = static_cast<std::uint64_t>(flags.get_int("walks"));
  const auto result =
      walks == 0
          ? explore(scenario, mc_opt)
          : random_walks(scenario, walks,
                         static_cast<std::uint64_t>(flags.get_int("seed")),
                         mc_opt);

  TextTable table({"metric", "value"});
  table.add_row({"scenario", shape + (ablate == "none" ? "" : " (ablated: " +
                                                                  ablate +
                                                                  ")")});
  table.add_row({"mode", walks == 0 ? "exhaustive DFS"
                                    : format_count(walks) + " random walks"});
  table.add_row({"prefixes replayed", format_count(result.nodes_visited)});
  table.add_row(
      {"terminal schedules", format_count(result.terminal_schedules)});
  table.add_row({"max depth", std::to_string(result.max_depth_seen)});
  table.add_row({"coverage", result.complete ? "complete (all schedules)"
                                             : "bounded (budget/sampling)"});
  table.add_row({"violations", format_count(result.violations_found)});
  std::cout << table.render();
  for (std::size_t k = 0; k < result.violations.size(); ++k) {
    const auto& violation = result.violations[k];
    std::cout << "\nviolation " << k + 1 << ": " << violation.detail
              << "\n  schedule:";
    for (const auto choice : violation.schedule) std::cout << ' ' << choice;
    std::cout << "\n";
  }
  return result.ok() ? 0 : 1;
}

int real_main(int argc, char** argv) {
  FlagParser flags("tbr_cli",
                   "drive the two-bit register and its baselines "
                   "(subcommands: run, trace, ops)");
  flags.add_string("algo", "twobit",
                   "twobit | abd-unbounded | abd-bounded | attiya");
  flags.add_string("engine", "twobit",
                   "register engine: twobit | ohram | timeeff (run/trace/kv)");
  flags.add_int("n", 5, "number of processes");
  flags.add_int("t", -1, "crash budget (-1 = max, (n-1)/2)");
  flags.add_int("ops", 20, "operations per process (run) / total (kv)");
  flags.add_int("seed", 1, "random seed");
  flags.add_int("delta", 1000, "base message delay in ticks");
  flags.add_string("delay", "uniform",
                   "const | uniform | expo | flipflop | straggler");
  flags.add_string("scheduler", "heap",
                   "event scheduler: heap | calendar | auto (run/trace/kv)");
  flags.add_int("think", 500, "max think time between ops (run)");
  flags.add_int("crashes", 0, "processes to crash (run)");
  flags.add_bool("crash-writer", false, "writer is crash-eligible (run)");
  flags.add_bool("invariants", false,
                 "check the paper's lemmas after every event (twobit only)");
  flags.add_double("writer-read-fraction", 0.0,
                   "fraction of writer ops that are reads (run)");
  flags.add_int("writes", 2, "writes to issue (trace)");
  flags.add_int("reads", 1, "reads to issue (trace)");
  flags.add_string("scenario", "write-read",
                   "write | write-read | write-then-read | two-writes-read "
                   "| write-crash (modelcheck)");
  flags.add_string("ablate", "none",
                   "none | line20 | line9 | window (modelcheck)");
  flags.add_int("walks", 0,
                "0 = exhaustive DFS, else sample this many random walks "
                "(modelcheck)");
  flags.add_int("max-nodes", 2'000'000,
                "exploration budget in replayed prefixes (modelcheck)");
  flags.add_int("shards", 4, "register groups in the sharded store (kv)");
  flags.add_int("slots", 16, "register slots per shard (kv)");
  flags.add_int("keys", 256, "distinct keys in the workload (kv)");
  flags.add_double("skew", 0.9, "zipf exponent over keys; 0 = uniform (kv)");
  flags.add_double("read-fraction", 0.9, "fraction of ops that read (kv)");
  flags.add_int("clients", 4, "client threads driving the engine (kv)");
  flags.add_bool("coalesce-writes", true,
                 "collapse queued same-slot writes last-write-wins (kv)");
  flags.add_int("min-batch", 0,
                "batching-window floor per shard worker, group-commit "
                "style; 0 = drain whatever accumulated (kv)");
  flags.add_bool("pin", false, "pin shard workers to cores (kv)");

  if (!flags.parse(argc, argv)) {
    std::cerr << "error: " << flags.error() << "\n\n" << flags.help_text();
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const auto& positional = flags.positional();
  const std::string command = positional.empty() ? "run" : positional[0];
  if (command == "run") return cmd_run(flags);
  if (command == "kv") return cmd_kv(flags);
  if (command == "trace") return cmd_trace(flags);
  if (command == "ops") return cmd_ops(flags);
  if (command == "modelcheck") return cmd_modelcheck(flags);
  std::cerr << "unknown subcommand '" << command
            << "' (expected: run, kv, trace, ops, modelcheck)\n";
  return 2;
}

}  // namespace
}  // namespace tbr

int main(int argc, char** argv) {
  try {
    return tbr::real_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
