#!/usr/bin/env python3
"""Docs gates, stdlib-only. Run from anywhere: paths resolve from the repo root.

Two checks, both fast enough for a pre-commit reflex:

1. Link check: every relative markdown link in README.md and docs/*.md
   must resolve to a file or directory inside the repo. External
   schemes (http/https/mailto), pure fragments (#...), and links that
   escape the repo tree (the CI badge resolves against the forge, not
   the checkout) are skipped.

2. Knob grep gate: every code-quoted identifier in the first column of
   a table row in docs/operations.md must appear as an identifier
   somewhere under src/. Docs cannot name a knob the code no longer
   (or never) had.

Exit code 0 = clean; 1 = any failure, each printed on its own line.
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# [text](target) — but not images' inner part or reference defs; good
# enough for the hand-written markdown in this tree.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# | `knob_name` | ... — first cell of a table row, code-quoted.
KNOB_RE = re.compile(r"^\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|")


def md_files():
    yield REPO / "README.md"
    yield from sorted((REPO / "docs").glob("*.md"))


def check_links():
    failures = []
    for md in md_files():
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            target = target.split("#", 1)[0]  # strip fragment
            if not target:
                continue  # pure fragment
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            resolved = (md.parent / target).resolve()
            if not resolved.is_relative_to(REPO):
                continue  # escapes the checkout (e.g. the CI badge link)
            if not resolved.exists():
                failures.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}")
    return failures


def check_knobs():
    ops = REPO / "docs" / "operations.md"
    if not ops.exists():
        return [f"{ops.relative_to(REPO)}: missing"]
    knobs = []
    for line in ops.read_text(encoding="utf-8").splitlines():
        m = KNOB_RE.match(line)
        if m and m.group(1) not in ("knob", "name"):  # header rows
            knobs.append(m.group(1))
    if not knobs:
        return ["docs/operations.md: no knob tables found (gate is vacuous)"]
    haystack = "\n".join(
        p.read_text(encoding="utf-8", errors="replace")
        for p in sorted(SRC.rglob("*"))
        if p.suffix in (".hpp", ".cpp") and p.is_file())
    failures = []
    for knob in knobs:
        if not re.search(rf"\b{re.escape(knob)}\b", haystack):
            failures.append(
                f"docs/operations.md: knob `{knob}` not found under src/")
    return failures


def main():
    failures = check_links() + check_knobs()
    for f in failures:
        print(f"FAIL {f}")
    if failures:
        return 1
    n_files = sum(1 for _ in md_files())
    print(f"docs OK: {n_files} markdown files, links resolve, "
          f"operations.md knobs all exist under src/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
