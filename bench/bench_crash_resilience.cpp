// Experiment D2 — crash resilience: latency and liveness as crashes
// approach the t < n/2 bound.
//
// The model promises undisturbed termination for any f <= t crashes
// (Lemmas 8/9); quorum waits are over the fastest n-t processes, so dead
// processes must not appear on the critical path. We sweep f for n = 9
// (t = 4) and report completed ops and latency percentiles.
#include "bench_common.hpp"

namespace tbr::bench {
namespace {

void run() {
  print_header("D2: crash resilience sweep (n=9, t=4, crashes f=0..4)",
               "all ops of correct processes complete at every f <= t; "
               "latency undisturbed");

  TextTable table({"algorithm", "f", "correct-proc ops (done/quota)",
                   "write lat p50/max (D)", "read lat p50/max (D)"});
  for (const auto algo : {Algorithm::kTwoBit, Algorithm::kAbdUnbounded}) {
    for (std::uint32_t f = 0; f <= 4; ++f) {
      SimWorkloadOptions opt;
      opt.cfg = make_cfg(9);
      opt.algo = algo;
      opt.seed = 31 + f;
      opt.ops_per_process = 24;
      opt.think_time_max = 1500;
      opt.crashes = f;
      opt.crash_horizon = 40'000;
      opt.delay_factory = [](const GroupConfig&) {
        return make_constant_delay(kDelta);
      };
      const auto result = run_sim_workload(opt);
      auto lat = [&](const Histogram& h) {
        if (h.empty()) return std::string("-");
        return format_double(static_cast<double>(h.percentile(50)) / kDelta,
                             1) +
               "/" +
               format_double(static_cast<double>(h.max()) / kDelta, 1);
      };
      table.add_row({algorithm_name(algo), std::to_string(f),
                     format_count(result.completed_by_correct) + "/" +
                         format_count(result.quota_of_correct),
                     lat(result.write_latency), lat(result.read_latency)});
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "done == quota on every row: crashes below the minority bound\n"
            << "never block a correct process, and constant-D latencies show\n"
            << "dead processes are off the quorum critical path.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
