// Experiment D7 — what multi-writer capability costs (extension exhibit).
//
// The paper's algorithm is single-writer by design: its per-pair
// alternating-bit synchronizer assumes one value stream. The classic MWMR
// ABD (src/mwmr) lifts that restriction by paying a query phase before
// every write (writes: 2Δ -> 4Δ) and carrying (seq, writer) timestamps on
// the wire. This bench puts the three designs side by side.
#include "bench_common.hpp"

#include "mwmr/mwmr_process.hpp"

namespace tbr::bench {
namespace {

struct MwmrCosts {
  Tick write_latency = 0;
  Tick read_latency = 0;
  std::uint64_t write_msgs = 0;
  std::uint64_t read_msgs = 0;
  std::uint64_t max_control_bits = 0;
};

MwmrCosts measure_mwmr(std::uint32_t n) {
  GroupConfig cfg = make_cfg(n);
  std::vector<std::unique_ptr<ProcessBase>> procs;
  for (ProcessId pid = 0; pid < n; ++pid) {
    procs.push_back(make_mwmr_process(cfg, pid));
  }
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(kDelta);
  SimNetwork net(std::move(procs), std::move(opt));

  auto write_at = [&](ProcessId pid, std::int64_t v) {
    bool done = false;
    net.process_as<MwmrProcess>(pid).start_write(
        net.context(pid), Value::from_int64(v), [&done](SeqNo) { done = true; });
    const Tick start = net.now();
    TBR_ENSURE(net.run_until([&] { return done; }), "write stuck");
    return net.now() - start;
  };
  auto read_at = [&](ProcessId pid) {
    bool done = false;
    net.process_as<MwmrProcess>(pid).start_read(
        net.context(pid), [&done](const Value&, SeqNo) { done = true; });
    const Tick start = net.now();
    TBR_ENSURE(net.run_until([&] { return done; }), "read stuck");
    return net.now() - start;
  };

  MwmrCosts costs;
  write_at(0, 1);
  (void)net.run();  // settle
  auto before = net.stats().snapshot();
  costs.write_latency = write_at(1, 2);  // a *different* process writes
  (void)net.run();
  costs.write_msgs = net.stats().diff_since(before).total_sent();
  before = net.stats().snapshot();
  costs.read_latency = read_at(n - 1);
  (void)net.run();
  costs.read_msgs = net.stats().diff_since(before).total_sent();
  costs.max_control_bits = net.stats().max_control_bits_per_msg();
  return costs;
}

void run() {
  print_header("D7: the price of multi-writer (extension, not in Table 1)",
               "MWMR ABD pays a query phase per write: 4D writes vs 2D");

  TextTable table({"register", "writers", "write time", "read time",
                   "msgs/write (n=7)", "msgs/read (n=7)",
                   "max ctrl bits"});
  {
    const auto t = measure_op_traffic(Algorithm::kTwoBit, 7);
    auto group = make_group(Algorithm::kTwoBit, 7);
    for (int k = 1; k <= 4; ++k) group.client().write_sync(Value::from_int64(k));
    group.settle();
    table.add_row({"twobit (paper)", "1",
                   format_delta_units(
                       static_cast<double>(t.write_latency) / kDelta),
                   format_delta_units(
                       static_cast<double>(t.read_latency) / kDelta),
                   format_count(t.write_msgs), format_count(t.read_msgs),
                   format_count(
                       group.net().stats().max_control_bits_per_msg())});
  }
  {
    const auto t = measure_op_traffic(Algorithm::kAbdUnbounded, 7);
    auto group = make_group(Algorithm::kAbdUnbounded, 7);
    for (int k = 1; k <= 4; ++k) group.client().write_sync(Value::from_int64(k));
    group.settle();
    table.add_row({"abd swmr", "1",
                   format_delta_units(
                       static_cast<double>(t.write_latency) / kDelta),
                   format_delta_units(
                       static_cast<double>(t.read_latency) / kDelta),
                   format_count(t.write_msgs), format_count(t.read_msgs),
                   format_count(
                       group.net().stats().max_control_bits_per_msg())});
  }
  {
    const auto c = measure_mwmr(7);
    table.add_row({"abd mwmr (ext.)", "n",
                   format_delta_units(
                       static_cast<double>(c.write_latency) / kDelta),
                   format_delta_units(
                       static_cast<double>(c.read_latency) / kDelta),
                   format_count(c.write_msgs), format_count(c.read_msgs),
                   format_count(c.max_control_bits)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "multi-writer costs every write an extra query round (2D -> 4D)\n"
      << "and puts (seq, writer) timestamps on the wire — the contrast\n"
      << "makes the paper's SWMR scoping visible: the two-bit trick rides\n"
      << "on there being a single, totally-ordered value stream.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
