// Experiment D6 — what each wait statement buys and costs.
//
// Fig. 1 contains three synchronization devices on the read path:
//   line 20  responder waits until the reader is fresh    -> Claim 2
//   line 7   reader waits for n-t PROCEEDs                -> (plumbing for 20)
//   line 9   reader waits for n-t w_sync >= sn            -> Claim 3
// and ABD's read has its write-back phase (also Claim 3). This bench
// removes them one at a time and reports: read latency saved vs atomicity
// violations incurred, over a 30-seed adversarial sweep. The faithful rows
// must show zero violations; each ablated row must break exactly its claim.
#include "bench_common.hpp"

#include "abd/phased_process.hpp"
#include "core/twobit_process.hpp"
#include "workload/adversarial.hpp"

namespace tbr::bench {
namespace {

using Factory = std::function<std::unique_ptr<RegisterProcessBase>(
    const GroupConfig&, ProcessId)>;

struct AblationResult {
  CheckStats stats;
  double read_p50 = 0;  // in Δ
  std::uint64_t msgs_per_read = 0;
};

AblationResult sweep(const Factory& factory, int seeds) {
  AblationResult out;
  Histogram lat;
  std::uint64_t reads = 0;
  std::uint64_t read_msgs_proxy = 0;
  for (int s = 0; s < seeds; ++s) {
    SimWorkloadOptions opt;
    opt.cfg = make_cfg(5);
    opt.seed = static_cast<std::uint64_t>(s);
    opt.ops_per_process = 24;
    opt.think_time_max = 120;
    opt.process_factory = factory;
    opt.delay_factory = [s](const GroupConfig& cfg) {
      switch (s % 3) {
        case 0:
          return make_uniform_delay(1, 1500);
        case 1:
          return make_flipflop_delay(3, 2200, cfg.n);
        default:
          return make_exponential_delay(400, 9000);
      }
    };
    const auto result = run_sim_workload(opt);
    const auto stats = SwmrChecker::analyze(result.ops, opt.cfg.initial);
    out.stats.c0 += stats.c0;
    out.stats.c1 += stats.c1;
    out.stats.c2 += stats.c2;
    out.stats.c3 += stats.c3;
    out.stats.model += stats.model;
    out.stats.reads_checked += stats.reads_checked;
    if (!result.read_latency.empty()) {
      lat.add(result.read_latency.percentile(50));
    }
    reads += result.read_latency.count();
    read_msgs_proxy += result.stats.total_sent();
  }
  out.read_p50 = lat.empty()
                     ? 0.0
                     : static_cast<double>(lat.percentile(50)) / kDelta;
  out.msgs_per_read = reads == 0 ? 0 : read_msgs_proxy / reads;
  return out;
}

Factory twobit(TwoBitOptions options) {
  return [options](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
}

void run() {
  print_header(
      "D6: wait-statement ablations (n=5, 30 adversarial seeds each)",
      "each removed wait breaks exactly its claim; faithful rows stay clean");

  TextTable table({"variant", "reads checked", "read p50 (D)",
                   "C2 stale", "C3 inversions", "other"});
  auto add = [&](const std::string& name, const AblationResult& r) {
    table.add_row({name, format_count(r.stats.reads_checked),
                   format_double(r.read_p50, 1), format_count(r.stats.c2),
                   format_count(r.stats.c3),
                   format_count(r.stats.c0 + r.stats.c1 + r.stats.model)});
  };

  add("twobit (faithful)", sweep(twobit({}), 30));
  {
    TwoBitOptions o;
    o.skip_read_second_wait = true;
    add("twobit - line 9", sweep(twobit(o), 30));
  }
  {
    TwoBitOptions o;
    o.eager_proceed = true;
    add("twobit - line 20", sweep(twobit(o), 30));
  }
  add("abd (2-phase read)", sweep(
                                [](const GroupConfig& cfg, ProcessId pid) {
                                  return make_abd_unbounded_process(cfg, pid);
                                },
                                30));
  add("abd - write-back", sweep(
                              [](const GroupConfig& cfg, ProcessId pid) {
                                return make_abd_regular_process(cfg, pid);
                              },
                              30));

  std::cout << table.render() << "\n";
  std::cout
      << "random schedules rarely line up the inversion window, so the\n"
      << "decisive evidence is the targeted adversarial schedule\n"
      << "(src/workload/adversarial.*): value 2 crawls toward the stale\n"
      << "side while a fresh reader completes before a stale reader "
         "starts.\n\n";

  TextTable targeted({"variant", "fresh read", "stale-side read",
                      "verdict"});
  auto verdict = [](const ScenarioOutcome& o, const char* broken) {
    if (o.stats.total() == 0) return std::string("atomic");
    return std::string(broken) + " x" +
           std::to_string(o.stats.c2 + o.stats.c3);
  };
  {
    const auto o = run_twobit_inversion_scenario(TwoBitOptions{});
    targeted.add_row({"twobit (faithful)", std::to_string(o.first_read_index),
                      std::to_string(o.second_read_index),
                      verdict(o, "?")});
  }
  {
    TwoBitOptions opt;
    opt.skip_read_second_wait = true;
    const auto o = run_twobit_inversion_scenario(opt);
    targeted.add_row({"twobit - line 9", std::to_string(o.first_read_index),
                      std::to_string(o.second_read_index),
                      verdict(o, "C3 inversion")});
  }
  {
    TwoBitOptions opt;
    opt.eager_proceed = true;
    const auto o = run_twobit_stale_read_scenario(opt);
    targeted.add_row({"twobit - line 20", "(write done)",
                      std::to_string(o.second_read_index),
                      verdict(o, "C2 stale")});
  }
  {
    const auto o = run_abd_inversion_scenario(false);
    targeted.add_row({"abd (2-phase read)", std::to_string(o.first_read_index),
                      std::to_string(o.second_read_index), verdict(o, "?")});
  }
  {
    const auto o = run_abd_inversion_scenario(true);
    targeted.add_row({"abd - write-back", std::to_string(o.first_read_index),
                      std::to_string(o.second_read_index),
                      verdict(o, "C3 inversion")});
  }
  std::cout << targeted.render() << "\n";
  std::cout
      << "the ablated variants are faster per read — and wrong, each in\n"
      << "precisely the way the proof predicts: line 20 guards against\n"
      << "stale reads (Claim 2), line 9 and ABD's write-back guard against\n"
      << "new/old inversion (Claim 3). Atomicity is exactly the sum of\n"
      << "these waits; a 'regular' register is what remains without them.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
