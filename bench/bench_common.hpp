// Shared helpers for the bench binaries (DESIGN.md §5 experiment index).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "workload/sim_register_group.hpp"
#include "workload/sim_workload.hpp"

namespace tbr::bench {

/// CI smoke mode (tools/run_benches.sh --quick): drivers shrink their arg
/// sweeps and repetition counts so the whole bench suite stays under a few
/// minutes while still exercising every code path and emitting every JSON.
inline bool quick_mode() {
  const char* flag = std::getenv("TBR_BENCH_QUICK");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

inline constexpr Tick kDelta = 1000;  // one Δ in virtual ticks

inline GroupConfig make_cfg(std::uint32_t n, ProcessId writer = 0) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 2;  // the maximum the model tolerates
  cfg.writer = writer;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

inline SimRegisterGroup make_group(Algorithm algo, std::uint32_t n,
                                   std::uint64_t seed = 1) {
  SimRegisterGroup::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = algo;
  opt.seed = seed;
  opt.delay = make_constant_delay(kDelta);
  return SimRegisterGroup(std::move(opt));
}

/// Messages used by one steady-state write / read at size n.
struct OpTraffic {
  std::uint64_t write_msgs = 0;
  std::uint64_t read_msgs = 0;
  Tick write_latency = 0;
  Tick read_latency = 0;
};

inline OpTraffic measure_op_traffic(Algorithm algo, std::uint32_t n) {
  auto group = make_group(algo, n);
  group.client().write_sync(Value::from_int64(1));  // warm-up: everyone learns a value
  group.settle();

  OpTraffic out;
  auto before = group.net().stats().snapshot();
  out.write_latency = group.client().write_sync(Value::from_int64(2)).latency;
  group.settle();
  out.write_msgs = group.net().stats().diff_since(before).total_sent();

  before = group.net().stats().snapshot();
  const auto read = group.client().read_sync(n - 1);
  group.settle();
  out.read_msgs = group.net().stats().diff_since(before).total_sent();
  out.read_latency = read.latency;
  return out;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_expectation) {
  std::cout << "== " << experiment << " ==\n";
  std::cout << "paper: " << paper_expectation << "\n\n";
}

}  // namespace tbr::bench
