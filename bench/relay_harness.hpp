// Shared relay-ring harness for the allocation gates.
//
// A ring of processes, each delivery triggering exactly one onward send —
// the engine's inner loop (pop event, deliver, handler sends, schedule)
// with no client-op machinery. msg.seq counts remaining hops.
//
// Used by BOTH allocation gates — tests/alloc_regression_test.cpp (the
// exact ==0 CTest criterion) and bench/bench_engine_hotpath.cpp (the CI
// bench-smoke criterion) — so the two necessarily measure the same loop.
#pragma once

#include <memory>
#include <vector>

#include "sim/sim_network.hpp"

namespace tbr::bench {

class RelayProcess final : public ProcessBase {
 public:
  explicit RelayProcess(std::size_t payload_bytes) {
    if (payload_bytes > 0) {
      template_.has_value = true;
      template_.value = Value::filler(payload_bytes);
    }
  }

  void on_message(NetworkContext& net, ProcessId /*from*/,
                  const Message& msg) override {
    if (msg.seq == 0) return;
    template_.seq = msg.seq - 1;
    net.send((net.self() + 1) % net.process_count(), template_);
  }

 private:
  Message template_;
};

inline std::vector<std::unique_ptr<ProcessBase>> make_relays(
    std::uint32_t n, std::size_t payload_bytes) {
  std::vector<std::unique_ptr<ProcessBase>> procs;
  for (std::uint32_t i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<RelayProcess>(payload_bytes));
  }
  return procs;
}

/// Schedule a client event that injects a `hops`-hop relay into the ring.
inline void kick_relay(SimNetwork& net, SeqNo hops) {
  net.schedule_at(net.now(), [&net, hops] {
    Message msg;
    msg.seq = hops;
    net.context(1).send(0, msg);
  });
}

}  // namespace tbr::bench
