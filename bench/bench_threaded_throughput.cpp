// Experiment D4 — real-thread throughput/latency (google-benchmark).
//
// Not a paper table (the paper has no wall-clock evaluation); this is the
// systems-credibility check: the two-bit register on actual threads, ops/sec
// for writes, local reads and quorum reads at several group sizes.
#include <benchmark/benchmark.h>

#include "runtime/thread_network.hpp"

namespace tbr {
namespace {

ThreadNetwork::Options net_options(Algorithm algo, std::uint32_t n) {
  ThreadNetwork::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = (n - 1) / 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = algo;
  opt.min_delay_us = 0;
  opt.max_delay_us = 0;  // as fast as the threads go
  return opt;
}

void BM_Write(benchmark::State& state, Algorithm algo) {
  ThreadNetwork net(net_options(algo, static_cast<std::uint32_t>(state.range(0))));
  net.start();
  std::int64_t k = 0;
  for (auto _ : state) {
    (void)net.client().write_sync(Value::from_int64(++k));
  }
  state.SetItemsProcessed(state.iterations());
  net.stop();
}

void BM_Read(benchmark::State& state, Algorithm algo) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ThreadNetwork net(net_options(algo, n));
  net.start();
  (void)net.client().write_sync(Value::from_int64(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.client().read_sync(n - 1));
  }
  state.SetItemsProcessed(state.iterations());
  net.stop();
}

BENCHMARK_CAPTURE(BM_Write, twobit, Algorithm::kTwoBit)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Write, abd_unbounded, Algorithm::kAbdUnbounded)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Read, twobit, Algorithm::kTwoBit)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Read, abd_unbounded, Algorithm::kAbdUnbounded)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tbr

BENCHMARK_MAIN();
