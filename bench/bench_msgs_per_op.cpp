// Experiments T1.L1 / T1.L2 — messages per write and per read vs n.
//
// Paper: write O(n) / O(n^2) / O(n) / O(n^2); read O(n) / O(n^2) / O(n) /
// O(n). The measured columns should scale linearly or quadratically with n
// accordingly; the "/(n-1)" and "/(n-1)n" normalizations printed alongside
// make the asymptotic class visible as a flat column.
#include "bench_common.hpp"

namespace tbr::bench {
namespace {

void run() {
  print_header(
      "Table 1 lines 1-2: #messages per operation vs n",
      "write: O(n)/O(n^2)/O(n)/O(n^2); read: O(n)/O(n^2)/O(n)/O(n)");

  for (const auto algo : all_algorithms()) {
    std::cout << "-- " << algorithm_name(algo) << " --\n";
    TextTable table({"n", "write msgs", "write/(n-1)", "write/(n(n-1))",
                     "read msgs", "read/(n-1)", "read/(n(n-1))"});
    for (const std::uint32_t n : {3u, 5u, 7u, 9u, 13u, 17u, 25u, 33u}) {
      const auto traffic = measure_op_traffic(algo, n);
      const double lin = n - 1;
      const double quad = static_cast<double>(n) * (n - 1);
      table.add_row(
          {std::to_string(n), format_count(traffic.write_msgs),
           format_double(static_cast<double>(traffic.write_msgs) / lin),
           format_double(static_cast<double>(traffic.write_msgs) / quad),
           format_count(traffic.read_msgs),
           format_double(static_cast<double>(traffic.read_msgs) / lin),
           format_double(static_cast<double>(traffic.read_msgs) / quad)});
    }
    std::cout << table.render() << "\n";
  }
  std::cout
      << "reading the table: a flat '/(n-1)' column means O(n) per op; a\n"
      << "flat '/(n(n-1))' column means O(n^2). twobit: writes quadratic,\n"
      << "reads linear — the read-dominated sweet spot from the paper's\n"
      << "conclusion.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
