// Event-scheduler microbench (ISSUE 8): binary heap vs calendar queue.
//
// Two sections:
//
//  * churn sweep (hold model): a queue pre-filled to N events {1k, 10k,
//    100k} under three delay shapes {const, uniform, expo}; each step pops
//    the earliest event and schedules a replacement one draw later. Wall
//    ns/op scales with the host and is informative only; the deterministic
//    column is WORK UNITS per op — comparator invocations on the heap,
//    bucket probes + node traversals on the calendar (EventQueue::
//    work_units()) — identical on every machine.
//
//  * relay-ring acceptance (deterministic): the ROADMAP's ≥2x events/s
//    target, measured as a virtual-time projection per the repo's
//    flaky-1-CPU-box rule. A 3-process relay ring carries 1024 staggered
//    tokens (queue occupancy ~1k, the regime every capacity projection
//    saturates) through the REAL SimNetwork inner loop under both
//    policies. Both runs must execute the identical schedule (event count,
//    final clock, frames — cross-checked here); the events/s ratio at
//    fixed hardware is then the inverse ratio of scheduler work per event:
//        speedup = (heap work units/event) / (calendar work units/event).
//    The criterion is >= 2x and the exit code is the verdict, so CI's
//    bench-smoke job fails loudly on a scheduler regression.
#include "bench_common.hpp"

#include <chrono>

#include "common/rng.hpp"
#include "relay_harness.hpp"
#include "sim/event_queue.hpp"

namespace tbr::bench {
namespace {

EventQueue::Options policy_options(EventQueue::Policy policy) {
  EventQueue::Options opt;
  opt.policy = policy;
  return opt;
}

// ---- section 1: schedule/pop churn ------------------------------------------

struct DelayShape {
  const char* name;
  Tick (*draw)(Rng&);
};

constexpr DelayShape kShapes[] = {
    {"const", [](Rng&) -> Tick { return 1000; }},
    {"uniform", [](Rng& rng) -> Tick { return rng.uniform(1, 2000); }},
    {"expo", [](Rng& rng) -> Tick { return rng.exponential(1000, 100'000); }},
};

struct ChurnResult {
  double ns_per_op = 0;
  double units_per_op = 0;
};

ChurnResult run_churn(EventQueue::Policy policy, const DelayShape& shape,
                      std::size_t size, std::uint64_t ops) {
  EventQueue q(policy_options(policy));
  Rng rng(42);
  // Fill with tokens staggered 1-3 ticks apart — the spread a workload's
  // injection gives them. A fill spaced exactly one draw apart would
  // resonate with the const shape (every reschedule lands on an occupied
  // timestamp and the tokens collapse into one bucket), which measures the
  // degenerate case instead of the steady state.
  Tick at = 0;
  for (std::size_t i = 0; i < size; ++i) {
    at += 1 + static_cast<Tick>(i % 3);
    q.schedule_deliver(at, 0, 1, static_cast<EventQueue::FrameId>(i));
  }
  // One full pass un-measured: lets each token reach its steady-state
  // offset under the shape (and the calendar settle its geometry).
  for (std::uint64_t k = 0; k < size; ++k) {
    const auto fired = q.pop_next();
    q.schedule_deliver(fired.at + shape.draw(rng), fired.from, fired.to,
                       fired.frame);
  }
  const std::uint64_t units_before = q.work_units();
  const auto started = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < ops; ++k) {
    const auto fired = q.pop_next();
    q.schedule_deliver(fired.at + shape.draw(rng), fired.from, fired.to,
                       fired.frame);
  }
  const auto stopped = std::chrono::steady_clock::now();
  ChurnResult out;
  out.ns_per_op =
      std::chrono::duration<double, std::nano>(stopped - started).count() /
      static_cast<double>(ops);
  out.units_per_op = static_cast<double>(q.work_units() - units_before) /
                     static_cast<double>(ops);
  return out;
}

void run_churn_sweep() {
  const std::uint64_t ops = quick_mode() ? 100'000 : 400'000;
  std::cout << "-- schedule/pop churn (hold model; work units are "
               "deterministic, ns/op is host-dependent) --\n";
  TextTable table({"size", "shape", "heap units/op", "cal units/op",
                   "unit ratio", "heap ns/op", "cal ns/op"});
  for (const std::size_t size : {1'000u, 10'000u, 100'000u}) {
    for (const DelayShape& shape : kShapes) {
      const auto heap = run_churn(EventQueue::Policy::kHeap, shape, size, ops);
      const auto cal =
          run_churn(EventQueue::Policy::kCalendar, shape, size, ops);
      table.add_row({format_count(size), shape.name,
                     format_double(heap.units_per_op, 2),
                     format_double(cal.units_per_op, 2),
                     format_double(heap.units_per_op / cal.units_per_op, 2) +
                         "x",
                     format_double(heap.ns_per_op, 1),
                     format_double(cal.ns_per_op, 1)});
    }
  }
  std::cout << table.render() << "\n";
}

// ---- section 2: relay-ring events/s projection ------------------------------

struct RelayRun {
  std::uint64_t events = 0;
  Tick finished = 0;
  std::uint64_t frames = 0;
  std::uint64_t work_units = 0;
  double wall_seconds = 0;
  double units_per_event = 0;
};

RelayRun run_relay(EventQueue::Policy policy, std::uint32_t tokens,
                   SeqNo hops) {
  SimNetwork::Options opt;
  opt.scheduler_policy = policy;
  opt.delay = make_constant_delay(kDelta);
  SimNetwork net(make_relays(3, 0), std::move(opt));
  // `tokens` concurrent relays injected one tick apart: steady queue
  // occupancy ~tokens, the regime where the heap pays ~log2(tokens)
  // comparisons per pop and the calendar stays O(1).
  for (std::uint32_t k = 0; k < tokens; ++k) {
    net.schedule_at(k, [&net, hops] {
      Message msg;
      msg.seq = hops;
      net.context(1).send(0, msg);
    });
  }
  const auto started = std::chrono::steady_clock::now();
  const bool drained = net.run();
  const auto stopped = std::chrono::steady_clock::now();
  TBR_ENSURE(drained, "relay ring failed to drain");
  RelayRun out;
  out.events = net.events_executed();
  out.finished = net.now();
  out.frames = net.stats().total_sent();
  out.work_units = net.scheduler_work_units();
  out.wall_seconds =
      std::chrono::duration<double>(stopped - started).count();
  out.units_per_event =
      static_cast<double>(out.work_units) / static_cast<double>(out.events);
  return out;
}

int run_relay_projection() {
  const std::uint32_t tokens = 1024;
  const SeqNo hops = quick_mode() ? 200 : 1000;
  std::cout << "-- relay-ring projection (3 processes, " << tokens
            << " staggered tokens x " << hops << " hops, delta = " << kDelta
            << ") --\n";
  const auto heap = run_relay(EventQueue::Policy::kHeap, tokens, hops);
  const auto cal = run_relay(EventQueue::Policy::kCalendar, tokens, hops);

  TBR_ENSURE(heap.events == cal.events && heap.finished == cal.finished &&
                 heap.frames == cal.frames,
             "backends executed different schedules (ordering bug)");

  TextTable table({"policy", "events", "work units", "units/event",
                   "wall Mev/s (info)"});
  for (const auto* run : {&heap, &cal}) {
    table.add_row(
        {run == &heap ? "heap" : "calendar", format_count(run->events),
         format_count(run->work_units), format_double(run->units_per_event, 2),
         format_double(run->wall_seconds > 0
                           ? static_cast<double>(run->events) /
                                 run->wall_seconds / 1e6
                           : 0.0,
                       2)});
  }
  std::cout << table.render();

  const double speedup = heap.units_per_event / cal.units_per_event;
  std::cout << "acceptance: calendar relay-ring events/s speedup = "
            << format_double(speedup, 2)
            << "x (criterion: >= 2x; deterministic work-unit projection, "
               "identical schedule cross-checked)\n\n";
  return speedup >= 2.0 ? 0 : 1;
}

int bench_main() {
  print_header("event scheduler: heap vs calendar queue",
               "constant-delta delays (Table 1 rows 5-6) cluster event "
               "horizons; a bucket ring schedules them in O(1) amortized "
               "where the binary heap pays O(log n) per event");
  run_churn_sweep();
  return run_relay_projection();
}

}  // namespace
}  // namespace tbr::bench

int main() { return tbr::bench::bench_main(); }
