// Experiment D5 — bounded local history (the paper's concluding open
// problem, made executable).
//
// The paper: "Is it possible to design an implementation where (a) a
// constant number of bits ... and (b) the sequence numbers have a local
// modulo-based implementation? We are inclined to think that this is not
// possible." TwoBitOptions::history_window retains only the last m values;
// everything else about the algorithm (and its 2-bit frames) is unchanged.
// We sweep m under a straggler and report which side of the theorem breaks:
// atomicity of completed operations (never), or termination for the laggard
// (exactly when m is smaller than the lag eviction creates).
#include "bench_common.hpp"

#include "core/twobit_process.hpp"

namespace tbr::bench {
namespace {

struct WindowRow {
  bool straggler_caught_up = false;
  SeqNo straggler_final = 0;
  std::uint64_t skipped_catchups = 0;
  std::uint64_t writer_memory = 0;
  bool read_at_straggler_completed = false;
};

WindowRow measure(std::size_t window, Tick slow_factor) {
  constexpr std::uint32_t n = 5;
  constexpr int kWrites = 30;
  SimRegisterGroup::Options gopt;
  gopt.cfg = make_cfg(n);
  gopt.seed = 11;
  gopt.delay = make_straggler_delay(n - 1, slow_factor * kDelta, kDelta);
  gopt.process_factory = [window](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions options;
    options.history_window = window;
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
  SimRegisterGroup group(std::move(gopt));

  for (int k = 1; k <= kWrites; ++k) group.client().write_sync(Value::from_int64(k));

  WindowRow row;
  bool read_done = false;
  group.begin_read(n - 1,
                   [&read_done](const Value&, SeqNo) { read_done = true; });
  group.net().run();

  const auto& straggler = group.net().process_as<TwoBitProcess>(n - 1);
  row.straggler_final = straggler.wsync(n - 1);
  row.straggler_caught_up = row.straggler_final == kWrites;
  row.read_at_straggler_completed = read_done;
  for (ProcessId pid = 0; pid < n; ++pid) {
    row.skipped_catchups +=
        group.net().process_as<TwoBitProcess>(pid).skipped_catchups();
  }
  row.writer_memory = group.process(0).local_memory_bytes();
  return row;
}

void run() {
  print_header(
      "D5: bounded-history ablation (n=5, 30 writes, straggler x32)",
      "paper's open problem: bounding local memory should cost liveness, "
      "never safety");

  TextTable table({"window m", "writer memory (B)", "straggler w_sync",
                   "caught up", "R2 catch-ups refused",
                   "straggler read terminates"});
  const std::size_t windows[] = {0, 64, 32, 8, 4, 2};
  for (const auto m : windows) {
    const auto row = measure(m, 32);
    table.add_row({m == 0 ? "unbounded (paper)" : std::to_string(m),
                   format_count(row.writer_memory),
                   std::to_string(row.straggler_final) + "/30",
                   row.straggler_caught_up ? "yes" : "NO",
                   format_count(row.skipped_catchups),
                   row.read_at_straggler_completed ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "atomicity of every completed operation holds at every window\n"
      << "(property suite: tests/twobit_window_test.cpp). What breaks is\n"
      << "termination: once eviction outruns the laggard, Rule R2 has\n"
      << "nothing left to send and Lemmas 6/9 fail — evidence for the\n"
      << "authors' conjecture that the unbounded local history is the\n"
      << "irreducible price of two-bit messages.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
