// Experiment D10 — many registers on one network (the product layer).
//
// The paper costs ONE register. A keyspace multiplexes many register
// instances over the same n-node mesh (src/kvstore); this bench measures
// what that layer adds and what it preserves as the keyspace grows:
// per-op traffic is flat in the number of slots (slots are independent
// protocols, the mux only routes), the addressing tag is a constant
// 32 bits of data-plane overhead per frame, protocol control stays at
// 2 bits, and store memory grows with *written* slots only.
#include "bench_common.hpp"

#include "kvstore/kv_store.hpp"

namespace tbr::bench {
namespace {

struct KvRow {
  std::uint64_t frames_per_put = 0;
  std::uint64_t frames_per_get = 0;
  std::uint64_t max_ctrl_bits = 0;
  double tag_overhead_bits = 0;  // data-plane addressing per frame
  std::uint64_t memory_bytes = 0;
};

KvRow measure(std::uint32_t slots) {
  KvStore::Options opt;
  opt.n = 5;
  opt.t = 2;
  opt.slots = slots;
  opt.seed = 7;
  KvStore store(std::move(opt));

  // Touch every slot once (worst-case memory: all shards populated).
  for (std::uint32_t s = 0; s < slots; ++s) {
    store.client().put_sync("warm-" + std::to_string(s * 131), Value::from_int64(1));
  }
  store.settle();

  KvRow row;
  auto before = store.net().stats().snapshot();
  store.client().put_sync("probe-key", Value::from_int64(42));
  store.settle();
  auto diff = store.net().stats().diff_since(before);
  row.frames_per_put = diff.total_sent();

  before = store.net().stats().snapshot();
  (void)store.client().get_sync("probe-key", 1);
  store.settle();
  diff = store.net().stats().diff_since(before);
  row.frames_per_get = diff.total_sent();

  const auto& stats = store.net().stats();
  row.max_ctrl_bits = stats.max_control_bits_per_msg();
  row.tag_overhead_bits = 32.0;  // by construction; asserted in tests
  row.memory_bytes = store.total_memory_bytes();
  return row;
}

void run() {
  print_header(
      "D10: a keyspace of registers over one 5-node network (kv store)",
      "derived experiment — per-op cost flat in #slots; protocol control "
      "stays 2 bits; addressing = 32 data-plane bits/frame");

  TextTable table({"slots", "frames/put", "frames/get",
                   "max ctrl bits/frame", "tag bits/frame",
                   "store memory (B)"});
  for (const std::uint32_t slots : {1u, 4u, 16u, 64u, 256u}) {
    const auto row = measure(slots);
    table.add_row({format_count(slots), format_count(row.frames_per_put),
                   format_count(row.frames_per_get),
                   format_count(row.max_ctrl_bits),
                   format_double(row.tag_overhead_bits, 0),
                   format_count(row.memory_bytes)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "frames/put stays at the single-register n(n-1) = 20 and\n"
      << "frames/get at 2(n-1) = 8 regardless of how many other registers\n"
      << "share the mesh — slots are independent instances, multiplexing\n"
      << "is pure routing. Memory scales with slots actually written (the\n"
      << "warm-up wrote all of them: worst case). Theorem 1 applies per\n"
      << "slot, so per-key atomicity is inherited — tests/kvstore_test.cpp\n"
      << "checks exactly that under interleaved multi-key traffic.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
