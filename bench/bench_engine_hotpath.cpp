// E-HOT: the engine's per-message constant factor.
//
// The paper minimizes what a frame carries (2 control bits); this bench
// tracks what a frame *costs the runtime*: heap allocations per delivered
// frame and events per second through the simulator's innermost loop, plus
// the same allocation metric for the threaded runtime.
//
// Three measurements:
//   1. sim steady state  — allocations counted during pure dissemination
//      windows (settle() after each write: only protocol frames fly, no
//      client-op machinery). This is the gated criterion: 0 allocs/frame.
//   2. sim closed loop   — whole-run events/sec and allocs/event for a
//      closed-loop write/read mix (wall clock: reported, never gated).
//   3. threaded runtime  — allocations per sent frame across a window of
//      client operations on real threads (encode/mailbox/dispatch path
//      plus the per-op future machinery). Gated against a reduction
//      criterion relative to the recorded pre-optimization baseline.
//
// Allocation counts come from the replaced global operator new
// (bench/alloc_hooks) — deterministic for measurement 1, and stable to
// within a handful of allocations for measurement 3.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <cstdio>

#include "bench/alloc_hooks.hpp"
#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "bench/relay_harness.hpp"
#include "sim/sim_network.hpp"
#include "runtime/thread_network.hpp"

namespace tbr::bench {
namespace {

// Pre-optimization baselines (commit 04722b9, this machine, release build),
// recorded before the zero-allocation hot-path rework so the JSON trail
// and the CI criterion both state what the optimization is measured
// against. The threaded criterion is a >= 90% reduction on allocs/frame.
constexpr double kPrePrSimRelayAllocsPerFrame = 2.00;
constexpr double kPrePrThreadedAllocsPerFrame = 0.42;
constexpr double kThreadedCriterion = kPrePrThreadedAllocsPerFrame * 0.10;

struct SimSteadyResult {
  std::uint64_t frames = 0;
  std::uint64_t allocs = 0;
};

SimSteadyResult measure_sim_relay(std::size_t payload_bytes,
                                  std::uint64_t laps) {
  SimNetwork net(make_relays(3, payload_bytes), SimNetwork::Options{});

  // Warm-up lap: sizes the event heap, the frame pool and its slot
  // capacities. Everything after this is steady state.
  kick_relay(net, 64);
  net.run();

  SimSteadyResult out;
  const auto events_before = net.events_executed();
  kick_relay(net, static_cast<SeqNo>(laps));
  const alloc::Window w;
  net.run();
  out.allocs = w.allocations();
  out.frames = net.events_executed() - events_before - 1;  // minus the kick
  return out;
}

struct SimLoopResult {
  std::uint64_t events = 0;
  std::uint64_t frames = 0;
  std::uint64_t allocs = 0;
  double wall_seconds = 0.0;
};

SimLoopResult measure_sim_loop(std::uint32_t n, std::uint32_t ops) {
  auto group = make_group(Algorithm::kTwoBit, n);
  group.write(Value::from_int64(0));
  group.settle();

  const alloc::Window w;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t k = 0; k < ops; ++k) {
    group.write(Value::from_int64(k));
    group.read((k % (n - 1)) + 1);
  }
  group.settle();
  const auto t1 = std::chrono::steady_clock::now();

  SimLoopResult out;
  out.events = group.net().events_executed();
  out.frames = group.net().stats().total_sent();
  out.allocs = w.allocations();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

struct ThreadedResult {
  std::uint64_t frames = 0;
  std::uint64_t ops = 0;
  std::uint64_t allocs = 0;
};

// Reusable one-shot completion latch for the callback client API: the
// lambda captures one pointer, so the whole op round-trip allocates only
// what the runtime itself allocates (the quantity under test).
class OpLatch {
 public:
  void signal() {
    {
      const std::scoped_lock lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
  }
  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    done_ = false;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

// use_futures selects the client API: the future-based wrappers allocate
// promise/shared-state per op (reported for comparison); the callback fast
// path is the gated hot path.
ThreadedResult measure_threaded(std::uint32_t n, std::uint32_t window_ops,
                                bool use_futures) {
  ThreadNetwork::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 7;
  opt.min_delay_us = 0;
  opt.max_delay_us = 0;  // as fast as possible: the hot path itself
  ThreadNetwork net(opt);
  net.start();

  OpLatch latch;
  auto one_op = [&](std::uint32_t k) {
    const ProcessId reader = (k % (n - 1)) + 1;
    if (use_futures) {
      if (k % 2 == 0) {
        net.write(Value::from_int64(k)).get();
      } else {
        (void)net.read(reader).get();
      }
      return;
    }
    if (k % 2 == 0) {
      net.write_async(Value::from_int64(k),
                      [&latch](Tick, const char*) { latch.signal(); });
    } else {
      net.read_async(reader, [&latch](const ReadResultT&, const char*) {
        latch.signal();
      });
    }
    latch.wait();
  };

  for (std::uint32_t k = 0; k < 64; ++k) one_op(k);  // warm pools/capacities

  const auto before = net.stats_snapshot();
  const alloc::Window w;
  for (std::uint32_t k = 0; k < window_ops; ++k) one_op(k);
  ThreadedResult out;
  out.allocs = w.allocations();
  out.ops = window_ops;
  out.frames = net.stats_snapshot().diff_since(before).total_sent();
  return out;
}

double per(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

int run() {
  const bool quick = quick_mode();
  print_header("E-HOT: engine hot path (allocs/frame, events/sec)",
               "runtime overhead per frame ~0 once rounds are minimal");

  const std::uint32_t n = 5;
  const auto relay_ctl = measure_sim_relay(0, quick ? 2000 : 20000);
  const auto relay_val = measure_sim_relay(1024, quick ? 2000 : 20000);
  const auto loop = measure_sim_loop(n, quick ? 200 : 2000);
  const auto threaded = measure_threaded(n, quick ? 64 : 256, false);
  const auto thr_futures = measure_threaded(n, quick ? 64 : 256, true);

  TextTable t({"measurement", "frames", "allocs", "allocs/frame",
               "allocs/event", "events/sec"});
  t.add_row({"sim relay, control frames (gated)",
             std::to_string(relay_ctl.frames),
             std::to_string(relay_ctl.allocs),
             format_double(per(relay_ctl.allocs, relay_ctl.frames), 3),
             "-", "-"});
  t.add_row({"sim relay, 1 KiB payload (gated)",
             std::to_string(relay_val.frames),
             std::to_string(relay_val.allocs),
             format_double(per(relay_val.allocs, relay_val.frames), 3),
             "-", "-"});
  t.add_row({"sim closed loop", std::to_string(loop.frames),
             std::to_string(loop.allocs),
             format_double(per(loop.allocs, loop.frames), 3),
             format_double(per(loop.allocs, loop.events), 3),
             format_double(loop.wall_seconds > 0
                               ? static_cast<double>(loop.events) /
                                     loop.wall_seconds
                               : 0.0,
                           0)});
  t.add_row({"threaded window, callbacks (gated)",
             std::to_string(threaded.frames),
             std::to_string(threaded.allocs),
             format_double(per(threaded.allocs, threaded.frames), 3), "-",
             "-"});
  t.add_row({"threaded window, futures", std::to_string(thr_futures.frames),
             std::to_string(thr_futures.allocs),
             format_double(per(thr_futures.allocs, thr_futures.frames), 3),
             "-", "-"});
  std::cout << t.render() << "\n";

  const std::uint64_t relay_allocs = relay_ctl.allocs + relay_val.allocs;
  const double sim_per_frame =
      per(relay_allocs, relay_ctl.frames + relay_val.frames);
  const double thr_per_frame = per(threaded.allocs, threaded.frames);
  std::printf(
      "acceptance: sim steady-state allocs/frame = %.3f (criterion: == 0; "
      "pre-PR baseline %.2f)\n",
      sim_per_frame, kPrePrSimRelayAllocsPerFrame);
  std::printf(
      "acceptance: threaded allocs/frame = %.3f (criterion: <= %.3f, i.e. "
      ">= 90%% reduction vs pre-PR baseline %.2f)\n",
      thr_per_frame, kThreadedCriterion, kPrePrThreadedAllocsPerFrame);

  const bool ok = relay_allocs == 0 && thr_per_frame <= kThreadedCriterion;
  std::printf("verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tbr::bench

int main() { return tbr::bench::run(); }
