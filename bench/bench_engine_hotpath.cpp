// E-HOT: the engine's per-message and per-operation constant factors.
//
// The paper minimizes what a frame carries (2 control bits); this bench
// tracks what a frame *costs the runtime* (heap allocations per delivered
// frame, events per second through the simulator's innermost loop) and —
// since the unified client API — what an OPERATION costs end to end
// through each engine's convenience surface.
//
// Measurements:
//   1. sim steady state  — allocations counted during pure dissemination
//      windows (relay ring: only protocol frames fly, no client-op
//      machinery). Gated: 0 allocs/frame.
//   2. sim closed loop   — whole-run events/sec and allocs/event for a
//      closed-loop write/read mix (wall clock: reported, never gated).
//   3. threaded runtime  — allocations per sent frame across a window of
//      client operations on real threads, via the raw callback path.
//      Gated against the recorded pre-optimization baseline.
//   4. ticket allocs/op  — the unified client API: closed loops through
//      RegisterClient (sim + threaded, gated == 0; socket over loopback
//      TCP, gated <= 1) and pipelined min-batch windows through the
//      sharded store's KvClient (gated <= 1 alloc/op).
//
// Allocation counts come from the replaced global operator new
// (bench/alloc_hooks) — deterministic for the sim measurements (fixed
// event schedule), and deterministic for the sharded windows because
// Options::min_batch pins the batching-window sizes.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/alloc_hooks.hpp"
#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "bench/relay_harness.hpp"
#include "kvstore/sharded_store.hpp"
#include "sim/sim_network.hpp"
#include "runtime/thread_network.hpp"
#include "transport/socket_network.hpp"

namespace tbr::bench {
namespace {

// Pre-optimization baselines (commit 04722b9, this machine, release build),
// recorded before the zero-allocation hot-path rework so the JSON trail
// and the CI criterion both state what the optimization is measured
// against. The threaded criterion is a >= 90% reduction on allocs/frame.
constexpr double kPrePrSimRelayAllocsPerFrame = 2.00;
constexpr double kPrePrThreadedAllocsPerFrame = 0.42;
constexpr double kThreadedCriterion = kPrePrThreadedAllocsPerFrame * 0.10;
// The sharded KvClient acceptance: pooled completions plus recycled
// window/plan storage must keep the whole per-op overhead within one
// allocation (the pre-redesign promise plumbing cost ~4 allocs/op in the
// client alone, before the per-window planning allocations).
constexpr double kShardedCriterion = 1.0;
// The socket ticket acceptance: commands ride recycled vectors, frames a
// consumed-offset ring, completions the pooled OpStates — the deleted
// promise path allocated shared state + exception plumbing per op.
constexpr double kSocketCriterion = 1.0;

struct SimSteadyResult {
  std::uint64_t frames = 0;
  std::uint64_t allocs = 0;
};

SimSteadyResult measure_sim_relay(std::size_t payload_bytes,
                                  std::uint64_t laps) {
  SimNetwork net(make_relays(3, payload_bytes), SimNetwork::Options{});

  // Warm-up lap: sizes the event heap, the frame pool and its slot
  // capacities. Everything after this is steady state.
  kick_relay(net, 64);
  net.run();

  SimSteadyResult out;
  const auto events_before = net.events_executed();
  kick_relay(net, static_cast<SeqNo>(laps));
  const alloc::Window w;
  net.run();
  out.allocs = w.allocations();
  out.frames = net.events_executed() - events_before - 1;  // minus the kick
  return out;
}

struct SimLoopResult {
  std::uint64_t events = 0;
  std::uint64_t frames = 0;
  std::uint64_t allocs = 0;
  double wall_seconds = 0.0;
};

SimLoopResult measure_sim_loop(std::uint32_t n, std::uint32_t ops) {
  auto group = make_group(Algorithm::kTwoBit, n);
  group.client().write_sync(Value::from_int64(0));
  group.settle();

  const alloc::Window w;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t k = 0; k < ops; ++k) {
    group.client().write_sync(Value::from_int64(k));
    group.client().read_sync((k % (n - 1)) + 1);
  }
  group.settle();
  const auto t1 = std::chrono::steady_clock::now();

  SimLoopResult out;
  out.events = group.net().events_executed();
  out.frames = group.net().stats().total_sent();
  out.allocs = w.allocations();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

struct OpsResult {
  std::uint64_t ops = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frames = 0;
};

// Closed loop through the Ticket convenience API on the simulator: every
// op is submit + wait (which drives the event loop). Gated == 0 allocs/op.
//
// Window discipline (same as alloc_regression_test): the two-bit
// register's history deque grows by design — one entry per write, a
// fresh chunk every 16 entries per process. That is protocol state (the
// paper's bounded-memory open problem), not runtime overhead, so the
// measured window holds exactly 8 writes positioned inside the current
// chunk (16 warm writes -> entries 17..24 of 32), plus chunk-neutral
// reads for volume.
OpsResult measure_sim_tickets(std::uint32_t n) {
  auto group = make_group(Algorithm::kTwoBit, n);
  RegisterClient& client = group.client();
  for (std::uint32_t k = 0; k < 16; ++k) {  // warm pool + engine + chunk
    (void)client.write_sync(Value::from_int64(k));
    (void)client.read_sync((k % (n - 1)) + 1);
    (void)client.read_sync((k % (n - 1)) + 1);
  }
  group.settle();

  OpsResult out;
  const alloc::Window w;
  for (std::uint32_t k = 0; k < 8; ++k) {
    (void)client.write_sync(Value::from_int64(1000 + k));
    (void)client.read_sync((k % (n - 1)) + 1);
    (void)client.read_sync(((k + 1) % (n - 1)) + 1);
  }
  group.settle();
  out.ops = 24;
  out.allocs = w.allocations();
  return out;
}

struct ThreadedResult {
  std::uint64_t frames = 0;
  std::uint64_t ops = 0;
  std::uint64_t allocs = 0;
};

// Reusable one-shot completion latch for the raw callback API: the lambda
// captures one pointer, so the whole op round-trip allocates only what the
// runtime itself allocates (the quantity under test).
class OpLatch {
 public:
  void signal() {
    {
      const std::scoped_lock lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
  }
  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    done_ = false;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

enum class ThreadedApi { kCallbacks, kTickets };

// Closed loop on the threaded runtime through its two client surfaces.
// Callbacks are the raw fast path, tickets the unified convenience API
// (both gated). The ticket window applies the same history-chunk
// discipline as measure_sim_tickets (writes are 1 op in 4; windows stay
// inside the warmed chunk), so its == 0 criterion measures the client
// path alone; the callback windows keep the historical 50% write mix and
// are gated against the per-frame reduction criterion instead.
ThreadedResult measure_threaded(std::uint32_t n, std::uint32_t window_ops,
                                ThreadedApi api) {
  ThreadNetwork::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 7;
  opt.min_delay_us = 0;
  opt.max_delay_us = 0;  // as fast as possible: the hot path itself
  ThreadNetwork net(opt);
  net.start();

  OpLatch latch;
  RegisterClient& client = net.client();
  auto one_op = [&](std::uint32_t k) {
    const ProcessId reader = (k % (n - 1)) + 1;
    const bool is_write =
        api == ThreadedApi::kTickets ? k % 4 == 0 : k % 2 == 0;
    switch (api) {
      case ThreadedApi::kTickets:
        if (is_write) {
          (void)client.write_sync(Value::from_int64(k));
        } else {
          (void)client.read_sync(reader);
        }
        return;
      case ThreadedApi::kCallbacks:
        if (is_write) {
          net.write_async(Value::from_int64(k),
                          [&latch](Tick, Status) { latch.signal(); });
        } else {
          net.read_async(reader, [&latch](const ReadResultT&, Status) {
            latch.signal();
          });
        }
        latch.wait();
        return;
    }
  };

  for (std::uint32_t k = 0; k < 256; ++k) one_op(k);  // warm pools/capacities

  if (api == ThreadedApi::kTickets) {
    // Exact == 0 criterion on a concurrent runtime: the dispatcher heap,
    // buffer pool and mailbox rings grow to their high-water marks
    // asynchronously, so a single window can still catch a late growth
    // step. The minimum across consecutive windows is the steady state —
    // if the per-op path itself allocated, EVERY window would count it.
    ThreadedResult out;
    out.ops = window_ops;
    out.allocs = ~0ull;
    const auto before = net.stats_snapshot();
    for (int window = 0; window < 4; ++window) {
      const alloc::Window w;
      for (std::uint32_t k = 0; k < window_ops; ++k) one_op(k);
      out.allocs = std::min(out.allocs, w.allocations());
    }
    out.frames = net.stats_snapshot().diff_since(before).total_sent() / 4;
    return out;
  }

  const auto before = net.stats_snapshot();
  const alloc::Window w;
  for (std::uint32_t k = 0; k < window_ops; ++k) one_op(k);
  ThreadedResult out;
  out.allocs = w.allocations();
  out.ops = window_ops;
  out.frames = net.stats_snapshot().diff_since(before).total_sent();
  return out;
}

// Closed loop through the socket runtime's RegisterClient: loopback TCP,
// one op in flight, completions resolved on the owning loop thread. The
// same min-of-windows discipline as the threaded ticket gate (poll-loop
// vectors, outbufs and the inbound rings reach their high-water marks
// asynchronously across n loop threads); writes are 1 op in 4 so windows
// stay inside the warmed history chunk.
OpsResult measure_socket_tickets(std::uint32_t n, std::uint32_t window_ops) {
  SocketNetwork::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  SocketNetwork net(std::move(opt));
  net.start();
  RegisterClient& client = net.client();
  auto one_op = [&](std::uint32_t k) {
    if (k % 4 == 0) {
      (void)client.write_sync(Value::from_int64(k));
    } else {
      (void)client.read_sync((k % (n - 1)) + 1);
    }
  };
  for (std::uint32_t k = 0; k < 256; ++k) one_op(k);  // warm rings/pools

  OpsResult out;
  out.ops = window_ops;
  out.allocs = ~0ull;
  for (int window = 0; window < 4; ++window) {
    const alloc::Window w;
    for (std::uint32_t k = 0; k < window_ops; ++k) one_op(k);
    out.allocs = std::min(out.allocs, w.allocations());
  }
  net.stop();
  return out;
}

// Pipelined waves through the sharded store's KvClient. min_batch ==
// max_batch == the wave size pins every batching window to exactly one
// wave, so the planning/completion work per window — and therefore the
// allocation count — is deterministic, CPU-speed independent.
OpsResult measure_sharded_kvclient(std::uint32_t waves,
                                   std::uint32_t wave_ops) {
  ShardedKvStore::Options opt;
  opt.shards = 1;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 16;
  opt.min_batch = wave_ops;
  opt.max_batch = wave_ops;
  opt.min_batch_wait = std::chrono::microseconds(200'000);
  ShardedKvStore store(std::move(opt));
  KvClient& client = store.client();

  std::vector<std::string> keys;
  for (int k = 0; k < 8; ++k) keys.push_back("key-" + std::to_string(k));
  std::vector<Ticket> tickets(wave_ops);

  auto run_wave = [&](std::uint32_t wave) {
    for (std::uint32_t k = 0; k < wave_ops; ++k) {
      const std::string& key = keys[(wave + k) % keys.size()];
      tickets[k] = (k % 4 == 0)
                       ? client.put(key, Value::from_int64(wave + k))
                       : client.get(key);
    }
    for (std::uint32_t k = 0; k < wave_ops; ++k) {
      (void)client.wait(tickets[k]);
    }
  };

  for (std::uint32_t wave = 0; wave < 8; ++wave) run_wave(wave);  // warm

  OpsResult out;
  const alloc::Window w;
  for (std::uint32_t wave = 0; wave < waves; ++wave) run_wave(wave);
  store.drain();
  out.ops = static_cast<std::uint64_t>(waves) * wave_ops;
  out.allocs = w.allocations();
  out.frames = store.frames_sent();
  return out;
}

double per(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

int run() {
  const bool quick = quick_mode();
  print_header("E-HOT: engine hot path (allocs/frame, allocs/op, events/sec)",
               "runtime overhead per frame AND per operation ~0 once rounds "
               "are minimal");

  const std::uint32_t n = 5;
  const auto relay_ctl = measure_sim_relay(0, quick ? 2000 : 20000);
  const auto relay_val = measure_sim_relay(1024, quick ? 2000 : 20000);
  const auto loop = measure_sim_loop(n, quick ? 200 : 2000);
  const auto sim_tickets = measure_sim_tickets(n);
  const auto threaded =
      measure_threaded(n, quick ? 64 : 256, ThreadedApi::kCallbacks);
  // Fixed 32-op window: 8 writes stay inside the warmed history chunk
  // (see the function comment) — the == 0 gate measures the client path.
  const auto thr_tickets = measure_threaded(n, 32, ThreadedApi::kTickets);
  // Same 32-op / 8-write window discipline on the socket runtime.
  const auto sock_tickets = measure_socket_tickets(n, 32);
  const auto sharded = measure_sharded_kvclient(quick ? 8 : 32, 64);

  TextTable t({"measurement", "frames", "ops", "allocs", "allocs/frame",
               "allocs/op"});
  t.add_row({"sim relay, control frames (gated)",
             std::to_string(relay_ctl.frames), "-",
             std::to_string(relay_ctl.allocs),
             format_double(per(relay_ctl.allocs, relay_ctl.frames), 3), "-"});
  t.add_row({"sim relay, 1 KiB payload (gated)",
             std::to_string(relay_val.frames), "-",
             std::to_string(relay_val.allocs),
             format_double(per(relay_val.allocs, relay_val.frames), 3), "-"});
  t.add_row({"sim closed loop (events/sec below)",
             std::to_string(loop.frames), "-", std::to_string(loop.allocs),
             format_double(per(loop.allocs, loop.frames), 3), "-"});
  t.add_row({"sim closed loop, tickets (gated)", "-",
             std::to_string(sim_tickets.ops),
             std::to_string(sim_tickets.allocs), "-",
             format_double(per(sim_tickets.allocs, sim_tickets.ops), 3)});
  t.add_row({"threaded window, callbacks (gated)",
             std::to_string(threaded.frames), std::to_string(threaded.ops),
             std::to_string(threaded.allocs),
             format_double(per(threaded.allocs, threaded.frames), 3),
             format_double(per(threaded.allocs, threaded.ops), 3)});
  t.add_row({"threaded window, tickets (gated)",
             std::to_string(thr_tickets.frames),
             std::to_string(thr_tickets.ops),
             std::to_string(thr_tickets.allocs), "-",
             format_double(per(thr_tickets.allocs, thr_tickets.ops), 3)});
  t.add_row({"socket window, tickets (gated)", "-",
             std::to_string(sock_tickets.ops),
             std::to_string(sock_tickets.allocs), "-",
             format_double(per(sock_tickets.allocs, sock_tickets.ops), 3)});
  t.add_row({"sharded kvclient, min-batch waves (gated)",
             std::to_string(sharded.frames), std::to_string(sharded.ops),
             std::to_string(sharded.allocs), "-",
             format_double(per(sharded.allocs, sharded.ops), 3)});
  std::cout << t.render() << "\n";
  std::printf("sim closed loop: %.0f events/sec (wall clock, informative)\n",
              loop.wall_seconds > 0
                  ? static_cast<double>(loop.events) / loop.wall_seconds
                  : 0.0);

  const std::uint64_t relay_allocs = relay_ctl.allocs + relay_val.allocs;
  const double sim_per_frame =
      per(relay_allocs, relay_ctl.frames + relay_val.frames);
  const double thr_per_frame = per(threaded.allocs, threaded.frames);
  const double sim_ticket_per_op = per(sim_tickets.allocs, sim_tickets.ops);
  const double thr_ticket_per_op = per(thr_tickets.allocs, thr_tickets.ops);
  const double sock_ticket_per_op = per(sock_tickets.allocs, sock_tickets.ops);
  const double sharded_per_op = per(sharded.allocs, sharded.ops);
  std::printf(
      "acceptance: sim steady-state allocs/frame = %.3f (criterion: == 0; "
      "pre-PR baseline %.2f)\n",
      sim_per_frame, kPrePrSimRelayAllocsPerFrame);
  std::printf(
      "acceptance: threaded allocs/frame = %.3f (criterion: <= %.3f, i.e. "
      ">= 90%% reduction vs pre-PR baseline %.2f)\n",
      thr_per_frame, kThreadedCriterion, kPrePrThreadedAllocsPerFrame);
  std::printf(
      "acceptance: ticket allocs/op (sim) = %.3f (criterion: == 0)\n",
      sim_ticket_per_op);
  std::printf(
      "acceptance: ticket allocs/op (threaded) = %.3f (criterion: == 0)\n",
      thr_ticket_per_op);
  std::printf(
      "acceptance: ticket allocs/op (socket) = %.3f (criterion: <= %.1f)\n",
      sock_ticket_per_op, kSocketCriterion);
  std::printf(
      "acceptance: kvclient allocs/op (sharded) = %.3f (criterion: <= "
      "%.1f)\n",
      sharded_per_op, kShardedCriterion);

  const bool ok = relay_allocs == 0 && thr_per_frame <= kThreadedCriterion &&
                  sim_tickets.allocs == 0 && thr_tickets.allocs == 0 &&
                  sock_ticket_per_op <= kSocketCriterion &&
                  sharded_per_op <= kShardedCriterion;
  std::printf("verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tbr::bench

int main() { return tbr::bench::run(); }
