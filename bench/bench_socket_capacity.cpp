// Experiment D12 — socket runtime capacity: epoll multi-loop scaling.
//
// The paper's constant-size control messages mean the socket runtime's
// scaling limit is connection handling, not bandwidth. This bench tracks
// what the multi-loop rework buys, two ways:
//
//  * capacity projection (deterministic): the runtime's event structure
//    in virtual time — every loop a serial resource, every frame a CPU
//    charge, the wire pure delay (src/transport/socket_capacity.hpp).
//    Same numbers on every host, so the 1-CPU CI box can gate on it.
//  * live engine (wall clock): the real epoll runtime under the socket
//    workload at 1 vs 4 loops. Scales with the cores the host actually
//    has — informative, not tracked.
//
// Expectation: >= 2x projected throughput at 4 loops vs 1 on a saturated
// 8-process mesh (enforced below and parsed by CI bench-smoke).
#include "bench_common.hpp"

#include "transport/socket_capacity.hpp"
#include "transport/socket_workload.hpp"

namespace tbr::bench {
namespace {

SocketCapacityOptions base_options() {
  SocketCapacityOptions opt;
  opt.n = 8;
  opt.t = 3;
  opt.clients = 64;
  opt.ops_per_client = quick_mode() ? 100 : 400;
  // Saturation regime: per-frame loop CPU dominates wire delay, so the
  // projection measures event-handling capacity, not propagation.
  opt.service_ns = 2000;
  opt.delay_ns = 20000;
  return opt;
}

double run_projection_sweep() {
  std::cout << "-- capacity projection (deterministic; 8-process mesh, "
               "64 closed-loop clients, 2us/frame CPU) --\n";
  TextTable table({"loops", "ops", "completion (ms)", "ops/ms",
                   "speedup vs 1", "busiest loop busy %", "mean latency (us)",
                   "frames"});
  double base = 0.0;
  double at_four = 0.0;
  for (const std::uint32_t loops : {1u, 2u, 4u, 8u}) {
    auto opt = base_options();
    opt.loops = loops;
    const auto p = project_socket_capacity(opt);
    if (loops == 1) base = p.ops_per_msec;
    if (loops == 4) at_four = p.ops_per_msec;
    Tick busiest = 0;
    for (const Tick b : p.loop_busy_ns) busiest = std::max(busiest, b);
    table.add_row(
        {format_count(loops), format_count(p.ops),
         format_double(static_cast<double>(p.completion_ns) / 1e6, 2),
         format_double(p.ops_per_msec, 1),
         format_double(base > 0 ? p.ops_per_msec / base : 1.0, 2) + "x",
         format_double(p.completion_ns > 0
                           ? 100.0 * static_cast<double>(busiest) /
                                 static_cast<double>(p.completion_ns)
                           : 0.0,
                       1) +
             "%",
         format_double(p.mean_latency_us, 1), format_count(p.frames)});
  }
  std::cout << table.render();
  const double speedup = base > 0 ? at_four / base : 0.0;
  std::cout << "acceptance: socket 4-loop capacity speedup = "
            << format_double(speedup, 2) << "x (criterion: >= 2x)\n\n";
  return speedup;
}

void run_latency_regime() {
  // The other regime: wire delay dominates loop CPU (an unloaded mesh).
  // Loops cannot help here — the op spends its life on the wire — so the
  // sweep should stay flat. Printing it keeps the projection honest: a
  // model that scales everything with loop count is broken.
  std::cout << "-- delay-dominated regime (loops should NOT help; "
               "informative) --\n";
  TextTable table({"loops", "ops/ms", "mean latency (us)"});
  for (const std::uint32_t loops : {1u, 4u}) {
    auto opt = base_options();
    opt.loops = loops;
    opt.clients = 8;           // one per process: no queueing pressure
    opt.service_ns = 200;      // CPU nearly free
    opt.delay_ns = 100'000;    // the wire is the op's whole life
    const auto p = project_socket_capacity(opt);
    table.add_row({format_count(loops), format_double(p.ops_per_msec, 2),
                   format_double(p.mean_latency_us, 1)});
  }
  std::cout << table.render() << "\n";
}

void run_live_engine() {
  std::cout << "-- live engine (wall clock; scales with host cores — "
               "informative, not tracked) --\n";
  TextTable table({"loops", "ops", "wall ms", "ops/sec", "park events",
                   "resume events"});
  for (const std::uint32_t loops : {1u, 4u}) {
    SocketWorkloadOptions opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.ops_per_process = quick_mode() ? 60 : 200;
    opt.loops = loops;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_socket_workload(opt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto check = r.check_atomicity(opt.cfg.initial);
    if (!check.ok) {
      std::cout << "ATOMICITY VIOLATION: " << check.error << "\n";
      std::exit(1);
    }
    table.add_row(
        {format_count(loops), format_count(r.completed_by_correct),
         format_double(wall * 1e3, 1),
         format_double(wall > 0 ? r.completed_by_correct / wall : 0.0, 0),
         format_count(r.backpressure.park_events),
         format_count(r.backpressure.resume_events)});
  }
  std::cout << table.render() << "\n";
}

int run() {
  print_header(
      "D12: socket runtime capacity (epoll multi-loop with backpressure)",
      "derived experiment — N event loops over the loopback mesh; >= 2x "
      "projected throughput at 4 loops vs 1");
  const double speedup = run_projection_sweep();
  run_latency_regime();
  run_live_engine();
  std::cout
      << "The projection isolates what loops buy: in the saturated regime\n"
      << "every frame charges loop CPU, so 1 loop serializes the entire\n"
      << "mesh's sends, handles, and replies on one clock while L loops\n"
      << "spread them pid%L. In the delay-dominated regime the sweep is\n"
      << "flat — loops multiply CPU, not the speed of light. The live\n"
      << "engine rows run the real epoll runtime (and verify atomicity);\n"
      << "their wall clock tracks host cores, so CI gates only on the\n"
      << "projection line above.\n";
  if (speedup < 2.0) {
    std::cout << "ACCEPTANCE FAILED: 4-loop speedup " << speedup
              << "x < 2x\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tbr::bench

int main() { return tbr::bench::run(); }
