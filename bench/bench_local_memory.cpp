// Experiment T1.L4 — local memory per process.
//
// Paper: unbounded (grows with #writes) | O(n^6) | O(n^5) | unbounded.
// Sweep (a): bytes vs n after a fixed write count — the bounded baselines'
// modeled label stores grow polynomially, twobit/abd stay flat in n (up to
// the O(n) w_sync vectors). Sweep (b): bytes vs #writes at fixed n — the
// twobit history grows linearly (its cost for constant-size messages),
// abd-unbounded stays O(1), the bounded stores are flat.
#include "bench_common.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "core/twobit_process.hpp"

namespace tbr::bench {
namespace {

std::uint64_t memory_after(Algorithm algo, std::uint32_t n, int writes) {
  auto group = make_group(algo, n);
  for (int k = 1; k <= writes; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  return group.process(1).local_memory_bytes();
}

SimRegisterGroup make_bounded_group(std::uint32_t n,
                                    std::uint32_t ack_interval) {
  SimRegisterGroup::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = make_constant_delay(kDelta);
  opt.process_factory = [ack_interval](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions o;
    o.bounded_history = true;
    o.ack_interval = ack_interval;
    return std::make_unique<TwoBitProcess>(cfg, pid, o);
  };
  return SimRegisterGroup(std::move(opt));
}

/// The bytes-retained projection for bounded mode: deterministic (constant
/// delay, closed loop), so CI can gate on it. Steady-state history bytes
/// must be a function of the GC window (ack interval + channel lag), not of
/// the write count.
void run_bounded_projection() {
  constexpr std::uint32_t kAckInterval = 8;
  std::cout << "-- bounded mode (acked-prefix GC, ack interval "
            << kAckInterval << ", n = 5) --\n";
  const std::vector<int> write_counts =
      quick_mode() ? std::vector<int>{64, 512} : std::vector<int>{64, 512, 4096};
  TextTable table({"#writes", "history bytes", "retained entries",
                   "footprint total", "gauge (stats)"});
  std::uint64_t first_history_bytes = 0;
  std::uint64_t last_history_bytes = 0;
  std::size_t last_retained = 0;
  for (const int writes : write_counts) {
    auto group = make_bounded_group(5, kAckInterval);
    for (int k = 1; k <= writes; ++k) {
      group.client().write_sync(Value::from_int64(k));
    }
    group.settle();
    const auto& p = group.net().process_as<TwoBitProcess>(1);
    const auto fp = p.memory_footprint();
    table.add_row({format_count(static_cast<std::uint64_t>(writes)),
                   format_count(fp.history_bytes),
                   format_count(static_cast<std::uint64_t>(fp.retained_entries)),
                   format_count(fp.total),
                   format_count(group.net().stats().local_memory_last())});
    if (first_history_bytes == 0) first_history_bytes = fp.history_bytes;
    last_history_bytes = fp.history_bytes;
    last_retained = fp.retained_entries;
  }
  std::cout << table.render() << "\n";
  // Flat across a 64x write-count sweep and small in absolute terms: that
  // is the O(window) bound. Both write counts are multiples of the ack
  // interval, so the retained tail is identical and the comparison exact.
  const bool flat = last_history_bytes == first_history_bytes;
  const bool small = last_retained <= 4u * kAckInterval;
  std::cout << "acceptance: steady-state history bytes bounded by O(window) = "
            << ((flat && small) ? "yes" : "NO") << " (history bytes "
            << first_history_bytes << " -> " << last_history_bytes
            << " across the sweep, " << last_retained
            << " entries retained, criterion: flat and <= "
            << 4 * kAckInterval << " entries)\n\n";
}

/// --soak: a long workload measured in virtual time (>= 10M ticks), with
/// the memory footprint sampled at the halfway and final marks. Bounded
/// mode must be exactly flat between the two — the dedicated CI job's
/// whole verdict is this function's exit code.
int run_soak() {
  constexpr Tick kHorizon = 10'000'000;
  auto group = make_bounded_group(3, /*ack_interval=*/1);
  std::uint64_t writes = 0;
  std::uint64_t half_total = 0;
  std::size_t half_retained = 0;
  while (group.net().now() < kHorizon) {
    ++writes;
    group.client().write_sync(Value::from_int64(static_cast<std::int64_t>(writes)));
    if ((writes & 15) == 0) {
      (void)group.client().read_sync(static_cast<ProcessId>(writes % 3));
    }
    if (half_total == 0 && group.net().now() >= kHorizon / 2) {
      group.settle();
      const auto fp =
          group.net().process_as<TwoBitProcess>(0).memory_footprint();
      half_total = fp.total;
      half_retained = fp.retained_entries;
    }
  }
  group.settle();
  const auto& writer = group.net().process_as<TwoBitProcess>(0);
  const auto fp = writer.memory_footprint();
  std::cout << "== soak: bounded memory over " << kHorizon
            << " virtual ticks ==\n"
            << writes << " writes, " << writer.gc_reclaimed_count()
            << " history entries reclaimed\n"
            << "footprint at 50%: " << half_total << " bytes ("
            << half_retained << " entries), at 100%: " << fp.total
            << " bytes (" << fp.retained_entries << " entries)\n";
  const bool flat = half_total != 0 && fp.total == half_total;
  std::cout << "acceptance: soak footprint flat between 50% and 100% = "
            << (flat ? "yes" : "NO") << "\n";
  return flat ? 0 : 1;
}

void run() {
  print_header("Table 1 line 4: local memory per process (bytes)",
               "unbounded (in #writes) | O(n^6) | O(n^5) | unbounded");

  std::cout << "-- sweep over n (16 writes each) --\n";
  {
    std::vector<std::string> header = {"n"};
    for (const auto algo : all_algorithms()) {
      header.push_back(algorithm_name(algo));
    }
    header.push_back("n^5/8");
    header.push_back("n^6/8");
    TextTable table(header);
    for (const std::uint32_t n : {3u, 5u, 7u, 9u, 13u}) {
      std::vector<std::string> row = {std::to_string(n)};
      for (const auto algo : all_algorithms()) {
        row.push_back(format_count(memory_after(algo, n, 16)));
      }
      row.push_back(format_count(pow_saturating(n, 5) / 8));
      row.push_back(format_count(pow_saturating(n, 6) / 8));
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "-- sweep over #writes (n = 5) --\n";
  {
    std::vector<std::string> header = {"#writes"};
    for (const auto algo : all_algorithms()) {
      header.push_back(algorithm_name(algo));
    }
    TextTable table(header);
    for (const int writes : {1, 64, 512, 4096}) {
      std::vector<std::string> row = {
          format_count(static_cast<std::uint64_t>(writes))};
      for (const auto algo : all_algorithms()) {
        row.push_back(format_count(memory_after(algo, 5, writes)));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }
  run_bounded_projection();

  std::cout
      << "twobit trades local memory (the full history, linear in #writes)\n"
      << "for 2-bit messages — unless acked-prefix GC is on, which caps the\n"
      << "history at O(window); abd-unbounded keeps one value; the bounded\n"
      << "baselines pay polynomial-in-n label stores (modeled sizes, see\n"
      << "DESIGN.md section 4).\n";
}

}  // namespace
}  // namespace tbr::bench

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--soak") == 0) {
    return tbr::bench::run_soak();
  }
  tbr::bench::run();
  return 0;
}
