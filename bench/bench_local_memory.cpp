// Experiment T1.L4 — local memory per process.
//
// Paper: unbounded (grows with #writes) | O(n^6) | O(n^5) | unbounded.
// Sweep (a): bytes vs n after a fixed write count — the bounded baselines'
// modeled label stores grow polynomially, twobit/abd stay flat in n (up to
// the O(n) w_sync vectors). Sweep (b): bytes vs #writes at fixed n — the
// twobit history grows linearly (its cost for constant-size messages),
// abd-unbounded stays O(1), the bounded stores are flat.
#include "bench_common.hpp"

#include "common/bits.hpp"

namespace tbr::bench {
namespace {

std::uint64_t memory_after(Algorithm algo, std::uint32_t n, int writes) {
  auto group = make_group(algo, n);
  for (int k = 1; k <= writes; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  return group.process(1).local_memory_bytes();
}

void run() {
  print_header("Table 1 line 4: local memory per process (bytes)",
               "unbounded (in #writes) | O(n^6) | O(n^5) | unbounded");

  std::cout << "-- sweep over n (16 writes each) --\n";
  {
    std::vector<std::string> header = {"n"};
    for (const auto algo : all_algorithms()) {
      header.push_back(algorithm_name(algo));
    }
    header.push_back("n^5/8");
    header.push_back("n^6/8");
    TextTable table(header);
    for (const std::uint32_t n : {3u, 5u, 7u, 9u, 13u}) {
      std::vector<std::string> row = {std::to_string(n)};
      for (const auto algo : all_algorithms()) {
        row.push_back(format_count(memory_after(algo, n, 16)));
      }
      row.push_back(format_count(pow_saturating(n, 5) / 8));
      row.push_back(format_count(pow_saturating(n, 6) / 8));
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "-- sweep over #writes (n = 5) --\n";
  {
    std::vector<std::string> header = {"#writes"};
    for (const auto algo : all_algorithms()) {
      header.push_back(algorithm_name(algo));
    }
    TextTable table(header);
    for (const int writes : {1, 64, 512, 4096}) {
      std::vector<std::string> row = {
          format_count(static_cast<std::uint64_t>(writes))};
      for (const auto algo : all_algorithms()) {
        row.push_back(format_count(memory_after(algo, 5, writes)));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }
  std::cout
      << "twobit trades local memory (the full history, linear in #writes)\n"
      << "for 2-bit messages; abd-unbounded keeps one value; the bounded\n"
      << "baselines pay polynomial-in-n label stores (modeled sizes, see\n"
      << "DESIGN.md section 4).\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
