// Experiment D11 — operation latency on real TCP sockets (google-benchmark).
//
// Not a paper experiment (the paper has no wall-clock evaluation); this is
// the systems sanity check for the socket runtime: real kernel round
// trips, real framing. The Δ-denominated claims (2Δ writes / ≤4Δ reads vs
// 12-18Δ for the bounded baselines) are measured exactly in
// bench_time_complexity on the simulator; here the same relative ordering
// should appear as wall-clock microseconds, modulo scheduler noise.
#include <benchmark/benchmark.h>

#include "transport/socket_network.hpp"

namespace tbr {
namespace {

SocketNetwork::Options make_options(Algorithm algo, std::uint32_t n) {
  SocketNetwork::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = (n - 1) / 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = algo;
  return opt;
}

void BM_SocketWrite(benchmark::State& state) {
  const auto algo = static_cast<Algorithm>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  SocketNetwork net(make_options(algo, n));
  net.start();
  std::int64_t k = 0;
  for (auto _ : state) {
    (void)net.client().write_sync(Value::from_int64(++k));
  }
  state.SetLabel(algorithm_name(algo) + " n=" + std::to_string(n));
  net.stop();
}

void BM_SocketRead(benchmark::State& state) {
  const auto algo = static_cast<Algorithm>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  SocketNetwork net(make_options(algo, n));
  net.start();
  (void)net.client().write_sync(Value::from_int64(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.client().read_sync(n - 1));
  }
  state.SetLabel(algorithm_name(algo) + " n=" + std::to_string(n));
  net.stop();
}

void register_all() {
  for (const auto algo : {Algorithm::kTwoBit, Algorithm::kAbdUnbounded,
                          Algorithm::kAbdBounded, Algorithm::kAttiya}) {
    for (const std::int64_t n : {3, 5}) {
      // Each op is 0.2-3 ms of real kernel round trips; a short MinTime
      // keeps the full-sweep artifact (bench_output.txt) affordable while
      // still averaging hundreds of operations per row.
      benchmark::RegisterBenchmark("SocketWrite", BM_SocketWrite)
          ->Args({static_cast<std::int64_t>(algo), n})
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark("SocketRead", BM_SocketRead)
          ->Args({static_cast<std::int64_t>(algo), n})
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
  }
}

}  // namespace
}  // namespace tbr

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  tbr::register_all();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
