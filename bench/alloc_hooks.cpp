// Replacement global allocation functions with atomic counters.
//
// The C++ standard explicitly permits a program to replace the global
// operator new/delete family ([new.delete]); every allocation in the
// process — library internals included — then flows through these
// definitions. Counters use relaxed atomics: we only ever read them from
// quiescent measurement points, and relaxed keeps the hot-path cost to one
// uncontended fetch_add.

#include "bench/alloc_hooks.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) {
  // Zero-size requests must return a unique pointer ([basic.stc.dynamic]).
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) throw std::bad_alloc();
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace tbr::alloc {

std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t deallocations() {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace tbr::alloc

// ---- replaced allocation functions ------------------------------------------

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return counted_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return counted_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}
