// Experiment D3 — ablation of Rule R2 (the catch-up forwarding at line 16).
//
// R2 exists so a lagging process "increases its local sequential history"
// when it talks to a fresher one. We cannot disable R2 and stay live (the
// proof of Lemma 6 relies on it), so the ablation is environmental: a
// straggler process whose links are k-times slower, measured with
// increasing slowdown. Reported: how much catch-up traffic R2 injects
// (extra WRITE frames beyond the n(n-1) steady-state budget per write) and
// the straggler's final staleness right before settle.
#include "bench_common.hpp"

#include "core/twobit_codec.hpp"
#include "core/twobit_process.hpp"

namespace tbr::bench {
namespace {

struct AblationRow {
  std::uint64_t total_write_frames = 0;
  std::uint64_t steady_budget = 0;
  SeqNo straggler_lag_peak = 0;
  bool caught_up = false;
};

AblationRow measure(std::uint32_t n, Tick slowdown_factor) {
  constexpr int kWrites = 30;
  SimRegisterGroup::Options gopt;
  gopt.cfg = make_cfg(n);
  gopt.algo = Algorithm::kTwoBit;
  gopt.seed = 5;
  const ProcessId straggler = n - 1;
  gopt.delay = make_straggler_delay(straggler, slowdown_factor * kDelta,
                                    kDelta);
  SimRegisterGroup group(std::move(gopt));

  AblationRow row;
  group.net().set_post_event_hook([&row, straggler, n](SimNetwork& net) {
    const auto& writer = net.process_as<TwoBitProcess>(0);
    const auto& lagger = net.process_as<TwoBitProcess>(straggler);
    (void)n;
    row.straggler_lag_peak = std::max(
        row.straggler_lag_peak, writer.wsync(0) - lagger.wsync(straggler));
  });

  for (int k = 1; k <= kWrites; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.settle();

  const auto& stats = group.net().stats();
  row.total_write_frames =
      stats.sent_of_type(static_cast<std::uint8_t>(TwoBitType::kWrite0)) +
      stats.sent_of_type(static_cast<std::uint8_t>(TwoBitType::kWrite1));
  row.steady_budget = std::uint64_t{kWrites} * n * (n - 1);
  const auto& lagger = group.net().process_as<TwoBitProcess>(straggler);
  row.caught_up = lagger.wsync(straggler) == kWrites;
  return row;
}

void run() {
  print_header(
      "D3: Rule R2 catch-up under a straggler (n=5, 30 writes)",
      "lag grows with slowdown; R2 repays it with zero extra frames "
      "(each pair still exchanges each value exactly once per direction)");

  TextTable table({"straggler slowdown", "WRITE frames sent",
                   "steady-state budget n(n-1)W", "peak lag (values)",
                   "caught up after settle"});
  for (const Tick factor : {1, 2, 8, 32, 128}) {
    const auto row = measure(5, factor);
    std::string slowdown_label = "x";
    slowdown_label += std::to_string(factor);
    table.add_row({slowdown_label,
                   format_count(row.total_write_frames),
                   format_count(row.steady_budget),
                   std::to_string(row.straggler_lag_peak),
                   row.caught_up ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "the frame count never exceeds the n(n-1) per-write budget: R2 is\n"
      << "not *extra* traffic, it re-routes the once-per-pair-per-value\n"
      << "exchange to whenever the laggard answers (Lemma 5's counting).\n"
      << "Peak lag scales with the slowdown, yet the laggard always drains\n"
      << "to a complete history — Lemma 6 made visible.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
