// Experiments T1.L5 / T1.L6 — operation time in Δ units, failure-free.
//
// Paper: write 2Δ | 12Δ | 14Δ | 2Δ; read 4Δ | 12Δ | 18Δ | 4Δ. Reads for the
// quorum-pattern algorithms (abd-unbounded, twobit) are measured two ways:
// steady state, and worst case over read-vs-write phase alignments — the
// paper's read bounds are the worst-case numbers.
#include "bench_common.hpp"

namespace tbr::bench {
namespace {

Tick worst_read_latency(Algorithm algo, std::uint32_t n) {
  Tick worst = 0;
  for (Tick offset = 0; offset <= 2 * kDelta; offset += kDelta / 8) {
    auto group = make_group(algo, n);
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    Tick latency = 0;
    bool done = false;
    const Tick base = group.net().now();
    group.net().schedule_at(base, [&] {
      group.begin_write(Value::from_int64(2), [] {});
    });
    group.net().schedule_at(base + offset, [&] {
      const Tick start = group.net().now();
      group.begin_read(n - 1, [&, start](const Value&, SeqNo) {
        latency = group.net().now() - start;
        done = true;
      });
    });
    (void)group.net().run();
    if (done) worst = std::max(worst, latency);
  }
  return worst;
}

void run() {
  print_header("Table 1 lines 5-6: operation time (failure-free, delay = D)",
               "write 2D|12D|14D|2D; read 4D|12D|18D|4D (worst case)");

  TextTable table({"algorithm", "write", "read (steady)",
                   "read (worst alignment)", "paper write", "paper read"});
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"2 D", "4 D"}, {"12 D", "12 D"}, {"14 D", "18 D"}, {"2 D", "4 D"}};
  std::size_t row_idx = 0;
  for (const auto algo : all_algorithms()) {
    const auto traffic = measure_op_traffic(algo, 5);
    const Tick worst_read = worst_read_latency(algo, 5);
    table.add_row(
        {algorithm_name(algo),
         format_delta_units(static_cast<double>(traffic.write_latency) /
                            kDelta),
         format_delta_units(static_cast<double>(traffic.read_latency) /
                            kDelta),
         format_delta_units(static_cast<double>(worst_read) / kDelta),
         expected[row_idx].first, expected[row_idx].second});
    ++row_idx;
  }
  std::cout << table.render() << "\n";
  std::cout
      << "the 4D read bounds (abd-unbounded, twobit) are upper bounds: with\n"
      << "every delay equal to D the worst alignment yields 3D for twobit\n"
      << "(the 4D supremum needs heterogeneous delays <= D; reproduced in\n"
      << "tests/twobit_timing_test.cpp, FourDeltaSupremumIsApproachable);\n"
      << "abd-unbounded reads are a fixed two round trips = 4D.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
