// Experiment D8 — the model boundary: both CAMP assumptions are necessary.
//
// The paper's system model (§2.1) promises reliable channels and at most
// t < n/2 crashes, and §2.2 cites the ABD impossibility for the latter.
// This bench violates each assumption on purpose and reports what breaks:
// completed operations stay atomic in every cell (safety never depends on
// the environment), while liveness degrades exactly as the theory says.
#include "bench_common.hpp"

namespace tbr::bench {
namespace {

struct BoundaryRow {
  std::uint32_t runs = 0;
  std::uint32_t stalled_runs = 0;
  std::uint64_t ops_done = 0;
  std::uint64_t ops_quota = 0;
  std::uint64_t frames_lost = 0;
  bool all_atomic = true;
};

BoundaryRow loss_sweep(Algorithm algo, double loss_rate) {
  BoundaryRow row;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    SimWorkloadOptions opt;
    opt.cfg = make_cfg(5);
    opt.algo = algo;
    opt.seed = seed;
    opt.ops_per_process = 20;
    opt.think_time_max = 200;
    opt.loss_rate = loss_rate;
    const auto result = run_sim_workload(opt);
    row.runs += 1;
    row.ops_done += result.completed_by_correct;
    row.ops_quota += result.quota_of_correct;
    row.frames_lost += result.stats.total_dropped();
    if (result.completed_by_correct < result.quota_of_correct) {
      row.stalled_runs += 1;
    }
    if (!result.check_atomicity(opt.cfg.initial).ok) row.all_atomic = false;
  }
  return row;
}

void run() {
  print_header("D8: model boundary (out-of-model faults, n=5, 12 runs/cell)",
               "safety survives everything; liveness needs reliable "
               "channels and a live majority");

  std::cout << "-- reliable channels are necessary (frame loss sweep) --\n";
  TextTable table({"algorithm", "loss", "runs stalled", "ops done/quota",
                   "frames lost", "completed ops atomic"});
  for (const auto algo : {Algorithm::kTwoBit, Algorithm::kAbdUnbounded}) {
    for (const double loss : {0.0, 0.01, 0.05, 0.10}) {
      const auto row = loss_sweep(algo, loss);
      table.add_row({algorithm_name(algo), format_double(loss, 2),
                     std::to_string(row.stalled_runs) + "/" +
                         std::to_string(row.runs),
                     format_count(row.ops_done) + "/" +
                         format_count(row.ops_quota),
                     format_count(row.frames_lost),
                     row.all_atomic ? "yes" : "NO"});
    }
  }
  std::cout << table.render() << "\n";

  std::cout << "-- a live majority is necessary (crash f of n=5, t=2) --\n";
  TextTable crash_table(
      {"crashes f", "within model", "write completes", "read completes"});
  for (std::uint32_t f = 0; f <= 3; ++f) {
    SimRegisterGroup::Options gopt;
    gopt.cfg = make_cfg(5);
    SimRegisterGroup group(std::move(gopt));
    group.client().write_sync(Value::from_int64(1));
    for (ProcessId pid = 4; pid > 4 - f; --pid) group.crash(pid);
    bool write_done = false;
    bool read_done = false;
    group.begin_write(Value::from_int64(2), [&] { write_done = true; });
    group.begin_read(1, [&](const Value&, SeqNo) { read_done = true; });
    (void)group.net().run();
    crash_table.add_row({std::to_string(f), f <= 2 ? "yes (f <= t)" : "NO",
                         write_done ? "yes" : "NO — stalls forever",
                         read_done ? "yes" : "NO — stalls forever"});
  }
  std::cout << crash_table.render() << "\n";
  std::cout
      << "every 'completed ops atomic' cell is yes — losing frames or a\n"
      << "majority never corrupts the register, it only stops progress:\n"
      << "the two CAMP assumptions are exactly the liveness preconditions\n"
      << "(and t < n/2 is the ABD impossibility bound the paper cites).\n\n"
      << "note the asymmetry: the two-bit register stalls at far lower\n"
      << "loss than ABD. One lost WRITE frame kills that pair's\n"
      << "alternating-bit stream *permanently* (every later value on the\n"
      << "channel waits behind the hole), whereas ABD loses at most the\n"
      << "operation in flight. The price of 2-bit frames is that the\n"
      << "channel's reliability IS the protocol's sequencing — a real\n"
      << "deployment would need a retransmitting transport underneath,\n"
      << "which is exactly where the alternating-bit protocol came from\n"
      << "(Bartlett et al. 1969, the paper's reference [6]).\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
