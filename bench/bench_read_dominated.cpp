// Experiment D1 — read-dominated workloads (the paper's §5 motivation:
// "Due to the O(n) message cost of its read operation, it can benefit
// read-dominated applications").
//
// Mixed closed-loop workload, 1 writer + (n-1) readers, random delays; we
// report per-algorithm total traffic and read-latency percentiles. Expected
// shape: twobit's traffic tracks abd-unbounded (cheap reads dominate, its
// O(n^2) writes amortize), both far below the bounded baselines; twobit
// read latency matches abd-unbounded while carrying 2-bit control frames.
#include "bench_common.hpp"

namespace tbr::bench {
namespace {

void run() {
  print_header("D1: read-dominated mixed workload (n=9, t=4)",
               "twobit ~ abd-unbounded traffic; bounded baselines pay 10x+");

  constexpr std::uint32_t n = 9;
  TextTable table({"algorithm", "ops", "total msgs", "msgs/op",
                   "control Kbits", "read lat p50/p99 (D units)"});
  for (const auto algo : all_algorithms()) {
    SimWorkloadOptions opt;
    opt.cfg = make_cfg(n);
    opt.algo = algo;
    opt.seed = 21;
    opt.ops_per_process = 40;  // 40 writes, 320 reads: 8:1 read-dominated
    opt.think_time_max = 3000;
    opt.delay_factory = [](const GroupConfig&) {
      return make_uniform_delay(kDelta / 2, kDelta);
    };
    const auto result = run_sim_workload(opt);
    const auto ops = result.completed_by_correct;
    const auto msgs = result.stats.total_sent();
    table.add_row(
        {algorithm_name(algo), format_count(ops), format_count(msgs),
         format_double(static_cast<double>(msgs) / ops),
         format_count(result.stats.total_control_bits() / 1000),
         result.read_latency.summary(kDelta, 1)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "who wins: twobit and abd-unbounded are within a small factor on\n"
      << "msgs/op (reads are O(n) for both; twobit pays O(n^2) only on the\n"
      << "rare writes) — but twobit ships ~2 control bits per frame vs the\n"
      << "others' growing/polynomial control payloads (control Kbits col).\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
