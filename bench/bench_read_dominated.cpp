// Experiment D1 — read-dominated workloads (the paper's §5 motivation:
// "Due to the O(n) message cost of its read operation, it can benefit
// read-dominated applications").
//
// Mixed closed-loop workload, 1 writer + (n-1) readers, random delays; we
// report per-algorithm total traffic and read-latency percentiles. Expected
// shape: twobit's traffic tracks abd-unbounded (cheap reads dominate, its
// O(n^2) writes amortize), both far below the bounded baselines; twobit
// read latency matches abd-unbounded while carrying 2-bit control frames.
//
// The fast-path read engines (src/fastread/) add two more sections:
//   D1b  constant-Δ quiescent latencies — the textbook numbers (2Δ reads
//        for timeeff, 3Δ for ohram's one-and-a-half rounds, 2Δ writes).
//   D1c  the ACCEPTANCE sweep — reads racing a continuous writer over
//        heavy-tailed delays. This is where the engines earn their keep:
//        a two-bit replica parks its PROCEED for any reader that has not
//        yet stored the replica's freshness point, so straggling WRITE
//        gossip stalls reads; the time-efficient read never waits on the
//        reader's own catch-up, and the Oh-RAM relay round completes from
//        whichever n-t relay sets arrive first, hedging slow channels.
//        Fixed seed + virtual time = the speedups are exact constants.
#include <algorithm>

#include "bench_common.hpp"

namespace tbr::bench {
namespace {

void run_mixed_workload() {
  print_header("D1: read-dominated mixed workload (n=9, t=4)",
               "twobit ~ abd-unbounded traffic; bounded baselines pay 10x+");

  constexpr std::uint32_t n = 9;
  std::vector<Algorithm> algos = all_algorithms();
  for (const auto algo : fastread_algorithms()) algos.push_back(algo);

  TextTable table({"algorithm", "ops", "total msgs", "msgs/op",
                   "control Kbits", "read lat p50/p99 (D units)"});
  for (const auto algo : algos) {
    SimWorkloadOptions opt;
    opt.cfg = make_cfg(n);
    opt.algo = algo;
    opt.seed = 21;
    opt.ops_per_process = 40;  // 40 writes, 320 reads: 8:1 read-dominated
    opt.think_time_max = 3000;
    opt.delay_factory = [](const GroupConfig&) {
      return make_uniform_delay(kDelta / 2, kDelta);
    };
    const auto result = run_sim_workload(opt);
    const auto ops = result.completed_by_correct;
    const auto msgs = result.stats.total_sent();
    table.add_row(
        {algorithm_name(algo), format_count(ops), format_count(msgs),
         format_double(static_cast<double>(msgs) / ops),
         format_count(result.stats.total_control_bits() / 1000),
         result.read_latency.summary(kDelta, 1)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "who wins: twobit and abd-unbounded are within a small factor on\n"
      << "msgs/op (reads are O(n) for both; twobit pays O(n^2) only on the\n"
      << "rare writes) — but twobit ships ~2 control bits per frame vs the\n"
      << "others' growing/polynomial control payloads (control Kbits col).\n"
      << "ohram trades read messages (O(n^2) relays) for tail latency;\n"
      << "timeeff matches twobit's traffic with echo-on-adopt writes.\n\n";
}

void run_quiescent_latency() {
  print_header(
      "D1b: sequential op latency, constant delay (n=5, t=2)",
      "uncontended reads: 2D for twobit/timeeff, 3D for ohram's "
      "one-and-a-half rounds; all writes 2D");

  constexpr std::uint32_t n = 5;
  std::vector<Algorithm> engines = {Algorithm::kTwoBit};
  for (const auto algo : fastread_algorithms()) engines.push_back(algo);

  TextTable table({"engine", "read lat (D)", "read msgs", "write lat (D)",
                   "write msgs"});
  for (const auto algo : engines) {
    const OpTraffic op = measure_op_traffic(algo, n);
    table.add_row({algorithm_name(algo),
                   format_double(static_cast<double>(op.read_latency) /
                                 kDelta, 1),
                   format_count(op.read_msgs),
                   format_double(static_cast<double>(op.write_latency) /
                                 kDelta, 1),
                   format_count(op.write_msgs)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "quiescent reads do not separate the engines — the two-bit read\n"
      << "is already one round trip when nothing is being written. The\n"
      << "fast path pays off under write concurrency (D1c below).\n\n";
}

void run_racing_acceptance() {
  print_header(
      "D1c: reads racing a continuous writer (n=9, t=4, heavy-tail delays)",
      "fastread engines keep reads off the writer's gossip critical path");

  // Closed loops, zero think time: the writer streams writes while every
  // other process streams reads, over exponential channel delays (mean
  // 250 ticks, cap 8000). Deterministic: fixed seed, virtual time — the
  // mean latencies below are exact constants, reproducible on every run.
  constexpr std::uint32_t n = 9;
  const auto mean_read_latency = [](Algorithm algo) {
    SimWorkloadOptions opt;
    opt.cfg = make_cfg(n);
    opt.algo = algo;
    opt.seed = 42;
    opt.ops_per_process = 40;
    opt.writer_read_fraction = 0.0;
    opt.think_time_max = 0;
    opt.delay_factory = [](const GroupConfig&) {
      return make_exponential_delay(kDelta / 4, kDelta * 8);
    };
    return run_sim_workload(opt).read_latency.mean();
  };

  const double base = mean_read_latency(Algorithm::kTwoBit);
  TextTable table({"engine", "mean read lat (D units)", "speedup vs twobit"});
  table.add_row({"twobit", format_double(base / kDelta, 2), "1.00x"});
  double min_speedup = 0.0;
  for (const auto algo : fastread_algorithms()) {
    const double mean = mean_read_latency(algo);
    const double speedup = base / mean;
    if (min_speedup == 0.0) {
      min_speedup = speedup;
    } else {
      min_speedup = std::min(min_speedup, speedup);
    }
    table.add_row({algorithm_name(algo), format_double(mean / kDelta, 2),
                   format_double(speedup, 2) + "x"});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "why: a two-bit replica parks its PROCEED until the reader stores\n"
      << "the replica's freshness point, so reads wait on straggling WRITE\n"
      << "gossip. timeeff readers pin the quorum max and never wait on\n"
      << "their own catch-up; ohram readers complete from the first n-t\n"
      << "relay quorums, hedging slow channels. Under capacity saturation\n"
      << "(service_time > 0) queueing dominates all three equally, so the\n"
      << "channel-delay model is where the protocol difference lives.\n\n";

  // The slowest of the two engines must clear the bar: the subsystem's
  // claim is that EVERY fastread engine beats two-bit reads in this mix.
  std::printf(
      "acceptance: fastread read-latency speedup = %.2fx "
      "(criterion: >= 1.25x)\n",
      min_speedup);
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run_mixed_workload();
  tbr::bench::run_quiescent_latency();
  tbr::bench::run_racing_acceptance();
  return 0;
}
