// Experiment T1.ALL — regenerate the paper's Table 1 at a reference size.
//
// Paper (Table 1, n processes, t < n/2, failure-free, delays = Δ):
//
//   line 1  #msgs write :  ABD-unb O(n) | ABD-bnd O(n^2) | Attiya O(n) | twobit O(n^2)
//   line 2  #msgs read  :  O(n)         | O(n^2)         | O(n)        | O(n)
//   line 3  msg bits    :  unbounded    | O(n^5)         | O(n^3)      | 2
//   line 4  local memory:  unbounded*   | O(n^6)         | O(n^5)      | unbounded
//   line 5  time write  :  2Δ           | 12Δ            | 14Δ         | 2Δ
//   line 6  time read   :  4Δ           | 12Δ            | 18Δ         | 4Δ
//
//   (*) "unbounded" = grows with the number of writes, not with n.
//
// This binary measures every cell at n = 7 after 64 writes.
#include "bench_common.hpp"

#include "common/bits.hpp"

namespace tbr::bench {
namespace {

struct Column {
  Algorithm algo;
  OpTraffic traffic;
  std::uint64_t max_msg_control_bits = 0;
  std::uint64_t local_memory_bytes = 0;
};

Column measure(Algorithm algo, std::uint32_t n, int writes) {
  Column col;
  col.algo = algo;
  col.traffic = measure_op_traffic(algo, n);

  auto group = make_group(algo, n);
  for (int k = 1; k <= writes; ++k) group.client().write_sync(Value::from_int64(k));
  group.client().read_sync(n - 1);
  group.settle();
  col.max_msg_control_bits = group.net().stats().max_control_bits_per_msg();
  col.local_memory_bytes = group.process(1).local_memory_bytes();
  return col;
}

void run() {
  constexpr std::uint32_t n = 7;
  constexpr int kWrites = 64;
  print_header("Table 1 (measured at n=7, t=3, 64 writes, delays = D)",
               "see header of bench_table1.cpp for the paper's rows");

  std::vector<Column> cols;
  for (const auto algo : all_algorithms()) {
    cols.push_back(measure(algo, n, kWrites));
  }

  std::vector<std::string> header = {"what is measured"};
  for (const auto& c : cols) header.push_back(algorithm_name(c.algo));
  TextTable table(header);

  auto row = [&](const std::string& name, auto&& cell) {
    std::vector<std::string> cells = {name};
    for (const auto& c : cols) cells.push_back(cell(c));
    table.add_row(std::move(cells));
  };

  row("#msgs: write", [](const Column& c) {
    return format_count(c.traffic.write_msgs);
  });
  row("#msgs: read", [](const Column& c) {
    return format_count(c.traffic.read_msgs);
  });
  row("msg size (control bits, max)", [](const Column& c) {
    return format_count(c.max_msg_control_bits);
  });
  row("local memory (bytes)", [](const Column& c) {
    return format_count(c.local_memory_bytes);
  });
  row("time: write", [](const Column& c) {
    return format_delta_units(static_cast<double>(c.traffic.write_latency) /
                              kDelta);
  });
  row("time: read", [](const Column& c) {
    return format_delta_units(static_cast<double>(c.traffic.read_latency) /
                              kDelta);
  });

  std::cout << table.render() << "\n";
  std::cout << "notes:\n"
            << "  * twobit control bits = 2 exactly (the paper's result);\n"
            << "    abd-unbounded bits grow ~log2(#writes) (live seqno);\n"
            << "    attiya/abd-bounded bits are the modeled n^3 / n^5 labels.\n"
            << "  * twobit/abd-unbounded memory: twobit stores the full\n"
            << "    history (unbounded in #writes); abd stores one value.\n"
            << "  * read time for twobit/abd-unbounded is the steady-state\n"
            << "    2D here; the worst case over phase alignments (4D bound)\n"
            << "    is measured by bench_time_complexity.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
