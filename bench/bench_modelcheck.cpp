// Experiment V1 — machine-checked verification coverage.
//
// The paper proves its properties (Lemmas 1-10, Theorem 1) once, for all
// n. The model checker complements the proofs from below: for small
// instances it *enumerates every reachable schedule* — all delivery
// orders, operation alignments, and crash timings the CAMP adversary can
// produce — and checks atomicity (Lemma 10's claims), liveness at the
// drained frontier (Lemmas 8/9), and the state lemmas (2-5, P1, P2) after
// every step. Rows marked complete=yes are exhaustive verdicts for that
// instance; the ablated variants show the same harness *finding* the bugs
// the paper's wait statements prevent, which is what makes the zero-
// violation rows evidence rather than absence of looking.
#include "bench_common.hpp"

#include "core/twobit_process.hpp"
#include "modelcheck/explorer.hpp"

namespace tbr::bench {
namespace {

Scenario scenario(std::uint32_t n, std::uint32_t t) {
  Scenario s;
  s.cfg = make_cfg(n);
  s.cfg.t = t;
  return s;
}

McOp w(std::int64_t v, int after = -1) {
  return McOp{McOp::Kind::kWrite, 0, Value::from_int64(v), after};
}
McOp r(ProcessId proc, int after = -1) {
  return McOp{McOp::Kind::kRead, proc, Value(), after};
}

void add_row(TextTable& table, const std::string& name, const Scenario& s,
             const ExploreOptions& opt) {
  const auto result = explore(s, opt);
  table.add_row(
      {name, format_count(result.nodes_visited),
       format_count(result.terminal_schedules),
       std::to_string(result.max_depth_seen),
       result.complete ? "yes" : "budget hit",
       result.ok() ? "0"
                   : format_count(result.violations_found) + " (" +
                         result.violations.front().detail.substr(0, 40) +
                         "...)"});
}

void run() {
  print_header(
      "V1: bounded-exhaustive model checking of the two-bit register",
      "every schedule of each instance checked for Lemma 10 atomicity, "
      "Lemma 8/9 liveness, Lemmas 2-5 + P1/P2 invariants");

  // Quick (CI smoke) mode trades exhaustiveness for time: the bounded rows
  // become budget-capped frontiers and the walk counts shrink, but every
  // instance still runs and still reports violations = 0.
  ExploreOptions opt;
  opt.max_nodes = quick_mode() ? 50'000 : 2'000'000;

  TextTable table({"instance", "prefixes replayed", "terminal schedules",
                   "max depth", "exhaustive", "violations"});

  {  // single write, n=3
    auto s = scenario(3, 1);
    s.ops = {w(1)};
    add_row(table, "n=3: write", s, opt);
  }
  {  // write then read
    auto s = scenario(3, 1);
    s.ops = {w(1), r(2, 0)};
    add_row(table, "n=3: write; read-after", s, opt);
  }
  {  // write racing a read — the flagship
    auto s = scenario(3, 1);
    s.ops = {w(1), r(1)};
    add_row(table, "n=3: write || read", s, opt);
  }
  {  // adversarial crash timing
    auto s = scenario(3, 1);
    s.ops = {w(1)};
    s.max_crashes = 1;
    s.crash_candidates = {1, 2};
    add_row(table, "n=3: write, any crash", s, opt);
  }
  {  // two writes racing a read (budget-bounded frontier)
    auto s = scenario(3, 1);
    s.ops = {w(1), w(2, 0), r(1)};
    add_row(table, "n=3: 2 writes || read", s, opt);
  }

  // Detection power: the ablated variants under the same harness.
  {
    auto s = scenario(3, 1);
    s.factory = [](const GroupConfig& cfg, ProcessId pid) {
      TwoBitOptions topt;
      topt.eager_proceed = true;
      return std::make_unique<TwoBitProcess>(cfg, pid, topt);
    };
    s.ops = {w(1), r(2, 0)};
    add_row(table, "ablated (-line 20)", s, opt);
  }
  {
    auto s = scenario(3, 1);
    s.factory = [](const GroupConfig& cfg, ProcessId pid) {
      TwoBitOptions topt;
      topt.history_window = 1;
      return std::make_unique<TwoBitProcess>(cfg, pid, topt);
    };
    s.ops = {w(1), w(2, 0)};
    ExploreOptions small = opt;
    small.max_nodes = quick_mode() ? 50'000 : 200'000;
    add_row(table, "ablated (window=1)", s, small);
  }
  std::cout << table.render() << "\n";

  std::cout << "-- random-walk sampling beyond exhaustive reach --\n";
  TextTable walks({"instance", "walks", "max depth", "violations"});
  {
    auto s = scenario(5, 2);
    s.ops = {w(1), w(2, 0), r(1), r(3), r(4, 2)};
    const std::uint64_t count = quick_mode() ? 400 : 4'000;
    const auto result = random_walks(s, count, 17);
    walks.add_row({"n=5: 2 writes, 3 reads", format_count(count),
                   std::to_string(result.max_depth_seen),
                   result.ok() ? "0" : format_count(result.violations_found)});
  }
  {
    auto s = scenario(7, 3);
    s.ops = {w(1), r(1), r(4), r(6, 1)};
    s.max_crashes = 2;
    s.crash_candidates = {2, 3, 5};
    const std::uint64_t count = quick_mode() ? 200 : 2'000;
    const auto result = random_walks(s, count, 29);
    walks.add_row({"n=7: crashes free-range", format_count(count),
                   std::to_string(result.max_depth_seen),
                   result.ok() ? "0" : format_count(result.violations_found)});
  }
  std::cout << walks.render() << "\n";
  std::cout
      << "the faithful rows are exhaustive zero-violation verdicts (an\n"
      << "instance-level machine check of Theorem 1); the ablated rows\n"
      << "prove the harness finds reachable bugs when the algorithm's\n"
      << "waits are removed — see tests/modelcheck_test.cpp for the\n"
      << "scripted Claim-3 window at n=5, which needs 5 processes before\n"
      << "a stale PROCEED quorum can even assemble.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
