// Experiment T1.L3 — control bits per message.
//
// Paper: unbounded (ABD) / O(n^5) (ABD bounded) / O(n^3) (Attiya) / 2 (this
// paper). Two sweeps: (a) max control bits vs n at a fixed write count;
// (b) max control bits vs #writes at fixed n — the unbounded row grows with
// the write count (its live sequence number), every other row is flat.
#include "bench_common.hpp"

#include "common/bits.hpp"

namespace tbr::bench {
namespace {

std::uint64_t max_bits(Algorithm algo, std::uint32_t n, int writes) {
  auto group = make_group(algo, n);
  for (int k = 1; k <= writes; ++k) group.client().write_sync(Value::from_int64(k));
  group.client().read_sync(n - 1);
  group.settle();
  return group.net().stats().max_control_bits_per_msg();
}

void run() {
  print_header("Table 1 line 3: control bits per message",
               "unbounded | O(n^5) | O(n^3) | 2");

  std::cout << "-- sweep over n (16 writes each) --\n";
  {
    std::vector<std::string> header = {"n"};
    for (const auto algo : all_algorithms()) {
      header.push_back(algorithm_name(algo));
    }
    header.push_back("n^3");
    header.push_back("n^5");
    TextTable table(header);
    for (const std::uint32_t n : {3u, 5u, 7u, 9u, 13u}) {
      std::vector<std::string> row = {std::to_string(n)};
      for (const auto algo : all_algorithms()) {
        row.push_back(format_count(max_bits(algo, n, 16)));
      }
      row.push_back(format_count(pow_saturating(n, 3)));
      row.push_back(format_count(pow_saturating(n, 5)));
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "-- sweep over #writes (n = 5) --\n";
  {
    std::vector<std::string> header = {"#writes"};
    for (const auto algo : all_algorithms()) {
      header.push_back(algorithm_name(algo));
    }
    TextTable table(header);
    for (const int writes : {1, 16, 256, 4096, 65536}) {
      std::vector<std::string> row = {format_count(
          static_cast<std::uint64_t>(writes))};
      for (const auto algo : all_algorithms()) {
        row.push_back(format_count(max_bits(algo, 5, writes)));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }
  std::cout
      << "twobit stays at exactly 2 bits in both sweeps; abd-unbounded\n"
      << "grows ~log2(#writes) and is flat in n; the bounded baselines are\n"
      << "flat in #writes but polynomial in n. This is the paper's\n"
      << "headline: constant two-bit control information.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
