// Global counting-allocator harness for the perf gates.
//
// Linking `tbr_alloc_hooks` into a binary replaces the global operator
// new/delete family with malloc-backed versions that bump process-wide
// atomic counters. Allocation *counts* (not bytes) are the metric: they are
// deterministic on a fixed workload regardless of CPU count or wall-clock
// speed, which is what makes "allocations per delivered frame" a gateable
// criterion on a 1-core CI runner.
//
// Only bench_engine_hotpath and alloc_regression_test link the hooks; the
// library itself never does, so ordinary binaries keep the stock allocator
// and the sanitizer builds (which interpose their own operator new) are
// never mixed with ours — the alloc-gated targets are registered for
// non-sanitized builds only.
#pragma once

#include <cstdint>

namespace tbr::alloc {

/// Number of successful global operator-new calls since process start.
std::uint64_t allocations();

/// Number of global operator-delete calls on non-null pointers.
std::uint64_t deallocations();

/// Allocation delta over a scope:
///   alloc::Window w;
///   ... code under measurement ...
///   auto n = w.allocations();
class Window {
 public:
  Window() : start_(tbr::alloc::allocations()) {}
  std::uint64_t allocations() const { return alloc::allocations() - start_; }

 private:
  std::uint64_t start_ = 0;
};

}  // namespace tbr::alloc
