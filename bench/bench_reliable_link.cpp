// Experiment D9 — the deployment fix for the D8 boundary finding.
//
// D8 shows the two-bit register's liveness dies at ~1% frame loss: the
// alternating-bit value stream has no slack, so one lost WRITE wedges a
// pair forever. The reliable link (src/link) is the classic retransmitting
// transport the paper's reference [6] lineage provides; this bench re-runs
// the D8 loss sweep with the register riding the link and reports what the
// fix costs: retransmission traffic and a 65-bit transport header per
// frame, while the *register protocol* inside the payload still pays
// exactly 2 control bits per frame — the paper's headline number is a
// statement about the protocol layer, not about the machinery that makes
// channels reliable.
#include "bench_common.hpp"

#include "core/twobit_process.hpp"
#include "link/reliable_link.hpp"

namespace tbr::bench {
namespace {

struct LinkRow {
  std::uint32_t runs = 0;
  std::uint32_t stalled_runs = 0;
  std::uint64_t ops_done = 0;
  std::uint64_t ops_quota = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t inner_control_bits = 0;
  std::uint64_t header_control_bits = 0;
  bool all_atomic = true;
};

LinkRow sweep(double loss_rate, bool linked) {
  LinkRow row;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    SimWorkloadOptions opt;
    opt.cfg = make_cfg(5);
    opt.algo = Algorithm::kTwoBit;
    opt.seed = seed;
    opt.ops_per_process = 20;
    opt.think_time_max = 200;
    opt.loss_rate = loss_rate;
    std::vector<const ReliableLinkProcess*> links;
    if (linked) {
      opt.process_factory = [](const GroupConfig& cfg, ProcessId pid) {
        return std::make_unique<ReliableLinkProcess>(
            cfg, pid, std::make_unique<TwoBitProcess>(cfg, pid));
      };
    }
    const auto result = run_sim_workload(opt);
    row.runs += 1;
    row.ops_done += result.completed_by_correct;
    row.ops_quota += result.quota_of_correct;
    row.frames_lost += result.stats.total_dropped();
    if (result.completed_by_correct < result.quota_of_correct) {
      row.stalled_runs += 1;
    }
    if (!result.check_atomicity(opt.cfg.initial).ok) row.all_atomic = false;
  }
  return row;
}

// Per-process link counters need the group alive; measure them separately
// on one representative run per loss rate.
LinkRow link_traffic(double loss_rate) {
  SimRegisterGroup::Options gopt;
  gopt.cfg = make_cfg(5);
  gopt.seed = 42;
  gopt.loss_rate = loss_rate;
  gopt.process_factory = [](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<ReliableLinkProcess>(
        cfg, pid, std::make_unique<TwoBitProcess>(cfg, pid));
  };
  SimRegisterGroup group(std::move(gopt));
  for (int k = 1; k <= 20; ++k) {
    group.client().write_sync(Value::from_int64(k));
    (void)group.client().read_sync(k % 5 == 0 ? 0 : static_cast<ProcessId>(k % 5));
  }
  group.settle();
  LinkRow row;
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto& stats =
        group.net().process_as<ReliableLinkProcess>(pid).link_stats();
    row.data_frames += stats.data_frames_sent + stats.ack_frames_sent;
    row.retransmits += stats.retransmit_frames;
    row.inner_control_bits += stats.inner_control_bits;
    row.header_control_bits += stats.header_control_bits;
  }
  return row;
}

void run() {
  print_header(
      "D9: the two-bit register over a retransmitting link (n=5, 12 runs)",
      "derived experiment — liveness restored at every loss rate D8 showed "
      "stalling, protocol control bits still 2/frame");

  TextTable table({"transport", "loss", "runs stalled", "ops done/quota",
                   "frames lost", "completed ops atomic"});
  for (const bool linked : {false, true}) {
    for (const double loss : {0.0, 0.01, 0.05, 0.10}) {
      const auto row = sweep(loss, linked);
      table.add_row({linked ? "reliable link" : "bare channels",
                     format_double(loss, 2),
                     std::to_string(row.stalled_runs) + "/" +
                         std::to_string(row.runs),
                     format_count(row.ops_done) + "/" +
                         format_count(row.ops_quota),
                     format_count(row.frames_lost),
                     row.all_atomic ? "yes" : "NO"});
    }
  }
  std::cout << table.render() << "\n";

  std::cout << "-- what the fix costs (20 writes + 20 reads, one run) --\n";
  TextTable cost({"loss", "link frames", "retransmits",
                  "protocol ctrl bits", "transport header bits",
                  "protocol bits/frame"});
  for (const double loss : {0.0, 0.01, 0.05, 0.10}) {
    const auto row = link_traffic(loss);
    const auto delivered = row.inner_control_bits / 2;  // 2 bits per frame
    cost.add_row({format_double(loss, 2), format_count(row.data_frames),
                  format_count(row.retransmits),
                  format_count(row.inner_control_bits),
                  format_count(row.header_control_bits),
                  delivered == 0 ? "-"
                                 : format_double(
                                       static_cast<double>(
                                           row.inner_control_bits) /
                                           static_cast<double>(delivered),
                                       2)});
  }
  std::cout << cost.render() << "\n";
  std::cout
      << "bare channels reproduce D8 (stalls at 1% loss and above); over\n"
      << "the link every run completes at every loss rate, and safety is\n"
      << "never at issue in either configuration. The register protocol\n"
      << "inside the payload still ships exactly 2 control bits per frame\n"
      << "— the 65-bit link header is the price of reliability, paid by\n"
      << "any protocol one deploys over lossy channels (TCP charges more).\n"
      << "Retransmissions scale with the loss rate and vanish at 0%.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
