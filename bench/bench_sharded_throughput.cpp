// Experiment D11 — sharded multi-register throughput (the scale-out layer).
//
// The flat KV layer (D10) showed that multiplexing many registers over one
// network keeps per-op cost flat; it also serializes every key behind one
// event loop. This bench measures what the sharded engine buys on a
// read-dominated, zipf-skewed keyspace, two ways:
//
//  * capacity projection (deterministic): per-shard register groups driven
//    in virtual time with finite per-replica CPU (SimNetwork service_time).
//    Aggregate throughput = total ops / busiest shard's clock — what the
//    deployment achieves when each group runs on its own hardware. Same
//    numbers on every host, so CI can track the trajectory.
//  * live engine (wall clock): real shard workers + batching windows under
//    client threads. Scales with the cores the host actually has, so this
//    section is informative, not tracked.
//
// Expectation: >= 2x ops/sec at 4 shards vs 1 shard on the read-dominated
// workload (skew caps it well below the ideal 4x; batching coalescing is
// reported alongside so the two effects stay distinguishable).
#include "bench_common.hpp"

#include "workload/sharded_workload.hpp"

namespace tbr::bench {
namespace {

ShardedWorkloadOptions base_options() {
  ShardedWorkloadOptions opt;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 16;
  opt.keys = 512;
  opt.zipf_s = 0.9;
  opt.read_fraction = 0.9;
  opt.total_ops = quick_mode() ? 1500 : 3000;
  opt.seed = 1;
  return opt;
}

void run_projection_sweep() {
  std::cout << "-- capacity projection (deterministic; per-replica CPU = "
               "200 ticks/frame, delta = 1000) --\n";
  TextTable table({"shards", "ops", "busiest shard (ticks)", "ops/Mtick",
                   "speedup vs 1", "reads coalesced", "writes absorbed",
                   "frames"});
  double base = 0.0;
  double at_four = 0.0;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto opt = base_options();
    opt.shards = shards;
    const auto p = project_sharded_capacity(opt);
    if (shards == 1) base = p.ops_per_mtick;
    if (shards == 4) at_four = p.ops_per_mtick;
    const double read_ops =
        static_cast<double>(p.batch.client_ops - p.batch.protocol_writes -
                            p.batch.absorbed_writes);
    table.add_row(
        {format_count(shards), format_count(p.ops),
         format_count(static_cast<std::uint64_t>(p.busiest_shard_ticks)),
         format_double(p.ops_per_mtick, 0),
         format_double(base > 0 ? p.ops_per_mtick / base : 1.0, 2) + "x",
         format_double(read_ops > 0 ? 100.0 * p.batch.coalesced_reads /
                                          read_ops
                                    : 0.0,
                       1) +
             "%",
         format_count(p.batch.absorbed_writes), format_count(p.frames)});
  }
  std::cout << table.render();
  std::cout << "acceptance: 4-shard speedup = "
            << format_double(base > 0 ? at_four / base : 0.0, 2)
            << "x (criterion: >= 2x)\n\n";
}

void run_batching_ablation() {
  std::cout << "-- batching ablation at 4 shards (projection) --\n";
  TextTable table({"window", "ops/Mtick", "protocol reads", "protocol writes",
                   "frames"});
  for (const bool batched : {false, true}) {
    auto opt = base_options();
    opt.shards = 4;
    if (!batched) {
      opt.max_batch = 1;  // every op its own window: no coalescing at all
      opt.coalesce_writes = false;
    }
    const auto p = project_sharded_capacity(opt);
    table.add_row({batched ? "accumulated (<=256 ops)" : "single op",
                   format_double(p.ops_per_mtick, 0),
                   format_count(p.batch.protocol_reads),
                   format_count(p.batch.protocol_writes),
                   format_count(p.frames)});
  }
  std::cout << table.render() << "\n";
}

void run_min_batch_sweep() {
  // The group-commit trade, measured: a min_batch floor holds each window
  // open until that many ops have arrived, so writes coalesce and reads
  // share rounds harder (throughput up, frames down) while every op waits
  // for its window to fill (latency up). Deterministic capacity-projection
  // mode — same numbers on every host, no wall clock (this repo's CI
  // criterion discipline: the 1-CPU container cannot time threads).
  std::cout << "-- min_batch sweep at 4 shards (projection; "
               "latency vs throughput/frame cost) --\n";
  TextTable table({"min_batch", "ops/Mtick", "mean latency (ticks)",
                   "protocol reads", "writes absorbed", "frames",
                   "frames/op"});
  for (const std::size_t min_batch : {1u, 4u, 16u, 64u}) {
    auto opt = base_options();
    opt.shards = 4;
    opt.min_batch = min_batch;
    // Moderate offered load (ops arrive slower than the saturating
    // default): natural windows are a handful of ops, so the floor is the
    // thing deciding how hard reads share rounds and writes coalesce. At
    // the saturating default the backlog already maxes out every window
    // and the floor only adds wait.
    opt.inter_arrival = 150;
    const auto p = project_sharded_capacity(opt);
    table.add_row({format_count(min_batch), format_double(p.ops_per_mtick, 0),
                   format_double(p.mean_latency_ticks, 0),
                   format_count(p.batch.protocol_reads),
                   format_count(p.batch.absorbed_writes),
                   format_count(p.frames),
                   format_double(p.ops > 0 ? static_cast<double>(p.frames) /
                                                 static_cast<double>(p.ops)
                                           : 0.0,
                                 2)});
  }
  std::cout << table.render()
            << "(informative: the floor is a knob, not a criterion — it "
               "buys per-op frame cost\nwith client latency; pick per "
               "workload)\n\n";
}

void run_engine_sweep() {
  std::cout << "-- live engine (wall clock; scales with host cores — "
               "informative, not tracked) --\n";
  TextTable table({"shards", "ops ok", "ops failed", "wall ms", "ops/sec",
                   "max batch seen"});
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto opt = base_options();
    opt.shards = shards;
    opt.total_ops = quick_mode() ? 4000 : 20000;
    opt.client_threads = 4;
    opt.client_pipeline = 128;
    const auto r = run_sharded_workload(opt);
    table.add_row({format_count(shards), format_count(r.ops_completed),
                   format_count(r.ops_failed),
                   format_double(r.wall_seconds * 1e3, 1),
                   format_double(r.ops_per_sec, 0),
                   format_count(r.batch.max_batch_ops)});
  }
  std::cout << table.render() << "\n";
}

void run() {
  print_header(
      "D11: sharded multi-register throughput (read-dominated, zipf skew)",
      "derived experiment — partitioned register groups + per-shard "
      "batching; >= 2x ops/sec at 4 shards vs 1");
  run_projection_sweep();
  run_batching_ablation();
  run_min_batch_sweep();
  run_engine_sweep();
  std::cout
      << "The projection isolates the two wins: partitioning multiplies\n"
      << "replica CPU (speedup bounded by the busiest shard's share of the\n"
      << "zipf mass), and the batching window collapses protocol rounds\n"
      << "(reads issued at one replica in the same window share a round;\n"
      << "queued same-slot writes collapse last-write-wins). Atomicity is\n"
      << "per-register and untouched — tests/sharded_linearizability_test\n"
      << "checks the same engine configuration under the checker.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
