// Experiment P2 — the fault-tolerant synchronizer's drift.
//
// The paper's Property P2 bounds pairwise view drift by 1:
// |w_sync_i[j] - w_sync_j[i]| <= 1 at all times, for every pair,
// independent of n and of delay distribution. This bench samples the drift
// across executions and reports the max (must be 1) alongside the *global*
// lag max_i,j (w_sync_w[w] - w_sync_i[j]), which P2 does not bound — showing
// the synchronizer is a pairwise, not global, guarantee.
#include "bench_common.hpp"

#include "core/twobit_process.hpp"

namespace tbr::bench {
namespace {

struct DriftSample {
  SeqNo max_pairwise = 0;
  SeqNo max_global_lag = 0;
};

DriftSample measure(std::uint32_t n, std::uint64_t seed,
                    std::unique_ptr<DelayModel> delay) {
  SimWorkloadOptions opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = seed;
  opt.ops_per_process = 12;
  opt.think_time_max = 200;
  // The observer hook below samples after every event.
  DriftSample sample;
  SimRegisterGroup::Options gopt;
  gopt.cfg = opt.cfg;
  gopt.algo = Algorithm::kTwoBit;
  gopt.seed = seed;
  gopt.delay = std::move(delay);
  SimRegisterGroup group(std::move(gopt));
  group.net().set_post_event_hook([&sample, n](SimNetwork& net) {
    SeqNo head = 0;
    for (ProcessId i = 0; i < n; ++i) {
      head = std::max(head, net.process_as<TwoBitProcess>(i).wsync(i));
    }
    for (ProcessId i = 0; i < n; ++i) {
      const auto& pi = net.process_as<TwoBitProcess>(i);
      for (ProcessId j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto& pj = net.process_as<TwoBitProcess>(j);
        sample.max_pairwise = std::max<SeqNo>(
            sample.max_pairwise, std::llabs(pi.wsync(j) - pj.wsync(i)));
        sample.max_global_lag =
            std::max(sample.max_global_lag, head - pi.wsync(j));
      }
    }
  });
  // Closed loop of writes from the writer; readers hammer reads.
  Rng rng(seed);
  for (int k = 1; k <= 30; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  return sample;
}

void run() {
  print_header("Property P2: pairwise synchronizer drift",
               "|w_sync_i[j] - w_sync_j[i]| <= 1 always; global lag unbounded");

  TextTable table({"n", "delay model", "max pairwise drift (paper: <=1)",
                   "max global lag (unbounded)"});
  for (const std::uint32_t n : {3u, 5u, 9u, 13u}) {
    struct Case {
      const char* name;
      std::unique_ptr<DelayModel> delay;
    };
    std::vector<Case> cases;
    cases.push_back({"constant", make_constant_delay(kDelta)});
    cases.push_back({"uniform(1,2000)", make_uniform_delay(1, 2000)});
    cases.push_back({"flipflop(5,3000)", make_flipflop_delay(5, 3000, n)});
    cases.push_back(
        {"straggler(x40)", make_straggler_delay(n - 1, 40 * kDelta, kDelta)});
    for (auto& c : cases) {
      const auto sample = measure(n, 17, std::move(c.delay));
      table.add_row({std::to_string(n), c.name,
                     std::to_string(sample.max_pairwise),
                     std::to_string(sample.max_global_lag)});
    }
  }
  std::cout << table.render() << "\n";
  std::cout
      << "pairwise drift saturates at exactly 1 under every adversarial\n"
      << "delay model (the alternating-bit discipline), while a straggler's\n"
      << "global lag grows with the write rate — Rule R2's catch-up traffic\n"
      << "is what eventually repays it.\n";
}

}  // namespace
}  // namespace tbr::bench

int main() {
  tbr::bench::run();
  return 0;
}
