// Sensor telemetry fan-out: the read-dominated scenario the paper's
// conclusion motivates ("read-dominated applications ... where communication
// cost is the critical parameter").
//
// A sensor node (writer) publishes readings; 8 dashboard nodes poll at a
// much higher rate over a jittery simulated network. The example contrasts
// the two-bit algorithm against unbounded ABD on the same workload: nearly
// identical latency, but the two-bit register moves a fraction of the
// control bytes.
//
//   build/examples/sensor_telemetry
#include <iostream>

#include "workload/sim_workload.hpp"

int main() {
  using namespace tbr;

  std::cout << "sensor (1 writer) + 8 dashboards, 25 samples + ~200 polls\n\n";

  for (const auto algo : {Algorithm::kTwoBit, Algorithm::kAbdUnbounded}) {
    SimWorkloadOptions opt;
    opt.cfg.n = 9;
    opt.cfg.t = 4;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = algo;
    opt.seed = 2024;
    opt.ops_per_process = 25;
    opt.think_time_max = 2000;
    opt.delay_factory = [](const GroupConfig&) {
      return make_uniform_delay(200, 1000);  // jittery WAN-ish link
    };

    const auto result = run_sim_workload(opt);
    const auto check = result.check_atomicity(opt.cfg.initial);

    std::cout << "== " << algorithm_name(algo) << " ==\n";
    std::cout << "  polls completed : " << result.read_latency.count() << "\n";
    std::cout << "  samples written : " << result.write_latency.count()
              << "\n";
    std::cout << "  read latency    : " << result.read_latency.summary(1000.0)
              << " (min/p50/p99/max, x1000 ticks)\n";
    std::cout << "  frames sent     : " << result.stats.total_sent() << "\n";
    std::cout << "  control traffic : "
              << result.stats.total_control_bits() / 8 << " bytes\n";
    std::cout << "  data traffic    : " << result.stats.total_data_bits() / 8
              << " bytes\n";
    std::cout << "  atomicity       : " << (check.ok ? "OK" : check.error)
              << "\n\n";
  }

  std::cout << "same workload, same latency class - but compare the control\n"
            << "traffic: every two-bit frame spends 2 bits on coordination,\n"
            << "while ABD ships sequence numbers and request tags.\n";
  return 0;
}
