// Quickstart: an atomic single-writer multi-reader register over a simulated
// 5-process crash-prone network, in ~30 lines of user code.
//
//   build/examples/quickstart
#include <iostream>

#include "workload/sim_register_group.hpp"

int main() {
  using namespace tbr;

  // A group of n = 5 processes tolerating t = 2 crashes (the ABD bound
  // t < n/2). Process 0 is the writer; everyone can read.
  SimRegisterGroup::Options options;
  options.cfg.n = 5;
  options.cfg.t = 2;
  options.cfg.writer = 0;
  options.cfg.initial = Value::from_string("initial");
  options.algo = Algorithm::kTwoBit;  // the paper's algorithm
  SimRegisterGroup reg(std::move(options));

  // Write, then read from another process — via the unified client API:
  // every operation returns an OpResult carrying a Status (no exceptions).
  RegisterClient& client = reg.client();
  client.write_sync(Value::from_string("hello, registers"));
  OpResult out = client.read_sync(/*reader=*/3);
  std::cout << "process 3 read: \"" << out.value.to_string() << "\" (value #"
            << out.version << ", " << out.latency << " ticks)\n";

  // Crash a minority; the register keeps working.
  reg.crash(4);
  reg.crash(2);
  client.write_sync(Value::from_string("still here after 2 crashes"));
  out = client.read_sync(1);
  std::cout << "process 1 read: \"" << out.value.to_string() << "\"\n";

  // Reading at a crashed process is an outcome, not a crash of YOUR code.
  const OpResult dead = client.read_sync(4);
  std::cout << "reading at crashed p4: " << dead.status.message() << "\n";

  // Every message the protocol sent carried exactly 2 control bits.
  std::cout << "messages sent: " << reg.net().stats().total_sent()
            << ", max control bits per message: "
            << reg.net().stats().max_control_bits_per_msg() << "\n";
  return 0;
}
