// Quickstart: an atomic single-writer multi-reader register over a simulated
// 5-process crash-prone network, in ~30 lines of user code.
//
//   build/examples/quickstart
#include <iostream>

#include "workload/sim_register_group.hpp"

int main() {
  using namespace tbr;

  // A group of n = 5 processes tolerating t = 2 crashes (the ABD bound
  // t < n/2). Process 0 is the writer; everyone can read.
  SimRegisterGroup::Options options;
  options.cfg.n = 5;
  options.cfg.t = 2;
  options.cfg.writer = 0;
  options.cfg.initial = Value::from_string("initial");
  options.algo = Algorithm::kTwoBit;  // the paper's algorithm
  SimRegisterGroup reg(std::move(options));

  // Write, then read from another process.
  reg.write(Value::from_string("hello, registers"));
  auto out = reg.read(/*reader=*/3);
  std::cout << "process 3 read: \"" << out.value.to_string() << "\" (value #"
            << out.index << ", " << out.latency << " ticks)\n";

  // Crash a minority; the register keeps working.
  reg.crash(4);
  reg.crash(2);
  reg.write(Value::from_string("still here after 2 crashes"));
  out = reg.read(1);
  std::cout << "process 1 read: \"" << out.value.to_string() << "\"\n";

  // Every message the protocol sent carried exactly 2 control bits.
  std::cout << "messages sent: " << reg.net().stats().total_sent()
            << ", max control bits per message: "
            << reg.net().stats().max_control_bits_per_msg() << "\n";
  return 0;
}
