// Wire anatomy: what actually travels between processes.
//
// Prints the exact bytes of each two-bit frame type next to the ABD-family
// equivalents, then traces the first milliseconds of a write dissemination
// so the alternating-bit ping-pong (WRITE1/WRITE0 parity flips, Property P2)
// is visible frame by frame.
//
//   build/examples/wire_anatomy
#include <iomanip>
#include <iostream>

#include "abd/phased_codec.hpp"
#include "core/twobit_codec.hpp"
#include "core/twobit_process.hpp"
#include "workload/sim_register_group.hpp"

namespace {

std::string hex(const std::string& bytes, std::size_t max = 24) {
  std::ostringstream os;
  for (std::size_t i = 0; i < bytes.size() && i < max; ++i) {
    os << std::hex << std::setw(2) << std::setfill('0')
       << (static_cast<unsigned>(bytes[i]) & 0xFF) << ' ';
  }
  if (bytes.size() > max) os << "... (" << std::dec << bytes.size() << " B)";
  return os.str();
}

}  // namespace

int main() {
  using namespace tbr;

  std::cout << "== two-bit frames (the paper's four types) ==\n";
  const auto& codec = twobit_codec();
  for (std::uint8_t type = 0; type <= 3; ++type) {
    Message msg;
    msg.type = type;
    if (type <= 1) {
      msg.has_value = true;
      msg.value = Value::from_string("v");
    }
    msg.wire = codec.account(msg);
    const auto bytes = codec.encode(msg);
    std::cout << "  " << std::left << std::setw(8) << codec.type_name(type)
              << " control=" << msg.wire.control_bits << " bits"
              << "  wire: " << hex(bytes) << "\n";
  }

  std::cout << "\n== same duty, ABD-family frames (n = 5) ==\n";
  const PhasedCodec abd(abd_unbounded_spec(), 5);
  const PhasedCodec bounded(abd_bounded_spec(), 5);
  Message m;
  m.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  m.aux = 65;
  m.seq = 1;
  m.has_value = true;
  m.value = Value::from_string("v");
  std::cout << "  abd-unbounded PHASE_REQ control="
            << abd.account(m).control_bits
            << " bits  wire: " << hex(abd.encode(m)) << "\n";
  std::cout << "  abd-bounded   PHASE_REQ control="
            << bounded.account(m).control_bits
            << " bits (n^5 label)  wire: " << hex(bounded.encode(m)) << "\n";

  std::cout << "\n== trace: one write disseminating through n = 3 ==\n";
  SimRegisterGroup::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = make_constant_delay(10);
  SimRegisterGroup group(std::move(opt));

  group.client().write_sync(Value::from_int64(100));  // value #1 -> WRITE1 everywhere
  group.settle();
  group.client().write_sync(Value::from_int64(200));  // value #2 -> WRITE0 (parity flip)
  group.settle();

  const auto& stats = group.net().stats();
  std::cout << "  WRITE1 frames: "
            << stats.sent_of_type(
                   static_cast<std::uint8_t>(TwoBitType::kWrite1))
            << " (value #1: each ordered pair exchanged it once)\n";
  std::cout << "  WRITE0 frames: "
            << stats.sent_of_type(
                   static_cast<std::uint8_t>(TwoBitType::kWrite0))
            << " (value #2: parity alternates per the ping-pong)\n";
  for (ProcessId i = 0; i < 3; ++i) {
    const auto& p = group.net().process_as<TwoBitProcess>(i);
    std::cout << "  p" << i << " history:";
    for (const auto& v : p.history()) std::cout << ' ' << v.debug_string();
    std::cout << "   w_sync:";
    for (ProcessId j = 0; j < 3; ++j) std::cout << ' ' << p.wsync(j);
    std::cout << "\n";
  }
  std::cout << "\nidentical histories, synchronized views, and not one\n"
            << "sequence number ever left a process.\n";
  return 0;
}
