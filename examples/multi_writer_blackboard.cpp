// Multi-writer blackboard (extension demo): several operator nodes post
// status lines to one shared atomic register; everyone converges on the
// newest post despite concurrent writers and a crash.
//
// Contrast with the other examples: the paper's two-bit register is
// single-writer by design, so this one runs on the MWMR ABD extension
// (src/mwmr) — see bench_mwmr for what the extra generality costs.
//
//   build/examples/multi_writer_blackboard
#include <iostream>

#include "mwmr/mwmr_checker.hpp"
#include "mwmr/mwmr_process.hpp"
#include "sim/sim_network.hpp"

int main() {
  using namespace tbr;

  GroupConfig cfg;
  cfg.n = 5;
  cfg.t = 2;
  cfg.writer = 0;  // unused by MWMR
  cfg.initial = Value::from_string("(blank board)");

  std::vector<std::unique_ptr<ProcessBase>> procs;
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    procs.push_back(make_mwmr_process(cfg, pid));
  }
  SimNetwork::Options opt;
  opt.delay = make_uniform_delay(200, 1200);
  opt.seed = 7;
  SimNetwork net(std::move(procs), std::move(opt));

  HistoryLog log;
  auto post = [&](ProcessId pid, const std::string& text, Tick at) {
    net.schedule_at(at, [&net, &log, pid, text] {
      const auto id =
          log.begin_write_unindexed(pid, net.now(), Value::from_string(text));
      net.process_as<MwmrProcess>(pid).start_write(
          net.context(pid), Value::from_string(text),
          [&net, &log, id, pid, text](SeqNo ts) {
            log.end_write_indexed(id, net.now(), ts);
            std::cout << "p" << pid << " posted \"" << text << "\" (ts "
                      << ts_seq(ts) << "." << ts_writer(ts) << ")\n";
          });
    });
  };

  // Three operators post concurrently; two of the posts race.
  post(1, "deploy started", 0);
  post(2, "alarms green", 100);     // races with p1's post
  post(3, "deploy finished", 5000);
  net.crash_at(4, 2500);            // a bystander dies; nobody cares

  (void)net.run();

  // Everyone reads the board; all must agree on the same final post.
  for (ProcessId pid = 0; pid < 4; ++pid) {
    const auto id = log.begin_read(pid, net.now());
    net.process_as<MwmrProcess>(pid).start_read(
        net.context(pid), [&net, &log, id, pid](const Value& v, SeqNo ts) {
          log.end_read(id, net.now(), v, ts);
          std::cout << "p" << pid << " sees: \"" << v.to_string() << "\" (ts "
                    << ts_seq(ts) << "." << ts_writer(ts) << ")\n";
        });
    (void)net.run();
  }

  const auto verdict = MwmrChecker::check(log.ops(), cfg.initial);
  std::cout << "atomicity: " << (verdict.ok ? "OK" : verdict.error) << "\n";
  return verdict.ok ? 0 : 1;
}
