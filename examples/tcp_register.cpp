// The two-bit register over real TCP sockets.
//
// Five processes in this OS process, fully meshed over loopback TCP, each
// with its own poll(2) event loop — the actual two-bit wire format in
// length-prefixed frames on actual sockets. Client calls are futures.
//
//   build/examples/tcp_register
#include <iostream>

#include "transport/socket_network.hpp"

int main() {
  using namespace tbr;

  SocketNetwork::Options options;
  options.cfg.n = 5;
  options.cfg.t = 2;
  options.cfg.writer = 0;
  options.cfg.initial = Value::from_string("initial");
  options.algo = Algorithm::kTwoBit;
  SocketNetwork net(std::move(options));
  net.start();

  // A write and reads from every replica, over the wire.
  const Tick write_ns = net.write(Value::from_string("over TCP")).get();
  std::cout << "write completed in " << write_ns / 1000 << " us\n";
  for (ProcessId pid = 1; pid < 5; ++pid) {
    const auto out = net.read(pid).get();
    std::cout << "p" << pid << " read \"" << out.value.to_string()
              << "\" in " << out.latency / 1000 << " us\n";
  }

  // Crash a minority mid-flight; the group keeps serving.
  net.crash(4);
  net.write(Value::from_string("two crashes later")).get();
  net.crash(3);
  std::cout << "after crashes, p1 reads \""
            << net.read(1).get().value.to_string() << "\"\n";

  const auto stats = net.stats_snapshot();
  std::cout << "frames sent: " << stats.total_sent()
            << ", max control bits per frame: "
            << stats.max_control_bits_per_msg()
            << "\n(2 bits of protocol control per frame, on a real "
               "transport)\n";
  net.stop();
  return 0;
}
