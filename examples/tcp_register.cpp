// The two-bit register over real TCP sockets.
//
// Five processes in this OS process, fully meshed over loopback TCP, each
// with its own poll(2) event loop — the actual two-bit wire format in
// length-prefixed frames on actual sockets. Client calls go through the
// same unified RegisterClient as every other runtime: pooled tickets,
// uniform Status outcomes, no promises.
//
//   build/examples/tcp_register
#include <iostream>

#include "transport/socket_network.hpp"

int main() {
  using namespace tbr;

  SocketNetwork::Options options;
  options.cfg.n = 5;
  options.cfg.t = 2;
  options.cfg.writer = 0;
  options.cfg.initial = Value::from_string("initial");
  options.algo = Algorithm::kTwoBit;
  SocketNetwork net(std::move(options));
  net.start();

  // A write and reads from every replica, over the wire.
  RegisterClient& client = net.client();
  const OpResult write = client.write_sync(Value::from_string("over TCP"));
  std::cout << "write completed in " << write.latency / 1000 << " us\n";
  for (ProcessId pid = 1; pid < 5; ++pid) {
    const OpResult out = client.read_sync(pid);
    std::cout << "p" << pid << " read \"" << out.value.to_string()
              << "\" in " << out.latency / 1000 << " us\n";
  }

  // Crash a minority mid-flight; the group keeps serving.
  net.crash(4);
  client.write_sync(Value::from_string("two crashes later"));
  net.crash(3);
  std::cout << "after crashes, p1 reads \""
            << client.read_sync(1).value.to_string() << "\"\n";

  // An op against a crashed replica is an outcome, not an exception.
  const OpResult dead = client.read_sync(4);
  std::cout << "reading at crashed p4: " << dead.status.message() << "\n";

  const auto stats = net.stats_snapshot();
  std::cout << "frames sent: " << stats.total_sent()
            << ", max control bits per frame: "
            << stats.max_control_bits_per_msg()
            << "\n(2 bits of protocol control per frame, on a real "
               "transport)\n";
  net.stop();
  return 0;
}
