// A sharded, replicated key-value store built from two-bit registers.
//
// What "adopting the paper" looks like two layers up: keys hash onto
// register slots inside independent SHARDS — each shard a full n-node
// crash-prone network of its own, with its own worker thread and batching
// window. Single-writer becomes a placement policy twice over: a key's
// shard owns its traffic, and inside the shard its slot is writable at one
// replica. Every protocol frame under every key still carries exactly
// 2 control bits.
//
//   build/examples/kv_shard_store
#include <algorithm>
#include <iostream>
#include <vector>

#include "kvstore/sharded_store.hpp"

int main() {
  using namespace tbr;

  ShardedKvStore::Options options;
  options.shards = 4;           // independent register groups
  options.n = 3;                // replicas per shard
  options.t = 1;                // tolerated crashes per shard (t < n/2)
  options.slots_per_shard = 8;  // register instances per shard
  options.initial = Value::from_string("<unset>");
  ShardedKvStore store(std::move(options));

  // A little user database. Each put is an atomic register write executed
  // at the key's home replica inside its shard.
  store.client().put_sync("user:1/name", Value::from_string("ada"));
  store.client().put_sync("user:1/role", Value::from_string("engineer"));
  store.client().put_sync("user:2/name", Value::from_string("grace"));
  store.client().put_sync("user:1/role", Value::from_string("admiral"));  // overwrite

  std::cout << "-- placement (key -> shard/slot/home) --\n";
  for (const char* key : {"user:1/name", "user:1/role", "user:2/name"}) {
    const auto at = store.router().place(key);
    std::cout << key << " -> shard " << at.shard << ", slot " << at.slot
              << " @ replica p" << at.home << "\n";
  }

  std::cout << "\n-- reads (any replica; reads are quorum ops) --\n";
  std::cout << "user:1/name: " << store.client().get_sync("user:1/name").value.to_string()
            << "\n";
  const auto role = store.client().get_sync("user:1/role");
  std::cout << "user:1/role: " << role.value.to_string() << " (version "
            << role.version << ")\n";
  std::cout << "user:3/name: " << store.client().get_sync("user:3/name").value.to_string()
            << " (never written)\n";

  // The batching window, via the unified client API: pooled ops issued
  // together land in one window per shard; reads issued at the same
  // replica share a protocol round and queued same-slot writes collapse
  // last-write-wins. Each submission returns a Ticket; wait() returns a
  // uniform OpResult with a Status — no futures, no exceptions, no
  // per-op promise allocation.
  std::cout << "\n-- a burst of pipelined traffic (tickets) --\n";
  KvClient& client = store.client();
  std::vector<Ticket> put_tickets;
  std::vector<Ticket> get_tickets;
  for (int k = 0; k < 3; ++k) {
    put_tickets.push_back(client.put(
        "user:1/role", Value::from_string("rank-" + std::to_string(k))));
  }
  for (int k = 0; k < 8; ++k) get_tickets.push_back(client.get("user:2/name"));
  for (const Ticket& t : put_tickets) {
    const OpResult done = client.wait(t);
    std::cout << "put user:1/role -> version " << done.version
              << (done.absorbed ? " (absorbed: a newer queued value won)"
                                : " (reached the register)")
              << "\n";
  }
  std::size_t got = 0;
  for (const Ticket& t : get_tickets) {
    got += client.wait(t).value.to_string() == "grace" ? 1 : 0;
  }
  std::cout << got << "/8 pipelined reads of user:2/name returned 'grace'\n";
  std::cout << "user:1/role now: "
            << store.client().get_sync("user:1/role").value.to_string() << "\n";

  // Crash a replica in one shard: that shard's keys homed there lose
  // their writer (SWMR placement is explicit about what fails); every key
  // stays readable, and the other three shards never notice.
  const auto at = store.router().place("user:1/role");
  store.crash(at.shard, at.home);
  store.drain();
  std::cout << "\n-- after crashing shard " << at.shard << "'s replica p"
            << at.home << " --\n";
  std::cout << "user:1/role readable: "
            << client.get_sync("user:1/role").value.to_string() << "\n";
  const OpResult refused =
      client.put_sync("user:1/role", Value::from_string("captain"));
  if (refused.status.ok()) {
    std::cout << "put user:1/role accepted (home replica alive)\n";
  } else {
    std::cout << "put refused: " << refused.status.message() << "\n";
  }

  const auto batch = store.batch_stats();
  std::uint64_t max_ctrl_bits = 0;
  for (std::uint32_t s = 0; s < store.shard_count(); ++s) {
    max_ctrl_bits = std::max(
        max_ctrl_bits, store.shard_report(s).net.max_control_bits_per_msg());
  }
  std::cout << "\nbatching: " << batch.client_ops << " client ops in "
            << batch.batches << " node-batches; " << batch.coalesced_reads
            << " reads rode an existing round, " << batch.absorbed_writes
            << " writes absorbed; " << store.frames_sent()
            << " frames total\nmax control bits per protocol frame, across "
               "all shards: "
            << max_ctrl_bits
            << "\n(the paper's two-bit claim holds per register, in every "
               "shard; the slot tag\nrides as addressing bytes, like a port "
               "number)\n";
  return 0;
}
