// A sharded, replicated key-value store built from two-bit registers.
//
// What "adopting the paper" looks like one layer up: keys hash onto
// register slots, each slot is an independent SWMR atomic register
// (single-writer becomes a shard-placement policy: slot s is writable at
// node s mod n), and all slots multiplex over one 5-node crash-prone
// network. Every protocol frame under every key still carries exactly
// 2 control bits.
//
//   build/examples/kv_shard_store
#include <iostream>

#include "kvstore/kv_store.hpp"

int main() {
  using namespace tbr;

  KvStore::Options options;
  options.n = 5;       // replica nodes
  options.t = 2;       // tolerated crashes (t < n/2)
  options.slots = 16;  // register instances backing the keyspace
  options.initial = Value::from_string("<unset>");
  KvStore store(std::move(options));

  // A little user database. Each put is an atomic register write executed
  // at the key's home node.
  store.put("user:1/name", Value::from_string("ada"));
  store.put("user:1/role", Value::from_string("engineer"));
  store.put("user:2/name", Value::from_string("grace"));
  store.put("user:1/role", Value::from_string("admiral"));  // overwrite

  std::cout << "-- placement --\n";
  for (const char* key : {"user:1/name", "user:1/role", "user:2/name"}) {
    std::cout << key << " -> slot " << store.slot_of(key) << " @ node "
              << store.home_node(key) << "\n";
  }

  std::cout << "\n-- reads from different replicas --\n";
  std::cout << "user:1/name  @p1: "
            << store.get("user:1/name", 1).value.to_string() << "\n";
  const auto role = store.get("user:1/role", 3);
  std::cout << "user:1/role  @p3: " << role.value.to_string() << " (version "
            << role.version << ")\n";
  std::cout << "user:3/name  @p2: "
            << store.get("user:3/name", 2).value.to_string()
            << " (never written)\n";

  // Crash a minority: every key stays readable (reads are quorum
  // operations); only keys *homed* at the corpse lose their writer — the
  // SWMR placement is explicit about what fails.
  store.crash(4);
  std::cout << "\n-- after crashing node 4 --\n";
  std::cout << "user:1/role  @p0: "
            << store.get("user:1/role", 0).value.to_string() << "\n";
  try {
    store.put("user:9/name", Value::from_string("x"));  // may be homed at 4
    std::cout << "user:9/name accepted (home node alive)\n";
  } catch (const std::runtime_error& e) {
    std::cout << "put refused: " << e.what() << "\n";
  }

  store.settle();
  const auto& stats = store.net().stats();
  std::cout << "\nframes sent: " << stats.total_sent()
            << ", max control bits per protocol frame: "
            << stats.max_control_bits_per_msg()
            << "\n(the slot tag rides as addressing bytes, like a port "
               "number — the paper's\nclaim is per register, and it holds "
               "for every one of the 16 registers here)\n";
  return 0;
}
