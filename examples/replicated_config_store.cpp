// Replicated configuration store on the real-thread runtime.
//
// One operator node (the writer) pushes configuration revisions; worker
// nodes poll their local register replica concurrently. Mid-run we crash a
// minority of nodes and show that (a) every surviving worker keeps reading,
// and (b) reads never go backwards (atomicity: no new/old inversion), which
// is verified with the linearizability checker at the end.
//
//   build/examples/replicated_config_store
#include <atomic>
#include <iostream>
#include <thread>

#include "checker/swmr_checker.hpp"
#include "runtime/thread_network.hpp"

int main() {
  using namespace tbr;

  ThreadNetwork::Options options;
  options.cfg.n = 5;
  options.cfg.t = 2;
  options.cfg.writer = 0;
  options.cfg.initial = Value::from_string("rev-0");
  options.algo = Algorithm::kTwoBit;
  options.max_delay_us = 300;  // jittery network: deliveries reorder
  ThreadNetwork net(options);
  net.start();

  HistoryLog history;
  std::atomic<bool> done{false};

  // The operator: pushes 20 config revisions.
  std::jthread operator_thread([&] {
    for (int rev = 1; rev <= 20; ++rev) {
      const std::string config = "rev-" + std::to_string(rev);
      const auto id = history.begin_write(0, net.now(), rev,
                                          Value::from_string(config));
      net.client().write_sync(Value::from_string(config));
      history.end_write(id, net.now());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true);
  });

  // Workers 1-3 poll concurrently. Worker 4 will be crashed.
  std::vector<std::jthread> workers;
  std::vector<std::atomic<int>> reads_seen(5);
  for (ProcessId pid = 1; pid <= 3; ++pid) {
    workers.emplace_back([&, pid] {
      SeqNo last_seen = 0;
      while (!done.load()) {
        const auto id = history.begin_read(pid, net.now());
        const OpResult out = net.client().read_sync(pid);
        if (!out.status.ok()) break;
        history.end_read(id, net.now(), out.value, out.version);
        if (out.version < last_seen) {
          std::cerr << "BUG: worker " << pid << " saw config go backwards!\n";
        }
        last_seen = out.version;
        reads_seen[pid].fetch_add(1);
      }
    });
  }

  // Chaos: crash node 4 early, then a reading worker would too be fair game
  // (we keep 1-3 alive so the demo output is stable).
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  net.crash(4);
  std::cout << "crashed node 4 mid-run; t=2 budget allows one more...\n";

  operator_thread.join();
  workers.clear();

  for (ProcessId pid = 1; pid <= 3; ++pid) {
    const OpResult out = net.client().read_sync(pid);
    std::cout << "worker " << pid << " final config: " << out.value.to_string()
              << " (" << reads_seen[pid].load() << " polls)\n";
  }

  const auto verdict =
      SwmrChecker::check(history.ops(), Value::from_string("rev-0"));
  std::cout << "atomicity check over " << history.size()
            << " recorded operations: " << (verdict.ok ? "OK" : verdict.error)
            << "\n";
  const auto stats = net.stats_snapshot();
  std::cout << "total frames: " << stats.total_sent()
            << ", max control bits/frame: "
            << stats.max_control_bits_per_msg() << "\n";
  net.stop();
  return verdict.ok ? 0 : 1;
}
