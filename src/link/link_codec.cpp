#include "link/link_codec.hpp"

#include "common/contracts.hpp"

namespace tbr {

void LinkCodec::encode_into(const Message& msg, std::string& out) const {
  TBR_ENSURE(msg.type <= 1, "link codec has exactly two types");
  TBR_ENSURE(msg.seq >= 0, "link sequence numbers are non-negative");
  out.clear();
  out.push_back(static_cast<char>(msg.type));  // 1 meaningful bit
  wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
  if (msg.type == static_cast<std::uint8_t>(LinkType::kData)) {
    TBR_ENSURE(msg.has_value, "DATA frames carry a payload");
    wire::put_u32(out, static_cast<std::uint32_t>(msg.value.size()));
    out.append(msg.value.bytes());
  } else {
    TBR_ENSURE(!msg.has_value, "ACK frames carry no payload");
  }
}

void LinkCodec::decode_into(std::string_view bytes, Message& msg) const {
  wire::reset_for_decode(msg);
  std::size_t pos = 0;
  msg.type = wire::get_u8(bytes, pos);
  TBR_ENSURE(msg.type <= 1, "bad link frame type");
  msg.seq = static_cast<SeqNo>(wire::get_u64(bytes, pos));
  if (msg.type == static_cast<std::uint8_t>(LinkType::kData)) {
    const auto len = wire::get_u32(bytes, pos);
    wire::get_blob_into(bytes, pos, len, msg.value.mutable_bytes());
    msg.has_value = true;
  }
  TBR_ENSURE(pos == bytes.size(), "trailing bytes in link frame");
  msg.wire = account(msg);
}

WireAccounting LinkCodec::account(const Message& msg) const {
  WireAccounting wire;
  // Transport header: type bit + 64-bit sequence/ack number. The payload
  // (an encoded register-protocol frame, with its own control bits inside)
  // is counted as link data; the ReliableLinkProcess tracks the payload's
  // inner control bits separately so benches can report both layers.
  wire.control_bits = kHeaderControlBits;
  wire.data_bits = msg.has_value ? 32 + msg.value.size_bits() : 0;
  return wire;
}

std::string LinkCodec::type_name(std::uint8_t type) const {
  switch (static_cast<LinkType>(type)) {
    case LinkType::kData:
      return "LINK_DATA";
    case LinkType::kAck:
      return "LINK_ACK";
  }
  return "UNKNOWN(" + std::to_string(type) + ")";
}

const LinkCodec& link_codec() {
  static const LinkCodec codec;
  return codec;
}

}  // namespace tbr
