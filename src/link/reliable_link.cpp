#include "link/reliable_link.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace tbr {

// The inner register process talks to the network through this shim: its
// sends become link payloads; everything else passes through.
class ReliableLinkProcess::InnerContext final : public NetworkContext {
 public:
  explicit InnerContext(ReliableLinkProcess& link) : link_(link) {}

  void send(ProcessId to, const Message& msg) override {
    link_.link_send(to, msg);
  }
  ProcessId self() const override { return link_.self_; }
  std::uint32_t process_count() const override { return link_.cfg_.n; }
  Tick now() const override {
    TBR_ENSURE(link_.net_ != nullptr, "inner context used before start");
    return link_.net_->now();
  }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(link_.net_ != nullptr, "inner context used before start");
    link_.net_->schedule(delay, std::move(fn));
  }

 private:
  ReliableLinkProcess& link_;
};

ReliableLinkProcess::ReliableLinkProcess(
    GroupConfig cfg, ProcessId self,
    std::unique_ptr<RegisterProcessBase> inner, LinkOptions options)
    : RegisterProcessBase(cfg, self),
      opts_(options),
      inner_(std::move(inner)),
      inner_ctx_(std::make_unique<InnerContext>(*this)),
      peers_(cfg.n) {
  TBR_ENSURE(inner_ != nullptr, "link needs an inner register process");
  TBR_ENSURE(inner_->self_id() == self && inner_->config().n == cfg.n,
             "inner process must be configured for the same (cfg, self)");
  TBR_ENSURE(opts_.retransmit_timeout > 0, "timeout must be positive");
  TBR_ENSURE(opts_.window >= 1, "window must be at least 1");
}

ReliableLinkProcess::~ReliableLinkProcess() = default;

void ReliableLinkProcess::on_start(NetworkContext& net) {
  net_ = &net;
  inner_->on_start(*inner_ctx_);
}

void ReliableLinkProcess::start_write(NetworkContext& net, Value v,
                                      WriteDone done) {
  net_ = &net;
  inner_->start_write(*inner_ctx_, std::move(v), std::move(done));
}

void ReliableLinkProcess::start_read(NetworkContext& net, ReadDone done) {
  net_ = &net;
  inner_->start_read(*inner_ctx_, std::move(done));
}

void ReliableLinkProcess::on_crash() {
  crashed_ = true;
  inner_->on_crash();
}

void ReliableLinkProcess::on_message(NetworkContext& net, ProcessId from,
                                     const Message& msg) {
  net_ = &net;
  TBR_ENSURE(from < peers_.size() && from != self_, "bad link sender");
  switch (static_cast<LinkType>(msg.type)) {
    case LinkType::kData:
      TBR_ENSURE(msg.has_value, "DATA without payload");
      on_data(net, from, msg.seq, msg.value.bytes());
      break;
    case LinkType::kAck:
      on_ack(net, from, msg.seq);
      break;
  }
}

// ---- sender half -------------------------------------------------------------

void ReliableLinkProcess::link_send(ProcessId to, const Message& inner_msg) {
  TBR_ENSURE(net_ != nullptr, "send before start");
  PeerState& peer = peers_[to];
  if (peer.dead) return;  // membership decision already taken (max_retries)
  // First-transmission accounting of what the register protocol itself
  // pays, regardless of how often the link retransmits the bytes.
  stats_.inner_control_bits += inner_msg.wire.control_bits;
  peer.outq.push_back(inner_->codec().encode(inner_msg));
  transmit_window(*net_, to, /*retransmit=*/false);
  arm_timer(*net_);
}

void ReliableLinkProcess::transmit_window(NetworkContext& net, ProcessId to,
                                          bool retransmit) {
  PeerState& peer = peers_[to];
  if (retransmit) {
    // Go-Back-N: resend everything transmitted but unacked.
    for (std::size_t k = 0; k < peer.transmitted; ++k) {
      send_data_frame(net, to, peer.send_base + static_cast<SeqNo>(k),
                      peer.outq[k]);
      ++stats_.retransmit_frames;
    }
    return;
  }
  // Transmit any queued frames that now fit the window.
  while (peer.transmitted < peer.outq.size() &&
         peer.transmitted < opts_.window) {
    send_data_frame(net, to, peer.send_base + static_cast<SeqNo>(peer.transmitted),
                    peer.outq[peer.transmitted]);
    ++peer.transmitted;
    ++stats_.data_frames_sent;
    peer.last_progress = net.now();
  }
}

void ReliableLinkProcess::send_data_frame(NetworkContext& net, ProcessId to,
                                          SeqNo seq,
                                          const std::string& payload) {
  Message frame;
  frame.type = static_cast<std::uint8_t>(LinkType::kData);
  frame.seq = seq;
  frame.value = Value::from_bytes(payload);
  frame.has_value = true;
  frame.wire = link_codec().account(frame);
  stats_.header_control_bits += LinkCodec::kHeaderControlBits;
  net.send(to, frame);
}

void ReliableLinkProcess::send_ack(NetworkContext& net, ProcessId to,
                                   SeqNo cumulative) {
  // Cumulative ACK of everything below recv_next. Nothing received yet
  // (cumulative == -1) needs no frame: the sender's timer covers it.
  if (cumulative < 0) return;
  Message frame;
  frame.type = static_cast<std::uint8_t>(LinkType::kAck);
  frame.seq = cumulative;
  frame.wire = link_codec().account(frame);
  ++stats_.ack_frames_sent;
  stats_.header_control_bits += LinkCodec::kHeaderControlBits;
  net.send(to, frame);
}

void ReliableLinkProcess::on_ack(NetworkContext& net, ProcessId from,
                                 SeqNo cumulative) {
  PeerState& peer = peers_[from];
  if (peer.dead || cumulative < peer.send_base) return;  // stale ACK
  const auto acked =
      static_cast<std::size_t>(cumulative - peer.send_base) + 1;
  TBR_ENSURE(acked <= peer.transmitted,
             "peer acknowledged frames we never transmitted");
  peer.outq.erase(peer.outq.begin(),
                  peer.outq.begin() + static_cast<std::ptrdiff_t>(acked));
  peer.send_base = cumulative + 1;
  peer.transmitted -= acked;
  peer.retries = 0;  // progress: reset the give-up counter
  peer.last_progress = net.now();
  transmit_window(net, from, /*retransmit=*/false);
  if (peer_has_inflight(peer)) arm_timer(net);
}

// ---- receiver half -----------------------------------------------------------

void ReliableLinkProcess::on_data(NetworkContext& net, ProcessId from,
                                  SeqNo seq, const std::string& payload) {
  PeerState& peer = peers_[from];
  if (seq < peer.recv_next) {
    // Duplicate (retransmission raced our ACK, or our ACK was lost):
    // re-ACK so the sender can advance, deliver nothing.
    ++stats_.duplicates_received;
    send_ack(net, from, peer.recv_next - 1);
    return;
  }
  if (seq > peer.recv_next) {
    // The underlying channel is not FIFO: park until the gap fills. Keyed
    // insertion also deduplicates retransmitted out-of-order frames.
    if (peer.ooo.emplace(seq, payload).second) ++stats_.ooo_buffered;
    send_ack(net, from, peer.recv_next - 1);
    return;
  }
  // In-order: deliver, then drain any parked successors.
  std::string current = payload;
  for (;;) {
    ++peer.recv_next;
    ++stats_.payloads_delivered;
    const Message inner_msg = inner_->codec().decode(current);
    if (!crashed_) inner_->on_message(*inner_ctx_, from, inner_msg);
    const auto it = peer.ooo.find(peer.recv_next);
    if (it == peer.ooo.end()) break;
    current = std::move(it->second);
    peer.ooo.erase(it);
  }
  send_ack(net, from, peer.recv_next - 1);
}

// ---- retransmission timer ------------------------------------------------------

bool ReliableLinkProcess::peer_has_inflight(const PeerState& peer) const {
  return !peer.dead && peer.transmitted > 0;
}

void ReliableLinkProcess::arm_timer(NetworkContext& net) {
  if (timer_armed_ || crashed_) return;
  bool any = false;
  for (const PeerState& peer : peers_) {
    if (peer_has_inflight(peer)) {
      any = true;
      break;
    }
  }
  if (!any) return;
  timer_armed_ = true;
  net.schedule(opts_.retransmit_timeout, [this] { on_timer(); });
}

void ReliableLinkProcess::on_timer() {
  timer_armed_ = false;
  if (crashed_) return;
  TBR_ENSURE(net_ != nullptr, "timer before start");
  for (ProcessId to = 0; to < peers_.size(); ++to) {
    PeerState& peer = peers_[to];
    if (!peer_has_inflight(peer)) continue;
    if (net_->now() - peer.last_progress < opts_.retransmit_timeout) {
      continue;  // acks are still flowing; no need to go back
    }
    ++peer.retries;
    if (opts_.max_retries != 0 && peer.retries > opts_.max_retries) {
      // Give up on this peer (deployment-level membership decision; see
      // LinkOptions::max_retries). Its stream is purged; quorum liveness
      // never needed it if it truly crashed.
      peer.dead = true;
      peer.outq.clear();
      peer.transmitted = 0;
      ++stats_.peers_declared_dead;
      continue;
    }
    transmit_window(*net_, to, /*retransmit=*/true);
  }
  arm_timer(*net_);
}

// ---- accounting ---------------------------------------------------------------

std::uint64_t ReliableLinkProcess::local_memory_bytes() const {
  std::uint64_t bytes = inner_->local_memory_bytes();
  for (const PeerState& peer : peers_) {
    bytes += sizeof(PeerState);
    for (const std::string& frame : peer.outq) bytes += frame.size();
    for (const auto& [seq, frame] : peer.ooo) {
      bytes += sizeof(seq) + frame.size();
    }
  }
  return bytes;
}

std::size_t ReliableLinkProcess::queued_to(ProcessId peer) const {
  TBR_ENSURE(peer < peers_.size(), "peer out of range");
  return peers_[peer].outq.size();
}

bool ReliableLinkProcess::peer_dead(ProcessId peer) const {
  TBR_ENSURE(peer < peers_.size(), "peer out of range");
  return peers_[peer].dead;
}

}  // namespace tbr
