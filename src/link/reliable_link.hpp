// ReliableLinkProcess: a retransmitting transport decorator.
//
// Experiment D8 (bench_model_boundary) shows what happens when the CAMP
// model's "reliable channel" assumption is violated: one lost WRITE frame
// permanently wedges that pair's alternating-bit stream. This module is the
// constructive answer — the classic alternating-bit/sliding-window
// retransmission machinery (the paper's own reference [6] lineage) layered
// *below* any register protocol, restoring the reliable-channel abstraction
// over a lossy network.
//
// Protocol: per-peer Go-Back-N with cumulative ACKs and receiver-side
// out-of-order buffering (the underlying network is not FIFO), duplicate
// suppression by sequence number, and a single per-process retransmission
// timer. Payloads are opaque encoded frames of the inner register protocol;
// the link neither inspects nor reorders committed deliveries — each peer's
// stream is delivered to the inner process exactly once, in send order.
//
// The service provided to the inner process is therefore a *reliable FIFO
// channel*, which is strictly stronger than the model's reliable non-FIFO
// channel — every CAMP execution property is preserved (FIFO executions are
// a subset of asynchronous executions).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "link/link_codec.hpp"
#include "net/register_process.hpp"

namespace tbr {

struct LinkOptions {
  /// Retransmission timer period. With the simulator's default Δ = 1000
  /// ticks, 4 Δ comfortably exceeds one round trip.
  Tick retransmit_timeout = 4000;

  /// Go-Back-N window: frames in [base, base + window) may be in flight
  /// per peer; later frames wait in a backlog.
  std::size_t window = 32;

  /// After this many consecutive timeouts with no progress, the peer is
  /// declared dead and its queues are purged (0 = never give up). The CAMP
  /// model cannot distinguish a crashed peer from a slow one, so this is a
  /// *deployment* knob — it models the group-membership decision that any
  /// real system eventually takes, and keeps simulations with crashed
  /// peers finite. Quorum-based register liveness never depends on a dead
  /// peer's stream.
  std::uint32_t max_retries = 0;
};

/// Link-layer traffic counters (per process), for the D9 bench and tests.
struct LinkStats {
  std::uint64_t data_frames_sent = 0;       ///< first transmissions
  std::uint64_t retransmit_frames = 0;      ///< timer-driven resends
  std::uint64_t ack_frames_sent = 0;
  std::uint64_t duplicates_received = 0;    ///< DATA below recv_next
  std::uint64_t ooo_buffered = 0;           ///< DATA parked above recv_next
  std::uint64_t payloads_delivered = 0;     ///< frames handed to the inner
  std::uint64_t peers_declared_dead = 0;
  /// Register-protocol control bits shipped inside payloads (first
  /// transmissions only — what the *protocol* pays).
  std::uint64_t inner_control_bits = 0;
  /// Link header bits shipped, including retransmissions and ACKs (what
  /// the *transport* pays).
  std::uint64_t header_control_bits = 0;
};

class ReliableLinkProcess final : public RegisterProcessBase {
 public:
  /// Wraps `inner`, which must be a register process for the same (cfg,
  /// self). All client operations and deliveries are forwarded; the inner
  /// process's sends travel over the retransmitting link.
  ReliableLinkProcess(GroupConfig cfg, ProcessId self,
                      std::unique_ptr<RegisterProcessBase> inner,
                      LinkOptions options = LinkOptions());
  ~ReliableLinkProcess() override;

  // ---- RegisterProcessBase -----------------------------------------------
  void on_start(NetworkContext& net) override;
  void start_write(NetworkContext& net, Value v, WriteDone done) override;
  void start_read(NetworkContext& net, ReadDone done) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;
  std::uint64_t local_memory_bytes() const override;
  const Codec& codec() const override { return link_codec(); }

  // ---- introspection -------------------------------------------------------
  RegisterProcessBase& inner() noexcept { return *inner_; }
  const RegisterProcessBase& inner() const noexcept { return *inner_; }
  const LinkStats& link_stats() const noexcept { return stats_; }
  /// Frames queued (in flight + backlog) toward `peer`.
  std::size_t queued_to(ProcessId peer) const;
  bool peer_dead(ProcessId peer) const;

 private:
  class InnerContext;

  struct PeerState {
    // Sender half. outq holds encoded payloads for seqs
    // [send_base, send_base + outq.size()); the first `transmitted`
    // entries have been sent at least once.
    SeqNo send_base = 0;
    std::deque<std::string> outq;
    std::size_t transmitted = 0;
    std::uint32_t retries = 0;
    Tick last_progress = 0;  ///< last transmit of new data or base advance
    bool dead = false;

    // Receiver half.
    SeqNo recv_next = 0;
    std::map<SeqNo, std::string> ooo;
  };

  /// Inner process handed us a frame for `to`: enqueue + transmit.
  void link_send(ProcessId to, const Message& inner_msg);
  void transmit_window(NetworkContext& net, ProcessId to, bool retransmit);
  void send_data_frame(NetworkContext& net, ProcessId to, SeqNo seq,
                       const std::string& payload);
  void send_ack(NetworkContext& net, ProcessId to, SeqNo cumulative);
  void on_data(NetworkContext& net, ProcessId from, SeqNo seq,
               const std::string& payload);
  void on_ack(NetworkContext& net, ProcessId from, SeqNo cumulative);
  void arm_timer(NetworkContext& net);
  void on_timer();
  bool peer_has_inflight(const PeerState& peer) const;

  LinkOptions opts_;
  std::unique_ptr<RegisterProcessBase> inner_;
  std::unique_ptr<InnerContext> inner_ctx_;
  std::vector<PeerState> peers_;
  LinkStats stats_;
  NetworkContext* net_ = nullptr;  // stable per runtime; stashed on entry
  bool timer_armed_ = false;
  bool crashed_ = false;
};

}  // namespace tbr
