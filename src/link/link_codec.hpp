// Wire format of the reliable-link layer (src/link).
//
// Two frame types. DATA carries a link-local sequence number and an opaque
// payload (one encoded frame of the register protocol riding on the link);
// ACK carries a cumulative acknowledgement. The link header costs
// 1 + 64 = 65 control bits per frame — *transport* control, accounted
// separately from the register protocol's control bits (which, for the
// two-bit algorithm, stay at 2 inside the payload). This is the same
// separation the paper implicitly assumes: its "reliable channel" is the
// service TCP-like machinery provides, and that machinery has its own
// header budget.
#pragma once

#include "net/codec.hpp"

namespace tbr {

/// Link-layer frame types.
enum class LinkType : std::uint8_t {
  kData = 0,  ///< seq + opaque payload (an encoded register-protocol frame)
  kAck = 1,   ///< cumulative acknowledgement (all seq <= msg.seq received)
};

/// Field mapping onto the shared Message struct:
///   type  = LinkType
///   seq   = DATA sequence number, or ACK cumulative sequence number
///   value = DATA payload bytes (absent on ACK)
class LinkCodec final : public Codec {
 public:
  void encode_into(const Message& msg, std::string& out) const override;
  void decode_into(std::string_view bytes, Message& out) const override;
  WireAccounting account(const Message& msg) const override;
  std::string type_name(std::uint8_t type) const override;

  /// 1 type bit + 64 sequence bits.
  static constexpr std::uint64_t kHeaderControlBits = 65;
};

/// Shared immutable codec instance.
const LinkCodec& link_codec();

}  // namespace tbr
