#include "common/rng.hpp"

#include <algorithm>

namespace tbr {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  TBR_ENSURE(lo <= hi, "uniform requires lo <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::chance(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform01() < p;
}

std::int64_t Rng::exponential(double mean, std::int64_t cap) {
  TBR_ENSURE(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  const double x = dist(engine_);
  const auto v = static_cast<std::int64_t>(x);
  return std::min(v, cap);
}

std::uint64_t Rng::fork_seed() {
  // splitmix-style scramble of the next engine output so child streams are
  // decorrelated from subsequent draws on this stream.
  std::uint64_t z = engine_() + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace tbr
