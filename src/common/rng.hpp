// Seeded pseudo-random source used everywhere randomness is needed.
//
// All simulation randomness flows through a single Rng owned by the
// SimNetwork, so a (topology, workload, seed) triple fully determines a run —
// the property the adversarial-schedule tests rely on.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/contracts.hpp"

namespace tbr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean, capped at `cap`.
  std::int64_t exponential(double mean, std::int64_t cap);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    TBR_ENSURE(!items.empty(), "pick from empty vector");
    const auto idx = static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(items.size()) - 1));
    return items[idx];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child seed (for per-process or per-run streams).
  std::uint64_t fork_seed();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tbr
