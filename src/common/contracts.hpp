// Lightweight executable contracts (precondition / invariant checks).
//
// Following the Core Guidelines (I.6/I.8, E.12): violations indicate a bug in
// this library or a misuse of its API, so they throw a dedicated logic-error
// type that tests can assert on. Checks are always on: the algorithms here
// are control-plane protocols, not hot inner loops, and the paper's lemmas
// double as runtime invariants we never want silently broken.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tbr {

/// Thrown when an executable contract (TBR_ENSURE / TBR_INVARIANT) fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& note) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!note.empty()) os << " — " << note;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace tbr

/// Precondition / postcondition check with an explanatory note.
#define TBR_ENSURE(cond, note)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::tbr::detail::contract_fail("contract", #cond, __FILE__, __LINE__,    \
                                   (note));                                  \
    }                                                                        \
  } while (false)

/// Algorithm invariant check (used for the paper's lemma-level invariants).
#define TBR_INVARIANT(cond, note)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::tbr::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,   \
                                   (note));                                  \
    }                                                                        \
  } while (false)
