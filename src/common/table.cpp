#include "common/table.hpp"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"

namespace tbr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TBR_ENSURE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  TBR_ENSURE(cells.size() == header_.size(),
             "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_count(std::uint64_t v) {
  // Group digits for readability: 1234567 -> "1,234,567".
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_delta_units(double deltas, int precision) {
  return format_double(deltas, precision) + " D";
}

}  // namespace tbr
