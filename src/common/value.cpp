#include "common/value.hpp"

#include <algorithm>
#include <cctype>

#include "common/contracts.hpp"

namespace tbr {

Value Value::from_bytes(std::string bytes) {
  Value v;
  v.bytes_ = std::move(bytes);
  return v;
}

Value Value::from_string(std::string_view s) {
  return from_bytes(std::string(s));
}

Value Value::from_int64(std::int64_t v) {
  std::string b(8, '\0');
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<char>((u >> (8 * i)) & 0xFF);
  }
  return from_bytes(std::move(b));
}

Value Value::filler(std::size_t size, std::uint8_t seed) {
  std::string b(size, '\0');
  std::uint8_t x = seed;
  for (auto& c : b) {
    x = static_cast<std::uint8_t>(x * 167u + 13u);
    c = static_cast<char>(x);
  }
  return from_bytes(std::move(b));
}

std::int64_t Value::to_int64() const {
  TBR_ENSURE(bytes_.size() == 8, "to_int64 requires an 8-byte payload");
  std::uint64_t u = 0;
  for (int i = 7; i >= 0; --i) {
    u = (u << 8) | static_cast<std::uint8_t>(bytes_[static_cast<std::size_t>(i)]);
  }
  return static_cast<std::int64_t>(u);
}

std::string Value::debug_string() const {
  if (bytes_.size() == 8) {
    return "int:" + std::to_string(to_int64());
  }
  const bool printable = std::all_of(bytes_.begin(), bytes_.end(), [](char c) {
    return std::isprint(static_cast<unsigned char>(c)) != 0;
  });
  if (printable && bytes_.size() <= 32) {
    return "str:" + bytes_;
  }
  return "bytes[" + std::to_string(bytes_.size()) + "]";
}

}  // namespace tbr
