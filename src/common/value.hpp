// Register value: an opaque byte string with integer/string conveniences.
//
// The register algorithms never interpret values; they only move them and
// account for their size. Tests and examples use the int64/string encodings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tbr {

class Value {
 public:
  Value() = default;

  /// Construct from raw bytes.
  static Value from_bytes(std::string bytes);
  /// Construct from a UTF-8 string (stored verbatim).
  static Value from_string(std::string_view s);
  /// Construct from an integer (8-byte little-endian encoding).
  static Value from_int64(std::int64_t v);
  /// A value of `size` deterministic filler bytes (for payload-size sweeps).
  static Value filler(std::size_t size, std::uint8_t seed = 0xA5);

  /// Raw bytes.
  const std::string& bytes() const noexcept { return bytes_; }
  /// Mutable access to the backing buffer, for pooled hot paths that
  /// encode straight into a recycled Value or assign without reallocating
  /// (Codec::decode_into, the mux slot wrapper). The bytes ARE the value:
  /// whatever the caller leaves here is what the Value holds.
  std::string& mutable_bytes() noexcept { return bytes_; }
  /// Payload size in bytes.
  std::size_t size() const noexcept { return bytes_.size(); }
  /// Payload size in bits (what the data-plane accounting uses).
  std::uint64_t size_bits() const noexcept { return bytes_.size() * 8; }
  bool empty() const noexcept { return bytes_.empty(); }

  /// Decode an int64 previously encoded with from_int64.
  /// Throws ContractViolation if the payload is not exactly 8 bytes.
  std::int64_t to_int64() const;
  /// Interpret the bytes as a string.
  std::string to_string() const { return bytes_; }

  /// Short printable form for logs ("int:42", "str:abc", "bytes[12]").
  std::string debug_string() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::string bytes_;
};

}  // namespace tbr
