// Fundamental identifier and time types shared by every module.
//
// Processes are indexed 0..n-1 (the paper uses 1..n; we keep 0-based indexing
// and translate in documentation). Sequence numbers are signed 64-bit so that
// -1 can serve as "none" in history bookkeeping.
#pragma once

#include <cstdint>
#include <limits>

namespace tbr {

/// Index of a process within a group (0-based; paper uses 1-based).
using ProcessId = std::uint32_t;

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Local sequence number (write index into the register history, or a read
/// request counter). Only ever carried on the wire by the *baseline*
/// algorithms; the two-bit algorithm keeps these strictly local.
using SeqNo = std::int64_t;

/// Virtual (simulated) or monotonic-real time in nanosecond ticks.
using Tick = std::int64_t;

/// Sentinel for "never" / "not yet".
inline constexpr Tick kNever = std::numeric_limits<Tick>::max();

}  // namespace tbr
