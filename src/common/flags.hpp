// Minimal command-line flag parser for the CLI tool and examples.
//
// Supports --key=value, --key value, and boolean --switch forms, plus
// automatic --help generation. Unknown flags are errors (fail fast rather
// than silently ignoring a typo'd experiment parameter).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tbr {

class FlagParser {
 public:
  /// `program` and `summary` feed the --help text.
  FlagParser(std::string program, std::string summary);

  /// Declare flags before parse(). `doc` appears in --help.
  void add_string(const std::string& name, std::string default_value,
                  std::string doc);
  void add_int(const std::string& name, std::int64_t default_value,
               std::string doc);
  void add_bool(const std::string& name, bool default_value, std::string doc);
  void add_double(const std::string& name, double default_value,
                  std::string doc);

  /// Parse argv. Returns false (and fills error()) on bad input; sets
  /// help_requested() when --help/-h is present.
  bool parse(int argc, const char* const* argv);
  /// Parse a pre-split token list (testing convenience).
  bool parse(const std::vector<std::string>& args);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  double get_double(const std::string& name) const;

  /// Leftover non-flag tokens (e.g. a subcommand), in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string help_text() const;

 private:
  enum class Kind { kString, kInt, kBool, kDouble };
  struct Flag {
    Kind kind;
    std::string value;  // canonical textual form
    std::string default_value;
    std::string doc;
  };
  const Flag& flag_or_die(const std::string& name, Kind kind) const;
  bool assign(const std::string& name, const std::string& value);

  std::string program_;
  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declared_order_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace tbr
