// Minimal fixed-width ASCII table printer for the benchmark harness.
//
// Every bench binary regenerates a table or series from the paper; this
// keeps their output uniform and diff-friendly (EXPERIMENTS.md embeds it).
#pragma once

#include <string>
#include <vector>

namespace tbr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column-aligned cells and a header rule.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by bench output.
std::string format_count(std::uint64_t v);
std::string format_double(double v, int precision = 2);
/// "3.0 Δ" style for latencies measured in delta units.
std::string format_delta_units(double deltas, int precision = 1);

}  // namespace tbr
