// InlineFn: a move-only void() callable with a small-buffer guarantee.
//
// std::function heap-allocates any capture larger than two pointers, which
// made every scheduled simulator event cost an allocation. InlineFn stores
// captures up to kInlineBytes in place — sized so that every closure the
// engine itself schedules (deliver/drain bookkeeping, crash markers, timer
// wrappers around a user std::function) fits inline — and falls back to the
// heap only for larger client-provided captures.
//
// Only what the event queue needs is implemented: construct, move, invoke,
// test for emptiness. No copy, no target introspection, no allocator
// support.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tbr {

class InlineFn {
 public:
  /// Captures up to this many bytes never touch the heap.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fd = std::decay_t<F>;
    if constexpr (fits_inline<Fd>()) {
      ::new (static_cast<void*>(buf_)) Fd(std::forward<F>(f));
      invoke_ = [](void* b) { (*std::launder(reinterpret_cast<Fd*>(b)))(); };
      manage_ = [](void* dst, void* src) {
        Fd* s = std::launder(reinterpret_cast<Fd*>(src));
        if (dst != nullptr) ::new (dst) Fd(std::move(*s));
        s->~Fd();
      };
    } else {
      using P = Fd*;
      ::new (static_cast<void*>(buf_))
          P(new Fd(std::forward<F>(f)));  // heap fallback: large capture
      invoke_ = [](void* b) { (**std::launder(reinterpret_cast<P*>(b)))(); };
      manage_ = [](void* dst, void* src) {
        P* s = std::launder(reinterpret_cast<P*>(src));
        if (dst != nullptr) {
          ::new (dst) P(*s);
        } else {
          delete *s;
        }
        s->~P();
      };
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(std::move(other)); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }
  friend bool operator==(const InlineFn& fn, std::nullptr_t) noexcept {
    return fn.invoke_ == nullptr;
  }

 private:
  template <typename Fd>
  static constexpr bool fits_inline() {
    return sizeof(Fd) <= kInlineBytes &&
           alignof(Fd) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fd>;
  }

  void move_from(InlineFn&& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (other.manage_ != nullptr) {
      other.manage_(buf_, other.buf_);  // move-construct into our buffer
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(nullptr, buf_);  // destroy in place
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  using Invoke = void (*)(void*);
  /// dst == nullptr: destroy *src. Otherwise move-construct dst from src
  /// and destroy src (one function keeps the per-type footprint small).
  using Manage = void (*)(void* dst, void* src);

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes] = {};
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace tbr
