// Bit-size arithmetic used by the wire-accounting layer.
//
// Table 1 of the paper compares algorithms by the number of *control bits*
// messages carry. These helpers compute minimal binary encodings so the
// "unbounded sequence number" rows can be measured as they grow.
#pragma once

#include <cstdint>

namespace tbr {

/// Number of bits in the minimal binary encoding of `v` (>= 1; bit_width(0)=1).
std::uint32_t min_bits_unsigned(std::uint64_t v);

/// Minimal bits for a non-negative signed value (contract: v >= 0).
std::uint32_t min_bits_seqno(std::int64_t v);

/// ceil(n^k) as a 64-bit value with saturation (used for the modeled
/// O(n^3)/O(n^5) label sizes of the bounded baselines).
std::uint64_t pow_saturating(std::uint64_t base, std::uint32_t exp);

/// Bits -> bytes, rounding up.
std::uint64_t bits_to_bytes(std::uint64_t bits);

}  // namespace tbr
