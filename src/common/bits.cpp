#include "common/bits.hpp"

#include <bit>
#include <limits>

#include "common/contracts.hpp"

namespace tbr {

std::uint32_t min_bits_unsigned(std::uint64_t v) {
  if (v == 0) return 1;
  return static_cast<std::uint32_t>(std::bit_width(v));
}

std::uint32_t min_bits_seqno(std::int64_t v) {
  TBR_ENSURE(v >= 0, "sequence numbers are non-negative");
  return min_bits_unsigned(static_cast<std::uint64_t>(v));
}

std::uint64_t pow_saturating(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t out = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (base != 0 &&
        out > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    out *= base;
  }
  return out;
}

std::uint64_t bits_to_bytes(std::uint64_t bits) { return (bits + 7) / 8; }

}  // namespace tbr
