#include "common/flags.hpp"

#include <charconv>
#include <sstream>

#include "common/contracts.hpp"

namespace tbr {

FlagParser::FlagParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void FlagParser::add_string(const std::string& name, std::string default_value,
                            std::string doc) {
  TBR_ENSURE(!flags_.contains(name), "duplicate flag: " + name);
  flags_[name] = Flag{Kind::kString, default_value, std::move(default_value),
                      std::move(doc)};
  declared_order_.push_back(name);
}

void FlagParser::add_int(const std::string& name, std::int64_t default_value,
                         std::string doc) {
  TBR_ENSURE(!flags_.contains(name), "duplicate flag: " + name);
  const auto text = std::to_string(default_value);
  flags_[name] = Flag{Kind::kInt, text, text, std::move(doc)};
  declared_order_.push_back(name);
}

void FlagParser::add_bool(const std::string& name, bool default_value,
                          std::string doc) {
  TBR_ENSURE(!flags_.contains(name), "duplicate flag: " + name);
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, text, text, std::move(doc)};
  declared_order_.push_back(name);
}

void FlagParser::add_double(const std::string& name, double default_value,
                            std::string doc) {
  TBR_ENSURE(!flags_.contains(name), "duplicate flag: " + name);
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Kind::kDouble, os.str(), os.str(), std::move(doc)};
  declared_order_.push_back(name);
}

bool FlagParser::assign(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag: --" + name;
    return false;
  }
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kString:
      break;
    case Kind::kBool:
      if (value != "true" && value != "false") {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    case Kind::kInt: {
      std::int64_t out = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), out);
      if (ec != std::errc{} || ptr != value.data() + value.size()) {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Kind::kDouble: {
      try {
        std::size_t pos = 0;
        (void)std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
  }
  flag.value = value;
  return true;
}

bool FlagParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool FlagParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      if (!assign(body.substr(0, eq), body.substr(eq + 1))) return false;
      continue;
    }
    // "--flag value" or boolean "--flag".
    const auto it = flags_.find(body);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + body;
      return false;
    }
    if (it->second.kind == Kind::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= args.size()) {
      error_ = "flag --" + body + " needs a value";
      return false;
    }
    if (!assign(body, args[++i])) return false;
  }
  return true;
}

const FlagParser::Flag& FlagParser::flag_or_die(const std::string& name,
                                                Kind kind) const {
  const auto it = flags_.find(name);
  TBR_ENSURE(it != flags_.end(), "flag not declared: " + name);
  TBR_ENSURE(it->second.kind == kind, "flag type mismatch: " + name);
  return it->second;
}

std::string FlagParser::get_string(const std::string& name) const {
  return flag_or_die(name, Kind::kString).value;
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  return std::stoll(flag_or_die(name, Kind::kInt).value);
}

bool FlagParser::get_bool(const std::string& name) const {
  return flag_or_die(name, Kind::kBool).value == "true";
}

double FlagParser::get_double(const std::string& name) const {
  return std::stod(flag_or_die(name, Kind::kDouble).value);
}

std::string FlagParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nflags:\n";
  for (const auto& name : declared_order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kString:
        os << "=<string>";
        break;
      case Kind::kInt:
        os << "=<int>";
        break;
      case Kind::kBool:
        os << "[=true|false]";
        break;
      case Kind::kDouble:
        os << "=<number>";
        break;
    }
    os << "  (default: " << flag.default_value << ")\n      " << flag.doc
       << "\n";
  }
  return os.str();
}

}  // namespace tbr
