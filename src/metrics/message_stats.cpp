#include "metrics/message_stats.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace tbr {

void MessageStats::record_send(std::uint8_t type, const WireAccounting& wire) {
  TBR_ENSURE(type < kMaxTypes, "message type id out of range");
  ++sent_by_type_[type];
  ++total_sent_;
  control_bits_ += wire.control_bits;
  data_bits_ += wire.data_bits;
  max_control_bits_ = std::max(max_control_bits_, wire.control_bits);
}

void MessageStats::record_drop(std::uint8_t type) {
  TBR_ENSURE(type < kMaxTypes, "message type id out of range");
  ++total_dropped_;
}

std::uint64_t MessageStats::sent_of_type(std::uint8_t type) const {
  TBR_ENSURE(type < kMaxTypes, "message type id out of range");
  return sent_by_type_[type];
}

MessageStats MessageStats::diff_since(const MessageStats& earlier) const {
  MessageStats out;
  for (std::size_t i = 0; i < kMaxTypes; ++i) {
    TBR_ENSURE(sent_by_type_[i] >= earlier.sent_by_type_[i],
               "diff_since requires an earlier snapshot");
    out.sent_by_type_[i] = sent_by_type_[i] - earlier.sent_by_type_[i];
  }
  out.total_sent_ = total_sent_ - earlier.total_sent_;
  out.total_dropped_ = total_dropped_ - earlier.total_dropped_;
  out.control_bits_ = control_bits_ - earlier.control_bits_;
  out.data_bits_ = data_bits_ - earlier.data_bits_;
  // Max over the window is not derivable from snapshots; report the global
  // max, which upper-bounds the window (documented behaviour).
  out.max_control_bits_ = max_control_bits_;
  // Gauges are not monotone either; the window inherits the current values.
  out.local_memory_peak_ = local_memory_peak_;
  out.local_memory_last_ = local_memory_last_;
  return out;
}

void MessageStats::record_local_memory(std::uint64_t bytes) {
  local_memory_last_ = bytes;
  local_memory_peak_ = std::max(local_memory_peak_, bytes);
}

void MessageStats::reset() { *this = MessageStats{}; }

}  // namespace tbr
