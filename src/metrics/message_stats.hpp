// Wire accounting: message counts and control/data bit tallies.
//
// This is the measurement instrument behind Table 1 lines 1-3. Every network
// (simulated or threaded) owns one MessageStats and records each frame as it
// is handed to the transport. Counters can be snapshotted and diffed so a
// bench can attribute traffic to a single operation window.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/ids.hpp"

namespace tbr {

/// One frame's accounting as computed by the owning algorithm's codec.
struct WireAccounting {
  std::uint64_t control_bits = 0;  ///< type + any seqno/label fields
  std::uint64_t data_bits = 0;     ///< register value payload, if present
};

/// Aggregated tallies; index by algorithm-local message-type id (0..15).
class MessageStats {
 public:
  static constexpr std::size_t kMaxTypes = 16;

  void record_send(std::uint8_t type, const WireAccounting& wire);
  void record_drop(std::uint8_t type);  ///< destination crashed

  std::uint64_t total_sent() const noexcept { return total_sent_; }
  std::uint64_t total_dropped() const noexcept { return total_dropped_; }
  std::uint64_t sent_of_type(std::uint8_t type) const;

  std::uint64_t total_control_bits() const noexcept { return control_bits_; }
  std::uint64_t total_data_bits() const noexcept { return data_bits_; }
  /// Largest control-bit count seen on any single frame (Table 1 line 3).
  std::uint64_t max_control_bits_per_msg() const noexcept {
    return max_control_bits_;
  }

  /// Local-memory gauge (the Table 1 line 4 companion): owners record the
  /// max per-process local_memory_bytes() at quiescent points — the sim
  /// after settle(), the runtimes at stop(). Gauges, not counters: `last`
  /// is the most recent record, `peak` the high-water mark.
  void record_local_memory(std::uint64_t bytes);
  std::uint64_t local_memory_peak() const noexcept {
    return local_memory_peak_;
  }
  std::uint64_t local_memory_last() const noexcept {
    return local_memory_last_;
  }

  /// Value-semantics snapshot for windowed measurements.
  MessageStats snapshot() const { return *this; }
  /// Per-field difference (this - earlier); counters are monotone.
  MessageStats diff_since(const MessageStats& earlier) const;

  void reset();

 private:
  std::array<std::uint64_t, kMaxTypes> sent_by_type_{};
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_dropped_ = 0;
  std::uint64_t control_bits_ = 0;
  std::uint64_t data_bits_ = 0;
  std::uint64_t max_control_bits_ = 0;
  std::uint64_t local_memory_peak_ = 0;
  std::uint64_t local_memory_last_ = 0;
};

}  // namespace tbr
