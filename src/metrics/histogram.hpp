// Simple exact histogram over int64 samples (latencies, message counts).
//
// Stores all samples; the benches take at most a few hundred thousand, so
// exactness is affordable and percentile math stays trivial.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tbr {

class Histogram {
 public:
  void add(std::int64_t sample);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Percentile in [0,100]; nearest-rank on the sorted samples.
  std::int64_t percentile(double p) const;

  /// "min/p50/p99/max" one-liner, each divided by `unit` (e.g. delta ticks).
  std::string summary(double unit = 1.0, int precision = 2) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace tbr
