#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/contracts.hpp"
#include "common/table.hpp"

namespace tbr {

void Histogram::add(std::int64_t sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::int64_t Histogram::min() const {
  TBR_ENSURE(!samples_.empty(), "min of empty histogram");
  ensure_sorted();
  return samples_.front();
}

std::int64_t Histogram::max() const {
  TBR_ENSURE(!samples_.empty(), "max of empty histogram");
  ensure_sorted();
  return samples_.back();
}

double Histogram::mean() const {
  TBR_ENSURE(!samples_.empty(), "mean of empty histogram");
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

std::int64_t Histogram::percentile(double p) const {
  TBR_ENSURE(!samples_.empty(), "percentile of empty histogram");
  TBR_ENSURE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::string Histogram::summary(double unit, int precision) const {
  if (samples_.empty()) return "(no samples)";
  std::ostringstream os;
  auto scaled = [&](std::int64_t v) {
    return format_double(static_cast<double>(v) / unit, precision);
  };
  os << scaled(min()) << '/' << scaled(percentile(50.0)) << '/'
     << scaled(percentile(99.0)) << '/' << scaled(max());
  return os.str();
}

}  // namespace tbr
