#include "checker/history.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace tbr {

Stamp HistoryLog::make_stamp(Tick tick) {
  return Stamp{tick, next_order_++};
}

HistoryLog::OpId HistoryLog::begin_write(ProcessId proc, Tick tick,
                                         SeqNo index, Value v) {
  TBR_ENSURE(index >= 1, "write indices are 1-based");
  const std::scoped_lock lock(mu_);
  OpRecord rec;
  rec.kind = OpRecord::Kind::kWrite;
  rec.proc = proc;
  rec.start = make_stamp(tick);
  rec.index = index;
  rec.value = std::move(v);
  ops_.push_back(std::move(rec));
  return ops_.size() - 1;
}

HistoryLog::OpId HistoryLog::begin_read(ProcessId proc, Tick tick) {
  const std::scoped_lock lock(mu_);
  OpRecord rec;
  rec.kind = OpRecord::Kind::kRead;
  rec.proc = proc;
  rec.start = make_stamp(tick);
  ops_.push_back(std::move(rec));
  return ops_.size() - 1;
}

HistoryLog::OpId HistoryLog::begin_write_unindexed(ProcessId proc, Tick tick,
                                                   Value v) {
  const std::scoped_lock lock(mu_);
  OpRecord rec;
  rec.kind = OpRecord::Kind::kWrite;
  rec.proc = proc;
  rec.start = make_stamp(tick);
  rec.value = std::move(v);
  ops_.push_back(std::move(rec));
  return ops_.size() - 1;
}

void HistoryLog::end_write_indexed(OpId id, Tick tick, SeqNo index) {
  const std::scoped_lock lock(mu_);
  TBR_ENSURE(id < ops_.size(), "bad op id");
  OpRecord& rec = ops_[id];
  TBR_ENSURE(rec.kind == OpRecord::Kind::kWrite, "end_write on a read");
  TBR_ENSURE(!rec.completed, "op already completed");
  TBR_ENSURE(index >= 1, "write timestamps are positive");
  rec.end = make_stamp(tick);
  rec.completed = true;
  rec.index = index;
}

void HistoryLog::end_write(OpId id, Tick tick) {
  const std::scoped_lock lock(mu_);
  TBR_ENSURE(id < ops_.size(), "bad op id");
  OpRecord& rec = ops_[id];
  TBR_ENSURE(rec.kind == OpRecord::Kind::kWrite, "end_write on a read");
  TBR_ENSURE(!rec.completed, "op already completed");
  rec.end = make_stamp(tick);
  rec.completed = true;
}

void HistoryLog::end_read(OpId id, Tick tick, Value v, SeqNo index) {
  const std::scoped_lock lock(mu_);
  TBR_ENSURE(id < ops_.size(), "bad op id");
  OpRecord& rec = ops_[id];
  TBR_ENSURE(rec.kind == OpRecord::Kind::kRead, "end_read on a write");
  TBR_ENSURE(!rec.completed, "op already completed");
  TBR_ENSURE(index >= 0, "read index must be non-negative");
  rec.end = make_stamp(tick);
  rec.completed = true;
  rec.index = index;
  rec.value = std::move(v);
}

std::vector<OpRecord> HistoryLog::ops() const {
  const std::scoped_lock lock(mu_);
  return ops_;
}

std::size_t HistoryLog::size() const {
  const std::scoped_lock lock(mu_);
  return ops_.size();
}

std::size_t HistoryLog::completed_count() const {
  const std::scoped_lock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const OpRecord& r) { return r.completed; }));
}

}  // namespace tbr
