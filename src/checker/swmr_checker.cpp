#include "checker/swmr_checker.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "common/contracts.hpp"

namespace tbr {

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream os;
  os << (op.kind == OpRecord::Kind::kWrite ? "write" : "read") << "[p"
     << op.proc << ", idx=" << op.index << ", start#" << op.start.order;
  if (op.completed) {
    os << ", end#" << op.end.order;
  } else {
    os << ", incomplete";
  }
  os << ']';
  return os.str();
}

struct Tally {
  CheckStats stats;

  void hit(std::uint64_t CheckStats::*counter, std::string why) {
    stats.*counter += 1;
    if (stats.first_error.empty()) stats.first_error = std::move(why);
  }
};

}  // namespace

CheckStats SwmrChecker::analyze(const std::vector<OpRecord>& ops,
                                const Value& initial) {
  Tally tally;

  // ---- partition & model sanity -------------------------------------------
  std::vector<const OpRecord*> writes;
  std::vector<const OpRecord*> reads;  // completed reads only
  std::optional<ProcessId> writer;
  for (const auto& op : ops) {
    if (op.kind == OpRecord::Kind::kWrite) {
      writes.push_back(&op);
      if (!writer.has_value()) writer = op.proc;
      if (*writer != op.proc) {
        tally.hit(&CheckStats::model, "model: more than one writer process");
        return tally.stats;
      }
    } else if (op.completed) {
      reads.push_back(&op);
    }
  }
  std::sort(writes.begin(), writes.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->index < b->index;
            });
  for (std::size_t k = 0; k < writes.size(); ++k) {
    if (writes[k]->index != static_cast<SeqNo>(k + 1)) {
      tally.hit(&CheckStats::model,
                "model: write indices are not exactly 1..W");
      return tally.stats;
    }
    if (k + 1 < writes.size()) {
      if (!writes[k]->completed) {
        tally.hit(&CheckStats::model,
                  "model: only the writer's final write may be incomplete");
        return tally.stats;
      }
      if (!(writes[k]->end < writes[k + 1]->start)) {
        tally.hit(&CheckStats::model,
                  "model: writer operations overlap: " +
                      describe(*writes[k]) + " vs " +
                      describe(*writes[k + 1]));
        return tally.stats;
      }
    }
  }

  // Per-process sequentiality of all operations.
  {
    std::map<ProcessId, std::vector<const OpRecord*>> by_proc;
    for (const auto& op : ops) by_proc[op.proc].push_back(&op);
    for (auto& [proc, list] : by_proc) {
      std::sort(list.begin(), list.end(),
                [](const OpRecord* a, const OpRecord* b) {
                  return a->start < b->start;
                });
      for (std::size_t k = 0; k + 1 < list.size(); ++k) {
        if (!list[k]->completed || !(list[k]->end < list[k + 1]->start)) {
          tally.hit(&CheckStats::model, "model: operations of process " +
                                            std::to_string(proc) +
                                            " overlap");
          return tally.stats;
        }
      }
    }
  }

  const auto w_count = static_cast<SeqNo>(writes.size());
  tally.stats.reads_checked = reads.size();

  // ---- C0: value consistency ----------------------------------------------
  for (const auto* r : reads) {
    if (r->index < 0 || r->index > w_count) {
      tally.hit(&CheckStats::c0,
                "C0: read index out of range: " + describe(*r));
      continue;
    }
    const Value& expect =
        r->index == 0
            ? initial
            : writes[static_cast<std::size_t>(r->index - 1)]->value;
    if (!(r->value == expect)) {
      tally.hit(&CheckStats::c0, "C0: read value does not match write " +
                                     std::to_string(r->index) + ": " +
                                     describe(*r));
    }
  }

  // ---- C1: no read from the future -----------------------------------------
  for (const auto* r : reads) {
    if (r->index <= 0 || r->index > w_count) continue;
    const auto* w = writes[static_cast<std::size_t>(r->index - 1)];
    if (!(w->start < r->end)) {
      tally.hit(&CheckStats::c1,
                "C1: read returns a write invoked after it: " + describe(*r) +
                    " vs " + describe(*w));
    }
  }

  // ---- C2: no overwritten read ----------------------------------------------
  // Completed writes end in index order (writer is sequential), so a binary
  // search over their end stamps yields the freshest mandatory index.
  std::vector<Stamp> write_end_stamps;  // for writes 1..K completed
  for (const auto* w : writes) {
    if (!w->completed) break;  // only the last write can be incomplete
    write_end_stamps.push_back(w->end);
  }
  for (const auto* r : reads) {
    const auto it = std::lower_bound(write_end_stamps.begin(),
                                     write_end_stamps.end(), r->start);
    const auto mandatory = static_cast<SeqNo>(it - write_end_stamps.begin());
    if (r->index < mandatory) {
      tally.hit(&CheckStats::c2,
                "C2: stale read: returned " + std::to_string(r->index) +
                    " but write " + std::to_string(mandatory) +
                    " completed before the read began: " + describe(*r));
    }
  }

  // ---- C3: no new/old inversion ----------------------------------------------
  // For reads r1, r2 with r1.end < r2.start, require idx(r1) <= idx(r2).
  // Sweep reads by start stamp; prefix-max of indices over reads sorted by
  // end stamp answers "largest index among reads that ended before me".
  std::vector<const OpRecord*> by_end = reads;
  std::sort(by_end.begin(), by_end.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->end < b->end;
            });
  std::vector<Stamp> end_stamps;
  std::vector<SeqNo> prefix_max;
  end_stamps.reserve(by_end.size());
  prefix_max.reserve(by_end.size());
  for (const auto* r : by_end) {
    end_stamps.push_back(r->end);
    prefix_max.push_back(prefix_max.empty()
                             ? r->index
                             : std::max(prefix_max.back(), r->index));
  }
  for (const auto* r : reads) {
    const auto it =
        std::lower_bound(end_stamps.begin(), end_stamps.end(), r->start);
    if (it == end_stamps.begin()) continue;
    const auto k = static_cast<std::size_t>(it - end_stamps.begin()) - 1;
    if (prefix_max[k] > r->index) {
      tally.hit(&CheckStats::c3,
                "C3: new/old inversion: an earlier read returned " +
                    std::to_string(prefix_max[k]) + " but " + describe(*r) +
                    " returned " + std::to_string(r->index));
    }
  }

  return tally.stats;
}

CheckResult SwmrChecker::check(const std::vector<OpRecord>& ops,
                               const Value& initial) {
  const CheckStats stats = analyze(ops, initial);
  if (stats.atomic()) return CheckResult::good();
  return CheckResult::bad(stats.first_error);
}

}  // namespace tbr
