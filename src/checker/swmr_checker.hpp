// Fast, complete atomicity checker for SWMR register histories.
//
// For a single-writer history in which each write carries a unique index,
// atomicity (linearizability against the register's sequential spec) is
// equivalent to the conjunction of the three claims in the paper's proof of
// Lemma 10, plus value consistency:
//
//   C0  a read returning index x returns write x's value (x = 0: initial)
//   C1  no read from the future: write x starts before the read returns
//   C2  no overwritten read: x >= every write completed before the read began
//   C3  no new/old inversion: reads ordered by (end < start) have
//       non-decreasing indices
//
// Sufficiency: order writes by index; place each read between write x and
// write x+1 (reads with equal x ordered by start). Claims C1-C3 are exactly
// what makes that sequence respect real time; C0 makes it type-correct.
// Crashed operations: an incomplete write may or may not take effect (reads
// may return it — C1 only needs its invocation); an incomplete read
// constrains nothing (the atomicity definition exempts a faulty process's
// last operation).
//
// Complexity: O(k log k) for k operations.
#pragma once

#include <string>

#include "checker/history.hpp"

namespace tbr {

struct CheckResult {
  bool ok = true;
  std::string error;  ///< empty when ok; names the violated claim otherwise

  static CheckResult good() { return {}; }
  static CheckResult bad(std::string why) { return {false, std::move(why)}; }
};

/// Per-condition violation tally (for the wait-ablation experiments, which
/// want rates rather than a pass/fail verdict).
struct CheckStats {
  std::uint64_t model = 0;  ///< structural violations (checking stops here)
  std::uint64_t c0 = 0;     ///< value/index mismatches
  std::uint64_t c1 = 0;     ///< reads from the future
  std::uint64_t c2 = 0;     ///< stale reads (missed a completed write)
  std::uint64_t c3 = 0;     ///< new/old inversions between reads
  std::uint64_t reads_checked = 0;
  std::string first_error;

  std::uint64_t total() const { return model + c0 + c1 + c2 + c3; }
  bool atomic() const { return total() == 0; }
  /// The paper's *regular*-register semantics: C0-C2 without C3 (a regular
  /// read may suffer new/old inversion but never staleness).
  bool regular() const { return model + c0 + c1 + c2 == 0; }
};

class SwmrChecker {
 public:
  /// Check the history of one register with initial value `initial`.
  /// Also validates model sanity: unique 1..W write indices, sequential
  /// writer, and per-process non-overlapping operations.
  static CheckResult check(const std::vector<OpRecord>& ops,
                           const Value& initial);

  /// Count every violation per condition instead of failing on the first.
  static CheckStats analyze(const std::vector<OpRecord>& ops,
                            const Value& initial);
};

}  // namespace tbr
