// Exhaustive linearizability checker (Wing & Gong style) for small SWMR
// register histories.
//
// Independent of the fast SwmrChecker: explores every real-time-respecting
// linear order of the operations, with memoization on (linearized-set,
// register state). Exponential in the worst case — the test suite uses it
// only to cross-validate SwmrChecker on randomly generated histories of at
// most ~20 operations, which is where such a ground-truth oracle is useful.
#pragma once

#include "checker/history.hpp"

namespace tbr {

/// True iff the history is linearizable against the SWMR register spec with
/// the given initial value. Incomplete operations may linearize or vanish.
bool wg_linearizable(const std::vector<OpRecord>& ops, const Value& initial);

}  // namespace tbr
