// Operation history recording for atomicity checking.
//
// Every operation is an interval [start, end] stamped with (tick, order):
// `tick` is virtual/real time, `order` a global monotone counter assigned at
// record time. Ticks can tie (simulator events at the same instant; clock
// granularity in the threaded runtime); `order` breaks ties consistently
// with causality, so "op A ended before op B started" is exact.
//
// Thread-safe: the threaded runtime records from many client threads.
#pragma once

#include <mutex>
#include <vector>

#include "common/ids.hpp"
#include "common/value.hpp"

namespace tbr {

struct Stamp {
  Tick tick = 0;
  std::uint64_t order = 0;

  /// Lexicographic: physical/virtual time first, record order as the
  /// causal tie-break. A clock inversion across threads (B's timestamp read
  /// before A's although A recorded first) can only make intervals appear
  /// to overlap more, which weakens — never falsifies — the check.
  friend bool operator<(const Stamp& a, const Stamp& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.order < b.order;
  }
};

struct OpRecord {
  enum class Kind { kWrite, kRead };
  Kind kind = Kind::kRead;
  ProcessId proc = kNoProcess;
  Stamp start;
  Stamp end;
  bool completed = false;
  /// Write: history index it creates (1-based). Read: index returned.
  SeqNo index = -1;
  /// Write: value written. Read: value returned.
  Value value;
};

class HistoryLog {
 public:
  using OpId = std::size_t;

  /// Record the invocation of the `index`-th write (value `v`).
  OpId begin_write(ProcessId proc, Tick tick, SeqNo index, Value v);
  /// Record the invocation of a read.
  OpId begin_read(ProcessId proc, Tick tick);
  void end_write(OpId id, Tick tick);
  void end_read(OpId id, Tick tick, Value v, SeqNo index);

  /// Multi-writer variants: the write's index (its timestamp) is only known
  /// at completion; an unindexed write that never completes keeps index -1.
  OpId begin_write_unindexed(ProcessId proc, Tick tick, Value v);
  void end_write_indexed(OpId id, Tick tick, SeqNo index);

  /// Immutable snapshot of all records (copy; safe after recording stops).
  std::vector<OpRecord> ops() const;

  std::size_t size() const;
  std::size_t completed_count() const;

 private:
  Stamp make_stamp(Tick tick);

  mutable std::mutex mu_;
  std::vector<OpRecord> ops_;
  std::uint64_t next_order_ = 0;
};

}  // namespace tbr
