#include "checker/wg_checker.hpp"

#include <unordered_set>

#include "common/contracts.hpp"

namespace tbr {

namespace {

struct Search {
  const std::vector<OpRecord>& ops;
  const Value& initial;
  std::uint32_t all_completed_mask = 0;
  std::unordered_set<std::uint64_t> failed;  // (mask, cur) states seen

  explicit Search(const std::vector<OpRecord>& o, const Value& init)
      : ops(o), initial(init) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].completed) {
        all_completed_mask |= (1u << i);
      }
    }
  }

  static std::uint64_t key(std::uint32_t mask, SeqNo cur) {
    return (static_cast<std::uint64_t>(mask) << 24) |
           static_cast<std::uint64_t>(cur & 0xFFFFFF);
  }

  /// Can op `i` be the next linearization point given `mask` already chosen?
  bool minimal(std::uint32_t mask, std::size_t i) const {
    for (std::size_t p = 0; p < ops.size(); ++p) {
      if (p == i || (mask & (1u << p)) != 0 || !ops[p].completed) continue;
      if (ops[p].end < ops[i].start) return false;
    }
    return true;
  }

  bool dfs(std::uint32_t mask, SeqNo cur) {
    if ((mask & all_completed_mask) == all_completed_mask) return true;
    if (!failed.insert(key(mask, cur)).second) return false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if ((mask & (1u << i)) != 0) continue;
      if (!minimal(mask, i)) continue;
      const OpRecord& op = ops[i];
      if (op.kind == OpRecord::Kind::kWrite) {
        if (dfs(mask | (1u << i), op.index)) return true;
      } else {
        if (!op.completed) {
          // An unfinished read constrains nothing; leaving it out is always
          // at least as permissive as linearizing it.
          continue;
        }
        if (op.index == cur && dfs(mask | (1u << i), cur)) return true;
      }
    }
    return false;
  }
};

}  // namespace

bool wg_linearizable(const std::vector<OpRecord>& ops, const Value& initial) {
  TBR_ENSURE(ops.size() <= 22,
             "wg_linearizable is exponential; use it only on small histories");
  // Value consistency first: a read's (index, value) pair must match the
  // write with that index (or the initial value for index 0).
  for (const auto& r : ops) {
    if (r.kind != OpRecord::Kind::kRead || !r.completed) continue;
    if (r.index == 0) {
      if (!(r.value == initial)) return false;
      continue;
    }
    bool found = false;
    for (const auto& w : ops) {
      if (w.kind == OpRecord::Kind::kWrite && w.index == r.index) {
        if (!(w.value == r.value)) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  Search search(ops, initial);
  return search.dfs(0, 0);
}

}  // namespace tbr
