#include "fastread/ohram_process.hpp"

#include <algorithm>
#include <utility>

namespace tbr {

namespace {
constexpr SeqNo kReaderBits = 8;  // RELAY packs the reader id into aux
}

OhRamProcess::OhRamProcess(GroupConfig cfg, ProcessId self)
    : RegisterProcessBase(std::move(cfg), self), val_(cfg_.initial) {
  TBR_ENSURE(cfg_.n <= (1u << kReaderBits),
             "ohram RELAY frames pack the reader id into one aux byte");
  slots_.resize(cfg_.n);
  for (auto& slot : slots_) slot.seen.resize(cfg_.n, 0);
}

// ---- shared helpers ---------------------------------------------------------

void OhRamProcess::adopt(SeqNo seq, const Value& v) {
  if (seq > ts_) {
    ts_ = seq;
    val_ = v;
  }
}

void OhRamProcess::broadcast(NetworkContext& net, Message& msg) {
  msg.wire = codec().account(msg);
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) net.send(j, msg);
  }
}

// ---- write ------------------------------------------------------------------

void OhRamProcess::start_write(NetworkContext& net, Value v, WriteDone done) {
  TBR_ENSURE(is_writer(), "only the writer p_w may invoke write()");
  TBR_ENSURE(done != nullptr, "write needs a completion callback");
  begin_operation("write");

  wsn_ += 1;
  adopt(wsn_, v);  // the writer itself is one of the n replicas

  pw_.active = true;
  pw_.acks = 1;  // self
  pw_.done = std::move(done);

  out_.type = static_cast<std::uint8_t>(OhRamType::kWrite);
  out_.aux = 0;
  out_.seq = wsn_;
  out_.has_value = true;
  out_.value = val_;
  out_.debug_index = wsn_;
  broadcast(net, out_);

  if (pw_.acks >= cfg_.quorum()) finish_write(net);  // n-t may be 1
}

void OhRamProcess::finish_write(NetworkContext&) {
  WriteDone done = std::move(pw_.done);
  pw_.active = false;
  end_operation();
  done();
}

// ---- read -------------------------------------------------------------------

void OhRamProcess::start_read(NetworkContext& net, ReadDone done) {
  TBR_ENSURE(done != nullptr, "read needs a completion callback");
  begin_operation("read");

  const SeqNo tag = ++read_tag_;
  pr_.active = true;
  pr_.write_back = false;
  pr_.tag = tag;
  pr_.acks = 0;
  pr_.wb_acks = 0;
  pr_.have_first = false;
  pr_.all_same = true;
  pr_.first_seq = 0;
  pr_.best_seq = -1;  // any ack (including ts 0) must fold its value
  pr_.done = std::move(done);

  // The READ broadcast carries our state: it IS our relay to everyone.
  out_.type = static_cast<std::uint8_t>(OhRamType::kRead);
  out_.aux = tag;
  out_.seq = ts_;
  out_.has_value = true;
  out_.value = val_;
  out_.debug_index = ts_;
  broadcast(net, out_);

  // Seed our own relay set; with n-t == 1 this self-acks and completes.
  observe_relay(net, self_, tag, self_, ts_, val_);
}

void OhRamProcess::observe_relay(NetworkContext& net, ProcessId reader,
                                 SeqNo tag, ProcessId from, SeqNo seq,
                                 const Value& v) {
  TBR_ENSURE(reader < cfg_.n, "relay names an out-of-range reader");
  RelaySlot& slot = slots_[reader];
  if (tag < slot.tag) return;  // stale traffic from a finished read
  if (tag > slot.tag) {
    // First sight of this read: reset the slot, seed it with our own
    // state, and relay that state to everyone else. (When we are the
    // reader, the READ broadcast already was our relay.)
    slot.tag = tag;
    slot.acked = false;
    std::fill(slot.seen.begin(), slot.seen.end(), std::uint8_t{0});
    slot.seen[self_] = 1;
    slot.relays = 1;
    slot.best_seq = ts_;
    slot.best_val = val_;
    if (reader != self_) {
      relay_out_.type = static_cast<std::uint8_t>(OhRamType::kRelay);
      relay_out_.aux = (tag << kReaderBits) | static_cast<SeqNo>(reader);
      relay_out_.seq = ts_;
      relay_out_.has_value = true;
      relay_out_.value = val_;
      relay_out_.debug_index = ts_;
      broadcast(net, relay_out_);
    }
  }
  if (slot.seen[from] == 0) {
    slot.seen[from] = 1;
    slot.relays += 1;
    if (seq > slot.best_seq) {
      slot.best_seq = seq;
      slot.best_val = v;
    }
  }
  maybe_ack(net, reader);
}

void OhRamProcess::maybe_ack(NetworkContext& net, ProcessId reader) {
  RelaySlot& slot = slots_[reader];
  if (slot.acked || slot.relays < cfg_.quorum()) return;
  slot.acked = true;
  // Adopt before acking: n-t ackers each storing ≥ the reported timestamp
  // is exactly what makes the fast path atomic.
  adopt(slot.best_seq, slot.best_val);
  if (reader == self_) {
    fold_read_ack(net, slot.tag, slot.best_seq, slot.best_val);
    return;
  }
  out_.type = static_cast<std::uint8_t>(OhRamType::kReadAck);
  out_.aux = slot.tag;
  out_.seq = slot.best_seq;
  out_.has_value = true;
  out_.value = slot.best_val;
  out_.debug_index = slot.best_seq;
  out_.wire = codec().account(out_);
  net.send(reader, out_);
}

void OhRamProcess::fold_read_ack(NetworkContext& net, SeqNo tag, SeqNo seq,
                                 const Value& v) {
  if (!pr_.active || pr_.write_back || tag != pr_.tag) return;
  if (!pr_.have_first) {
    pr_.have_first = true;
    pr_.first_seq = seq;
  } else if (seq != pr_.first_seq) {
    pr_.all_same = false;
  }
  if (seq > pr_.best_seq) {
    pr_.best_seq = seq;
    pr_.best_val = v;
  }
  pr_.acks += 1;
  if (pr_.acks < cfg_.quorum()) return;
  if (pr_.all_same) {
    ++fast_reads_;
    finish_read(net);  // 1.5 rounds: no write was concurrent
  } else {
    ++fallback_reads_;
    start_write_back(net);
  }
}

void OhRamProcess::start_write_back(NetworkContext& net) {
  pr_.write_back = true;
  pr_.wb_acks = 1;  // self
  adopt(pr_.best_seq, pr_.best_val);

  out_.type = static_cast<std::uint8_t>(OhRamType::kWriteBack);
  out_.aux = pr_.tag;
  out_.seq = pr_.best_seq;
  out_.has_value = true;
  out_.value = pr_.best_val;
  out_.debug_index = pr_.best_seq;
  broadcast(net, out_);

  if (pr_.wb_acks >= cfg_.quorum()) finish_read(net);  // n-t may be 1
}

void OhRamProcess::finish_read(NetworkContext&) {
  ReadDone done = std::move(pr_.done);
  const SeqNo index = pr_.best_seq;
  // Swap the result out of pr_ so a re-entrant next operation can reuse
  // pr_.best_val without disturbing what the callback sees.
  result_val_.mutable_bytes().swap(pr_.best_val.mutable_bytes());
  pr_.active = false;
  end_operation();
  done(result_val_, index);
}

// ---- message handling -------------------------------------------------------

void OhRamProcess::on_message(NetworkContext& net, ProcessId from,
                              const Message& msg) {
  TBR_ENSURE(!crashed_, "runtime delivered a message to a crashed process");
  TBR_ENSURE(from < cfg_.n && from != self_, "bad sender");
  switch (static_cast<OhRamType>(msg.type)) {
    case OhRamType::kWrite: {
      adopt(msg.seq, msg.value);
      out_.type = static_cast<std::uint8_t>(OhRamType::kWriteAck);
      out_.aux = 0;
      out_.seq = msg.seq;
      out_.has_value = false;
      out_.debug_index = msg.seq;
      out_.wire = codec().account(out_);
      net.send(from, out_);
      break;
    }
    case OhRamType::kWriteAck: {
      if (pw_.active && msg.seq == wsn_) {
        pw_.acks += 1;
        if (pw_.acks >= cfg_.quorum()) finish_write(net);
      }
      break;
    }
    case OhRamType::kRead: {
      // The READ broadcast is the reader's own relay.
      observe_relay(net, from, msg.aux, from, msg.seq, msg.value);
      break;
    }
    case OhRamType::kRelay: {
      const auto reader =
          static_cast<ProcessId>(msg.aux & ((1 << kReaderBits) - 1));
      observe_relay(net, reader, msg.aux >> kReaderBits, from, msg.seq,
                    msg.value);
      break;
    }
    case OhRamType::kReadAck: {
      fold_read_ack(net, msg.aux, msg.seq, msg.value);
      break;
    }
    case OhRamType::kWriteBack: {
      adopt(msg.seq, msg.value);
      out_.type = static_cast<std::uint8_t>(OhRamType::kWriteBackAck);
      out_.aux = msg.aux;
      out_.seq = 0;
      out_.has_value = false;
      out_.debug_index = msg.seq;
      out_.wire = codec().account(out_);
      net.send(from, out_);
      break;
    }
    case OhRamType::kWriteBackAck: {
      if (pr_.active && pr_.write_back && msg.aux == pr_.tag) {
        pr_.wb_acks += 1;
        if (pr_.wb_acks >= cfg_.quorum()) finish_read(net);
      }
      break;
    }
    default:
      TBR_ENSURE(false, "unknown ohram frame type");
  }
}

void OhRamProcess::on_crash() { crashed_ = true; }

std::uint64_t OhRamProcess::local_memory_bytes() const {
  // Replica pair + counters + the n relay slots with their n-bit seen sets:
  // O(n²) bits of relay bookkeeping, the price of the 1.5-round read.
  std::uint64_t bytes = 8 /*ts*/ + val_.size() + 8 /*wsn*/ + 8 /*read_tag*/;
  for (const auto& slot : slots_) {
    bytes += 8 /*tag*/ + 8 /*best_seq*/ + 4 /*relays*/ + 1 /*acked*/ +
             slot.seen.size() + slot.best_val.size();
  }
  bytes += pr_.best_val.size();
  return bytes;
}

// ---- factory ----------------------------------------------------------------

std::unique_ptr<RegisterProcessBase> make_ohram_process(GroupConfig cfg,
                                                        ProcessId self) {
  return std::make_unique<OhRamProcess>(std::move(cfg), self);
}

}  // namespace tbr
