#include "fastread/fastread_codec.hpp"

#include "common/contracts.hpp"

namespace tbr {

// ---- Oh-RAM codec -----------------------------------------------------------
//
// | type | name          | layout                                        |
// |------|---------------|-----------------------------------------------|
// | 0    | WRITE         | u8 | u64 seq | u32 len | value[len]           |
// | 1    | WRITE_ACK     | u8 | u64 seq                                  |
// | 2    | READ          | u8 | u64 aux | u64 seq | u32 len | value[len] |
// | 3    | RELAY         | u8 | u64 aux | u64 seq | u32 len | value[len] |
// | 4    | READ_ACK      | u8 | u64 aux | u64 seq | u32 len | value[len] |
// | 5    | WRITE_BACK    | u8 | u64 aux | u64 seq | u32 len | value[len] |
// | 6    | WRITE_BACK_ACK| u8 | u64 aux                                  |
//
// aux is the read tag; RELAY packs the reader id into its low byte
// (tag << 8 | reader), which is why groups are capped at 256 processes.

namespace {

bool ohram_carries_tag(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(OhRamType::kRead);
}

bool ohram_carries_state(std::uint8_t type) {
  return type != static_cast<std::uint8_t>(OhRamType::kWriteAck) &&
         type != static_cast<std::uint8_t>(OhRamType::kWriteBackAck);
}

}  // namespace

void OhRamCodec::encode_into(const Message& msg, std::string& out) const {
  TBR_ENSURE(msg.type <= 6, "bad ohram frame type");
  out.clear();
  out.push_back(static_cast<char>(msg.type));
  if (ohram_carries_tag(msg.type)) {
    wire::put_u64(out, static_cast<std::uint64_t>(msg.aux));
  } else {
    TBR_ENSURE(msg.aux == 0, "write-path ohram frames carry no read tag");
  }
  if (ohram_carries_state(msg.type)) {
    wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
    TBR_ENSURE(msg.has_value, "state-carrying ohram frames carry the value");
    wire::put_u32(out, static_cast<std::uint32_t>(msg.value.size()));
    out.append(msg.value.bytes());
  } else if (msg.type == static_cast<std::uint8_t>(OhRamType::kWriteAck)) {
    wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
    TBR_ENSURE(!msg.has_value, "ack frames carry no value");
  } else {
    TBR_ENSURE(msg.seq == 0 && !msg.has_value,
               "WRITE_BACK_ACK is tag-only");
  }
}

void OhRamCodec::decode_into(std::string_view bytes, Message& msg) const {
  wire::reset_for_decode(msg);
  std::size_t pos = 0;
  msg.type = wire::get_u8(bytes, pos);
  TBR_ENSURE(msg.type <= 6, "bad ohram frame type");
  if (ohram_carries_tag(msg.type)) {
    msg.aux = static_cast<SeqNo>(wire::get_u64(bytes, pos));
  }
  if (ohram_carries_state(msg.type)) {
    msg.seq = static_cast<SeqNo>(wire::get_u64(bytes, pos));
    const auto len = wire::get_u32(bytes, pos);
    wire::get_blob_into(bytes, pos, len, msg.value.mutable_bytes());
    msg.has_value = true;
  } else if (msg.type == static_cast<std::uint8_t>(OhRamType::kWriteAck)) {
    msg.seq = static_cast<SeqNo>(wire::get_u64(bytes, pos));
  }
  TBR_ENSURE(pos == bytes.size(), "trailing bytes in ohram frame");
  msg.wire = account(msg);
}

WireAccounting OhRamCodec::account(const Message& msg) const {
  WireAccounting wire;
  wire.control_bits = kTypeBits;
  if (ohram_carries_tag(msg.type)) wire.control_bits += kTagBits;
  if (ohram_carries_state(msg.type) ||
      msg.type == static_cast<std::uint8_t>(OhRamType::kWriteAck)) {
    wire.control_bits += kSeqBits;
  }
  wire.data_bits = msg.has_value ? 32 + msg.value.size_bits() : 0;
  return wire;
}

std::string OhRamCodec::type_name(std::uint8_t type) const {
  switch (static_cast<OhRamType>(type)) {
    case OhRamType::kWrite:
      return "WRITE";
    case OhRamType::kWriteAck:
      return "WRITE_ACK";
    case OhRamType::kRead:
      return "READ";
    case OhRamType::kRelay:
      return "RELAY";
    case OhRamType::kReadAck:
      return "READ_ACK";
    case OhRamType::kWriteBack:
      return "WRITE_BACK";
    case OhRamType::kWriteBackAck:
      return "WRITE_BACK_ACK";
  }
  return "UNKNOWN(" + std::to_string(type) + ")";
}

const OhRamCodec& ohram_codec() {
  static const OhRamCodec codec;
  return codec;
}

// ---- Time-efficient codec ---------------------------------------------------
//
// | type | name  | layout                                        |
// |------|-------|-----------------------------------------------|
// | 0    | ECHO  | u8 | u64 seq | u32 len | value[len]           |
// | 1    | READ  | u8 | u64 aux                                  |
// | 2    | STATE | u8 | u64 aux | u64 seq | u32 len | value[len] |
//
// There is no separate write frame: a write is the writer's ECHO of a
// fresh sequence number, and every adopt triggers at most one echo per
// sn — the reliable-broadcast step that makes storage public.

void TimeEfficientCodec::encode_into(const Message& msg,
                                     std::string& out) const {
  TBR_ENSURE(msg.type <= 2, "bad timeeff frame type");
  out.clear();
  out.push_back(static_cast<char>(msg.type));
  switch (static_cast<TimeEffType>(msg.type)) {
    case TimeEffType::kEcho:
      TBR_ENSURE(msg.aux == 0, "ECHO frames carry no read tag");
      wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
      break;
    case TimeEffType::kRead:
      TBR_ENSURE(msg.seq == 0 && !msg.has_value, "READ is tag-only");
      wire::put_u64(out, static_cast<std::uint64_t>(msg.aux));
      return;
    case TimeEffType::kState:
      wire::put_u64(out, static_cast<std::uint64_t>(msg.aux));
      wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
      break;
  }
  TBR_ENSURE(msg.has_value, "ECHO/STATE frames carry the value");
  wire::put_u32(out, static_cast<std::uint32_t>(msg.value.size()));
  out.append(msg.value.bytes());
}

void TimeEfficientCodec::decode_into(std::string_view bytes,
                                     Message& msg) const {
  wire::reset_for_decode(msg);
  std::size_t pos = 0;
  msg.type = wire::get_u8(bytes, pos);
  TBR_ENSURE(msg.type <= 2, "bad timeeff frame type");
  if (msg.type != static_cast<std::uint8_t>(TimeEffType::kEcho)) {
    msg.aux = static_cast<SeqNo>(wire::get_u64(bytes, pos));
  }
  if (msg.type != static_cast<std::uint8_t>(TimeEffType::kRead)) {
    msg.seq = static_cast<SeqNo>(wire::get_u64(bytes, pos));
    const auto len = wire::get_u32(bytes, pos);
    wire::get_blob_into(bytes, pos, len, msg.value.mutable_bytes());
    msg.has_value = true;
  }
  TBR_ENSURE(pos == bytes.size(), "trailing bytes in timeeff frame");
  msg.wire = account(msg);
}

WireAccounting TimeEfficientCodec::account(const Message& msg) const {
  WireAccounting wire;
  wire.control_bits = kTypeBits + kSeqBits;  // every frame has one u64 field
  if (msg.type == static_cast<std::uint8_t>(TimeEffType::kState)) {
    wire.control_bits += kTagBits;  // STATE carries both tag and sn
  }
  wire.data_bits = msg.has_value ? 32 + msg.value.size_bits() : 0;
  return wire;
}

std::string TimeEfficientCodec::type_name(std::uint8_t type) const {
  switch (static_cast<TimeEffType>(type)) {
    case TimeEffType::kEcho:
      return "ECHO";
    case TimeEffType::kRead:
      return "READ";
    case TimeEffType::kState:
      return "STATE";
  }
  return "UNKNOWN(" + std::to_string(type) + ")";
}

const TimeEfficientCodec& time_efficient_codec() {
  static const TimeEfficientCodec codec;
  return codec;
}

}  // namespace tbr
