// Wire formats of the two fast-path read engines (src/fastread/).
//
// Both codecs follow the repository's accounting convention (docs/
// wire-protocol.md): the register value plus its u32 length framing are
// data-plane bits; the type tag, sequence numbers and read tags the
// protocols add to coordinate are control bits.
//
//   OhRamCodec        — the one-and-a-half-round read protocol. Seven
//                       types (3 meaningful bits); reads ride relayed
//                       replica states, so most frames carry a 64-bit read
//                       tag next to the 64-bit timestamp.
//   TimeEfficientCodec — the Mostéfaoui–Raynal time-efficient register.
//                       Three types (2 meaningful bits): an adopt-echo
//                       that doubles as the write frame, a bare read
//                       query, and a state reply.
//
// Layouts are byte-exact in fastread_codec.cpp and documented in
// docs/wire-protocol.md.
#pragma once

#include "net/codec.hpp"

namespace tbr {

// ---- Oh-RAM! one-and-a-half-round read --------------------------------------

enum class OhRamType : std::uint8_t {
  kWrite = 0,         ///< writer disseminates (wsn, v)
  kWriteAck = 1,      ///< replica confirms wsn
  kRead = 2,          ///< reader announces a read; carries its own state
  kRelay = 3,         ///< replica relays its state for (reader, tag)
  kReadAck = 4,       ///< relay-quorum holder reports its best to the reader
  kWriteBack = 5,     ///< fallback round: reader disseminates the max
  kWriteBackAck = 6,  ///< replica confirms the write-back
};

class OhRamCodec final : public Codec {
 public:
  /// 7 live types fit in 3 bits.
  static constexpr std::uint64_t kTypeBits = 3;
  static constexpr std::uint64_t kSeqBits = 64;
  static constexpr std::uint64_t kTagBits = 64;

  void encode_into(const Message& msg, std::string& out) const override;
  void decode_into(std::string_view bytes, Message& out) const override;
  WireAccounting account(const Message& msg) const override;
  std::string type_name(std::uint8_t type) const override;
};

/// Shared immutable instance (codecs are stateless).
const OhRamCodec& ohram_codec();

// ---- Mostéfaoui–Raynal time-efficient register ------------------------------

enum class TimeEffType : std::uint8_t {
  kEcho = 0,   ///< adopt-echo of (sn, v); a write is the writer's echo of a
               ///< fresh sn
  kRead = 1,   ///< bare read query carrying only the read tag
  kState = 2,  ///< per-query state reply (tag, sn, v)
};

class TimeEfficientCodec final : public Codec {
 public:
  /// 3 live types fit in 2 bits.
  static constexpr std::uint64_t kTypeBits = 2;
  static constexpr std::uint64_t kSeqBits = 64;
  static constexpr std::uint64_t kTagBits = 64;

  void encode_into(const Message& msg, std::string& out) const override;
  void decode_into(std::string_view bytes, Message& out) const override;
  WireAccounting account(const Message& msg) const override;
  std::string type_name(std::uint8_t type) const override;
};

/// Shared immutable instance (codecs are stateless).
const TimeEfficientCodec& time_efficient_codec();

}  // namespace tbr
