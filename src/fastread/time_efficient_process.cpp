#include "fastread/time_efficient_process.hpp"

#include <utility>

namespace tbr {

TimeEfficientProcess::TimeEfficientProcess(GroupConfig cfg, ProcessId self)
    : RegisterProcessBase(std::move(cfg), self), val_(cfg_.initial) {
  know_.resize(cfg_.n, 0);  // sn 0, the initial value, is stored by all
}

// ---- shared helpers ---------------------------------------------------------

void TimeEfficientProcess::adopt(NetworkContext& net, SeqNo seq,
                                 const Value& v) {
  if (seq <= sn_) return;
  sn_ = seq;
  val_ = v;
  know_[self_] = sn_;
  if (sn_ > last_echoed_) {
    // The echo-once step: make the adopted sn public. Skipped sns need no
    // echo of their own — an echo of a higher sn carries strictly more
    // knowledge.
    last_echoed_ = sn_;
    echo_out_.type = static_cast<std::uint8_t>(TimeEffType::kEcho);
    echo_out_.aux = 0;
    echo_out_.seq = sn_;
    echo_out_.has_value = true;
    echo_out_.value = val_;
    echo_out_.debug_index = sn_;
    echo_out_.wire = codec().account(echo_out_);
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (j != self_) net.send(j, echo_out_);
    }
  }
}

std::uint32_t TimeEfficientProcess::count_know(SeqNo at_least) const {
  std::uint32_t count = 0;
  for (const SeqNo k : know_) {
    if (k >= at_least) ++count;
  }
  return count;
}

void TimeEfficientProcess::check_pending(NetworkContext& net) {
  if (pw_.active && count_know(pw_.wsn) >= cfg_.quorum()) {
    finish_write(net);
    return;  // the completion callback may have replaced the pending state
  }
  if (pr_.active && pr_.committing && count_know(pr_.msn) >= cfg_.quorum()) {
    finish_read(net);
  }
}

// ---- write ------------------------------------------------------------------

void TimeEfficientProcess::start_write(NetworkContext& net, Value v,
                                       WriteDone done) {
  TBR_ENSURE(is_writer(), "only the writer p_w may invoke write()");
  TBR_ENSURE(done != nullptr, "write needs a completion callback");
  begin_operation("write");

  pw_.active = true;
  pw_.wsn = sn_ + 1;  // SWMR: only our own writes advance sn at the writer
  pw_.done = std::move(done);

  adopt(net, pw_.wsn, v);  // our echo of the fresh sn IS the write frame
  check_pending(net);      // n-t may be 1
}

void TimeEfficientProcess::finish_write(NetworkContext&) {
  WriteDone done = std::move(pw_.done);
  pw_.active = false;
  end_operation();
  done();
}

// ---- read -------------------------------------------------------------------

void TimeEfficientProcess::start_read(NetworkContext& net, ReadDone done) {
  TBR_ENSURE(done != nullptr, "read needs a completion callback");
  begin_operation("read");

  const SeqNo tag = ++read_tag_;
  pr_.active = true;
  pr_.committing = false;
  pr_.tag = tag;
  pr_.replies = 1;  // our own state joins the query fold
  pr_.msn = sn_;
  pr_.mval = val_;
  pr_.done = std::move(done);

  out_.type = static_cast<std::uint8_t>(TimeEffType::kRead);
  out_.aux = tag;
  out_.seq = 0;
  out_.has_value = false;
  out_.debug_index = -1;
  out_.wire = codec().account(out_);
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) net.send(j, out_);
  }

  if (pr_.replies >= cfg_.quorum()) {
    pr_.committing = true;
    check_pending(net);
  }
}

void TimeEfficientProcess::finish_read(NetworkContext&) {
  ReadDone done = std::move(pr_.done);
  const SeqNo index = pr_.msn;
  // Return the pinned pair, not the live (sn_, val_): the live state may
  // have adopted a newer, not-yet-committed write meanwhile. Swap keeps
  // pr_.mval reusable for a re-entrant next operation.
  result_val_.mutable_bytes().swap(pr_.mval.mutable_bytes());
  pr_.active = false;
  end_operation();
  done(result_val_, index);
}

// ---- message handling -------------------------------------------------------

void TimeEfficientProcess::on_message(NetworkContext& net, ProcessId from,
                                      const Message& msg) {
  TBR_ENSURE(!crashed_, "runtime delivered a message to a crashed process");
  TBR_ENSURE(from < cfg_.n && from != self_, "bad sender");
  switch (static_cast<TimeEffType>(msg.type)) {
    case TimeEffType::kEcho: {
      if (msg.seq > know_[from]) know_[from] = msg.seq;
      adopt(net, msg.seq, msg.value);
      check_pending(net);
      break;
    }
    case TimeEffType::kRead: {
      out_.type = static_cast<std::uint8_t>(TimeEffType::kState);
      out_.aux = msg.aux;
      out_.seq = sn_;
      out_.has_value = true;
      out_.value = val_;
      out_.debug_index = sn_;
      out_.wire = codec().account(out_);
      net.send(from, out_);
      break;
    }
    case TimeEffType::kState: {
      // A state reply is knowledge too: the sender stores msg.seq.
      if (msg.seq > know_[from]) know_[from] = msg.seq;
      adopt(net, msg.seq, msg.value);
      if (pr_.active && !pr_.committing && msg.aux == pr_.tag) {
        if (msg.seq > pr_.msn) {
          pr_.msn = msg.seq;
          pr_.mval = msg.value;
        }
        pr_.replies += 1;
        if (pr_.replies >= cfg_.quorum()) pr_.committing = true;
      }
      check_pending(net);
      break;
    }
    default:
      TBR_ENSURE(false, "unknown timeeff frame type");
  }
}

void TimeEfficientProcess::on_crash() { crashed_ = true; }

std::uint64_t TimeEfficientProcess::local_memory_bytes() const {
  // Replica pair + the knowledge vector (n sequence numbers) + counters.
  return 8 /*sn*/ + val_.size() + 8 /*last_echoed*/ + 8 * know_.size() +
         8 /*read_tag*/ + pr_.mval.size();
}

// ---- factory ----------------------------------------------------------------

std::unique_ptr<RegisterProcessBase> make_time_efficient_process(
    GroupConfig cfg, ProcessId self) {
  return std::make_unique<TimeEfficientProcess>(std::move(cfg), self);
}

}  // namespace tbr
