// OhRamProcess: one-and-a-half-round atomic SWMR reads (Oh-RAM! style,
// Hadjistasi–Nicolaou–Schwarzmann), adapted to this repository's symmetric
// process groups.
//
// Write (2Δ): the writer increments wsn, adopts locally, broadcasts
// WRITE(wsn, v) and completes on n-t WRITE_ACKs (self included).
//
// Read (3Δ fast / 5Δ fallback): the reader picks a fresh tag and broadcasts
// READ(tag, ts_r, v_r) — the broadcast doubles as the reader's own relay.
// Every process, on FIRST sight of (reader, tag) via READ or RELAY, relays
// its own state with RELAY(tag, reader, ts_p, v_p) to everyone else and
// starts folding a relay set seeded with its own state. Once a process has
// relays from n-t distinct processes it adopts the best pair it folded and
// reports it to the reader with READ_ACK(tag, best) — the reader counts
// itself as an acker the moment its own relay set completes. The reader
// finishes on n-t READ_ACKs:
//
//   * all acks report the SAME timestamp  → return it (1.5 rounds, 3Δ);
//   * timestamps disagree (a write is concurrent) → fall back to one
//     write-back round: broadcast WRITE_BACK(tag, max), await n-t
//     WRITE_BACK_ACKs (self included), return the max (5Δ).
//
// Atomicity of the fast path: each of the n-t ackers adopted a state ≥ T
// before acking, so a quorum stores ≥ T when the read returns; any later
// read's per-acker relay sets (size n-t) intersect that quorum (n-2t ≥ 1),
// so every later ack is ≥ T. The fallback path quorum-stores the max
// explicitly, ABD-style. The protocol trades messages for latency: reads
// cost O(n²) frames where the two-bit engine pays O(n).
//
// Steady state is allocation-free: relay slots, their seen-sets and every
// outbound frame are fixed-capacity members sized at construction.
#pragma once

#include <memory>
#include <vector>

#include "fastread/fastread_codec.hpp"
#include "net/register_process.hpp"

namespace tbr {

class OhRamProcess final : public RegisterProcessBase {
 public:
  OhRamProcess(GroupConfig cfg, ProcessId self);

  // ---- RegisterProcessBase -----------------------------------------------
  void start_write(NetworkContext& net, Value v, WriteDone done) override;
  void start_read(NetworkContext& net, ReadDone done) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;
  std::uint64_t local_memory_bytes() const override;
  const Codec& codec() const override { return ohram_codec(); }

  // ---- introspection -----------------------------------------------------
  SeqNo replica_seq() const noexcept { return ts_; }
  const Value& replica_value() const noexcept { return val_; }
  bool crashed() const noexcept { return crashed_; }
  /// Reads completed without the write-back round (the 1.5-round path).
  std::uint64_t fast_reads() const noexcept { return fast_reads_; }
  /// Reads that fell back to the write-back round.
  std::uint64_t fallback_reads() const noexcept { return fallback_reads_; }

 private:
  /// Per-reader relay collection: one slot per possible reader, recycled
  /// across that reader's tags.
  struct RelaySlot {
    SeqNo tag = 0;  // 0 = no read observed yet (live tags start at 1)
    std::uint32_t relays = 0;
    bool acked = false;
    SeqNo best_seq = 0;
    Value best_val;
    std::vector<std::uint8_t> seen;  // indexed by relaying process
  };

  struct PendingWrite {
    bool active = false;
    std::uint32_t acks = 0;
    WriteDone done;
  };

  struct PendingRead {
    bool active = false;
    bool write_back = false;
    SeqNo tag = 0;
    std::uint32_t acks = 0;
    std::uint32_t wb_acks = 0;
    bool have_first = false;
    bool all_same = true;
    SeqNo first_seq = 0;
    SeqNo best_seq = 0;
    Value best_val;
    ReadDone done;
  };

  void adopt(SeqNo seq, const Value& v);
  void broadcast(NetworkContext& net, Message& msg);
  /// Fold one relayed state into (reader, tag)'s slot; on first sight of
  /// the tag, reset the slot and relay our own state.
  void observe_relay(NetworkContext& net, ProcessId reader, SeqNo tag,
                     ProcessId from, SeqNo seq, const Value& v);
  void maybe_ack(NetworkContext& net, ProcessId reader);
  /// Reader side: fold one READ_ACK (from a peer or from ourselves).
  void fold_read_ack(NetworkContext& net, SeqNo tag, SeqNo seq,
                     const Value& v);
  void start_write_back(NetworkContext& net);
  void finish_write(NetworkContext& net);
  void finish_read(NetworkContext& net);

  // Replica state: the freshest (timestamp, value) pair seen.
  SeqNo ts_ = 0;
  Value val_;

  std::vector<RelaySlot> slots_;  // one per potential reader

  // Initiator state.
  SeqNo wsn_ = 0;       // writer's local write counter
  SeqNo read_tag_ = 0;  // this process's read counter
  PendingWrite pw_;
  PendingRead pr_;

  std::uint64_t fast_reads_ = 0;
  std::uint64_t fallback_reads_ = 0;
  bool crashed_ = false;

  // Recycled outbound frames (broadcasts vs. point replies compose, so two
  // scratches keep every send fully built before the next one starts).
  Message out_;
  Message relay_out_;
  // Completion scratch: the result value swaps here before the callback
  // runs, so a re-entrant next operation can freely reuse pr_.best_val.
  Value result_val_;
};

std::unique_ptr<RegisterProcessBase> make_ohram_process(GroupConfig cfg,
                                                        ProcessId self);

}  // namespace tbr
