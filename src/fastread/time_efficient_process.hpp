// TimeEfficientProcess: the Mostéfaoui–Raynal time-efficient SWMR register
// (arXiv:1601.04820): sequential reads terminate in a single round trip
// (2Δ) because committed writes are made *public* by an adopt-echo
// reliable-broadcast step instead of a per-read write-back.
//
// State per process: the freshest (sn, value) pair, a knowledge vector
// know[j] = highest sn process j is known to store (know[self] tracks our
// own sn), and last_echoed, the highest sn we have already echoed.
//
// Echo rule: whenever a process adopts a NEW sn — from the writer's frame
// or from a peer's echo — it broadcasts ECHO(sn, v) exactly once for that
// sn. A write IS the writer's echo of a fresh sn: there is no separate
// write frame. Receiving ECHO(sn, v) from j raises know[j] and adopts.
//
// Write (2Δ): the writer adopts (sn+1, v), echoes it, and completes once
// |{j : know[j] ≥ sn+1}| ≥ n-t — the echoes coming straight back.
//
// Read (2Δ sequential): broadcast READ(tag); every process replies
// STATE(tag, sn, v). The reader folds n-t replies (its own state
// included), pins the max pair (msn, v_msn), adopts it (echoing if new),
// and then *commits*: it parks until |{j : know[j] ≥ msn}| ≥ n-t and
// returns the pinned pair — not its live state, which may meanwhile hold
// a newer, uncommitted sn. After a completed write, every correct
// process's echo of that sn has already arrived everywhere, so the commit
// wait is already satisfied when the replies land: one round trip.
//
// Atomicity: an operation returns only once n-t processes are known to
// store ≥ its sn; any later read's n-t replies intersect that set
// (n-2t ≥ 1), so reads never go backwards. Liveness under ≤ t crashes
// (writer included): the reader itself has echoed ≥ msn, every correct
// process therefore eventually adopts and echoes ≥ msn, and the commit
// wait unblocks.
//
// Steady state is allocation-free: the knowledge vector is sized at
// construction and every outbound frame is a recycled member.
#pragma once

#include <memory>
#include <vector>

#include "fastread/fastread_codec.hpp"
#include "net/register_process.hpp"

namespace tbr {

class TimeEfficientProcess final : public RegisterProcessBase {
 public:
  TimeEfficientProcess(GroupConfig cfg, ProcessId self);

  // ---- RegisterProcessBase -----------------------------------------------
  void start_write(NetworkContext& net, Value v, WriteDone done) override;
  void start_read(NetworkContext& net, ReadDone done) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;
  std::uint64_t local_memory_bytes() const override;
  const Codec& codec() const override { return time_efficient_codec(); }

  // ---- introspection -----------------------------------------------------
  SeqNo replica_seq() const noexcept { return sn_; }
  const Value& replica_value() const noexcept { return val_; }
  SeqNo known_by(ProcessId j) const { return know_.at(j); }
  bool crashed() const noexcept { return crashed_; }

 private:
  struct PendingWrite {
    bool active = false;
    SeqNo wsn = 0;
    WriteDone done;
  };

  struct PendingRead {
    bool active = false;
    bool committing = false;  // query replies folded; waiting on know[]
    SeqNo tag = 0;
    std::uint32_t replies = 0;
    SeqNo msn = 0;  // the pinned maximum of the query set
    Value mval;
    ReadDone done;
  };

  /// Adopt (seq, v) if newer, echoing the adopted sn once. Callers follow
  /// up with check_pending(): adoption and know[] changes both unpark.
  void adopt(NetworkContext& net, SeqNo seq, const Value& v);
  std::uint32_t count_know(SeqNo at_least) const;
  void check_pending(NetworkContext& net);
  void finish_write(NetworkContext& net);
  void finish_read(NetworkContext& net);

  // Replica state.
  SeqNo sn_ = 0;
  Value val_;
  SeqNo last_echoed_ = 0;   // sn 0 (the initial value) needs no echo
  std::vector<SeqNo> know_;  // know_[j]: highest sn j is known to store

  // Initiator state.
  SeqNo read_tag_ = 0;
  PendingWrite pw_;
  PendingRead pr_;
  bool crashed_ = false;

  // Recycled outbound frames: echoes fire from inside adopt() while a
  // reply may be half-composed, so they get their own scratch.
  Message out_;
  Message echo_out_;
  // Completion scratch (see OhRamProcess::finish_read).
  Value result_val_;
};

std::unique_ptr<RegisterProcessBase> make_time_efficient_process(
    GroupConfig cfg, ProcessId self);

}  // namespace tbr
