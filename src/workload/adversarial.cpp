#include "workload/adversarial.hpp"

#include "abd/phased_codec.hpp"
#include "abd/phased_process.hpp"
#include "core/twobit_codec.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {

namespace {

constexpr Tick kFast = 10;
constexpr Tick kSlow = 1'000'000;

GroupConfig scenario_cfg() {
  GroupConfig cfg;
  cfg.n = 5;
  cfg.t = 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

/// Shared driver: warm everyone up with value 1, start write 2, run reader
/// p1 (fresh side) at +30 and reader p2 (stale side) at +200, drain, check.
ScenarioOutcome drive(SimRegisterGroup& group) {
  ScenarioOutcome outcome;
  HistoryLog log;

  // Warm-up: value 1 reaches everyone (possibly over slow links — virtual
  // time is free) so every pairwise freshness relation is established.
  {
    const auto id = log.begin_write(0, group.net().now(), 1,
                                    Value::from_int64(1));
    bool done = false;
    group.begin_write(Value::from_int64(1), [&] {
      log.end_write(id, group.net().now());
      done = true;
    });
    TBR_ENSURE(group.net().run_until([&] { return done; }),
               "warm-up write must complete");
    group.settle();
  }

  const Tick base = group.net().now();
  // The contested write: value 2, held back from the stale side by the
  // scenario's delay model. Completion time depends on the variant.
  const auto write_id =
      log.begin_write(0, base, 2, Value::from_int64(2));
  group.net().schedule_at(base, [&, write_id] {
    group.begin_write(Value::from_int64(2), [&, write_id] {
      log.end_write(write_id, group.net().now());
    });
  });

  // Fresh-side read at p1.
  bool first_done = false;
  group.net().schedule_at(base + 30, [&] {
    const auto id = log.begin_read(1, group.net().now());
    group.begin_read(1, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
      outcome.first_read_index = idx;
      first_done = true;
    });
  });

  // Stale-side read at p2, strictly after the fresh read completes in the
  // ablated variants (+200 >> +50) yet well inside the slow window.
  bool second_done = false;
  group.net().schedule_at(base + 200, [&] {
    const auto id = log.begin_read(2, group.net().now());
    group.begin_read(2, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
      outcome.second_read_index = idx;
      second_done = true;
    });
  });

  TBR_ENSURE(group.net().run(), "scenario must drain");
  outcome.both_completed = first_done && second_done;
  outcome.stats = SwmrChecker::analyze(log.ops(), Value::from_int64(0));
  return outcome;
}

bool is_write_frame_twobit(const Message& msg) { return msg.type <= 1; }

}  // namespace

ScenarioOutcome run_twobit_inversion_scenario(const TwoBitOptions& options) {
  SimRegisterGroup::Options gopt;
  gopt.cfg = scenario_cfg();
  gopt.seed = 1;
  // WRITE frames from the fresh side {p0, p1} towards {p2, p3, p4} crawl;
  // all control frames and all other channels are instant.
  gopt.delay = make_frame_delay(
      [](ProcessId from, ProcessId to, const Message& msg) {
        const bool slow = is_write_frame_twobit(msg) && from <= 1 && to >= 2;
        return slow ? kSlow : kFast;
      });
  gopt.process_factory = [options](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
  SimRegisterGroup group(std::move(gopt));
  return drive(group);
}

ScenarioOutcome run_abd_inversion_scenario(bool regular) {
  SimRegisterGroup::Options gopt;
  gopt.cfg = scenario_cfg();
  gopt.seed = 1;
  // Any frame carrying value #2 (disseminations, query replies, write-backs)
  // from the fresh side towards {p2, p3, p4} crawls.
  gopt.delay = make_frame_delay(
      [](ProcessId from, ProcessId to, const Message& msg) {
        const bool carries_new = msg.has_value && msg.seq >= 2;
        const bool slow = carries_new && from <= 1 && to >= 2;
        return slow ? kSlow : kFast;
      });
  gopt.process_factory = [regular](const GroupConfig& cfg, ProcessId pid) {
    return regular ? make_abd_regular_process(cfg, pid)
                   : make_abd_unbounded_process(cfg, pid);
  };
  SimRegisterGroup group(std::move(gopt));
  return drive(group);
}

ScenarioOutcome run_twobit_stale_read_scenario(const TwoBitOptions& options) {
  SimRegisterGroup::Options gopt;
  gopt.cfg = scenario_cfg();
  gopt.seed = 1;
  // Value dissemination towards {p1, p2} crawls; the write still completes
  // quickly against the quorum {p0, p3, p4}. The reader at p2 then starts a
  // read strictly after the write completed.
  gopt.delay = make_frame_delay(
      [](ProcessId from, ProcessId to, const Message& msg) {
        const bool to_stale = to == 1 || to == 2;
        const bool from_stale = from == 1 || from == 2;
        const bool slow =
            is_write_frame_twobit(msg) && to_stale && !from_stale;
        return slow ? kSlow : kFast;
      });
  gopt.process_factory = [options](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
  SimRegisterGroup group(std::move(gopt));

  ScenarioOutcome outcome;
  HistoryLog log;
  {
    const auto id = log.begin_write(0, group.net().now(), 1,
                                    Value::from_int64(1));
    bool done = false;
    group.begin_write(Value::from_int64(1), [&] {
      log.end_write(id, group.net().now());
      done = true;
    });
    TBR_ENSURE(group.net().run_until([&] { return done; }),
               "warm-up write must complete");
    group.settle();
  }

  const Tick base = group.net().now();
  bool write_done = false;
  const auto write_id = log.begin_write(0, base, 2, Value::from_int64(2));
  group.net().schedule_at(base, [&, write_id] {
    group.begin_write(Value::from_int64(2), [&, write_id] {
      log.end_write(write_id, group.net().now());
      write_done = true;
    });
  });
  // The write completes against {p0, p3, p4} within ~2 fast hops.
  TBR_ENSURE(group.net().run_until([&] { return write_done; },
                                   SimNetwork::kDefaultMaxEvents,
                                   base + 1000),
             "write must complete against the fast-side quorum");

  bool read_done = false;
  group.net().schedule_after(10, [&] {
    const auto id = log.begin_read(2, group.net().now());
    group.begin_read(2, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
      outcome.second_read_index = idx;
      read_done = true;
    });
  });
  TBR_ENSURE(group.net().run(), "scenario must drain");
  outcome.both_completed = read_done;
  outcome.first_read_index = 2;  // what a correct read must return
  outcome.stats = SwmrChecker::analyze(log.ops(), Value::from_int64(0));
  return outcome;
}

}  // namespace tbr
