// Registry of the four register implementations Table 1 compares.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/register_process.hpp"

namespace tbr {

enum class Algorithm {
  kTwoBit,         ///< this paper: four message types, 2 control bits
  kAbdUnbounded,   ///< ABD'95, unbounded sequence numbers
  kAbdBounded,     ///< ABD'95 bounded variant (structural emulation)
  kAttiya,         ///< Attiya'00 bounded labels (structural emulation)
  kOhRam,          ///< Oh-RAM! one-and-a-half-round read (src/fastread)
  kTimeEfficient,  ///< Mostéfaoui–Raynal time-efficient register
};

/// The four Table 1 algorithms, in Table 1 column order. The fast-path
/// read engines are deliberately NOT in this list: Table 1 sweeps and
/// golden digests iterate it, and their membership is part of the paper's
/// comparison, not ours.
const std::vector<Algorithm>& all_algorithms();

/// The two fast-path read engines (src/fastread/), in docs order.
const std::vector<Algorithm>& fastread_algorithms();

std::string algorithm_name(Algorithm algo);

/// Instantiate one process of the chosen implementation.
std::unique_ptr<RegisterProcessBase> make_register_process(Algorithm algo,
                                                           GroupConfig cfg,
                                                           ProcessId self);

/// Build the full group (index i = process i).
std::vector<std::unique_ptr<ProcessBase>> make_register_group(
    Algorithm algo, const GroupConfig& cfg);

}  // namespace tbr
