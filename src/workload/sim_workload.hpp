// Closed-loop randomized workloads over the simulator, producing operation
// histories for the atomicity checker plus traffic/latency measurements.
//
// Each process runs a client loop: issue an operation, wait for completion,
// think for a random interval, repeat, up to its quota. The writer issues
// writes (optionally interleaving reads); every other process issues reads.
// Crashes follow a FaultPlan. This is the engine behind the property-based
// correctness suite and several benches.
#pragma once

#include <memory>
#include <vector>

#include "checker/history.hpp"
#include "checker/swmr_checker.hpp"
#include "metrics/histogram.hpp"
#include "sim/fault_plan.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {

struct SimWorkloadOptions {
  GroupConfig cfg;
  Algorithm algo = Algorithm::kTwoBit;
  std::uint64_t seed = 1;

  /// Operations each live process tries to complete.
  std::uint32_t ops_per_process = 16;
  /// Writer interleaves reads with this probability per operation.
  double writer_read_fraction = 0.0;
  /// Uniform think time in [0, think_time_max] ticks between operations.
  Tick think_time_max = 2000;

  /// Delay model factory (nullptr => UniformDelay(1, 1000)).
  std::function<std::unique_ptr<DelayModel>(const GroupConfig&)> delay_factory;

  /// Optional process-construction override (ablation variants etc.);
  /// forwarded to SimRegisterGroup::Options::process_factory.
  std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                     ProcessId)>
      process_factory;

  /// Crashes: up to `crashes` victims (<= cfg.t) at random times within
  /// `crash_horizon` ticks.
  std::uint32_t crashes = 0;
  bool allow_writer_crash = false;
  Tick crash_horizon = 50'000;

  /// Install the two-bit lemma-invariant observer (Algorithm::kTwoBit only).
  bool invariant_checks = false;

  /// OUT-OF-MODEL loss injection for the D8 model-boundary experiment.
  double loss_rate = 0.0;

  /// Event-scheduler backend (SimNetwork::Options::scheduler_policy).
  EventQueue::Policy scheduler_policy = EventQueue::Policy::kHeap;

  /// Per-node frame service time (SimNetwork capacity model); 0 = off.
  Tick service_time = 0;
};

struct SimWorkloadResult {
  std::vector<OpRecord> ops;
  MessageStats stats;
  Tick duration = 0;
  bool drained = false;             ///< simulator ran out of events (normal)
  std::uint32_t crashes = 0;        ///< crashes that actually happened
  std::uint64_t invariant_checks = 0;
  Histogram write_latency;
  Histogram read_latency;

  /// Ops completed by processes that never crashed — the liveness theorem
  /// (Lemmas 8/9) says this must equal their full quota.
  std::uint32_t completed_by_correct = 0;
  std::uint32_t quota_of_correct = 0;

  /// Convenience: run the fast atomicity checker over `ops`.
  CheckResult check_atomicity(const Value& initial) const {
    return SwmrChecker::check(ops, initial);
  }
};

SimWorkloadResult run_sim_workload(const SimWorkloadOptions& options);

}  // namespace tbr
