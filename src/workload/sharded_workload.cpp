#include "workload/sharded_workload.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace tbr {

namespace {

/// One generated client operation, before routing.
struct GenOp {
  std::uint32_t key_id = 0;
  bool is_write = false;
  std::int64_t payload = 0;
};

/// Zipf(s) sampler over ranks 0..keys-1 via inverse CDF, with ranks
/// shuffled onto key ids so the hot keys land on seed-determined shards.
class KeySampler {
 public:
  KeySampler(std::uint32_t keys, double s, Rng& rng) : rank_to_key_(keys) {
    TBR_ENSURE(keys >= 1, "workload needs at least one key");
    TBR_ENSURE(s >= 0.0, "zipf exponent cannot be negative");
    cdf_.reserve(keys);
    double total = 0.0;
    for (std::uint32_t k = 0; k < keys; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_.push_back(total);
    }
    std::iota(rank_to_key_.begin(), rank_to_key_.end(), 0u);
    rng.shuffle(rank_to_key_);
  }

  std::uint32_t sample(Rng& rng) const {
    const double u = rng.uniform01() * cdf_.back();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto rank = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                 static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
    return rank_to_key_[rank];
  }

 private:
  std::vector<double> cdf_;
  std::vector<std::uint32_t> rank_to_key_;
};

std::vector<GenOp> generate_ops(const ShardedWorkloadOptions& opt) {
  Rng rng(opt.seed ^ 0x5EEDF00DULL);
  KeySampler sampler(opt.keys, opt.zipf_s, rng);
  std::vector<GenOp> ops;
  ops.reserve(opt.total_ops);
  for (std::uint64_t k = 0; k < opt.total_ops; ++k) {
    GenOp op;
    op.key_id = sampler.sample(rng);
    op.is_write = !rng.chance(opt.read_fraction);
    op.payload = static_cast<std::int64_t>(k + 1);
    ops.push_back(op);
  }
  return ops;
}

std::vector<std::string> make_key_names(std::uint32_t keys) {
  std::vector<std::string> names;
  names.reserve(keys);
  for (std::uint32_t k = 0; k < keys; ++k) {
    names.push_back("key-" + std::to_string(k));
  }
  return names;
}

}  // namespace

// ---- mode 1: the live engine, wall-clock ------------------------------------

ShardedWorkloadResult run_sharded_workload(
    const ShardedWorkloadOptions& options) {
  TBR_ENSURE(options.client_threads >= 1, "need at least one client");
  ShardedKvStore::Options store_opt;
  store_opt.shards = options.shards;
  store_opt.n = options.n;
  store_opt.t = options.t;
  store_opt.slots_per_shard = options.slots_per_shard;
  store_opt.seed = options.seed;
  store_opt.engine = options.engine;
  store_opt.scheduler_policy = options.scheduler_policy;
  store_opt.coalesce_writes = options.coalesce_writes;
  store_opt.max_batch = options.max_batch;
  store_opt.min_batch = options.min_batch;
  store_opt.pin_shard_threads = options.pin_shard_threads;
  ShardedKvStore store(std::move(store_opt));

  const auto ops = generate_ops(options);
  const auto keys = make_key_names(options.keys);

  std::vector<std::uint64_t> completed(options.client_threads, 0);
  std::vector<std::uint64_t> failed(options.client_threads, 0);

  const auto started = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> clients;
    clients.reserve(options.client_threads);
    for (std::uint32_t c = 0; c < options.client_threads; ++c) {
      clients.emplace_back([&, c] {
        // Client c owns ops c, c+threads, c+2*threads, ... — every client
        // sees the full key/skew mix. Submission runs in waves of
        // `client_pipeline` pooled ops (the unified KvClient: a Ticket per
        // op, no promise shared state) so each shard's mailbox accumulates
        // a real batching window.
        KvClient& client = store.client();
        std::vector<Ticket> wave;
        wave.reserve(options.client_pipeline);
        auto settle_wave = [&] {
          for (const Ticket& t : wave) {
            const OpResult r = client.wait(t);
            if (r.status.ok()) {
              ++completed[c];
            } else {
              ++failed[c];
            }
          }
          wave.clear();
        };
        for (std::uint64_t k = c; k < ops.size();
             k += options.client_threads) {
          const GenOp& op = ops[k];
          if (op.is_write) {
            wave.push_back(client.put(keys[op.key_id],
                                      Value::from_int64(op.payload)));
          } else {
            wave.push_back(client.get(keys[op.key_id]));
          }
          if (wave.size() >= options.client_pipeline) settle_wave();
        }
        settle_wave();
      });
    }
  }  // join clients
  store.drain();
  const auto stopped = std::chrono::steady_clock::now();

  ShardedWorkloadResult result;
  for (std::uint32_t c = 0; c < options.client_threads; ++c) {
    result.ops_completed += completed[c];
    result.ops_failed += failed[c];
  }
  result.wall_seconds =
      std::chrono::duration<double>(stopped - started).count();
  result.ops_per_sec = result.wall_seconds > 0
                           ? result.ops_completed / result.wall_seconds
                           : 0.0;
  result.batch = store.batch_stats();
  result.frames = store.frames_sent();
  return result;
}

// ---- mode 2: deterministic capacity projection -------------------------------

CapacityProjection project_sharded_capacity(
    const ShardedWorkloadOptions& options) {
  TBR_ENSURE(options.service_time > 0,
             "the capacity projection needs a per-frame service time");
  ShardRouter router(options.shards, options.slots_per_shard, options.n);

  struct RoutedOp {
    Tick arrival = 0;
    std::uint32_t slot = 0;
    ProcessId home = 0;
    bool is_write = false;
    std::int64_t payload = 0;
  };
  const auto ops = generate_ops(options);
  const auto keys = make_key_names(options.keys);
  std::vector<std::vector<RoutedOp>> per_shard(options.shards);
  for (std::uint64_t k = 0; k < ops.size(); ++k) {
    const auto at = router.place(keys[ops[k].key_id]);
    RoutedOp routed;
    routed.arrival = static_cast<Tick>(k) * options.inter_arrival;
    routed.slot = at.slot;
    routed.home = at.home;
    routed.is_write = ops[k].is_write;
    routed.payload = ops[k].payload;
    per_shard[at.shard].push_back(routed);
  }

  const std::uint32_t n = options.n;
  const std::uint32_t t = options.t;
  auto slot_cfg = [n, t](std::uint32_t slot) {
    GroupConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.writer = slot % n;
    cfg.initial = Value();
    cfg.validate();
    return cfg;
  };

  CapacityProjection projection;
  projection.ops = ops.size();
  projection.shard_ticks.assign(options.shards, 0);
  double latency_sum = 0.0;

  for (std::uint32_t s = 0; s < options.shards; ++s) {
    const auto& shard_ops = per_shard[s];
    if (shard_ops.empty()) continue;

    std::vector<std::unique_ptr<ProcessBase>> processes;
    processes.reserve(n);
    const Algorithm engine = options.engine;
    auto factory = [engine](const GroupConfig& cfg, ProcessId pid) {
      return make_register_process(engine, cfg, pid);
    };
    for (ProcessId pid = 0; pid < n; ++pid) {
      processes.push_back(std::make_unique<MuxProcess>(
          options.slots_per_shard, slot_cfg, pid, factory));
    }
    SimNetwork::Options net_opt;
    net_opt.seed = options.seed ^ (0xCAFEULL * (s + 1));
    net_opt.delay = make_constant_delay(options.delay_ticks);
    net_opt.scheduler_policy = options.scheduler_policy;
    net_opt.service_time = options.service_time;
    SimNetwork net(std::move(processes), std::move(net_opt));

    ProcessId next_reader = 0;
    std::size_t next = 0;
    while (next < shard_ops.size()) {
      // The batching window: everything that has arrived by the time the
      // previous window finished (bounded by max_batch), or — if the shard
      // is idle — the next op alone at its arrival instant. A min_batch
      // floor (group commit) holds the window open until enough ops have
      // arrived; the tail of the trace opens partial so the run drains.
      Tick start = std::max(net.now(), shard_ops[next].arrival);
      if (options.min_batch > 1) {
        const std::size_t want =
            std::min(options.min_batch, shard_ops.size() - next);
        start = std::max(start, shard_ops[next + want - 1].arrival);
      }
      std::size_t end = next;
      while (end < shard_ops.size() && shard_ops[end].arrival <= start &&
             (options.max_batch == 0 ||
              end - next < options.max_batch)) {
        ++end;
      }

      std::vector<std::vector<MuxProcess::BatchOp>> per_node(n);
      for (std::size_t k = next; k < end; ++k) {
        const RoutedOp& op = shard_ops[k];
        MuxProcess::BatchOp batch_op;
        batch_op.slot = op.slot;
        if (op.is_write) {
          batch_op.is_write = true;
          batch_op.value = Value::from_int64(op.payload);
          per_node[op.home].push_back(std::move(batch_op));
        } else {
          const ProcessId reader = next_reader;
          next_reader = (next_reader + 1) % n;
          per_node[reader].push_back(std::move(batch_op));
        }
      }

      auto outstanding = std::make_shared<std::size_t>(0);
      for (ProcessId pid = 0; pid < n; ++pid) {
        if (per_node[pid].empty()) continue;
        ++*outstanding;
      }
      net.schedule_at(start, [&net, &per_node, n, outstanding,
                              coalesce = options.coalesce_writes,
                              stats = &projection.batch] {
        for (ProcessId pid = 0; pid < n; ++pid) {
          if (per_node[pid].empty()) continue;
          auto& mux = net.process_as<MuxProcess>(pid);
          mux.start_batch(net.context(pid), std::move(per_node[pid]),
                          coalesce, [outstanding] { --*outstanding; },
                          stats);
        }
      });
      const bool ok = net.run_until(
          [outstanding] { return *outstanding == 0; });
      TBR_ENSURE(ok, "capacity projection lost liveness (bug)");
      // Client-observed latency: the whole window completes together, so
      // every op in it waited from its arrival to the window's finish.
      for (std::size_t k = next; k < end; ++k) {
        latency_sum +=
            static_cast<double>(net.now() - shard_ops[k].arrival);
      }
      next = end;
    }
    projection.shard_ticks[s] = net.now();
    projection.frames += net.stats().total_sent();
  }
  projection.mean_latency_ticks =
      projection.ops > 0 ? latency_sum / static_cast<double>(projection.ops)
                         : 0.0;

  projection.busiest_shard_ticks = *std::max_element(
      projection.shard_ticks.begin(), projection.shard_ticks.end());
  projection.ops_per_mtick =
      projection.busiest_shard_ticks > 0
          ? static_cast<double>(projection.ops) * 1e6 /
                static_cast<double>(projection.busiest_shard_ticks)
          : 0.0;
  return projection;
}

}  // namespace tbr
