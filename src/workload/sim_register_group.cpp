#include "workload/sim_register_group.hpp"

#include <algorithm>
#include <utility>

#include "core/twobit_process.hpp"

namespace tbr {

// ---- ClientImpl: the unified client API over the simulator -------------------
//
// Issue = start the protocol op with a completion capturing two pointers
// (std::function inline storage); park = drive the event loop until the
// op's ready flag rises. Submit-side failures (crashed target) complete
// synchronously with a non-ok Status. Heap-held so client handles stay
// valid across moves of the owning group.

class SimRegisterGroup::ClientImpl final : public RegisterClientEngine {
 public:
  ClientImpl(SimNetwork& net, GroupConfig cfg)
      : net_(&net), cfg_(std::move(cfg)), client_(*this) {}

  std::uint32_t client_nodes() const override { return cfg_.n; }
  ProcessId client_writer() const override { return cfg_.writer; }

  ProcessId client_pick_reader() override {
    return rotor_.pick(cfg_.n,
                       [this](ProcessId r) { return net_->crashed(r); });
  }

  void client_issue(OpState& st) override {
    if (net_->crashed(st.node)) {
      st.owner->complete_failed(
          st, Status(StatusCode::kCrashed, st.kind == OpKind::kWrite
                                               ? "writer has crashed"
                                               : "reader has crashed"));
      return;
    }
    st.start = net_->now();
    auto& proc = net_->process_as<RegisterProcessBase>(st.node);
    if (st.kind == OpKind::kWrite) {
      proc.start_write(net_->context(st.node), std::move(st.value),
                       [this, &st] {
                         st.result.latency = net_->now() - st.start;
                         st.owner->complete(st);
                       });
    } else {
      proc.start_read(net_->context(st.node),
                      [this, &st](const Value& v, SeqNo index) {
                        st.result.value = v;  // copy into pooled capacity
                        st.result.version = index;
                        st.result.latency = net_->now() - st.start;
                        st.owner->complete(st);
                      });
    }
  }

  void client_park(OpState& st, OpPool& /*pool*/) override {
    const bool ok = net_->run_until(
        [&st] { return st.ready.load(std::memory_order_acquire); });
    if (!ok) {
      st.result.status =
          Status(StatusCode::kLivenessLost,
                 "register group cannot complete the operation "
                 "(crashed quorum or stuck run)");
    }
  }

  RegisterClient& client() noexcept { return client_; }

 private:
  SimNetwork* net_;
  GroupConfig cfg_;
  ReaderRotor rotor_;
  RegisterClient client_;
};

SimRegisterGroup::SimRegisterGroup(SimRegisterGroup&&) noexcept = default;
SimRegisterGroup& SimRegisterGroup::operator=(SimRegisterGroup&&) noexcept =
    default;
SimRegisterGroup::~SimRegisterGroup() = default;

RegisterClient& SimRegisterGroup::client() {
  if (!client_impl_) {
    client_impl_ = std::make_unique<ClientImpl>(*net_, cfg_);
  }
  return client_impl_->client();
}

SimRegisterGroup::SimRegisterGroup(Options options)
    : cfg_(std::move(options.cfg)), algo_(options.algo) {
  cfg_.validate();
  SimNetwork::Options net_opt;
  net_opt.seed = options.seed;
  net_opt.delay = options.delay ? std::move(options.delay)
                                : make_constant_delay(kDefaultDelta);
  net_opt.loss_rate = options.loss_rate;
  net_opt.scheduler_policy = options.scheduler_policy;
  net_opt.service_time = options.service_time;
  net_opt.track_in_flight = options.track_in_flight;
  if (options.recover_factory) {
    net_opt.recover_factory = [cfg = cfg_,
                               make = std::move(options.recover_factory)](
                                  ProcessId pid) {
      return make(cfg, pid);
    };
  } else if (algo_ == Algorithm::kTwoBit && !options.process_factory) {
    net_opt.recover_factory = [cfg = cfg_](ProcessId pid) {
      TwoBitOptions opt;
      opt.recover_via_catchup = true;
      return std::make_unique<TwoBitProcess>(cfg, pid, opt);
    };
  }
  std::vector<std::unique_ptr<ProcessBase>> group;
  if (options.process_factory) {
    group.reserve(cfg_.n);
    for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
      group.push_back(options.process_factory(cfg_, pid));
    }
  } else {
    group = make_register_group(algo_, cfg_);
  }
  net_ = std::make_unique<SimNetwork>(std::move(group), std::move(net_opt));
}

RegisterProcessBase& SimRegisterGroup::process(ProcessId pid) {
  return net_->process_as<RegisterProcessBase>(pid);
}

void SimRegisterGroup::begin_write(Value v, std::function<void()> done) {
  TBR_ENSURE(!net_->crashed(cfg_.writer), "writer has crashed");
  auto& writer = process(cfg_.writer);
  writer.start_write(net_->context(cfg_.writer), std::move(v),
                     std::move(done));
}

void SimRegisterGroup::begin_read(
    ProcessId reader, std::function<void(const Value&, SeqNo)> done) {
  TBR_ENSURE(reader < cfg_.n, "reader id out of range");
  TBR_ENSURE(!net_->crashed(reader), "reader has crashed");
  auto& proc = process(reader);
  proc.start_read(net_->context(reader), std::move(done));
}

void SimRegisterGroup::settle() {
  const bool drained = net_->run();
  TBR_ENSURE(drained, "protocol traffic did not drain");
  // Quiescent point: refresh the local-memory gauge (max across live
  // processes) so benches and CI read memory alongside the wire tallies.
  std::uint64_t peak = 0;
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    if (net_->crashed(pid)) continue;
    peak = std::max(peak, process(pid).local_memory_bytes());
  }
  net_->stats().record_local_memory(peak);
}

void SimRegisterGroup::crash(ProcessId pid) { net_->crash_now(pid); }

void SimRegisterGroup::crash_at(ProcessId pid, Tick t) {
  net_->crash_at(pid, t);
}

void SimRegisterGroup::recover(ProcessId pid) { net_->recover_now(pid); }

void SimRegisterGroup::recover_at(ProcessId pid, Tick t) {
  net_->recover_at(pid, t);
}

}  // namespace tbr
