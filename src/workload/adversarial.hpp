// Hand-crafted adversarial schedules that pin each wait statement of the
// read path to the atomicity claim it enforces.
//
// Random workloads almost never align two sequential reads inside one
// write's dissemination window, so the wait-ablation experiments use these
// deterministic scenarios: delays are chosen per (channel, frame) so that a
// fresh reader finishes a read *before* a stale reader starts one, while
// the new value is still in flight towards the stale side of the network.
// With the faithful algorithms the second read is forced to return the new
// value; with a wait removed it returns the old one — a new/old inversion
// (Claim 3 / C3), or a stale read (Claim 2 / C2) for the freshness wait.
#pragma once

#include "checker/swmr_checker.hpp"
#include "core/twobit_process.hpp"

namespace tbr {

struct ScenarioOutcome {
  /// Index returned by the early (fresh) and late (stale-side) reads.
  SeqNo first_read_index = -1;
  SeqNo second_read_index = -1;
  bool both_completed = false;
  CheckStats stats;  ///< checker verdict over the recorded history

  bool inverted() const {
    return both_completed && second_read_index < first_read_index;
  }
};

/// Two-bit algorithm, n = 5: value 2 is held back from processes 2..4 while
/// reader p1 (fresh side) completes a read, then reader p2 (stale side)
/// runs one. `options` selects the ablation; with the faithful options the
/// outcome must not invert.
ScenarioOutcome run_twobit_inversion_scenario(const TwoBitOptions& options);

/// Same schedule shape for the ABD family: `regular` = true runs the
/// 1-phase-read ablation (Lamport-regular register), false the faithful
/// 2-phase (query + write-back) ABD.
ScenarioOutcome run_abd_inversion_scenario(bool regular);

/// Stale-read scenario for the responder freshness wait (Fig. 1 line 20):
/// a write *completes* against a far-side quorum while reader p2's replica
/// is still behind; with `eager_proceed` the read returns the overwritten
/// value (C2), with the faithful wait it must return the new one.
ScenarioOutcome run_twobit_stale_read_scenario(const TwoBitOptions& options);

}  // namespace tbr
