#include "workload/sim_workload.hpp"

#include <utility>

#include "core/invariants.hpp"

namespace tbr {

namespace {

struct Driver {
  Driver(const SimWorkloadOptions& options, SimRegisterGroup& group)
      : opt(options),
        grp(group),
        workload_rng(options.seed ^ 0xC0FFEE123456789ULL),
        issued(options.cfg.n, 0),
        completed(options.cfg.n, 0) {}

  const SimWorkloadOptions& opt;
  SimRegisterGroup& grp;
  Rng workload_rng;
  HistoryLog log;
  Histogram write_latency;
  Histogram read_latency;
  std::vector<std::uint32_t> issued;
  std::vector<std::uint32_t> completed;
  SeqNo next_write_index = 1;

  void schedule_next(ProcessId pid) {
    const Tick think =
        opt.think_time_max > 0 ? workload_rng.uniform(0, opt.think_time_max)
                               : 0;
    grp.net().schedule_after(think, [this, pid] { issue(pid); });
  }

  void issue(ProcessId pid) {
    if (grp.net().crashed(pid)) return;
    if (issued[pid] >= opt.ops_per_process) return;
    issued[pid] += 1;

    const bool is_writer = (pid == opt.cfg.writer);
    const bool do_write =
        is_writer && !workload_rng.chance(opt.writer_read_fraction);
    const Tick start = grp.net().now();

    if (do_write) {
      const SeqNo index = next_write_index++;
      Value v = Value::from_int64(index);
      const auto id = log.begin_write(pid, start, index, v);
      grp.begin_write(std::move(v), [this, pid, id, start] {
        log.end_write(id, grp.net().now());
        write_latency.add(grp.net().now() - start);
        completed[pid] += 1;
        schedule_next(pid);
      });
    } else {
      const auto id = log.begin_read(pid, start);
      grp.begin_read(pid, [this, pid, id, start](const Value& v, SeqNo idx) {
        log.end_read(id, grp.net().now(), v, idx);
        read_latency.add(grp.net().now() - start);
        completed[pid] += 1;
        schedule_next(pid);
      });
    }
  }
};

}  // namespace

SimWorkloadResult run_sim_workload(const SimWorkloadOptions& options) {
  GroupConfig cfg = options.cfg;
  cfg.validate();
  TBR_ENSURE(options.crashes <= cfg.t,
             "workload cannot crash more than t processes");

  SimRegisterGroup::Options group_opt;
  group_opt.cfg = cfg;
  group_opt.algo = options.algo;
  group_opt.seed = options.seed;
  group_opt.delay = options.delay_factory
                        ? options.delay_factory(cfg)
                        : make_uniform_delay(1, 1000);
  group_opt.process_factory = options.process_factory;
  group_opt.loss_rate = options.loss_rate;
  group_opt.scheduler_policy = options.scheduler_policy;
  group_opt.service_time = options.service_time;
  // The observer's P1 check walks the per-channel in-flight frames.
  group_opt.track_in_flight = options.invariant_checks;
  SimRegisterGroup group(std::move(group_opt));

  std::unique_ptr<TwoBitInvariantObserver> observer;
  if (options.invariant_checks) {
    TBR_ENSURE(options.algo == Algorithm::kTwoBit,
               "lemma invariants apply to the two-bit algorithm");
    observer = std::make_unique<TwoBitInvariantObserver>(cfg);
    group.net().set_post_event_hook(
        [&obs = *observer](SimNetwork& net) { obs(net); });
  }

  Driver driver(options, group);

  // Crash plan.
  if (options.crashes > 0) {
    Rng fault_rng(options.seed ^ 0xFA117ULL);
    const FaultPlan plan =
        FaultPlan::random(fault_rng, cfg, options.crashes,
                          options.crash_horizon, options.allow_writer_crash);
    plan.install(group.net());
  }

  // Kick off every client at a random offset.
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    driver.schedule_next(pid);
  }

  SimWorkloadResult result;
  result.drained = group.net().run();
  result.duration = group.net().now();
  result.ops = driver.log.ops();
  result.stats = group.net().stats();
  result.crashes = group.net().crash_count();
  result.write_latency = std::move(driver.write_latency);
  result.read_latency = std::move(driver.read_latency);
  if (observer) result.invariant_checks = observer->checks_run();

  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    if (group.net().crashed(pid)) continue;
    result.quota_of_correct += options.ops_per_process;
    result.completed_by_correct += driver.completed[pid];
  }
  return result;
}

}  // namespace tbr
