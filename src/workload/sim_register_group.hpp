// SimRegisterGroup: a ready-to-use register over the simulated network.
//
// client() is the quickstart-level API: write_sync/read_sync drive the
// simulator until the operation completes and report a uniform Status;
// begin_* plus run_until gives full control for overlapping operations,
// crash scheduling and latency sweeps.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "client/client.hpp"
#include "sim/fault_plan.hpp"
#include "sim/sim_network.hpp"
#include "workload/algorithms.hpp"

namespace tbr {

class SimRegisterGroup {
 public:
  struct Options {
    GroupConfig cfg;
    Algorithm algo = Algorithm::kTwoBit;
    std::uint64_t seed = 1;
    /// nullptr => ConstantDelay(kDefaultDelta).
    std::unique_ptr<DelayModel> delay;
    /// Optional override: build each process yourself (e.g. TwoBitProcess
    /// with non-default TwoBitOptions). When set, `algo` is informational.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        process_factory;

    /// OUT-OF-MODEL loss injection (see SimNetwork::Options::loss_rate);
    /// keep 0 except for the D8 model-boundary experiment.
    double loss_rate = 0.0;

    /// Event-scheduler backend (SimNetwork::Options::scheduler_policy).
    EventQueue::Policy scheduler_policy = EventQueue::Policy::kHeap;

    /// Per-node frame service time (SimNetwork::Options::service_time);
    /// 0 = the pure channel-delay model.
    Tick service_time = 0;

    /// Maintain the in-flight frame registry (SimNetwork::Options::
    /// track_in_flight); required by the P1 channel-invariant observer.
    bool track_in_flight = false;

    /// Optional override for the incarnation built by recover()/recover_at.
    /// Unset + algo == kTwoBit: a TwoBitProcess with recover_via_catchup
    /// (it bootstraps from a peer checkpoint). Unset + any other algorithm:
    /// recovery is unavailable.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        recover_factory;
  };
  static constexpr Tick kDefaultDelta = 1000;

  explicit SimRegisterGroup(Options options);
  SimRegisterGroup(SimRegisterGroup&&) noexcept;
  SimRegisterGroup& operator=(SimRegisterGroup&&) noexcept;
  ~SimRegisterGroup();

  // ---- the unified client API ------------------------------------------------
  /// Pooled Ticket/callback completions with uniform Status outcomes
  /// (src/client/client.hpp). wait() drives the simulator until the op
  /// completes; submit-side failures (crashed target) complete immediately
  /// with a non-ok Status instead of throwing. Steady state: zero
  /// allocations per operation. Lazily built; stable across group moves.
  RegisterClient& client();

  /// Let all in-flight protocol traffic drain (e.g. to reach the steady
  /// state in which every process knows every value before a measurement).
  void settle();

  // ---- async API --------------------------------------------------------------
  void begin_write(Value v, std::function<void()> done);
  void begin_read(ProcessId reader,
                  std::function<void(const Value&, SeqNo)> done);

  // ---- environment ---------------------------------------------------------------
  void crash(ProcessId pid);            ///< immediately
  void crash_at(ProcessId pid, Tick t);
  /// Rejoin a crashed pid as a fresh incarnation (see Options::
  /// recover_factory). The rejoiner catches up from peer checkpoints; client
  /// reads routed to it while it bootstraps are deferred, not refused.
  void recover(ProcessId pid);
  void recover_at(ProcessId pid, Tick t);
  SimNetwork& net() noexcept { return *net_; }
  const GroupConfig& config() const noexcept { return cfg_; }
  Algorithm algorithm() const noexcept { return algo_; }
  RegisterProcessBase& process(ProcessId pid);

 private:
  class ClientImpl;

  GroupConfig cfg_;
  Algorithm algo_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<ClientImpl> client_impl_;  // engine + RegisterClient
};

}  // namespace tbr
