// Workload driver for the sharded KV engine: skewed multi-key traffic in
// two complementary modes.
//
// 1. run_sharded_workload — the ENGINE measurement. Client threads push a
//    read-dominated, zipf-skewed op mix through a live ShardedKvStore
//    (real shard workers, real batching windows) and the result is
//    wall-clock ops/sec. This number scales with cores: each shard's
//    worker owns a full register group, so on a c-core box c shards run
//    truly in parallel.
//
// 2. project_sharded_capacity — the DEPLOYMENT projection. The same op
//    mix is routed to per-shard register groups driven directly in
//    virtual time, with SimNetwork's per-node service-time model giving
//    every replica finite CPU. Each shard's simulator clock then reads
//    off how long that shard would take on its own hardware; the store's
//    completion time is the busiest shard's clock (shards share nothing).
//    This is deterministic — same options, same result, on any host — so
//    CI can track it without multi-core runners, and it isolates the two
//    effects the engine mixes: partitioning (more groups = more replica
//    CPU) and batching (fewer protocol rounds per client op).
#pragma once

#include <vector>

#include "kvstore/sharded_store.hpp"

namespace tbr {

struct ShardedWorkloadOptions {
  std::uint32_t shards = 4;
  std::uint32_t n = 3;               ///< replicas per shard
  std::uint32_t t = 1;
  std::uint32_t slots_per_shard = 16;
  std::uint64_t seed = 1;

  // ---- op mix ---------------------------------------------------------------
  std::uint32_t keys = 256;
  /// Zipf exponent over key ranks (0 = uniform). Ranks are shuffled onto
  /// key ids by seed, so hot keys land on seed-determined shards.
  double zipf_s = 0.9;
  double read_fraction = 0.9;
  std::uint64_t total_ops = 4000;

  // ---- engine mode ----------------------------------------------------------
  std::uint32_t client_threads = 4;
  /// Async ops each client keeps in flight (its submission wave size).
  std::size_t client_pipeline = 64;
  bool pin_shard_threads = false;

  // ---- shared engine/projection knobs ---------------------------------------
  /// Per-slot register engine (two-bit default, or a fast-path read
  /// engine: Algorithm::kOhRam / kTimeEfficient).
  Algorithm engine = Algorithm::kTwoBit;
  /// Event-scheduler backend for every shard's simulator
  /// (SimNetwork::Options::scheduler_policy).
  EventQueue::Policy scheduler_policy = EventQueue::Policy::kHeap;
  bool coalesce_writes = true;
  /// Batching-window cap (ops). In the projection this bounds how much a
  /// backlog can amortize; 0 = unbounded.
  std::size_t max_batch = 256;
  /// Batching-window floor (group-commit style; see ShardedKvStore::
  /// Options::min_batch). 0 = drain whatever accumulated. In the
  /// projection this delays a window until `min_batch` ops have arrived
  /// (the tail opens partial), trading per-op latency for coalescing —
  /// the sweep in bench_sharded_throughput measures that trade.
  std::size_t min_batch = 0;

  // ---- projection mode ------------------------------------------------------
  Tick delay_ticks = 1000;   ///< channel delay Δ
  Tick service_time = 200;   ///< per-frame CPU cost at a replica
  /// Virtual ticks between successive client arrivals (store-wide); lower
  /// = heavier offered load. The default saturates the replicas so the
  /// projection measures capacity, not channel latency.
  Tick inter_arrival = 2;
};

struct ShardedWorkloadResult {
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_failed = 0;
  double wall_seconds = 0;
  double ops_per_sec = 0;
  BatchStats batch;
  std::uint64_t frames = 0;
};

ShardedWorkloadResult run_sharded_workload(
    const ShardedWorkloadOptions& options);

struct CapacityProjection {
  std::uint64_t ops = 0;
  std::vector<Tick> shard_ticks;    ///< virtual completion time per shard
  Tick busiest_shard_ticks = 0;     ///< the store's completion time
  double ops_per_mtick = 0;         ///< ops / busiest shard's megatick
  /// Mean client-observed latency in virtual ticks: window completion
  /// minus op arrival (queueing + batching delay + protocol rounds).
  double mean_latency_ticks = 0;
  BatchStats batch;
  std::uint64_t frames = 0;
};

CapacityProjection project_sharded_capacity(
    const ShardedWorkloadOptions& options);

}  // namespace tbr
