#include "workload/algorithms.hpp"

#include "abd/phased_process.hpp"
#include "common/contracts.hpp"
#include "core/twobit_process.hpp"
#include "fastread/ohram_process.hpp"
#include "fastread/time_efficient_process.hpp"

namespace tbr {

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> all = {
      Algorithm::kAbdUnbounded,
      Algorithm::kAbdBounded,
      Algorithm::kAttiya,
      Algorithm::kTwoBit,
  };
  return all;
}

const std::vector<Algorithm>& fastread_algorithms() {
  static const std::vector<Algorithm> fast = {
      Algorithm::kOhRam,
      Algorithm::kTimeEfficient,
  };
  return fast;
}

std::string algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::kTwoBit:
      return "twobit";
    case Algorithm::kAbdUnbounded:
      return "abd-unbounded";
    case Algorithm::kAbdBounded:
      return "abd-bounded";
    case Algorithm::kAttiya:
      return "attiya";
    case Algorithm::kOhRam:
      return "ohram";
    case Algorithm::kTimeEfficient:
      return "timeeff";
  }
  TBR_ENSURE(false, "unknown algorithm");
  return {};
}

std::unique_ptr<RegisterProcessBase> make_register_process(Algorithm algo,
                                                           GroupConfig cfg,
                                                           ProcessId self) {
  switch (algo) {
    case Algorithm::kTwoBit:
      return make_twobit_process(std::move(cfg), self);
    case Algorithm::kAbdUnbounded:
      return make_abd_unbounded_process(std::move(cfg), self);
    case Algorithm::kAbdBounded:
      return make_abd_bounded_process(std::move(cfg), self);
    case Algorithm::kAttiya:
      return make_attiya_process(std::move(cfg), self);
    case Algorithm::kOhRam:
      return make_ohram_process(std::move(cfg), self);
    case Algorithm::kTimeEfficient:
      return make_time_efficient_process(std::move(cfg), self);
  }
  TBR_ENSURE(false, "unknown algorithm");
  return {};
}

std::vector<std::unique_ptr<ProcessBase>> make_register_group(
    Algorithm algo, const GroupConfig& cfg) {
  cfg.validate();
  std::vector<std::unique_ptr<ProcessBase>> group;
  group.reserve(cfg.n);
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    group.push_back(make_register_process(algo, cfg, pid));
  }
  return group;
}

}  // namespace tbr
