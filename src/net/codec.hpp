// Codec: what an algorithm's frames look like on a byte-oriented wire and
// how many *control bits* they carry (the quantity Table 1 line 3 compares).
//
// Accounting convention (matches the paper's): the register value itself and
// its length framing are data-plane bytes; everything an implementation adds
// to coordinate — type tags, sequence numbers, bounded labels — is control.
#pragma once

#include <string>
#include <string_view>

#include "net/message.hpp"

namespace tbr {

class Codec {
 public:
  virtual ~Codec() = default;
  Codec() = default;
  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  /// Serialize to wire bytes, appending into `out` after clearing it. The
  /// buffer-pooled runtimes pass recycled strings whose capacity survives
  /// across frames, making steady-state encoding allocation-free.
  virtual void encode_into(const Message& msg, std::string& out) const = 0;

  /// Serialize to a fresh string (convenience over encode_into).
  std::string encode(const Message& msg) const {
    std::string out;
    encode_into(msg, out);
    return out;
  }

  /// Parse wire bytes into a caller-owned Message, the decode-side mirror
  /// of encode_into: every field is reset/overwritten, and the payload is
  /// assigned into `out.value`'s existing buffer — a recycled scratch
  /// Message makes steady-state decoding of large payloads allocation-free
  /// (the threaded receive path and the mux slot demultiplexer do this).
  /// Throws ContractViolation on malformed input; `out` may hold a partial
  /// decode afterwards, callers must not use it.
  virtual void decode_into(std::string_view bytes, Message& out) const = 0;

  /// Parse wire bytes into a fresh Message (convenience over decode_into).
  /// Inverse of encode for all fields the codec carries.
  Message decode(std::string_view bytes) const {
    Message out;
    decode_into(bytes, out);
    return out;
  }

  /// Control/data bit accounting for this frame.
  virtual WireAccounting account(const Message& msg) const = 0;

  /// Human-readable name of a type id ("WRITE0", "ACK_W", ...).
  virtual std::string type_name(std::uint8_t type) const = 0;
};

// Shared little-endian field helpers for codec implementations.
namespace wire {

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked reads; throw ContractViolation when truncated.
std::uint32_t get_u32(std::string_view bytes, std::size_t& pos);
std::uint64_t get_u64(std::string_view bytes, std::size_t& pos);
std::uint8_t get_u8(std::string_view bytes, std::size_t& pos);
std::string get_blob(std::string_view bytes, std::size_t& pos,
                     std::size_t len);
/// Bounds-checked blob read into a caller-owned buffer (assign reuses its
/// capacity — the decode_into hot path).
void get_blob_into(std::string_view bytes, std::size_t& pos, std::size_t len,
                   std::string& out);
/// Bounds-check and skip `len` blob bytes without materializing a string
/// (for fields whose content is modeled but never read, e.g. the phased
/// codec's bounded-label padding).
void skip_blob(std::string_view bytes, std::size_t& pos, std::size_t len);

/// Reset a scratch Message for decode_into: every field back to its
/// default, keeping the value buffer's capacity.
void reset_for_decode(Message& msg);

}  // namespace wire

}  // namespace tbr
