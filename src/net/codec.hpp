// Codec: what an algorithm's frames look like on a byte-oriented wire and
// how many *control bits* they carry (the quantity Table 1 line 3 compares).
//
// Accounting convention (matches the paper's): the register value itself and
// its length framing are data-plane bytes; everything an implementation adds
// to coordinate — type tags, sequence numbers, bounded labels — is control.
#pragma once

#include <string>
#include <string_view>

#include "net/message.hpp"

namespace tbr {

class Codec {
 public:
  virtual ~Codec() = default;
  Codec() = default;
  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  /// Serialize to wire bytes, appending into `out` after clearing it. The
  /// buffer-pooled runtimes pass recycled strings whose capacity survives
  /// across frames, making steady-state encoding allocation-free.
  virtual void encode_into(const Message& msg, std::string& out) const = 0;

  /// Serialize to a fresh string (convenience over encode_into).
  std::string encode(const Message& msg) const {
    std::string out;
    encode_into(msg, out);
    return out;
  }

  /// Parse wire bytes; inverse of encode for all fields the codec carries.
  /// Throws ContractViolation on malformed input.
  virtual Message decode(std::string_view bytes) const = 0;

  /// Control/data bit accounting for this frame.
  virtual WireAccounting account(const Message& msg) const = 0;

  /// Human-readable name of a type id ("WRITE0", "ACK_W", ...).
  virtual std::string type_name(std::uint8_t type) const = 0;
};

// Shared little-endian field helpers for codec implementations.
namespace wire {

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked reads; throw ContractViolation when truncated.
std::uint32_t get_u32(std::string_view bytes, std::size_t& pos);
std::uint64_t get_u64(std::string_view bytes, std::size_t& pos);
std::uint8_t get_u8(std::string_view bytes, std::size_t& pos);
std::string get_blob(std::string_view bytes, std::size_t& pos,
                     std::size_t len);
/// Bounds-check and skip `len` blob bytes without materializing a string
/// (for fields whose content is modeled but never read, e.g. the phased
/// codec's bounded-label padding).
void skip_blob(std::string_view bytes, std::size_t& pos, std::size_t len);

}  // namespace wire

}  // namespace tbr
