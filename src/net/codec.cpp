#include "net/codec.hpp"

#include "common/contracts.hpp"

namespace tbr::wire {

std::uint8_t get_u8(std::string_view bytes, std::size_t& pos) {
  TBR_ENSURE(pos + 1 <= bytes.size(), "truncated frame (u8)");
  return static_cast<std::uint8_t>(bytes[pos++]);
}

std::uint32_t get_u32(std::string_view bytes, std::size_t& pos) {
  TBR_ENSURE(pos + 4 <= bytes.size(), "truncated frame (u32)");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(bytes[pos + static_cast<std::size_t>(i)]);
  }
  pos += 4;
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t& pos) {
  TBR_ENSURE(pos + 8 <= bytes.size(), "truncated frame (u64)");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(bytes[pos + static_cast<std::size_t>(i)]);
  }
  pos += 8;
  return v;
}

std::string get_blob(std::string_view bytes, std::size_t& pos,
                     std::size_t len) {
  TBR_ENSURE(pos + len <= bytes.size(), "truncated frame (blob)");
  std::string out(bytes.substr(pos, len));
  pos += len;
  return out;
}

void get_blob_into(std::string_view bytes, std::size_t& pos, std::size_t len,
                   std::string& out) {
  TBR_ENSURE(pos + len <= bytes.size(), "truncated frame (blob)");
  out.assign(bytes.substr(pos, len));
  pos += len;
}

void skip_blob(std::string_view bytes, std::size_t& pos, std::size_t len) {
  TBR_ENSURE(pos + len <= bytes.size(), "truncated frame (blob)");
  pos += len;
}

void reset_for_decode(Message& msg) {
  msg.type = 0;
  msg.seq = 0;
  msg.aux = 0;
  msg.has_value = false;
  msg.value.mutable_bytes().clear();
  msg.wire = WireAccounting{};
  msg.debug_index = -1;
}

}  // namespace tbr::wire
