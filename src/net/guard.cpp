#include "net/guard.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace tbr {

void GuardSet::park(std::string label, Predicate pred, Action action) {
  TBR_ENSURE(pred != nullptr, "guard needs a predicate");
  TBR_ENSURE(action != nullptr, "guard needs an action");
  guards_.push_back({std::move(label), std::move(pred), std::move(action)});
}

void GuardSet::poll() {
  if (polling_) return;  // the outermost poll's loop will pick up changes
  polling_ = true;
  bool fired = true;
  std::size_t rounds = 0;
  while (fired) {
    fired = false;
    // Scan by index: actions may push_back new guards.
    for (std::size_t i = 0; i < guards_.size(); ++i) {
      if (!guards_[i].pred()) continue;
      Guard g = std::move(guards_[i]);
      guards_.erase(guards_.begin() + static_cast<std::ptrdiff_t>(i));
      g.action();
      fired = true;
      break;  // restart the scan: the action may have changed anything
    }
    TBR_ENSURE(++rounds < 1'000'000, "guard poll did not reach a fixpoint");
  }
  polling_ = false;
}

std::vector<std::string> GuardSet::pending_labels() const {
  std::vector<std::string> out;
  out.reserve(guards_.size());
  for (const auto& g : guards_) out.push_back(g.label);
  return out;
}

}  // namespace tbr
