// RegisterProcessBase: the public API every register implementation
// (the paper's two-bit algorithm and the three ABD-family baselines) offers.
//
// One process in the group is the writer; every process can read. Operations
// are asynchronous: callers pass a completion callback, which the runtime's
// facade layer adapts into blocking calls (simulator) or futures (threads).
#pragma once

#include <cstdint>
#include <functional>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "common/value.hpp"
#include "net/codec.hpp"
#include "net/process.hpp"

namespace tbr {

/// Static configuration of a register group.
struct GroupConfig {
  std::uint32_t n = 0;       ///< number of processes
  std::uint32_t t = 0;       ///< crash-fault budget; must satisfy 2t < n
  ProcessId writer = 0;      ///< the single writer p_w
  Value initial;             ///< v0, the register's initial value

  /// Two-bit algorithm only: let the writer serve reads locally from
  /// history[w_sync[w]] (the remark on Fig. 1 line 5 of the paper).
  bool writer_fast_read = false;

  void validate() const {
    TBR_ENSURE(n >= 1, "group needs at least one process");
    TBR_ENSURE(2 * t < n, "atomic registers require t < n/2 (ABD bound)");
    TBR_ENSURE(writer < n, "writer id out of range");
  }

  /// Quorum size n - t used by every wait-for-quorum in the algorithms.
  std::uint32_t quorum() const { return n - t; }
};

class RegisterProcessBase : public ProcessBase {
 public:
  using WriteDone = std::function<void()>;
  /// Reads report the returned value plus its history index (the paper's
  /// sequence number x of read[i,x]); the index feeds the atomicity checker
  /// and is not part of the register abstraction itself.
  using ReadDone = std::function<void(const Value& value, SeqNo index)>;

  RegisterProcessBase(GroupConfig cfg, ProcessId self);

  /// Begin REG.write(v). Caller must be the writer, with no operation in
  /// flight on this process (the model's processes are sequential).
  virtual void start_write(NetworkContext& net, Value v, WriteDone done) = 0;

  /// Begin REG.read().
  virtual void start_read(NetworkContext& net, ReadDone done) = 0;

  /// Bytes of protocol state currently resident (Table 1 line 4).
  virtual std::uint64_t local_memory_bytes() const = 0;

  /// The wire format this implementation speaks.
  virtual const Codec& codec() const = 0;

  bool is_writer() const noexcept { return self_ == cfg_.writer; }
  ProcessId self_id() const noexcept { return self_; }
  const GroupConfig& config() const noexcept { return cfg_; }

 protected:
  /// Guard helpers for the "one operation at a time per process" contract.
  void begin_operation(const char* what);
  void end_operation();
  bool operation_in_progress() const noexcept { return op_in_progress_; }

  GroupConfig cfg_;
  ProcessId self_;

 private:
  bool op_in_progress_ = false;
};

}  // namespace tbr
