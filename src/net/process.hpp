// ProcessBase: the event-driven unit both runtimes schedule.
//
// Handlers run one at a time per process (the model's processes are
// sequential); the runtime guarantees mutual exclusion, so implementations
// need no internal locking.
#pragma once

#include "net/context.hpp"

namespace tbr {

class ProcessBase {
 public:
  virtual ~ProcessBase() = default;
  ProcessBase() = default;
  ProcessBase(const ProcessBase&) = delete;
  ProcessBase& operator=(const ProcessBase&) = delete;

  /// Called once before any message is delivered.
  virtual void on_start(NetworkContext& net) { (void)net; }

  /// Deliver one message from `from`. The paper's `wait(pred)` statements
  /// are implemented by parking work until a later state change, never by
  /// blocking the handler.
  virtual void on_message(NetworkContext& net, ProcessId from,
                          const Message& msg) = 0;

  /// The process has crashed: it will receive no further events.
  virtual void on_crash() {}
};

}  // namespace tbr
