#include "net/register_process.hpp"

#include <string>

namespace tbr {

RegisterProcessBase::RegisterProcessBase(GroupConfig cfg, ProcessId self)
    : cfg_(std::move(cfg)), self_(self) {
  cfg_.validate();
  TBR_ENSURE(self_ < cfg_.n, "process id out of range");
}

void RegisterProcessBase::begin_operation(const char* what) {
  TBR_ENSURE(!op_in_progress_,
             std::string("process is sequential: cannot start ") + what +
                 " with an operation in flight");
  op_in_progress_ = true;
}

void RegisterProcessBase::end_operation() {
  TBR_ENSURE(op_in_progress_, "no operation in flight");
  op_in_progress_ = false;
}

}  // namespace tbr
