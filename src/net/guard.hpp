// GuardSet: predicate-parked continuations.
//
// The paper's pseudocode blocks inside handlers on conditions such as
// "wait(z >= n-t ...)" (Fig. 1, lines 3, 7, 9, 11, 20). In an event-driven
// process, each such wait becomes a *guard*: a (predicate, action) pair that
// fires once, the first time the predicate is observed true after a state
// change. Algorithms call poll() after every mutation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tbr {

class GuardSet {
 public:
  using Predicate = std::function<bool()>;
  using Action = std::function<void()>;

  /// Park `action` until `pred` holds. `label` names the wait for
  /// diagnostics ("write-quorum", "read-proceed-quorum", ...).
  /// If the predicate already holds the action still only runs at the next
  /// poll(), keeping execution order independent of registration timing.
  void park(std::string label, Predicate pred, Action action);

  /// Run every guard whose predicate holds, to fixpoint. Actions may park
  /// new guards or mutate state that satisfies other guards; nested poll()
  /// calls are coalesced into the outermost loop.
  void poll();

  std::size_t pending() const noexcept { return guards_.size(); }

  /// Labels of currently parked guards (diagnostics/tests).
  std::vector<std::string> pending_labels() const;

 private:
  struct Guard {
    std::string label;
    Predicate pred;
    Action action;
  };
  std::vector<Guard> guards_;
  bool polling_ = false;
};

}  // namespace tbr
