// NetworkContext: a process's handle onto whichever runtime hosts it.
//
// Both runtimes (discrete-event simulator and real-thread network) implement
// this interface, so every algorithm is written exactly once.
#pragma once

#include <functional>

#include "common/ids.hpp"
#include "net/message.hpp"

namespace tbr {

class NetworkContext {
 public:
  virtual ~NetworkContext() = default;
  NetworkContext() = default;
  NetworkContext(const NetworkContext&) = delete;
  NetworkContext& operator=(const NetworkContext&) = delete;

  /// Asynchronously send `msg` to process `to` over a reliable, non-FIFO
  /// channel (the CAMP model's channels). Self-sends are a contract error:
  /// none of the implemented algorithms ever sends to itself.
  virtual void send(ProcessId to, const Message& msg) = 0;

  /// This process's id.
  virtual ProcessId self() const = 0;

  /// Number of processes n in the group.
  virtual std::uint32_t process_count() const = 0;

  /// Current time in ticks (virtual for the simulator, monotonic-real for
  /// the threaded runtime). Algorithms never branch on it; operation latency
  /// measurement does.
  virtual Tick now() const = 0;

  /// Invalidate every frame this process has already sent to `to` that is
  /// still undelivered. Models the transport fact that a connection does
  /// not survive its endpoints: when a peer announces it rebooted (CatchUp),
  /// frames we sent to it earlier belong to a dead connection and must not
  /// arrive after our reset-era frames. FIFO transports (TCP sockets) get
  /// this for free and keep the no-op default; the delay-reordering
  /// runtimes (simulator, threaded, model checker) override it.
  virtual void fence_peer(ProcessId to) { (void)to; }

  /// Run `fn` on this process after `delay` ticks, with the same mutual
  /// exclusion as message handlers. Never fires once the process has
  /// crashed. The *register algorithms* are timer-free (the CAMP model is
  /// asynchronous and the paper's protocols never consult a clock); timers
  /// exist for transport-layer decorators such as the retransmitting
  /// reliable link (src/link), which sit below the model's "reliable
  /// channel" abstraction.
  virtual void schedule(Tick delay, std::function<void()> fn) = 0;
};

}  // namespace tbr
