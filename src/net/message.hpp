// The one message shape shared by every algorithm in the repository.
//
// Each algorithm defines its own small enum of type ids (the two-bit
// algorithm uses exactly four; that is the paper's point) and its own Codec
// which decides what actually reaches the wire and how many control bits it
// costs. Fields unused by an algorithm are never serialized by its codec.
#pragma once

#include "common/ids.hpp"
#include "common/value.hpp"
#include "metrics/message_stats.hpp"

namespace tbr {

struct Message {
  /// Algorithm-local message-type id (0..15).
  std::uint8_t type = 0;

  /// Baseline control fields (ABD sequence number, phase/request tags).
  /// The two-bit algorithm leaves these at 0 on its four Fig. 1 frames and
  /// its codec never encodes them there — sequence numbers stay local, per
  /// the paper. The bounded-memory extension frames (ACK / CHECKPOINT /
  /// CATCHUP, TwoBitType 4..6) use `seq` as the explicit history index they
  /// carry, accounted as extra control bits.
  SeqNo seq = 0;
  SeqNo aux = 0;

  bool has_value = false;
  Value value;

  /// Wire cost, filled in by the algorithm's Codec before sending.
  WireAccounting wire;

  /// Simulator-side diagnostic tag (e.g. which history index a WRITE frame
  /// disseminates). Never serialized; used only by invariant observers and
  /// trace output. Kept out of `wire` accounting by construction.
  SeqNo debug_index = -1;
};

}  // namespace tbr
