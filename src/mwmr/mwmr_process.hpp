// Multi-writer multi-reader atomic register: the classic multi-writer ABD.
//
// EXTENSION beyond the paper (which is single-writer by design — its
// alternating-bit synchronizer is inherently per-pair, per-stream): the
// intro situates SWMR registers inside Lamport's hierarchy and the MWMR
// constructions built on them; this module provides the standard
// message-passing MWMR register for comparison.
//
// Every operation is two quorum phases:
//   write(v): query max timestamp -> disseminate (max.seq+1, self, v)
//   read():   query max (ts, v)   -> write back   -> return v
// Timestamps are (seq, writer-id) pairs, packed into one SeqNo with
// lexicographic order preserved; packed timestamps double as the unique
// value indices the checkers key on.
#pragma once

#include <memory>
#include <optional>

#include "abd/phased_codec.hpp"
#include "net/register_process.hpp"

namespace tbr {

/// Timestamp packing: ts = seq * kMaxGroupSize + writer id.
inline constexpr SeqNo kMaxGroupSize = 1024;

inline SeqNo pack_ts(SeqNo seq, ProcessId writer) {
  TBR_ENSURE(writer < kMaxGroupSize, "group too large for timestamp packing");
  return seq * kMaxGroupSize + static_cast<SeqNo>(writer);
}
inline SeqNo ts_seq(SeqNo ts) { return ts / kMaxGroupSize; }
inline ProcessId ts_writer(SeqNo ts) {
  return static_cast<ProcessId>(ts % kMaxGroupSize);
}

class MwmrProcess final : public ProcessBase {
 public:
  /// Writes report the packed timestamp they installed (the history index
  /// for checking); reads report (value, packed timestamp).
  using WriteDone = std::function<void(SeqNo ts)>;
  using ReadDone = std::function<void(const Value& value, SeqNo ts)>;

  MwmrProcess(GroupConfig cfg, ProcessId self);

  /// Any process may write: that is the point of MWMR.
  void start_write(NetworkContext& net, Value v, WriteDone done);
  void start_read(NetworkContext& net, ReadDone done);

  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;

  const Codec& codec() const { return codec_; }
  SeqNo replica_ts() const noexcept { return cur_ts_; }
  const GroupConfig& config() const noexcept { return cfg_; }
  bool crashed() const noexcept { return crashed_; }
  std::uint64_t local_memory_bytes() const;

 private:
  enum class Phase { kQuery, kApply };
  struct PendingOp {
    bool is_write = false;
    Phase phase = Phase::kQuery;
    SeqNo op_tag = 0;
    std::uint32_t votes = 0;
    SeqNo best_ts = 0;   // query fold; then the applied timestamp
    Value best_val;      // value being written / best value read
    Value write_val;     // writes: the value to install after the query
    WriteDone wdone;
    ReadDone rdone;
  };

  void start_query(NetworkContext& net);
  void start_apply(NetworkContext& net);
  void complete_if_quorum(NetworkContext& net);
  void adopt(SeqNo ts, const Value& v);
  SeqNo phase_tag() const;

  GroupConfig cfg_;
  ProcessId self_;
  PhasedCodec codec_;

  SeqNo cur_ts_ = 0;  // packed (0 = initial value, "written by" p0)
  Value cur_val_;

  SeqNo op_counter_ = 0;
  std::optional<PendingOp> pending_;
  bool crashed_ = false;
};

std::unique_ptr<MwmrProcess> make_mwmr_process(GroupConfig cfg,
                                               ProcessId self);

}  // namespace tbr
