// Atomicity checker for multi-writer register histories produced by
// timestamp-ordered implementations (multi-writer ABD and kin).
//
// With unique per-write timestamps, a history is linearizable with writes in
// timestamp order iff, for every pair of completed operations where op1
// ends before op2 starts:
//
//   W(ts1) .. W(ts2):  ts1 <  ts2     (writes respect real time)
//   W(ts)  .. R(tr):   tr  >= ts      (no stale read)
//   R(tr)  .. W(ts):   ts  >  tr      (no write behind an observed read)
//   R(t1)  .. R(t2):   t2  >= t1      (no new/old inversion)
//
// plus value consistency (a read's (ts, value) matches the write that
// installed ts, or the initial value for ts = 0) and a read-from-started
// condition (the write of the returned ts was invoked before the read
// returned). These conditions are sufficient for linearizability in
// general, and necessary for every implementation whose linearization
// orders writes by timestamp — which multi-writer ABD guarantees. The test
// suite cross-validates against the exhaustive Wing-Gong oracle on small
// histories.
//
// Timestamps double as OpRecord::index. Writes that never completed may
// have index -1 (their timestamp never surfaced); reads returning such a
// write's value are matched by (unique) value instead.
#pragma once

#include "checker/history.hpp"
#include "checker/swmr_checker.hpp"

namespace tbr {

class MwmrChecker {
 public:
  static CheckResult check(const std::vector<OpRecord>& ops,
                           const Value& initial);
};

}  // namespace tbr
