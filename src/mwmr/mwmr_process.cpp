#include "mwmr/mwmr_process.hpp"

#include <utility>

namespace tbr {

namespace {
constexpr SeqNo kPhaseSlots = 4;  // query / apply
}

MwmrProcess::MwmrProcess(GroupConfig cfg, ProcessId self)
    : cfg_(std::move(cfg)),
      self_(self),
      codec_(abd_unbounded_spec(), cfg_.n),
      cur_val_(cfg_.initial) {
  cfg_.validate();
  TBR_ENSURE(self_ < cfg_.n, "process id out of range");
  TBR_ENSURE(cfg_.n <= kMaxGroupSize, "group too large");
}

void MwmrProcess::adopt(SeqNo ts, const Value& v) {
  if (ts > cur_ts_) {
    cur_ts_ = ts;
    cur_val_ = v;
  }
}

SeqNo MwmrProcess::phase_tag() const {
  TBR_ENSURE(pending_.has_value(), "no operation in flight");
  return pending_->op_tag * kPhaseSlots +
         (pending_->phase == Phase::kQuery ? 0 : 1);
}

void MwmrProcess::start_write(NetworkContext& net, Value v, WriteDone done) {
  TBR_ENSURE(done != nullptr, "write needs a completion callback");
  TBR_ENSURE(!pending_.has_value(), "process is sequential");
  PendingOp op;
  op.is_write = true;
  op.op_tag = ++op_counter_;
  op.write_val = std::move(v);
  op.best_ts = cur_ts_;
  op.best_val = cur_val_;
  op.wdone = std::move(done);
  pending_ = std::move(op);
  start_query(net);
}

void MwmrProcess::start_read(NetworkContext& net, ReadDone done) {
  TBR_ENSURE(done != nullptr, "read needs a completion callback");
  TBR_ENSURE(!pending_.has_value(), "process is sequential");
  PendingOp op;
  op.is_write = false;
  op.op_tag = ++op_counter_;
  op.best_ts = cur_ts_;
  op.best_val = cur_val_;
  op.rdone = std::move(done);
  pending_ = std::move(op);
  start_query(net);
}

void MwmrProcess::start_query(NetworkContext& net) {
  PendingOp& op = *pending_;
  op.phase = Phase::kQuery;
  op.votes = 1;  // self: folded own state at operation start
  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  msg.aux = phase_tag();
  msg.wire = codec_.account(msg);
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) net.send(j, msg);
  }
  complete_if_quorum(net);
}

void MwmrProcess::start_apply(NetworkContext& net) {
  PendingOp& op = *pending_;
  op.phase = Phase::kApply;
  op.votes = 1;
  if (op.is_write) {
    // The new timestamp strictly dominates everything the quorum reported.
    op.best_ts = pack_ts(ts_seq(op.best_ts) + 1, self_);
    op.best_val = op.write_val;
  }
  adopt(op.best_ts, op.best_val);  // self is one of the replicas
  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  msg.aux = phase_tag();
  msg.seq = op.best_ts;
  msg.has_value = true;
  msg.value = op.best_val;
  msg.debug_index = op.best_ts;
  msg.wire = codec_.account(msg);
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) net.send(j, msg);
  }
  complete_if_quorum(net);
}

void MwmrProcess::complete_if_quorum(NetworkContext& net) {
  if (!pending_.has_value() || pending_->votes < cfg_.quorum()) return;
  if (pending_->phase == Phase::kQuery) {
    start_apply(net);
    return;
  }
  PendingOp finished = std::move(*pending_);
  pending_.reset();
  if (finished.is_write) {
    finished.wdone(finished.best_ts);
  } else {
    finished.rdone(finished.best_val, finished.best_ts);
  }
}

void MwmrProcess::on_message(NetworkContext& net, ProcessId from,
                             const Message& msg) {
  TBR_ENSURE(!crashed_, "runtime delivered a message to a crashed process");
  TBR_ENSURE(from < cfg_.n && from != self_, "bad sender");
  switch (static_cast<PhasedType>(msg.type)) {
    case PhasedType::kPhaseReq: {
      if (msg.has_value) adopt(msg.seq, msg.value);
      Message reply;
      if (msg.has_value) {
        reply.type = static_cast<std::uint8_t>(PhasedType::kPhaseAck);
        reply.aux = msg.aux;
      } else {
        reply.type = static_cast<std::uint8_t>(PhasedType::kQueryReply);
        reply.aux = msg.aux;
        reply.seq = cur_ts_;
        reply.has_value = true;
        reply.value = cur_val_;
      }
      reply.wire = codec_.account(reply);
      net.send(from, reply);
      break;
    }
    case PhasedType::kPhaseAck: {
      if (pending_.has_value() && msg.aux == phase_tag() &&
          pending_->phase == Phase::kApply) {
        pending_->votes += 1;
        complete_if_quorum(net);
      }
      break;
    }
    case PhasedType::kQueryReply: {
      TBR_ENSURE(msg.has_value, "query reply must carry replica state");
      adopt(msg.seq, msg.value);
      if (pending_.has_value() && msg.aux == phase_tag() &&
          pending_->phase == Phase::kQuery) {
        PendingOp& op = *pending_;
        if (msg.seq > op.best_ts) {
          op.best_ts = msg.seq;
          op.best_val = msg.value;
        }
        op.votes += 1;
        complete_if_quorum(net);
      }
      break;
    }
    default:
      TBR_ENSURE(false, "unexpected frame type for MWMR");
  }
}

void MwmrProcess::on_crash() { crashed_ = true; }

std::uint64_t MwmrProcess::local_memory_bytes() const {
  return 8 /*cur_ts*/ + cur_val_.size() + 8 /*op_counter*/;
}

std::unique_ptr<MwmrProcess> make_mwmr_process(GroupConfig cfg,
                                               ProcessId self) {
  return std::make_unique<MwmrProcess>(std::move(cfg), self);
}

}  // namespace tbr
