#include "mwmr/mwmr_checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/contracts.hpp"

namespace tbr {

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream os;
  os << (op.kind == OpRecord::Kind::kWrite ? "write" : "read") << "[p"
     << op.proc << ", ts=" << op.index << "]";
  return os.str();
}

}  // namespace

CheckResult MwmrChecker::check(const std::vector<OpRecord>& ops,
                               const Value& initial) {
  // ---- partition -------------------------------------------------------------
  std::vector<const OpRecord*> writes_completed;
  std::vector<const OpRecord*> writes_incomplete;
  std::vector<const OpRecord*> reads;  // completed
  for (const auto& op : ops) {
    if (op.kind == OpRecord::Kind::kWrite) {
      (op.completed ? writes_completed : writes_incomplete).push_back(&op);
    } else if (op.completed) {
      reads.push_back(&op);
    }
  }

  // ---- per-process sequentiality ----------------------------------------------
  {
    std::map<ProcessId, std::vector<const OpRecord*>> by_proc;
    for (const auto& op : ops) by_proc[op.proc].push_back(&op);
    for (auto& [proc, list] : by_proc) {
      std::sort(list.begin(), list.end(),
                [](const OpRecord* a, const OpRecord* b) {
                  return a->start < b->start;
                });
      for (std::size_t k = 0; k + 1 < list.size(); ++k) {
        if (!list[k]->completed || !(list[k]->end < list[k + 1]->start)) {
          return CheckResult::bad("model: operations of process " +
                                  std::to_string(proc) + " overlap");
        }
      }
    }
  }

  // ---- timestamp uniqueness & value binding --------------------------------------
  std::map<SeqNo, const OpRecord*> write_by_ts;
  for (const auto* w : writes_completed) {
    if (w->index <= 0) {
      return CheckResult::bad("model: completed write without timestamp: " +
                              describe(*w));
    }
    if (!write_by_ts.emplace(w->index, w).second) {
      return CheckResult::bad("model: duplicate write timestamp " +
                              std::to_string(w->index));
    }
  }

  // ---- C0 + read-from-started -------------------------------------------------------
  for (const auto* r : reads) {
    if (r->index == 0) {
      if (!(r->value == initial)) {
        return CheckResult::bad("C0: read of ts 0 is not the initial value: " +
                                describe(*r));
      }
      continue;
    }
    const auto it = write_by_ts.find(r->index);
    if (it != write_by_ts.end()) {
      if (!(it->second->value == r->value)) {
        return CheckResult::bad("C0: read value does not match write of ts " +
                                std::to_string(r->index));
      }
      if (!(it->second->start < r->end)) {
        return CheckResult::bad(
            "C1: read returns a write invoked after it returned: " +
            describe(*r));
      }
      continue;
    }
    // Not a completed write: it must be an incomplete write's value (the
    // write may have taken effect before its invoker crashed).
    const auto src = std::find_if(
        writes_incomplete.begin(), writes_incomplete.end(),
        [&](const OpRecord* w) { return w->value == r->value; });
    if (src == writes_incomplete.end()) {
      return CheckResult::bad("C0: read of unknown timestamp " +
                              std::to_string(r->index) + ": " + describe(*r));
    }
    if (!((*src)->start < r->end)) {
      return CheckResult::bad(
          "C1: read returns an incomplete write invoked after it: " +
          describe(*r));
    }
  }

  // ---- real-time timestamp conditions --------------------------------------------
  // Sweep completed ops by start; maintain the max timestamp among writes
  // (maxW) and reads (maxR) that *ended* strictly before the current start.
  struct Ev {
    Stamp at;
    bool is_end;  // ends processed before starts at equal stamps? stamps are
                  // unique (order field), so no ties exist.
    const OpRecord* op;
  };
  std::vector<Ev> events;
  for (const auto* w : writes_completed) {
    events.push_back({w->start, false, w});
    events.push_back({w->end, true, w});
  }
  for (const auto* r : reads) {
    events.push_back({r->start, false, r});
    events.push_back({r->end, true, r});
  }
  std::sort(events.begin(), events.end(),
            [](const Ev& a, const Ev& b) { return a.at < b.at; });

  SeqNo max_w_ended = -1;
  SeqNo max_r_ended = -1;
  for (const auto& ev : events) {
    const OpRecord& op = *ev.op;
    if (ev.is_end) {
      if (op.kind == OpRecord::Kind::kWrite) {
        max_w_ended = std::max(max_w_ended, op.index);
      } else {
        max_r_ended = std::max(max_r_ended, op.index);
      }
      continue;
    }
    if (op.kind == OpRecord::Kind::kWrite) {
      if (op.index <= max_w_ended) {
        return CheckResult::bad(
            "W-W: a write completed earlier carries timestamp " +
            std::to_string(max_w_ended) + " >= " + describe(op));
      }
      if (op.index <= max_r_ended) {
        return CheckResult::bad(
            "R-W: a read completed earlier observed timestamp " +
            std::to_string(max_r_ended) + " >= " + describe(op));
      }
    } else {
      if (op.index < max_w_ended) {
        return CheckResult::bad("W-R: stale read: " + describe(op) +
                                " after a write with timestamp " +
                                std::to_string(max_w_ended) + " completed");
      }
      if (op.index < max_r_ended) {
        return CheckResult::bad("R-R: new/old inversion: " + describe(op) +
                                " after a read that observed " +
                                std::to_string(max_r_ended));
      }
    }
  }

  return CheckResult::good();
}

}  // namespace tbr
