#include "abd/phased_process.hpp"

#include <utility>

namespace tbr {

namespace {
constexpr SeqNo kPhaseSlots = 64;  // phases per op tag; no spec comes close
}

PhasedProcess::PhasedProcess(GroupConfig cfg, ProcessId self,
                             const PhasedSpec& spec)
    : RegisterProcessBase(std::move(cfg), self),
      spec_(spec),
      codec_(spec_, cfg_.n),
      cur_val_(cfg_.initial) {
  TBR_ENSURE(!spec_.write_phases.empty() && !spec_.read_phases.empty(),
             "spec needs at least one phase per operation");
  TBR_ENSURE(static_cast<SeqNo>(spec_.write_phases.size()) < kPhaseSlots &&
                 static_cast<SeqNo>(spec_.read_phases.size()) < kPhaseSlots,
             "phase count exceeds tag encoding");
}

// ---- operations -------------------------------------------------------------

void PhasedProcess::start_write(NetworkContext& net, Value v, WriteDone done) {
  TBR_ENSURE(is_writer(), "only the writer p_w may invoke write()");
  TBR_ENSURE(done != nullptr, "write needs a completion callback");
  begin_operation("write");

  wsn_ += 1;
  adopt(wsn_, v);  // the writer itself is one of the n replicas

  PendingOp op;
  op.is_write = true;
  op.phases = &spec_.write_phases;
  op.op_tag = ++op_counter_;
  op.op_seq = wsn_;
  op.op_val = std::move(v);
  op.wdone = std::move(done);
  pending_ = std::move(op);
  start_phase(net);
}

void PhasedProcess::start_read(NetworkContext& net, ReadDone done) {
  TBR_ENSURE(done != nullptr, "read needs a completion callback");
  begin_operation("read");

  PendingOp op;
  op.is_write = false;
  op.phases = &spec_.read_phases;
  op.op_tag = ++op_counter_;
  // The fold over replica states starts from our own replica state.
  op.op_seq = cur_seq_;
  op.op_val = cur_val_;
  op.rdone = std::move(done);
  pending_ = std::move(op);
  start_phase(net);
}

// ---- phase driving ------------------------------------------------------------

SeqNo PhasedProcess::phase_tag() const {
  TBR_ENSURE(pending_.has_value(), "no operation in flight");
  return pending_->op_tag * kPhaseSlots +
         static_cast<SeqNo>(pending_->phase_idx);
}

void PhasedProcess::start_phase(NetworkContext& net) {
  TBR_ENSURE(pending_.has_value(), "no operation in flight");
  PendingOp& op = *pending_;
  TBR_ENSURE(op.phase_idx < op.phases->size(), "phase index out of range");
  const PhaseKind kind = (*op.phases)[op.phase_idx];

  // Self participates without messaging: we already adopted (disseminate)
  // or folded our own state (query).
  op.votes = 1;
  if (kind == PhaseKind::kDisseminate) adopt(op.op_seq, op.op_val);

  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  msg.aux = phase_tag();
  if (kind == PhaseKind::kDisseminate) {
    msg.seq = op.op_seq;
    msg.has_value = true;
    msg.value = op.op_val;
    msg.debug_index = op.op_seq;
  }
  msg.wire = codec_.account(msg);
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) net.send(j, msg);
  }
  advance_if_quorum(net);  // n-t may be 1
}

void PhasedProcess::advance_if_quorum(NetworkContext& net) {
  while (pending_.has_value() && pending_->votes >= cfg_.quorum()) {
    PendingOp& op = *pending_;
    op.phase_idx += 1;
    if (op.phase_idx < op.phases->size()) {
      start_phase(net);
      // start_phase re-enters advance_if_quorum; if it completed or
      // advanced the op, the loop condition re-evaluates correctly.
      return;
    }
    // Operation complete.
    PendingOp finished = std::move(*pending_);
    pending_.reset();
    end_operation();
    if (finished.is_write) {
      finished.wdone();
    } else {
      finished.rdone(finished.op_val, finished.op_seq);
    }
    return;
  }
}

void PhasedProcess::adopt(SeqNo seq, const Value& v) {
  if (seq > cur_seq_) {
    cur_seq_ = seq;
    cur_val_ = v;
  }
}

// ---- message handling -----------------------------------------------------------

void PhasedProcess::on_message(NetworkContext& net, ProcessId from,
                               const Message& msg) {
  TBR_ENSURE(!crashed_, "runtime delivered a message to a crashed process");
  TBR_ENSURE(from < cfg_.n && from != self_, "bad sender");
  switch (static_cast<PhasedType>(msg.type)) {
    case PhasedType::kPhaseReq: {
      // Replica role: adopt any disseminated value, then answer.
      if (msg.has_value) adopt(msg.seq, msg.value);
      Message reply;
      if (msg.has_value) {
        reply.type = static_cast<std::uint8_t>(PhasedType::kPhaseAck);
        reply.aux = msg.aux;
      } else {
        reply.type = static_cast<std::uint8_t>(PhasedType::kQueryReply);
        reply.aux = msg.aux;
        reply.seq = cur_seq_;
        reply.has_value = true;
        reply.value = cur_val_;
      }
      reply.wire = codec_.account(reply);
      net.send(from, reply);

      if (spec_.echo) {
        // Bounded-ABD label-propagation traffic: one gossip frame to every
        // other replica, fire-and-forget (recipients adopt silently).
        Message echo;
        echo.type = static_cast<std::uint8_t>(PhasedType::kEcho);
        echo.aux = msg.aux;
        echo.seq = cur_seq_;
        echo.has_value = true;
        echo.value = cur_val_;
        echo.wire = codec_.account(echo);
        for (ProcessId j = 0; j < cfg_.n; ++j) {
          if (j != self_ && j != from) net.send(j, echo);
        }
      }
      break;
    }
    case PhasedType::kPhaseAck: {
      if (pending_.has_value() && msg.aux == phase_tag() &&
          (*pending_->phases)[pending_->phase_idx] ==
              PhaseKind::kDisseminate) {
        pending_->votes += 1;
        advance_if_quorum(net);
      }
      break;
    }
    case PhasedType::kQueryReply: {
      TBR_ENSURE(msg.has_value, "query reply must carry replica state");
      adopt(msg.seq, msg.value);  // replies are fresh information too
      if (pending_.has_value() && msg.aux == phase_tag() &&
          (*pending_->phases)[pending_->phase_idx] == PhaseKind::kQuery) {
        PendingOp& op = *pending_;
        if (msg.seq > op.op_seq) {
          op.op_seq = msg.seq;
          op.op_val = msg.value;
        }
        op.votes += 1;
        advance_if_quorum(net);
      }
      break;
    }
    case PhasedType::kEcho: {
      TBR_ENSURE(msg.has_value, "echo must carry replica state");
      adopt(msg.seq, msg.value);
      break;
    }
    default:
      TBR_ENSURE(false, "unknown phased frame type");
  }
}

void PhasedProcess::on_crash() { crashed_ = true; }

std::uint64_t PhasedProcess::local_memory_bytes() const {
  // Real state + the modeled bounded-label store (DESIGN.md §4). For the
  // unbounded spec the modeled store is zero and what remains is O(1) words
  // plus the current value — "unbounded" only through the live sequence
  // number, exactly as Table 1 line 4 reports.
  std::uint64_t bytes = 8 /*cur_seq*/ + cur_val_.size();
  bytes += 8 /*wsn*/ + 8 /*op_counter*/;
  bytes += spec_.modeled_memory_bits(cfg_.n) / 8;
  return bytes;
}

// ---- factories --------------------------------------------------------------------

std::unique_ptr<RegisterProcessBase> make_abd_unbounded_process(
    GroupConfig cfg, ProcessId self) {
  return std::make_unique<PhasedProcess>(std::move(cfg), self,
                                         abd_unbounded_spec());
}

std::unique_ptr<RegisterProcessBase> make_abd_bounded_process(GroupConfig cfg,
                                                              ProcessId self) {
  return std::make_unique<PhasedProcess>(std::move(cfg), self,
                                         abd_bounded_spec());
}

std::unique_ptr<RegisterProcessBase> make_attiya_process(GroupConfig cfg,
                                                         ProcessId self) {
  return std::make_unique<PhasedProcess>(std::move(cfg), self, attiya_spec());
}

std::unique_ptr<RegisterProcessBase> make_abd_regular_process(GroupConfig cfg,
                                                              ProcessId self) {
  return std::make_unique<PhasedProcess>(std::move(cfg), self,
                                         abd_regular_spec());
}

}  // namespace tbr
