// Wire format for the phased (ABD-family) protocols.
//
// Frame layout: type byte, op/phase tag, optional sequence number and value,
// plus — for the bounded baselines — a label blob of the modeled size.
// Control-bit accounting: 3 bits of type (6 types) + minimal encodings of
// the tag/seq fields + the modeled label bits. Physical label bytes are
// capped (kMaxPhysicalLabelBytes) so n-sweeps stay affordable; accounting
// always uses the analytic size. See DESIGN.md §4.
#pragma once

#include "abd/specs.hpp"
#include "net/codec.hpp"

namespace tbr {

/// Message types of the phased engine.
enum class PhasedType : std::uint8_t {
  kPhaseReq = 0,    ///< initiator -> replicas (query or disseminate)
  kPhaseAck = 1,    ///< replica -> initiator (disseminate ack)
  kQueryReply = 2,  ///< replica -> initiator (carries replica state)
  kEcho = 3,        ///< replica -> replicas (bounded-ABD gossip; no reply)
};

class PhasedCodec final : public Codec {
 public:
  PhasedCodec(const PhasedSpec& spec, std::uint32_t n);

  void encode_into(const Message& msg, std::string& out) const override;
  void decode_into(std::string_view bytes, Message& out) const override;
  WireAccounting account(const Message& msg) const override;
  std::string type_name(std::uint8_t type) const override;

  std::uint64_t label_bits() const noexcept { return label_bits_; }

  static constexpr std::uint64_t kTypeBits = 3;
  static constexpr std::uint64_t kMaxPhysicalLabelBytes = 4096;

 private:
  std::uint64_t label_bits_;
  std::uint64_t physical_label_bytes_;
};

}  // namespace tbr
