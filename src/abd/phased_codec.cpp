#include "abd/phased_codec.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace tbr {

PhasedCodec::PhasedCodec(const PhasedSpec& spec, std::uint32_t n)
    : label_bits_(spec.label_bits(n)),
      physical_label_bytes_(
          std::min<std::uint64_t>(bits_to_bytes(label_bits_),
                                  kMaxPhysicalLabelBytes)) {}

void PhasedCodec::encode_into(const Message& msg, std::string& out) const {
  TBR_ENSURE(msg.type <= 3, "unknown phased frame type");
  out.clear();
  out.push_back(static_cast<char>(msg.type));
  wire::put_u64(out, static_cast<std::uint64_t>(msg.aux));
  wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
  out.push_back(msg.has_value ? '\1' : '\0');
  if (msg.has_value) {
    wire::put_u32(out, static_cast<std::uint32_t>(msg.value.size()));
    out.append(msg.value.bytes());
  }
  // The bounded-label blob (zeros: the emulation models its size, not its
  // algebra). Length-prefixed so decode round-trips under the physical cap.
  wire::put_u32(out, static_cast<std::uint32_t>(physical_label_bytes_));
  out.append(physical_label_bytes_, '\0');
}

void PhasedCodec::decode_into(std::string_view bytes, Message& msg) const {
  wire::reset_for_decode(msg);
  std::size_t pos = 0;
  msg.type = wire::get_u8(bytes, pos);
  TBR_ENSURE(msg.type <= 3, "unknown phased frame type");
  msg.aux = static_cast<SeqNo>(wire::get_u64(bytes, pos));
  msg.seq = static_cast<SeqNo>(wire::get_u64(bytes, pos));
  const auto has_value = wire::get_u8(bytes, pos);
  TBR_ENSURE(has_value <= 1, "bad value flag");
  if (has_value == 1) {
    const auto len = wire::get_u32(bytes, pos);
    wire::get_blob_into(bytes, pos, len, msg.value.mutable_bytes());
    msg.has_value = true;
  }
  const auto label_len = wire::get_u32(bytes, pos);
  wire::skip_blob(bytes, pos, label_len);
  TBR_ENSURE(pos == bytes.size(), "trailing bytes in phased frame");
  msg.wire = account(msg);
}

WireAccounting PhasedCodec::account(const Message& msg) const {
  WireAccounting wire;
  wire.control_bits = kTypeBits + min_bits_seqno(msg.aux) +
                      min_bits_seqno(msg.seq) + label_bits_;
  wire.data_bits = msg.has_value ? 32 + msg.value.size_bits() : 0;
  return wire;
}

std::string PhasedCodec::type_name(std::uint8_t type) const {
  switch (static_cast<PhasedType>(type)) {
    case PhasedType::kPhaseReq:
      return "PHASE_REQ";
    case PhasedType::kPhaseAck:
      return "PHASE_ACK";
    case PhasedType::kQueryReply:
      return "QUERY_REPLY";
    case PhasedType::kEcho:
      return "ECHO";
  }
  return "UNKNOWN(" + std::to_string(type) + ")";
}

}  // namespace tbr
