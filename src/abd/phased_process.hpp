// PhasedProcess: quorum-phase engine executing any PhasedSpec.
//
// Replica side is stateless per operation: every phase request is answered
// immediately (adopt-if-newer for disseminate; state reply for query), so
// stale or reordered phase traffic is harmless. The initiator side drives
// phases strictly in sequence, identifying responses by an (operation, phase)
// tag; each phase completes on a quorum of n-t participants (self included).
//
// With abd_unbounded_spec() this *is* the ABD'95 SWMR algorithm: writes are
// one disseminate phase, reads are query + write-back.
#pragma once

#include <memory>
#include <optional>

#include "abd/phased_codec.hpp"
#include "abd/specs.hpp"
#include "net/register_process.hpp"

namespace tbr {

class PhasedProcess final : public RegisterProcessBase {
 public:
  PhasedProcess(GroupConfig cfg, ProcessId self, const PhasedSpec& spec);

  // ---- RegisterProcessBase -----------------------------------------------
  void start_write(NetworkContext& net, Value v, WriteDone done) override;
  void start_read(NetworkContext& net, ReadDone done) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;
  std::uint64_t local_memory_bytes() const override;
  const Codec& codec() const override { return codec_; }

  // ---- introspection -------------------------------------------------------
  const PhasedSpec& spec() const noexcept { return spec_; }
  SeqNo replica_seq() const noexcept { return cur_seq_; }
  const Value& replica_value() const noexcept { return cur_val_; }
  bool crashed() const noexcept { return crashed_; }

 private:
  struct PendingOp {
    bool is_write = false;
    const std::vector<PhaseKind>* phases = nullptr;
    std::size_t phase_idx = 0;
    SeqNo op_tag = 0;        // response-matching tag
    std::uint32_t votes = 0; // quorum progress, self included
    SeqNo op_seq = 0;        // write: its wsn; read: best seq folded so far
    Value op_val;            // value being disseminated / best value folded
    WriteDone wdone;
    ReadDone rdone;
  };

  void start_phase(NetworkContext& net);
  void advance_if_quorum(NetworkContext& net);
  void adopt(SeqNo seq, const Value& v);
  SeqNo phase_tag() const;

  PhasedSpec spec_;
  PhasedCodec codec_;

  // Replica state: the freshest (seq, value) pair seen.
  SeqNo cur_seq_ = 0;
  Value cur_val_;

  // Initiator state.
  SeqNo wsn_ = 0;       // writer's local write counter
  SeqNo op_counter_ = 0;
  std::optional<PendingOp> pending_;
  bool crashed_ = false;
};

/// Factories for the three baselines (and the engine itself, for tests).
std::unique_ptr<RegisterProcessBase> make_abd_unbounded_process(
    GroupConfig cfg, ProcessId self);
std::unique_ptr<RegisterProcessBase> make_abd_bounded_process(GroupConfig cfg,
                                                              ProcessId self);
std::unique_ptr<RegisterProcessBase> make_attiya_process(GroupConfig cfg,
                                                         ProcessId self);
/// The regular-register ablation (see abd_regular_spec()).
std::unique_ptr<RegisterProcessBase> make_abd_regular_process(GroupConfig cfg,
                                                              ProcessId self);

}  // namespace tbr
