#include "abd/specs.hpp"

#include "common/bits.hpp"

namespace tbr {

std::uint64_t PhasedSpec::label_bits(std::uint32_t n) const {
  if (label_exponent == 0) return 0;
  return pow_saturating(n, label_exponent);
}

std::uint64_t PhasedSpec::modeled_memory_bits(std::uint32_t n) const {
  if (memory_exponent == 0) return 0;
  return pow_saturating(n, memory_exponent);
}

namespace {

std::vector<PhaseKind> phases(PhaseKind first, std::size_t total) {
  std::vector<PhaseKind> out;
  out.reserve(total);
  out.push_back(first);
  // Every non-initial phase re-disseminates the operation's (seq, value):
  // semantically idempotent, structurally a full broadcast/ack round trip.
  while (out.size() < total) out.push_back(PhaseKind::kDisseminate);
  return out;
}

}  // namespace

const PhasedSpec& abd_unbounded_spec() {
  static const PhasedSpec spec{
      "abd-unbounded",
      phases(PhaseKind::kDisseminate, 1),  // write: disseminate
      phases(PhaseKind::kQuery, 2),        // read: query + write-back
      /*echo=*/false,
      /*label_exponent=*/0,
      /*memory_exponent=*/0,
  };
  return spec;
}

const PhasedSpec& abd_bounded_spec() {
  static const PhasedSpec spec{
      "abd-bounded",
      phases(PhaseKind::kDisseminate, 6),  // 12Δ writes
      phases(PhaseKind::kQuery, 6),        // 12Δ reads
      /*echo=*/true,                       // O(n^2) messages per operation
      /*label_exponent=*/5,                // O(n^5)-bit messages
      /*memory_exponent=*/6,               // O(n^6)-bit label store
  };
  return spec;
}

const PhasedSpec& attiya_spec() {
  static const PhasedSpec spec{
      "attiya",
      phases(PhaseKind::kDisseminate, 7),  // 14Δ writes
      phases(PhaseKind::kQuery, 9),        // 18Δ reads
      /*echo=*/false,                      // O(n) messages per operation
      /*label_exponent=*/3,                // O(n^3)-bit messages
      /*memory_exponent=*/5,               // O(n^5)-bit label store
  };
  return spec;
}

const PhasedSpec& abd_regular_spec() {
  static const PhasedSpec spec{
      "abd-regular",
      phases(PhaseKind::kDisseminate, 1),  // 2Δ writes
      phases(PhaseKind::kQuery, 1),        // 2Δ reads: query, NO write-back
      /*echo=*/false,
      /*label_exponent=*/0,
      /*memory_exponent=*/0,
  };
  return spec;
}

}  // namespace tbr
