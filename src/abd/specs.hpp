// Phase-structure specifications for the ABD-family baselines of Table 1.
//
// All three baselines are quorum protocols whose operations are sequences of
// broadcast/ack *phases*; they differ in phase counts, in whether replicas
// gossip an echo per phase, and in the size of the bounded labels their
// messages carry. One engine (PhasedProcess) executes any spec.
//
// Fidelity note (see DESIGN.md §4): the unbounded ABD spec is the real
// algorithm. The two bounded specs are *structural emulations*: they execute
// the bounded constructions' phase counts, traffic patterns and wire sizes —
// the quantities Table 1 measures — while anchoring correctness in the same
// quorum logic (internally unbounded counters whose wire cost is subsumed by
// the modeled label budget). The intricate bounded-timestamp label algebra
// is not reproduced; it affects none of the measured quantities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tbr {

enum class PhaseKind : std::uint8_t {
  /// Broadcast (seq, value); replicas adopt if newer and ack.
  kDisseminate = 0,
  /// Broadcast a query; replicas reply with their (seq, value).
  kQuery = 1,
};

struct PhasedSpec {
  std::string name;
  std::vector<PhaseKind> write_phases;
  std::vector<PhaseKind> read_phases;
  /// Replicas re-broadcast an echo frame to all other replicas on every
  /// phase request (the bounded-ABD label-propagation traffic): turns each
  /// phase's message cost from O(n) into O(n^2) without extending the
  /// 2Δ-per-phase critical path (echoes are fire-and-forget).
  bool echo = false;
  /// Control-label size carried by every frame, as bits = n^label_exponent
  /// (0 = no label; control cost is then the minimal seq/tag encoding).
  std::uint32_t label_exponent = 0;
  /// Modeled per-process label-store size, bits = n^memory_exponent
  /// (0 = no modeled store; only real state is counted).
  std::uint32_t memory_exponent = 0;

  std::uint64_t label_bits(std::uint32_t n) const;
  std::uint64_t modeled_memory_bits(std::uint32_t n) const;
};

/// ABD JACM'95, unbounded sequence numbers: write = 1 phase (2Δ),
/// read = query + write-back (4Δ), O(n) messages, Θ(log #writes) bits.
const PhasedSpec& abd_unbounded_spec();

/// ABD JACM'95 bounded variant: 6 phases per operation (12Δ), O(n^2)
/// messages, O(n^5)-bit labels, O(n^6)-bit local label store.
const PhasedSpec& abd_bounded_spec();

/// Attiya JAlg'00: 7-phase writes (14Δ), 9-phase reads (18Δ), O(n)
/// messages, O(n^3)-bit labels, O(n^5)-bit local label store.
const PhasedSpec& attiya_spec();

/// ABLATION (not in Table 1): ABD without the read write-back phase. This
/// implements Lamport's *regular* register, not an atomic one — reads cost
/// one round trip (2Δ) but new/old inversion between concurrent readers
/// becomes possible. Used by the wait-ablation experiments to measure what
/// the write-back phase buys and costs.
const PhasedSpec& abd_regular_spec();

}  // namespace tbr
