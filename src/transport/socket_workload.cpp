#include "transport/socket_workload.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace tbr {

SocketWorkloadResult run_socket_workload(
    const SocketWorkloadOptions& options) {
  GroupConfig cfg = options.cfg;
  cfg.validate();
  TBR_ENSURE(options.crashes <= cfg.t,
             "workload cannot crash more than t processes");

  SocketNetwork::Options net_opt;
  net_opt.cfg = cfg;
  net_opt.algo = options.algo;
  net_opt.process_factory = options.process_factory;
  net_opt.loops = options.loops;
  net_opt.limits = options.limits;
  SocketNetwork net(std::move(net_opt));
  net.start();

  HistoryLog log;
  std::vector<std::atomic<std::uint32_t>> completed(cfg.n);
  std::vector<ProcessId> victims;
  {
    ProcessId pid = cfg.n;
    while (victims.size() < options.crashes) {
      TBR_ENSURE(pid > 0, "ran out of crash victims");
      --pid;
      if (pid == cfg.writer) continue;
      victims.push_back(pid);
    }
  }

  {
    std::vector<std::jthread> clients;
    clients.reserve(cfg.n + 1);
    for (ProcessId pid = 0; pid < cfg.n; ++pid) {
      clients.emplace_back([&, pid] {
        RegisterClient& client = net.client();
        Rng rng(options.seed ^ (0xB5297A4DULL * (pid + 1)));
        for (std::uint32_t k = 0; k < options.ops_per_process; ++k) {
          if (pid == cfg.writer) {
            const SeqNo index = static_cast<SeqNo>(k) + 1;
            Value v = Value::from_int64(index);
            const auto id = log.begin_write(pid, net.now(), index, v);
            const OpResult r = client.write_sync(std::move(v));
            if (!r.status.ok()) break;  // our process crashed mid-operation
            log.end_write(id, net.now());
          } else {
            const auto id = log.begin_read(pid, net.now());
            const OpResult r = client.read_sync(pid);
            if (!r.status.ok()) break;
            log.end_read(id, net.now(), r.value, r.version);
          }
          completed[pid].fetch_add(1, std::memory_order_relaxed);
          const auto think = rng.uniform(0, 150);
          std::this_thread::sleep_for(std::chrono::microseconds(think));
        }
      });
    }
    if (!victims.empty()) {
      clients.emplace_back([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(4));
        for (const ProcessId pid : victims) net.crash(pid);
      });
    }
  }  // join all clients

  SocketWorkloadResult result;
  result.ops = log.ops();
  result.stats = net.stats_snapshot();
  result.backpressure = net.backpressure_snapshot();
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    if (net.crashed(pid)) continue;
    result.quota_of_correct += options.ops_per_process;
    result.completed_by_correct +=
        completed[pid].load(std::memory_order_relaxed);
  }
  net.stop();
  return result;
}

}  // namespace tbr
