// FrameBuffer: the socket runtime's inbound byte buffer, as a consumed-
// offset ring.
//
// tcp::read_some appends raw stream bytes at the tail; next_frame() peels
// length-prefixed frames off the head by advancing a read offset. The
// previous implementation erased the consumed prefix out of the string
// after every drain (`inbuf.erase(0, pos)`), which memmoves the entire
// unconsumed remainder — O(buffer) per drain, quadratic when one large
// buffered read delivers many small frames. Here the consumed prefix is
// dropped only when it outgrows half of the allocated block (and for free
// when the buffer drains completely), so consuming a frame costs O(frame)
// amortized and the storage is recycled like every other hot-path buffer
// in the tree.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tbr {

class FrameBuffer {
 public:
  /// The tail storage new stream bytes are appended onto (hand this to
  /// tcp::read_some). Only ever append; the head is managed here.
  std::string& tail() noexcept { return buf_; }

  /// If a complete length-prefixed frame is buffered, set `frame` to its
  /// payload, consume it, and return true. The view stays valid until the
  /// next call against this buffer (consumption only moves the offset;
  /// compaction happens between frames, never under a live view).
  bool next_frame(std::string_view& frame) {
    maybe_compact();
    if (buf_.size() - pos_ < kHeader) return false;
    const std::uint32_t len = peek_len();
    if (buf_.size() - pos_ < kHeader + len) return false;
    frame = std::string_view(buf_).substr(pos_ + kHeader, len);
    pos_ += kHeader + len;
    return true;
  }

  /// Append one length-prefixed frame (the sender-side encoding).
  static void append_frame(std::string& out, std::string_view payload) {
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
    }
    out.append(payload);
  }

  /// Unconsumed bytes (0 = fully drained).
  std::size_t pending_bytes() const noexcept { return buf_.size() - pos_; }
  /// Consumed prefix currently awaiting compaction.
  std::size_t read_offset() const noexcept { return pos_; }
  /// How many times the consumed prefix was actually memmoved out — the
  /// amortization the ring buys (the old code compacted once per drain).
  std::uint64_t compactions() const noexcept { return compactions_; }

  void clear() {
    buf_.clear();
    pos_ = 0;
  }

 private:
  static constexpr std::size_t kHeader = 4;

  std::uint32_t peek_len() const {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf_[pos_ + i]))
           << (8 * i);
    }
    return v;
  }

  void maybe_compact() {
    if (pos_ == 0) return;
    if (pos_ == buf_.size()) {
      // Fully drained: reset both ends for free, capacity retained.
      buf_.clear();
      pos_ = 0;
      return;
    }
    if (pos_ > buf_.capacity() / 2) {
      // The consumed prefix owns more than half the block: fold the live
      // remainder down. Amortized O(1) per consumed byte.
      buf_.erase(0, pos_);
      pos_ = 0;
      ++compactions_;
    }
  }

  std::string buf_;
  std::size_t pos_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace tbr
