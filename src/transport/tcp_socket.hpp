// Thin RAII layer over POSIX TCP sockets (loopback mesh plumbing).
//
// Everything the socket runtime needs and nothing more: owned fds,
// listeners on an ephemeral loopback port, blocking connect/accept for the
// deterministic mesh handshake, non-blocking mode for the event loops, and
// EINTR-safe read/write wrappers. Errors that indicate environment failure
// (out of fds, loopback down) throw TransportError; normal peer-side
// conditions (EOF, ECONNRESET after a crash) are reported through return
// values so the event loop can treat them as channel teardown.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace tbr {

/// Environment-level transport failure (socket(), bind(), listen(), ...).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// An owned file descriptor. Move-only; closes on destruction.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd();
  OwnedFd(OwnedFd&& other) noexcept;
  OwnedFd& operator=(OwnedFd&& other) noexcept;
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset();  ///< close now

 private:
  int fd_ = -1;
};

/// Outcome of a non-blocking read/write slice.
enum class IoStatus {
  kOk,        ///< made progress
  kWouldBlock,///< EAGAIN: try again when poll() says so
  kClosed,    ///< EOF or connection reset: the peer is gone
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

namespace tcp {

/// Create a TCP listener bound to 127.0.0.1 on an ephemeral port.
/// Returns the fd and the chosen port.
std::pair<OwnedFd, std::uint16_t> listen_loopback(int backlog);

/// Blocking connect to 127.0.0.1:port.
OwnedFd connect_loopback(std::uint16_t port);

/// Blocking accept.
OwnedFd accept_blocking(int listener_fd);

void set_nonblocking(int fd);
void set_nodelay(int fd);

/// Shrink/grow the kernel send/receive buffers (SO_SNDBUF / SO_RCVBUF).
/// Backpressure tests use tiny kernel buffers so a slow reader pushes the
/// writer's userspace outbuf across high water with few frames.
void set_sndbuf(int fd, int bytes);
void set_rcvbuf(int fd, int bytes);

/// Non-blocking read of up to `cap` bytes appended onto `buffer`.
IoResult read_some(int fd, std::string& buffer, std::size_t cap);

/// Non-blocking write of as much of [data, data+len) as the kernel takes.
IoResult write_some(int fd, const char* data, std::size_t len);

/// Blocking write of the whole buffer (mesh handshake only).
void write_all_blocking(int fd, const char* data, std::size_t len);

/// Blocking read of exactly `len` bytes (mesh handshake only).
std::string read_exact_blocking(int fd, std::size_t len);

/// A fresh connected loopback TCP pair (ephemeral listener, dial, accept,
/// listener closed). Crash-rejoin uses this to re-establish the channel
/// between a restarted process and each live peer: a NEW connection, so
/// whatever died with the old one stays dead.
std::pair<OwnedFd, OwnedFd> make_loopback_pair();

/// Self-wakeup pipe for event loops: returns {read_end, write_end}, the
/// read end non-blocking.
std::pair<OwnedFd, OwnedFd> make_wakeup_pipe();

/// Drain everything currently readable from a wakeup pipe's read end.
void drain_pipe(int fd);

}  // namespace tcp
}  // namespace tbr
