#include "transport/socket_network.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>
#include <variant>

#include "common/contracts.hpp"
#include "transport/tcp_socket.hpp"

namespace tbr {

using Clock = std::chrono::steady_clock;

namespace {

// Length-prefixed framing on the byte stream.
void append_frame(std::string& out, std::string_view encoded) {
  const auto len = static_cast<std::uint32_t>(encoded.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  out.append(encoded);
}

std::uint32_t peek_u32(const std::string& buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

// ---- Node: one process, its sockets, its event loop -----------------------------

class SocketNetwork::Node final : public NetworkContext {
 public:
  Node(SocketNetwork& net, ProcessId pid,
       std::unique_ptr<RegisterProcessBase> proc)
      : net_(net), pid_(pid), proc_(std::move(proc)), peers_(net.cfg_.n) {
    auto [rd, wr] = tcp::make_wakeup_pipe();
    wake_rd_ = std::move(rd);
    wake_wr_ = std::move(wr);
  }

  // ---- NetworkContext (loop thread only) ----------------------------------------
  void send(ProcessId to, const Message& msg) override {
    TBR_ENSURE(to < peers_.size() && to != pid_, "bad destination");
    if (crashed_) return;
    net_.record_send(msg.type, msg.wire);
    Peer& peer = peers_[to];
    if (!peer.alive) {
      net_.record_drop(msg.type);
      return;
    }
    // encode_into a reused scratch, then frame into the peer's outbuf: no
    // fresh string per send (the buffer-pool discipline of the threaded
    // runtime, ported to the socket path).
    proc_->codec().encode_into(msg, encode_scratch_);
    append_frame(peer.outbuf, encode_scratch_);
    flush_out(to);
  }
  ProcessId self() const override { return pid_; }
  std::uint32_t process_count() const override { return net_.cfg_.n; }
  Tick now() const override { return net_.now(); }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(delay > 0, "timer delay must be positive");
    timers_.push_back(Timer{net_.now() + delay, timer_seq_++, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  }

  // ---- mesh setup (main thread, before the loop starts) ---------------------------
  std::uint16_t listen() {
    auto [fd, port] = tcp::listen_loopback(static_cast<int>(net_.cfg_.n));
    listener_ = std::move(fd);
    return port;
  }
  int listener_fd() const { return listener_.get(); }
  void adopt_connection(ProcessId peer, OwnedFd fd) {
    TBR_ENSURE(peer < peers_.size() && !peers_[peer].fd.valid(),
               "duplicate connection");
    peers_[peer].fd = std::move(fd);
    peers_[peer].alive = true;
  }
  void finish_setup() {
    listener_.reset();
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p == pid_) continue;
      TBR_ENSURE(peers_[p].fd.valid(), "mesh incomplete");
      tcp::set_nonblocking(peers_[p].fd.get());
      tcp::set_nodelay(peers_[p].fd.get());
    }
  }

  // ---- commands (any thread) -------------------------------------------------------
  struct WriteCmd {
    Value value;
    std::shared_ptr<std::promise<Tick>> done;
  };
  struct ReadCmd {
    std::shared_ptr<std::promise<ReadResultT>> done;
  };
  struct CrashCmd {};
  using Command = std::variant<WriteCmd, ReadCmd, CrashCmd>;

  bool submit(Command cmd) {
    {
      const std::scoped_lock lock(cmd_mu_);
      if (closed_) return false;
      commands_.push_back(std::move(cmd));
    }
    wake();
    return true;
  }

  void wake() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wake_wr_.get(), &byte, 1);
  }

  bool crashed() const {
    return crashed_flag_.load(std::memory_order_acquire);
  }

  // ---- the event loop -----------------------------------------------------------------
  void loop(std::stop_token st) {
    proc_->on_start(*this);
    std::vector<pollfd> fds;
    std::vector<ProcessId> fd_peer;  // pollfd index -> peer id (after pipe)
    while (!st.stop_requested()) {
      fds.clear();
      fd_peer.clear();
      fds.push_back(pollfd{wake_rd_.get(), POLLIN, 0});
      for (ProcessId p = 0; p < peers_.size(); ++p) {
        if (p == pid_ || !peers_[p].alive) continue;
        short events = POLLIN;
        if (!peers_[p].outbuf.empty()) events |= POLLOUT;
        fds.push_back(pollfd{peers_[p].fd.get(), events, 0});
        fd_peer.push_back(p);
      }
      const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw TransportError("poll failed");
      }
      fire_due_timers();
      if ((fds[0].revents & POLLIN) != 0) {
        tcp::drain_pipe(wake_rd_.get());
        run_commands();
      }
      for (std::size_t k = 1; k < fds.size(); ++k) {
        const ProcessId p = fd_peer[k - 1];
        if (!peers_[p].alive) continue;  // a handler may have crashed us
        if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          read_peer(p);
        }
        if (peers_[p].alive && (fds[k].revents & POLLOUT) != 0) {
          flush_out(p);
        }
      }
    }
    fail_pending("network is shut down");
  }

 private:
  struct Peer {
    OwnedFd fd;
    bool alive = false;
    std::string inbuf;
    std::string outbuf;
  };
  struct Timer {
    Tick at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  int poll_timeout_ms() const {
    if (timers_.empty()) return -1;
    const Tick ns = timers_.front().at - net_.now();
    if (ns <= 0) return 0;
    return static_cast<int>(
        std::min<Tick>((ns + 999'999) / 1'000'000, 60'000));
  }

  void fire_due_timers() {
    while (!timers_.empty() && timers_.front().at <= net_.now()) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      Timer timer = std::move(timers_.back());
      timers_.pop_back();
      if (!crashed_ && timer.fn) timer.fn();
    }
  }

  void run_commands() {
    std::deque<Command> batch;
    {
      const std::scoped_lock lock(cmd_mu_);
      batch.swap(commands_);
    }
    for (Command& cmd : batch) {
      std::visit([this](auto&& c) { handle(std::forward<decltype(c)>(c)); },
                 std::move(cmd));
    }
  }

  void handle(WriteCmd cmd) {
    if (crashed_) {
      cmd.done->set_exception(std::make_exception_ptr(
          std::runtime_error("process has crashed")));
      return;
    }
    const Tick start = net_.now();
    auto done = std::move(cmd.done);
    pending_write_ = done;
    proc_->start_write(*this, std::move(cmd.value),
                       [this, done, start]() mutable {
                         pending_write_.reset();
                         done->set_value(net_.now() - start);
                       });
  }

  void handle(ReadCmd cmd) {
    if (crashed_) {
      cmd.done->set_exception(std::make_exception_ptr(
          std::runtime_error("process has crashed")));
      return;
    }
    const Tick start = net_.now();
    auto done = std::move(cmd.done);
    pending_read_ = done;
    proc_->start_read(*this, [this, done, start](const Value& v,
                                                 SeqNo index) mutable {
      pending_read_.reset();
      done->set_value(ReadResultT{v, index, net_.now() - start});
    });
  }

  void handle(CrashCmd) {
    if (crashed_) return;
    crashed_ = true;
    crashed_flag_.store(true, std::memory_order_release);
    proc_->on_crash();
    // The model lets a faulty process's last operation evaporate (§2.2);
    // its client's future must still resolve — fail it now, the algorithm
    // will never complete it.
    auto fail = [](auto& pending) {
      if (pending) {
        pending->set_exception(std::make_exception_ptr(
            std::runtime_error("process has crashed")));
        pending.reset();
      }
    };
    fail(pending_write_);
    fail(pending_read_);
    // A crash kills the endpoint: sockets close, peers see dead channels.
    for (Peer& peer : peers_) {
      peer.fd.reset();
      peer.alive = false;
      peer.inbuf.clear();
      peer.outbuf.clear();
    }
    timers_.clear();
  }

  void read_peer(ProcessId p) {
    Peer& peer = peers_[p];
    for (;;) {
      const auto io = tcp::read_some(peer.fd.get(), peer.inbuf, 64 * 1024);
      if (io.status == IoStatus::kClosed) {
        peer.fd.reset();
        peer.alive = false;
        peer.inbuf.clear();
        peer.outbuf.clear();
        return;
      }
      dispatch_frames(p);
      if (crashed_ || !peers_[p].alive) return;
      if (io.status == IoStatus::kWouldBlock) return;
    }
  }

  void dispatch_frames(ProcessId p) {
    Peer& peer = peers_[p];
    std::size_t pos = 0;
    // A handler can tear this very buffer down mid-loop (crash command, or
    // a send to p that discovers the socket closed), so re-check liveness
    // and use overflow-safe bounds each iteration.
    while (!crashed_ && peer.alive && peer.inbuf.size() >= pos + 4) {
      const std::uint32_t len = peek_u32(peer.inbuf, pos);
      if (peer.inbuf.size() < pos + 4 + len) break;
      // decode_into the loop's scratch Message: large payloads reuse its
      // value buffer instead of materializing a fresh string per frame.
      proc_->codec().decode_into(
          std::string_view(peer.inbuf).substr(pos + 4, len), inbound_);
      pos += 4 + len;
      proc_->on_message(*this, p, inbound_);
    }
    if (!crashed_ && peer.alive && pos > 0) peer.inbuf.erase(0, pos);
  }

  void flush_out(ProcessId p) {
    Peer& peer = peers_[p];
    while (!peer.outbuf.empty()) {
      const auto io = tcp::write_some(peer.fd.get(), peer.outbuf.data(),
                                      peer.outbuf.size());
      if (io.status == IoStatus::kOk) {
        peer.outbuf.erase(0, io.bytes);
        continue;
      }
      if (io.status == IoStatus::kClosed) {
        peer.fd.reset();
        peer.alive = false;
        peer.inbuf.clear();
        peer.outbuf.clear();
      }
      return;  // kWouldBlock: POLLOUT will resume
    }
  }

  void fail_pending(const char* why) {
    std::deque<Command> rest;
    {
      const std::scoped_lock lock(cmd_mu_);
      closed_ = true;
      rest.swap(commands_);
    }
    for (Command& cmd : rest) {
      auto ex = std::make_exception_ptr(std::runtime_error(why));
      if (auto* w = std::get_if<WriteCmd>(&cmd)) w->done->set_exception(ex);
      if (auto* r = std::get_if<ReadCmd>(&cmd)) r->done->set_exception(ex);
    }
  }

  SocketNetwork& net_;
  ProcessId pid_;
  std::unique_ptr<RegisterProcessBase> proc_;
  std::vector<Peer> peers_;
  std::string encode_scratch_;  ///< reused wire buffer (loop thread only)
  Message inbound_;             ///< decode_into scratch (loop thread only)
  OwnedFd listener_;
  OwnedFd wake_rd_, wake_wr_;

  std::mutex cmd_mu_;
  std::deque<Command> commands_;
  bool closed_ = false;

  std::vector<Timer> timers_;  // min-heap
  std::uint64_t timer_seq_ = 0;
  bool crashed_ = false;                    // loop thread's view
  std::atomic<bool> crashed_flag_{false};   // external observers
  // In-flight client operation promises (loop thread only): resolved by
  // the completion callback or failed by a crash, whichever comes first.
  std::shared_ptr<std::promise<Tick>> pending_write_;
  std::shared_ptr<std::promise<ReadResultT>> pending_read_;
};

// ---- SocketNetwork ------------------------------------------------------------------

SocketNetwork::SocketNetwork(Options options)
    : cfg_(options.cfg), opt_(std::move(options)), epoch_(Clock::now()) {
  cfg_.validate();
  TBR_ENSURE(cfg_.n >= 2, "a socket mesh needs at least two processes");
  nodes_.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    auto proc = opt_.process_factory
                    ? opt_.process_factory(cfg_, pid)
                    : make_register_process(opt_.algo, cfg_, pid);
    nodes_.push_back(std::make_unique<Node>(*this, pid, std::move(proc)));
  }
}

SocketNetwork::~SocketNetwork() { stop(); }

Tick SocketNetwork::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

void SocketNetwork::start() {
  TBR_ENSURE(!stopped_, "network cannot be restarted");
  if (started_) return;
  started_ = true;

  // Deterministic mesh handshake, one pair at a time: j dials i, announces
  // itself, i accepts. Loopback makes the dial/accept alternation safe.
  std::vector<std::uint16_t> ports(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    ports[pid] = nodes_[pid]->listen();
  }
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = i + 1; j < cfg_.n; ++j) {
      OwnedFd dialer = tcp::connect_loopback(ports[i]);
      const std::uint32_t hello = j;
      tcp::write_all_blocking(dialer.get(),
                              reinterpret_cast<const char*>(&hello),
                              sizeof(hello));
      OwnedFd accepted = tcp::accept_blocking(nodes_[i]->listener_fd());
      const std::string got =
          tcp::read_exact_blocking(accepted.get(), sizeof(std::uint32_t));
      std::uint32_t announced = 0;
      std::memcpy(&announced, got.data(), sizeof(announced));
      TBR_ENSURE(announced == j, "mesh handshake out of order");
      nodes_[i]->adopt_connection(j, std::move(accepted));
      nodes_[j]->adopt_connection(i, std::move(dialer));
    }
  }
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) nodes_[pid]->finish_setup();

  threads_.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    threads_.emplace_back(
        [node = nodes_[pid].get()](std::stop_token st) { node->loop(st); });
  }
}

void SocketNetwork::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& thread : threads_) thread.request_stop();
  for (auto& node : nodes_) node->wake();
  threads_.clear();  // jthread joins on destruction
}

std::future<Tick> SocketNetwork::write(Value v) {
  TBR_ENSURE(started_, "start() the network first");
  auto promise = std::make_shared<std::promise<Tick>>();
  auto future = promise->get_future();
  if (!nodes_[cfg_.writer]->submit(
          Node::WriteCmd{std::move(v), promise})) {
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("network is shut down")));
  }
  return future;
}

std::future<SocketNetwork::ReadResult> SocketNetwork::read(ProcessId reader) {
  TBR_ENSURE(started_, "start() the network first");
  TBR_ENSURE(reader < cfg_.n, "reader id out of range");
  auto promise = std::make_shared<std::promise<ReadResult>>();
  auto future = promise->get_future();
  if (!nodes_[reader]->submit(Node::ReadCmd{promise})) {
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("network is shut down")));
  }
  return future;
}

void SocketNetwork::crash(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  nodes_[pid]->submit(Node::CrashCmd{});
}

bool SocketNetwork::crashed(ProcessId pid) const {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  return nodes_[pid]->crashed();
}

MessageStats SocketNetwork::stats_snapshot() const {
  const std::scoped_lock lock(stats_mu_);
  return stats_;
}

void SocketNetwork::record_send(std::uint8_t type,
                                const WireAccounting& wire) {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_send(type, wire);
}

void SocketNetwork::record_drop(std::uint8_t type) {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_drop(type);
}

}  // namespace tbr
