#include "transport/socket_network.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "common/contracts.hpp"
#include "core/twobit_process.hpp"
#include "transport/event_loop.hpp"
#include "transport/frame_buffer.hpp"
#include "transport/tcp_socket.hpp"

namespace tbr {

using Clock = std::chrono::steady_clock;

namespace {
constexpr Status kCrashedStatus{StatusCode::kCrashed, "process has crashed"};
constexpr Status kShutdownStatus{StatusCode::kShutdown,
                                 "network is shut down"};
/// epoll tag reserved for a loop's own wakeup pipe.
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};
}  // namespace

// ---- Loop: one epoll event loop multiplexing a shard of the processes ----------
//
// Each loop owns an Epoller, a wakeup pipe, a typed command queue, and a
// timer heap; the processes assigned to it (pid % loops) run all their
// handlers on its thread. Connections register a Watch once — interest
// changes are O(1) epoll_ctl calls against a cached armed-events mask,
// nothing is rebuilt per iteration (the poll(2) engine this replaces
// rebuilt and rescanned its whole pollfd array every wakeup).

class SocketNetwork::Loop {
 public:
  /// One marshaled request for a node on this loop's thread. The hot case
  /// (kOp) is a plain pooled-OpState pointer — no promises, no shared
  /// state, nothing to allocate per op. The cold cases are fault plumbing:
  /// a crash marker, a fresh connection to adopt (rejoin re-meshing), a
  /// rebirth carrying the factory for the new incarnation, and the
  /// slow-reader fault hook.
  struct Command {
    enum class Kind { kOp, kCrash, kReattach, kRecover, kReadPause };
    Kind kind = Kind::kOp;
    Node* node = nullptr;
    OpState* op = nullptr;        // kOp
    ProcessId peer = kNoProcess;  // kReattach: whose channel this is
    OwnedFd fd;                   // kReattach: the new connection
    bool pause = false;           // kReadPause
    std::function<std::unique_ptr<RegisterProcessBase>()> make;  // kRecover
  };

  explicit Loop(SocketNetwork& net) : net_(net) {
    auto [rd, wr] = tcp::make_wakeup_pipe();
    wake_rd_ = std::move(rd);
    wake_wr_ = std::move(wr);
    epoll_.add(wake_rd_.get(), EPOLLIN, kWakeTag);
  }

  void adopt_node(Node* node) { nodes_.push_back(node); }

  /// Reserve a watch slot for (node, peer). Registration with the kernel
  /// happens at the first set_interest with a live fd.
  std::uint32_t register_watch(Node* node, ProcessId peer) {
    watches_.push_back(Watch{node, peer});
    return static_cast<std::uint32_t>(watches_.size() - 1);
  }

  /// Reconcile the kernel's interest set for a watch with `events`,
  /// issuing at most one epoll_ctl (none when nothing changed).
  void set_interest(std::uint32_t id, int fd, std::uint32_t events) {
    Watch& w = watches_[id];
    if (!w.registered) {
      epoll_.add(fd, events, id);
      w.registered = true;
      w.fd = fd;
      w.armed = events;
      return;
    }
    TBR_ENSURE(w.fd == fd, "watch rebound without clear_interest");
    if (w.armed != events) {
      epoll_.mod(fd, events, id);
      w.armed = events;
    }
  }

  /// The watch's fd is about to close (closing an epoll-registered fd
  /// deregisters it in the kernel); forget our cached registration.
  void clear_interest(std::uint32_t id) {
    Watch& w = watches_[id];
    w.registered = false;
    w.armed = 0;
    w.fd = -1;
  }

  bool submit(Command&& cmd) {
    {
      const std::scoped_lock lock(cmd_mu_);
      if (closed_) return false;
      commands_.push_back(std::move(cmd));
    }
    wake();
    return true;
  }

  void wake() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wake_wr_.get(), &byte, 1);
  }

  void schedule(Node* node, std::uint64_t epoch, Tick at,
                std::function<void()> fn);

  void run(std::stop_token st);

 private:
  struct Watch {
    Node* node = nullptr;
    ProcessId peer = kNoProcess;
    int fd = -1;
    std::uint32_t armed = 0;
    bool registered = false;
  };
  struct Timer {
    Tick at = 0;
    std::uint64_t seq = 0;
    Node* node = nullptr;
    std::uint64_t epoch = 0;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  int wait_timeout_ms() const {
    if (timers_.empty()) return -1;
    const Tick ns = timers_.front().at - net_.now();
    if (ns <= 0) return 0;
    return static_cast<int>(
        std::min<Tick>((ns + 999'999) / 1'000'000, 60'000));
  }

  void fire_due_timers();
  void run_commands();
  void fail_queued_commands();

  SocketNetwork& net_;
  Epoller epoll_;
  OwnedFd wake_rd_, wake_wr_;
  std::vector<Node*> nodes_;  ///< the processes sharded onto this loop
  std::vector<Watch> watches_;

  std::mutex cmd_mu_;
  std::vector<Command> commands_;
  std::vector<Command> cmd_batch_;  ///< recycled drain buffer (loop thread)
  bool closed_ = false;

  std::vector<Timer> timers_;  // min-heap
  std::uint64_t timer_seq_ = 0;
};

// ---- Node: one process, its connections, its handlers --------------------------

class SocketNetwork::Node final : public NetworkContext {
 public:
  Node(SocketNetwork& net, ProcessId pid,
       std::unique_ptr<RegisterProcessBase> proc)
      : net_(net), pid_(pid), proc_(std::move(proc)), peers_(net.cfg_.n),
        watch_ids_(net.cfg_.n, 0) {}

  // ---- NetworkContext (owning loop thread only) ---------------------------------
  void send(ProcessId to, const Message& msg) override {
    TBR_ENSURE(to < peers_.size() && to != pid_, "bad destination");
    if (crashed_) return;
    net_.record_send(msg.type, msg.wire);
    Connection& conn = peers_[to];
    if (!conn.alive()) {
      net_.record_drop(msg.type);
      return;
    }
    // encode_into a reused scratch, then frame into the connection's
    // outbuf: no fresh string per send (the buffer-pool discipline of the
    // threaded runtime, ported to the socket path).
    proc_->codec().encode_into(msg, encode_scratch_);
    if (conn.queue_frame(encode_scratch_)) {
      park_events_.fetch_add(1, std::memory_order_relaxed);
      recompute_park();
    }
    const std::uint64_t queued = conn.queued_bytes();
    if (queued > peak_outbuf_.load(std::memory_order_relaxed)) {
      peak_outbuf_.store(queued, std::memory_order_relaxed);
    }
    const auto fo = conn.flush();
    if (fo.status == IoStatus::kClosed) {
      teardown_conn(to);
      recompute_park();
      return;
    }
    if (fo.resumed) {
      resume_events_.fetch_add(1, std::memory_order_relaxed);
      recompute_park();
    }
    update_interest(to);
  }
  ProcessId self() const override { return pid_; }
  std::uint32_t process_count() const override { return net_.cfg_.n; }
  Tick now() const override { return net_.now(); }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(delay > 0, "timer delay must be positive");
    loop_->schedule(this, timer_epoch_, net_.now() + delay, std::move(fn));
  }

  // ---- mesh setup (main thread, before the loops start) -------------------------
  std::uint16_t listen() {
    auto [fd, port] = tcp::listen_loopback(static_cast<int>(net_.cfg_.n));
    listener_ = std::move(fd);
    return port;
  }
  int listener_fd() const { return listener_.get(); }
  /// Main thread, only before start() or after stop() joins the loops.
  RegisterProcessBase& process_unlocked() noexcept { return *proc_; }

  void attach_loop(Loop* loop, const ConnLimits& limits) {
    loop_ = loop;
    limits_ = limits;
    loop->adopt_node(this);
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p == pid_) continue;
      peers_[p].configure(limits);
      watch_ids_[p] = loop->register_watch(this, p);
    }
  }
  Loop& loop() noexcept { return *loop_; }

  void adopt_connection(ProcessId peer, OwnedFd fd) {
    TBR_ENSURE(peer < peers_.size() && !peers_[peer].alive(),
               "duplicate connection");
    peers_[peer].adopt(std::move(fd));
  }
  void apply_kernel_buffers(int fd) const {
    if (limits_.kernel_buffer_bytes > 0) {
      tcp::set_sndbuf(fd, limits_.kernel_buffer_bytes);
      tcp::set_rcvbuf(fd, limits_.kernel_buffer_bytes);
    }
  }

  void finish_setup() {
    listener_.reset();
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p == pid_) continue;
      TBR_ENSURE(peers_[p].alive(), "mesh incomplete");
      tcp::set_nonblocking(peers_[p].fd());
      tcp::set_nodelay(peers_[p].fd());
      apply_kernel_buffers(peers_[p].fd());
      update_interest(p);
    }
  }

  void on_loop_start() { proc_->on_start(*this); }

  // ---- observers (any thread) ---------------------------------------------------
  bool crashed() const {
    return crashed_flag_.load(std::memory_order_acquire);
  }
  bool parked() const { return parked_flag_.load(std::memory_order_acquire); }
  std::uint64_t timer_epoch() const noexcept { return timer_epoch_; }

  void accumulate(BackpressureStats& out) const {
    out.park_events += park_events_.load(std::memory_order_relaxed);
    out.resume_events += resume_events_.load(std::memory_order_relaxed);
    out.deferred_ops += deferred_admissions_.load(std::memory_order_relaxed);
    out.peak_outbuf_bytes = std::max(
        out.peak_outbuf_bytes, peak_outbuf_.load(std::memory_order_relaxed));
    if (parked()) ++out.parked_now;
  }

  // ---- command handlers (owning loop thread) ------------------------------------

  /// A client operation reaching its owning loop thread. Admission is a
  /// FIFO: the op starts from pump_ops() once the process is idle and no
  /// outbound channel is parked — this is where backpressure becomes a
  /// deterministic stall of the RegisterClient submission chain instead
  /// of an unbounded buffer.
  void admit(OpState& st) {
    if (crashed_) {
      st.owner->complete_failed(st, kCrashedStatus);
      return;
    }
    if (park_active_) {
      deferred_admissions_.fetch_add(1, std::memory_order_relaxed);
    }
    queued_ops_.push_back(&st);
  }

  /// Start queued ops while the process is idle and unparked. Called at
  /// the top level of the loop iteration only — never from inside a
  /// protocol handler, so an op's first sends can't reenter the process
  /// mid-message.
  void pump_ops() {
    while (!crashed_ && !park_active_ && pending_op_ == nullptr &&
           queued_head_ < queued_ops_.size()) {
      OpState* st = queued_ops_[queued_head_++];
      if (queued_head_ == queued_ops_.size()) {
        queued_ops_.clear();  // capacity retained
        queued_head_ = 0;
      }
      start_op(*st);
    }
  }

  void handle_crash() {
    if (crashed_) return;
    crashed_ = true;
    crashed_flag_.store(true, std::memory_order_release);
    proc_->on_crash();
    // The model lets a faulty process's last operation evaporate (§2.2);
    // its client must still learn the outcome — fail it now, the algorithm
    // will never complete it. Queued-but-unstarted admissions fail in
    // arrival order behind it.
    if (pending_op_ != nullptr) {
      OpState& op = *pending_op_;
      pending_op_ = nullptr;
      op.owner->complete_failed(op, kCrashedStatus);
    }
    for (std::size_t k = queued_head_; k < queued_ops_.size(); ++k) {
      queued_ops_[k]->owner->complete_failed(*queued_ops_[k], kCrashedStatus);
    }
    queued_ops_.clear();
    queued_head_ = 0;
    // A crash kills the endpoint: sockets close, peers see dead channels.
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p != pid_) teardown_conn(p);
    }
    ++timer_epoch_;  // pending timers die with the incarnation
    recompute_park();
  }

  void handle_reattach(ProcessId p, OwnedFd fd) {
    TBR_ENSURE(p < peers_.size() && p != pid_, "bad reattach peer");
    tcp::set_nonblocking(fd.get());
    tcp::set_nodelay(fd.get());
    apply_kernel_buffers(fd.get());
    // Replace whatever channel state is left: closing the old fd and
    // clearing both buffers is the fence — every byte of the dead
    // connection (unsent, unread, or half-framed) dies here.
    teardown_conn(p);
    peers_[p].adopt(std::move(fd));
    update_interest(p);
    recompute_park();
  }

  void handle_recover(
      const std::function<std::unique_ptr<RegisterProcessBase>()>& make) {
    TBR_ENSURE(crashed_, "recover of a process that is not crashed");
    proc_ = make();
    TBR_ENSURE(proc_ != nullptr, "recover factory returned null");
    crashed_ = false;
    crashed_flag_.store(false, std::memory_order_release);
    proc_->on_start(*this);  // a rejoiner broadcasts CATCHUP here
    // Frames that landed in an inbuf between reattach and rebirth were
    // parked by the crashed dispatch gate; hand them over now.
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p != pid_ && peers_[p].alive()) dispatch_frames(p);
    }
  }

  void handle_read_pause(bool paused) {
    if (read_paused_ == paused) return;
    read_paused_ = paused;
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p != pid_ && peers_[p].alive()) update_interest(p);
    }
  }

  /// Readiness on the channel to `p` (owning loop thread).
  void on_io(ProcessId p, std::uint32_t events) {
    Connection& conn = peers_[p];
    if (!conn.alive()) return;  // torn down earlier in this batch
    const bool hangup = (events & (EPOLLHUP | EPOLLERR)) != 0;
    if (((events & EPOLLIN) != 0 && !read_paused_) || hangup) {
      const IoStatus rs = conn.read_budgeted();
      dispatch_frames(p);
      if (crashed_) return;
      if (!conn.alive()) {  // a handler tore this channel down
        recompute_park();
        return;
      }
      if (rs == IoStatus::kClosed) {
        teardown_conn(p);
        recompute_park();
        return;
      }
    }
    if ((events & EPOLLOUT) != 0 && conn.wants_write()) {
      const auto fo = conn.flush();
      if (fo.status == IoStatus::kClosed) {
        teardown_conn(p);
        recompute_park();
        return;
      }
      if (fo.resumed) {
        resume_events_.fetch_add(1, std::memory_order_relaxed);
        recompute_park();
      }
    }
    update_interest(p);
  }

  /// Loop exit: every accepted-but-unresolved operation completes with
  /// kShutdown — the in-protocol one first, then the admitted-but-queued
  /// ones in arrival order.
  void fail_all_pending() {
    if (pending_op_ != nullptr) {
      OpState& op = *pending_op_;
      pending_op_ = nullptr;
      op.owner->complete_failed(op, kShutdownStatus);
    }
    for (std::size_t k = queued_head_; k < queued_ops_.size(); ++k) {
      queued_ops_[k]->owner->complete_failed(*queued_ops_[k],
                                             kShutdownStatus);
    }
    queued_ops_.clear();
    queued_head_ = 0;
  }

  bool crashed_local() const noexcept { return crashed_; }

 private:
  void start_op(OpState& st) {
    TBR_ENSURE(pending_op_ == nullptr, "per-process op overlap");
    st.start = net_.now();
    pending_op_ = &st;
    if (st.kind == OpKind::kWrite) {
      proc_->start_write(*this, std::move(st.value), [this] {
        OpState& op = *pending_op_;
        pending_op_ = nullptr;
        op.result.latency = net_.now() - op.start;
        op.owner->complete(op);
      });
    } else {
      proc_->start_read(*this, [this](const Value& v, SeqNo index) {
        OpState& op = *pending_op_;
        pending_op_ = nullptr;
        op.result.value = v;  // copy into the pooled capacity
        op.result.version = index;
        op.result.latency = net_.now() - op.start;
        op.owner->complete(op);
      });
    }
  }

  void dispatch_frames(ProcessId p) {
    Connection& conn = peers_[p];
    // A handler can tear this very buffer down mid-loop (crash command, or
    // a send to p that discovers the socket closed), so re-check liveness
    // each iteration. The ring consumes each frame in O(frame): no
    // erase(0, pos) memmove of the whole remainder per drain.
    std::string_view frame;
    while (!crashed_ && conn.alive() && conn.next_frame(frame)) {
      // decode_into the loop's scratch Message: large payloads reuse its
      // value buffer instead of materializing a fresh string per frame.
      proc_->codec().decode_into(frame, inbound_);
      proc_->on_message(*this, p, inbound_);
    }
  }

  void teardown_conn(ProcessId p) {
    Connection& conn = peers_[p];
    if (!conn.alive()) return;
    loop_->clear_interest(watch_ids_[p]);
    conn.close();
  }

  void update_interest(ProcessId p) {
    Connection& conn = peers_[p];
    if (!conn.alive()) return;
    std::uint32_t ev = 0;
    if (!read_paused_) ev |= EPOLLIN;
    if (conn.wants_write()) ev |= EPOLLOUT;
    loop_->set_interest(watch_ids_[p], conn.fd(), ev);
  }

  /// Recompute the park flag (any live outbound channel above high water)
  /// after a transition-capable event. O(n), but only on transitions —
  /// steady-state sends that stay inside the watermarks never call this.
  void recompute_park() {
    bool any = false;
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p == pid_) continue;
      if (peers_[p].alive() && peers_[p].paused()) {
        any = true;
        break;
      }
    }
    if (any != park_active_) {
      park_active_ = any;
      parked_flag_.store(any, std::memory_order_release);
    }
  }

  SocketNetwork& net_;
  ProcessId pid_;
  std::unique_ptr<RegisterProcessBase> proc_;
  Loop* loop_ = nullptr;
  ConnLimits limits_;
  std::vector<Connection> peers_;
  std::vector<std::uint32_t> watch_ids_;  ///< per-peer epoll watch slots
  std::string encode_scratch_;  ///< reused wire buffer (loop thread only)
  Message inbound_;             ///< decode_into scratch (loop thread only)
  OwnedFd listener_;

  /// Admission FIFO (loop thread only): ops accepted but not yet started,
  /// drained by pump_ops() when idle and unparked. Recycled storage.
  std::vector<OpState*> queued_ops_;
  std::size_t queued_head_ = 0;
  /// The in-flight client operation (loop thread only): resolved by the
  /// protocol's completion callback, or failed by a crash marker or the
  /// shutdown path, whichever comes first.
  OpState* pending_op_ = nullptr;

  bool crashed_ = false;                   // loop thread's view
  std::atomic<bool> crashed_flag_{false};  // external observers
  bool read_paused_ = false;               // slow-reader fault hook
  bool park_active_ = false;               // loop thread's view
  std::atomic<bool> parked_flag_{false};   // external observers
  std::uint64_t timer_epoch_ = 0;

  std::atomic<std::uint64_t> park_events_{0};
  std::atomic<std::uint64_t> resume_events_{0};
  std::atomic<std::uint64_t> deferred_admissions_{0};
  std::atomic<std::uint64_t> peak_outbuf_{0};
};

// ---- Loop methods needing the complete Node type -------------------------------

void SocketNetwork::Loop::schedule(Node* node, std::uint64_t epoch, Tick at,
                                   std::function<void()> fn) {
  timers_.push_back(Timer{at, timer_seq_++, node, epoch, std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
}

void SocketNetwork::Loop::fire_due_timers() {
  while (!timers_.empty() && timers_.front().at <= net_.now()) {
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    Timer timer = std::move(timers_.back());
    timers_.pop_back();
    // Epoch fencing: a crash bumps the node's epoch, so timers armed by a
    // dead incarnation are skipped without scanning the heap.
    if (timer.node->timer_epoch() == timer.epoch &&
        !timer.node->crashed_local() && timer.fn) {
      timer.fn();
    }
  }
}

void SocketNetwork::Loop::run_commands() {
  // Swap the queue against the recycled batch buffer: both vectors keep
  // their high-water capacity, so steady-state command marshaling never
  // allocates.
  cmd_batch_.clear();
  {
    const std::scoped_lock lock(cmd_mu_);
    cmd_batch_.swap(commands_);
  }
  for (Command& cmd : cmd_batch_) {
    switch (cmd.kind) {
      case Command::Kind::kOp:
        cmd.node->admit(*cmd.op);
        break;
      case Command::Kind::kCrash:
        cmd.node->handle_crash();
        break;
      case Command::Kind::kReattach:
        cmd.node->handle_reattach(cmd.peer, std::move(cmd.fd));
        break;
      case Command::Kind::kRecover:
        cmd.node->handle_recover(cmd.make);
        break;
      case Command::Kind::kReadPause:
        cmd.node->handle_read_pause(cmd.pause);
        break;
    }
  }
}

void SocketNetwork::Loop::fail_queued_commands() {
  std::vector<Command> rest;
  {
    const std::scoped_lock lock(cmd_mu_);
    closed_ = true;
    rest.swap(commands_);
  }
  for (const Command& cmd : rest) {
    if (cmd.op != nullptr) {
      cmd.op->owner->complete_failed(*cmd.op, kShutdownStatus);
    }
  }
}

void SocketNetwork::Loop::run(std::stop_token st) {
  for (Node* node : nodes_) node->on_loop_start();
  while (!st.stop_requested()) {
    const auto events = epoll_.wait(wait_timeout_ms());
    fire_due_timers();
    for (const epoll_event& ev : events) {
      const std::uint64_t tag = ev.data.u64;
      if (tag == kWakeTag) {
        tcp::drain_pipe(wake_rd_.get());
        run_commands();
        continue;
      }
      const Watch& w = watches_[tag];
      if (!w.registered) continue;  // torn down earlier in this batch
      w.node->on_io(w.peer, ev.events);
    }
    // Top-of-loop op admission: start queued client ops only here, never
    // from inside a protocol handler (sequential-process guarantee), and
    // only after backpressure state has settled for this batch.
    for (Node* node : nodes_) node->pump_ops();
  }
  // Loop exit: fail everything accepted, then everything still queued;
  // later submissions bounce at submit().
  for (Node* node : nodes_) node->fail_all_pending();
  fail_queued_commands();
}

// ---- ClientImpl: the unified client API over this runtime -------------------
//
// Issue = submit a Command carrying the OpState pointer to the owning
// node's loop thread (which resolves it with a uniform Status); park =
// block on the client pool's condition variable. Completion is guaranteed:
// the loop's crash and shutdown paths fail every accepted command.

class SocketNetwork::ClientImpl final : public RegisterClientEngine {
 public:
  explicit ClientImpl(SocketNetwork& net) : net_(net), client_(*this) {}

  std::uint32_t client_nodes() const override { return net_.cfg_.n; }
  ProcessId client_writer() const override { return net_.cfg_.writer; }

  ProcessId client_pick_reader() override {
    return rotor_.pick(net_.cfg_.n,
                       [this](ProcessId r) { return net_.crashed(r); });
  }

  void client_issue(OpState& st) override {
    TBR_ENSURE(net_.started_, "start() the network first");
    Node* node = net_.nodes_[st.node].get();
    Loop::Command cmd;
    cmd.node = node;
    cmd.op = &st;
    if (!node->loop().submit(std::move(cmd))) {
      st.owner->complete_failed(st, kShutdownStatus);
    }
  }

  void client_park(OpState& st, OpPool& pool) override {
    pool.block_until_ready(st);
  }

  RegisterClient& client() noexcept { return client_; }

 private:
  SocketNetwork& net_;
  ReaderRotor rotor_;
  RegisterClient client_;
};

// ---- SocketNetwork ------------------------------------------------------------------

SocketNetwork::SocketNetwork(Options options)
    : cfg_(options.cfg), opt_(std::move(options)), epoch_(Clock::now()) {
  cfg_.validate();
  opt_.limits.validate();
  TBR_ENSURE(cfg_.n >= 2, "a socket mesh needs at least two processes");
  nodes_.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    auto proc = opt_.process_factory
                    ? opt_.process_factory(cfg_, pid)
                    : make_register_process(opt_.algo, cfg_, pid);
    nodes_.push_back(std::make_unique<Node>(*this, pid, std::move(proc)));
  }
  const auto hw = std::max(1u, std::thread::hardware_concurrency());
  std::uint32_t count =
      opt_.loops == 0 ? std::min<std::uint32_t>(cfg_.n, hw) : opt_.loops;
  count = std::clamp<std::uint32_t>(count, 1, cfg_.n);
  loops_.reserve(count);
  for (std::uint32_t l = 0; l < count; ++l) {
    loops_.push_back(std::make_unique<Loop>(*this));
  }
  // Shard processes onto loops: pid % loops. Every connection of a
  // process lives on its owner's loop — the mesh-topology analogue of
  // sharded accept (a channel is "accepted onto" exactly one loop).
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    nodes_[pid]->attach_loop(loops_[pid % count].get(), opt_.limits);
  }
  client_impl_ = std::make_unique<ClientImpl>(*this);
}

SocketNetwork::~SocketNetwork() { stop(); }

RegisterClient& SocketNetwork::client() noexcept {
  return client_impl_->client();
}

Tick SocketNetwork::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

std::uint32_t SocketNetwork::loop_count() const noexcept {
  return static_cast<std::uint32_t>(loops_.size());
}

void SocketNetwork::start() {
  TBR_ENSURE(!stopped_, "network cannot be restarted");
  if (started_) return;
  started_ = true;

  // Deterministic mesh handshake, one pair at a time: j dials i, announces
  // itself, i accepts. Loopback makes the dial/accept alternation safe.
  std::vector<std::uint16_t> ports(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    ports[pid] = nodes_[pid]->listen();
  }
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = i + 1; j < cfg_.n; ++j) {
      OwnedFd dialer = tcp::connect_loopback(ports[i]);
      const std::uint32_t hello = j;
      tcp::write_all_blocking(dialer.get(),
                              reinterpret_cast<const char*>(&hello),
                              sizeof(hello));
      OwnedFd accepted = tcp::accept_blocking(nodes_[i]->listener_fd());
      const std::string got =
          tcp::read_exact_blocking(accepted.get(), sizeof(std::uint32_t));
      std::uint32_t announced = 0;
      std::memcpy(&announced, got.data(), sizeof(announced));
      TBR_ENSURE(announced == j, "mesh handshake out of order");
      nodes_[i]->adopt_connection(j, std::move(accepted));
      nodes_[j]->adopt_connection(i, std::move(dialer));
    }
  }
  // Registers every fd with its owning loop's epoll — from this thread,
  // before the loop threads exist (thread creation orders the memory).
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) nodes_[pid]->finish_setup();

  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back(
        [l = loop.get()](std::stop_token st) { l->run(st); });
  }
}

void SocketNetwork::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& thread : threads_) thread.request_stop();
  for (auto& loop : loops_) loop->wake();
  threads_.clear();  // jthread joins on destruction
  // Loop threads are joined: process state is safe to read. Record the
  // final local-memory gauge next to the wire tallies.
  std::uint64_t peak = 0;
  for (auto& node : nodes_) {
    peak = std::max(peak, node->process_unlocked().local_memory_bytes());
  }
  const std::scoped_lock lock(stats_mu_);
  stats_.record_local_memory(peak);
}

void SocketNetwork::crash(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  Loop::Command cmd;
  cmd.kind = Loop::Command::Kind::kCrash;
  cmd.node = nodes_[pid].get();
  nodes_[pid]->loop().submit(std::move(cmd));
}

void SocketNetwork::recover(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  TBR_ENSURE(started_ && !stopped_, "recover needs a running network");
  TBR_ENSURE(crashed(pid), "recover of a process that is not crashed");
  std::function<std::unique_ptr<RegisterProcessBase>()> make;
  if (opt_.recover_factory) {
    make = [factory = opt_.recover_factory, cfg = cfg_, pid] {
      return factory(cfg, pid);
    };
  } else {
    TBR_ENSURE(opt_.algo == Algorithm::kTwoBit && !opt_.process_factory,
               "recover needs Options::recover_factory");
    make = [cfg = cfg_, pid]() -> std::unique_ptr<RegisterProcessBase> {
      TwoBitOptions topt;
      topt.recover_via_catchup = true;
      return std::make_unique<TwoBitProcess>(cfg, pid, topt);
    };
  }
  // Re-mesh: a brand-new TCP connection per live peer. The rejoiner adopts
  // its ends first (FIFO per loop command queue), so they are in place
  // before the recover command runs on_start (which broadcasts CATCHUP on
  // them).
  for (ProcessId q = 0; q < cfg_.n; ++q) {
    if (q == pid || nodes_[q]->crashed()) continue;
    auto [mine, theirs] = tcp::make_loopback_pair();
    Loop::Command to_self;
    to_self.kind = Loop::Command::Kind::kReattach;
    to_self.node = nodes_[pid].get();
    to_self.peer = q;
    to_self.fd = std::move(mine);
    nodes_[pid]->loop().submit(std::move(to_self));
    Loop::Command to_peer;
    to_peer.kind = Loop::Command::Kind::kReattach;
    to_peer.node = nodes_[q].get();
    to_peer.peer = pid;
    to_peer.fd = std::move(theirs);
    nodes_[q]->loop().submit(std::move(to_peer));
  }
  Loop::Command reborn;
  reborn.kind = Loop::Command::Kind::kRecover;
  reborn.node = nodes_[pid].get();
  reborn.make = std::move(make);
  nodes_[pid]->loop().submit(std::move(reborn));
}

bool SocketNetwork::crashed(ProcessId pid) const {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  return nodes_[pid]->crashed();
}

bool SocketNetwork::parked(ProcessId pid) const {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  return nodes_[pid]->parked();
}

SocketNetwork::BackpressureStats SocketNetwork::backpressure_snapshot()
    const {
  BackpressureStats out;
  for (const auto& node : nodes_) node->accumulate(out);
  return out;
}

void SocketNetwork::set_read_paused(ProcessId pid, bool paused) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  Loop::Command cmd;
  cmd.kind = Loop::Command::Kind::kReadPause;
  cmd.node = nodes_[pid].get();
  cmd.pause = paused;
  nodes_[pid]->loop().submit(std::move(cmd));
}

MessageStats SocketNetwork::stats_snapshot() const {
  const std::scoped_lock lock(stats_mu_);
  return stats_;
}

void SocketNetwork::record_send(std::uint8_t type,
                                const WireAccounting& wire) {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_send(type, wire);
}

void SocketNetwork::record_drop(std::uint8_t type) {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_drop(type);
}

}  // namespace tbr
