#include "transport/socket_network.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "common/contracts.hpp"
#include "core/twobit_process.hpp"
#include "transport/frame_buffer.hpp"
#include "transport/tcp_socket.hpp"

namespace tbr {

using Clock = std::chrono::steady_clock;

namespace {
constexpr Status kCrashedStatus{StatusCode::kCrashed, "process has crashed"};
constexpr Status kShutdownStatus{StatusCode::kShutdown,
                                 "network is shut down"};
}  // namespace

// ---- Node: one process, its sockets, its event loop -----------------------------

class SocketNetwork::Node final : public NetworkContext {
 public:
  Node(SocketNetwork& net, ProcessId pid,
       std::unique_ptr<RegisterProcessBase> proc)
      : net_(net), pid_(pid), proc_(std::move(proc)), peers_(net.cfg_.n) {
    auto [rd, wr] = tcp::make_wakeup_pipe();
    wake_rd_ = std::move(rd);
    wake_wr_ = std::move(wr);
  }

  // ---- NetworkContext (loop thread only) ----------------------------------------
  void send(ProcessId to, const Message& msg) override {
    TBR_ENSURE(to < peers_.size() && to != pid_, "bad destination");
    if (crashed_) return;
    net_.record_send(msg.type, msg.wire);
    Peer& peer = peers_[to];
    if (!peer.alive) {
      net_.record_drop(msg.type);
      return;
    }
    // encode_into a reused scratch, then frame into the peer's outbuf: no
    // fresh string per send (the buffer-pool discipline of the threaded
    // runtime, ported to the socket path).
    proc_->codec().encode_into(msg, encode_scratch_);
    FrameBuffer::append_frame(peer.outbuf, encode_scratch_);
    flush_out(to);
  }
  ProcessId self() const override { return pid_; }
  std::uint32_t process_count() const override { return net_.cfg_.n; }
  Tick now() const override { return net_.now(); }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(delay > 0, "timer delay must be positive");
    timers_.push_back(Timer{net_.now() + delay, timer_seq_++, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  }

  // ---- mesh setup (main thread, before the loop starts) ---------------------------
  std::uint16_t listen() {
    auto [fd, port] = tcp::listen_loopback(static_cast<int>(net_.cfg_.n));
    listener_ = std::move(fd);
    return port;
  }
  int listener_fd() const { return listener_.get(); }
  /// Main thread, only before start() or after stop() joins the loop.
  RegisterProcessBase& process_unlocked() noexcept { return *proc_; }
  void adopt_connection(ProcessId peer, OwnedFd fd) {
    TBR_ENSURE(peer < peers_.size() && !peers_[peer].fd.valid(),
               "duplicate connection");
    peers_[peer].fd = std::move(fd);
    peers_[peer].alive = true;
  }
  void finish_setup() {
    listener_.reset();
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p == pid_) continue;
      TBR_ENSURE(peers_[p].fd.valid(), "mesh incomplete");
      tcp::set_nonblocking(peers_[p].fd.get());
      tcp::set_nodelay(peers_[p].fd.get());
    }
  }

  // ---- commands (any thread) -------------------------------------------------------
  /// One marshaled request for this node's loop thread. The hot case (kOp)
  /// is a plain pooled-OpState pointer — no promises, no shared state,
  /// nothing to allocate per op. The cold cases are fault plumbing: a crash
  /// marker, a fresh connection to adopt (rejoin re-meshing), and a rebirth
  /// carrying the factory for the new incarnation.
  struct Command {
    enum class Kind { kOp, kCrash, kReattach, kRecover };
    Kind kind = Kind::kOp;
    OpState* op = nullptr;        // kOp
    ProcessId peer = kNoProcess;  // kReattach: whose channel this is
    OwnedFd fd;                   // kReattach: the new connection
    std::function<std::unique_ptr<RegisterProcessBase>()> make;  // kRecover
  };

  bool submit(Command&& cmd) {
    {
      const std::scoped_lock lock(cmd_mu_);
      if (closed_) return false;
      commands_.push_back(std::move(cmd));
    }
    wake();
    return true;
  }

  void wake() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wake_wr_.get(), &byte, 1);
  }

  bool crashed() const {
    return crashed_flag_.load(std::memory_order_acquire);
  }

  // ---- the event loop -----------------------------------------------------------------
  void loop(std::stop_token st) {
    proc_->on_start(*this);
    std::vector<pollfd> fds;
    std::vector<ProcessId> fd_peer;  // pollfd index -> peer id (after pipe)
    while (!st.stop_requested()) {
      fds.clear();
      fd_peer.clear();
      fds.push_back(pollfd{wake_rd_.get(), POLLIN, 0});
      for (ProcessId p = 0; p < peers_.size(); ++p) {
        if (p == pid_ || !peers_[p].alive) continue;
        short events = POLLIN;
        if (!peers_[p].outbuf.empty()) events |= POLLOUT;
        fds.push_back(pollfd{peers_[p].fd.get(), events, 0});
        fd_peer.push_back(p);
      }
      const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw TransportError("poll failed");
      }
      fire_due_timers();
      if ((fds[0].revents & POLLIN) != 0) {
        tcp::drain_pipe(wake_rd_.get());
        run_commands();
      }
      for (std::size_t k = 1; k < fds.size(); ++k) {
        const ProcessId p = fd_peer[k - 1];
        if (!peers_[p].alive) continue;  // a handler may have crashed us
        if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          read_peer(p);
        }
        if (peers_[p].alive && (fds[k].revents & POLLOUT) != 0) {
          flush_out(p);
        }
      }
    }
    fail_pending();
  }

 private:
  struct Peer {
    OwnedFd fd;
    bool alive = false;
    FrameBuffer inbuf;
    std::string outbuf;
  };
  struct Timer {
    Tick at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  int poll_timeout_ms() const {
    if (timers_.empty()) return -1;
    const Tick ns = timers_.front().at - net_.now();
    if (ns <= 0) return 0;
    return static_cast<int>(
        std::min<Tick>((ns + 999'999) / 1'000'000, 60'000));
  }

  void fire_due_timers() {
    while (!timers_.empty() && timers_.front().at <= net_.now()) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      Timer timer = std::move(timers_.back());
      timers_.pop_back();
      if (!crashed_ && timer.fn) timer.fn();
    }
  }

  void run_commands() {
    // Swap the queue against the recycled batch buffer: both vectors keep
    // their high-water capacity, so steady-state command marshaling never
    // allocates (the old std::deque dropped its chunk on every swap).
    cmd_batch_.clear();
    {
      const std::scoped_lock lock(cmd_mu_);
      cmd_batch_.swap(commands_);
    }
    for (Command& cmd : cmd_batch_) {
      switch (cmd.kind) {
        case Command::Kind::kOp:
          handle_op(*cmd.op);
          break;
        case Command::Kind::kCrash:
          handle_crash();
          break;
        case Command::Kind::kReattach:
          handle_reattach(cmd.peer, std::move(cmd.fd));
          break;
        case Command::Kind::kRecover:
          handle_recover(cmd.make);
          break;
      }
    }
  }

  // A client operation reaching its owning loop thread. The chains in
  // RegisterClient serialize ops per process, so at most one is in flight
  // here at a time; its identity parks in pending_op_ so the completion
  // lambdas capture only `this` (std::function inline storage).
  void handle_op(OpState& st) {
    if (crashed_) {
      st.owner->complete_failed(st, kCrashedStatus);
      return;
    }
    TBR_ENSURE(pending_op_ == nullptr, "per-process op overlap");
    st.start = net_.now();
    pending_op_ = &st;
    if (st.kind == OpKind::kWrite) {
      proc_->start_write(*this, std::move(st.value), [this] {
        OpState& op = *pending_op_;
        pending_op_ = nullptr;
        op.result.latency = net_.now() - op.start;
        op.owner->complete(op);
      });
    } else {
      proc_->start_read(*this, [this](const Value& v, SeqNo index) {
        OpState& op = *pending_op_;
        pending_op_ = nullptr;
        op.result.value = v;  // copy into the pooled capacity
        op.result.version = index;
        op.result.latency = net_.now() - op.start;
        op.owner->complete(op);
      });
    }
  }

  void handle_crash() {
    if (crashed_) return;
    crashed_ = true;
    crashed_flag_.store(true, std::memory_order_release);
    proc_->on_crash();
    // The model lets a faulty process's last operation evaporate (§2.2);
    // its client must still learn the outcome — fail it now, the algorithm
    // will never complete it.
    if (pending_op_ != nullptr) {
      OpState& op = *pending_op_;
      pending_op_ = nullptr;
      op.owner->complete_failed(op, kCrashedStatus);
    }
    // A crash kills the endpoint: sockets close, peers see dead channels.
    for (Peer& peer : peers_) {
      peer.fd.reset();
      peer.alive = false;
      peer.inbuf.clear();
      peer.outbuf.clear();
    }
    timers_.clear();
  }

  void handle_reattach(ProcessId p, OwnedFd fd) {
    TBR_ENSURE(p < peers_.size() && p != pid_, "bad reattach peer");
    tcp::set_nonblocking(fd.get());
    tcp::set_nodelay(fd.get());
    Peer& peer = peers_[p];
    // Replace whatever channel state is left: closing the old fd and
    // clearing both buffers is the fence — every byte of the dead
    // connection (unsent, unread, or half-framed) dies here.
    peer.fd = std::move(fd);
    peer.alive = true;
    peer.inbuf.clear();
    peer.outbuf.clear();
  }

  void handle_recover(
      const std::function<std::unique_ptr<RegisterProcessBase>()>& make) {
    TBR_ENSURE(crashed_, "recover of a process that is not crashed");
    proc_ = make();
    TBR_ENSURE(proc_ != nullptr, "recover factory returned null");
    crashed_ = false;
    crashed_flag_.store(false, std::memory_order_release);
    proc_->on_start(*this);  // a rejoiner broadcasts CATCHUP here
    // Frames that landed in an inbuf between reattach and rebirth were
    // parked by the crashed dispatch gate; hand them over now.
    for (ProcessId p = 0; p < peers_.size(); ++p) {
      if (p != pid_ && peers_[p].alive) dispatch_frames(p);
    }
  }

  void read_peer(ProcessId p) {
    Peer& peer = peers_[p];
    for (;;) {
      const auto io = tcp::read_some(peer.fd.get(), peer.inbuf.tail(),
                                     64 * 1024);
      if (io.status == IoStatus::kClosed) {
        peer.fd.reset();
        peer.alive = false;
        peer.inbuf.clear();
        peer.outbuf.clear();
        return;
      }
      dispatch_frames(p);
      if (crashed_ || !peers_[p].alive) return;
      if (io.status == IoStatus::kWouldBlock) return;
    }
  }

  void dispatch_frames(ProcessId p) {
    Peer& peer = peers_[p];
    // A handler can tear this very buffer down mid-loop (crash command, or
    // a send to p that discovers the socket closed), so re-check liveness
    // each iteration. The ring consumes each frame in O(frame): no
    // erase(0, pos) memmove of the whole remainder per drain.
    std::string_view frame;
    while (!crashed_ && peer.alive && peer.inbuf.next_frame(frame)) {
      // decode_into the loop's scratch Message: large payloads reuse its
      // value buffer instead of materializing a fresh string per frame.
      proc_->codec().decode_into(frame, inbound_);
      proc_->on_message(*this, p, inbound_);
    }
  }

  void flush_out(ProcessId p) {
    Peer& peer = peers_[p];
    while (!peer.outbuf.empty()) {
      const auto io = tcp::write_some(peer.fd.get(), peer.outbuf.data(),
                                      peer.outbuf.size());
      if (io.status == IoStatus::kOk) {
        peer.outbuf.erase(0, io.bytes);
        continue;
      }
      if (io.status == IoStatus::kClosed) {
        peer.fd.reset();
        peer.alive = false;
        peer.inbuf.clear();
        peer.outbuf.clear();
      }
      return;  // kWouldBlock: POLLOUT will resume
    }
  }

  /// Loop exit: every accepted-but-unresolved operation completes with
  /// kShutdown — the in-protocol one first, then the still-queued ones —
  /// and later submissions bounce at submit().
  void fail_pending() {
    if (pending_op_ != nullptr) {
      OpState& op = *pending_op_;
      pending_op_ = nullptr;
      op.owner->complete_failed(op, kShutdownStatus);
    }
    std::vector<Command> rest;
    {
      const std::scoped_lock lock(cmd_mu_);
      closed_ = true;
      rest.swap(commands_);
    }
    for (const Command& cmd : rest) {
      if (cmd.op != nullptr) {
        cmd.op->owner->complete_failed(*cmd.op, kShutdownStatus);
      }
    }
  }

  SocketNetwork& net_;
  ProcessId pid_;
  std::unique_ptr<RegisterProcessBase> proc_;
  std::vector<Peer> peers_;
  std::string encode_scratch_;  ///< reused wire buffer (loop thread only)
  Message inbound_;             ///< decode_into scratch (loop thread only)
  OwnedFd listener_;
  OwnedFd wake_rd_, wake_wr_;

  std::mutex cmd_mu_;
  std::vector<Command> commands_;
  std::vector<Command> cmd_batch_;  ///< recycled drain buffer (loop thread)
  bool closed_ = false;

  std::vector<Timer> timers_;  // min-heap
  std::uint64_t timer_seq_ = 0;
  bool crashed_ = false;                    // loop thread's view
  std::atomic<bool> crashed_flag_{false};   // external observers
  /// The in-flight client operation (loop thread only): resolved by the
  /// protocol's completion callback, or failed by a crash marker or the
  /// shutdown path, whichever comes first.
  OpState* pending_op_ = nullptr;
};

// ---- ClientImpl: the unified client API over this runtime -------------------
//
// Issue = submit a Command carrying the OpState pointer to the target
// node's loop thread (which resolves it with a uniform Status); park =
// block on the client pool's condition variable. Completion is guaranteed:
// the loop's crash and shutdown paths fail every accepted command.

class SocketNetwork::ClientImpl final : public RegisterClientEngine {
 public:
  explicit ClientImpl(SocketNetwork& net) : net_(net), client_(*this) {}

  std::uint32_t client_nodes() const override { return net_.cfg_.n; }
  ProcessId client_writer() const override { return net_.cfg_.writer; }

  ProcessId client_pick_reader() override {
    return rotor_.pick(net_.cfg_.n,
                       [this](ProcessId r) { return net_.crashed(r); });
  }

  void client_issue(OpState& st) override {
    TBR_ENSURE(net_.started_, "start() the network first");
    Node::Command cmd;
    cmd.op = &st;
    if (!net_.nodes_[st.node]->submit(std::move(cmd))) {
      st.owner->complete_failed(st, kShutdownStatus);
    }
  }

  void client_park(OpState& st, OpPool& pool) override {
    pool.block_until_ready(st);
  }

  RegisterClient& client() noexcept { return client_; }

 private:
  SocketNetwork& net_;
  ReaderRotor rotor_;
  RegisterClient client_;
};

// ---- SocketNetwork ------------------------------------------------------------------

SocketNetwork::SocketNetwork(Options options)
    : cfg_(options.cfg), opt_(std::move(options)), epoch_(Clock::now()) {
  cfg_.validate();
  TBR_ENSURE(cfg_.n >= 2, "a socket mesh needs at least two processes");
  nodes_.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    auto proc = opt_.process_factory
                    ? opt_.process_factory(cfg_, pid)
                    : make_register_process(opt_.algo, cfg_, pid);
    nodes_.push_back(std::make_unique<Node>(*this, pid, std::move(proc)));
  }
  client_impl_ = std::make_unique<ClientImpl>(*this);
}

SocketNetwork::~SocketNetwork() { stop(); }

RegisterClient& SocketNetwork::client() noexcept {
  return client_impl_->client();
}

Tick SocketNetwork::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

void SocketNetwork::start() {
  TBR_ENSURE(!stopped_, "network cannot be restarted");
  if (started_) return;
  started_ = true;

  // Deterministic mesh handshake, one pair at a time: j dials i, announces
  // itself, i accepts. Loopback makes the dial/accept alternation safe.
  std::vector<std::uint16_t> ports(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    ports[pid] = nodes_[pid]->listen();
  }
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = i + 1; j < cfg_.n; ++j) {
      OwnedFd dialer = tcp::connect_loopback(ports[i]);
      const std::uint32_t hello = j;
      tcp::write_all_blocking(dialer.get(),
                              reinterpret_cast<const char*>(&hello),
                              sizeof(hello));
      OwnedFd accepted = tcp::accept_blocking(nodes_[i]->listener_fd());
      const std::string got =
          tcp::read_exact_blocking(accepted.get(), sizeof(std::uint32_t));
      std::uint32_t announced = 0;
      std::memcpy(&announced, got.data(), sizeof(announced));
      TBR_ENSURE(announced == j, "mesh handshake out of order");
      nodes_[i]->adopt_connection(j, std::move(accepted));
      nodes_[j]->adopt_connection(i, std::move(dialer));
    }
  }
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) nodes_[pid]->finish_setup();

  threads_.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    threads_.emplace_back(
        [node = nodes_[pid].get()](std::stop_token st) { node->loop(st); });
  }
}

void SocketNetwork::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& thread : threads_) thread.request_stop();
  for (auto& node : nodes_) node->wake();
  threads_.clear();  // jthread joins on destruction
  // Loop threads are joined: process state is safe to read. Record the
  // final local-memory gauge next to the wire tallies.
  std::uint64_t peak = 0;
  for (auto& node : nodes_) {
    peak = std::max(peak, node->process_unlocked().local_memory_bytes());
  }
  const std::scoped_lock lock(stats_mu_);
  stats_.record_local_memory(peak);
}

void SocketNetwork::crash(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  Node::Command cmd;
  cmd.kind = Node::Command::Kind::kCrash;
  nodes_[pid]->submit(std::move(cmd));
}

void SocketNetwork::recover(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  TBR_ENSURE(started_ && !stopped_, "recover needs a running network");
  TBR_ENSURE(crashed(pid), "recover of a process that is not crashed");
  std::function<std::unique_ptr<RegisterProcessBase>()> make;
  if (opt_.recover_factory) {
    make = [factory = opt_.recover_factory, cfg = cfg_, pid] {
      return factory(cfg, pid);
    };
  } else {
    TBR_ENSURE(opt_.algo == Algorithm::kTwoBit && !opt_.process_factory,
               "recover needs Options::recover_factory");
    make = [cfg = cfg_, pid]() -> std::unique_ptr<RegisterProcessBase> {
      TwoBitOptions topt;
      topt.recover_via_catchup = true;
      return std::make_unique<TwoBitProcess>(cfg, pid, topt);
    };
  }
  // Re-mesh: a brand-new TCP connection per live peer. The rejoiner adopts
  // its ends first (FIFO per command queue), so they are in place before
  // the recover command runs on_start (which broadcasts CATCHUP on them).
  for (ProcessId q = 0; q < cfg_.n; ++q) {
    if (q == pid || nodes_[q]->crashed()) continue;
    auto [mine, theirs] = tcp::make_loopback_pair();
    Node::Command to_self;
    to_self.kind = Node::Command::Kind::kReattach;
    to_self.peer = q;
    to_self.fd = std::move(mine);
    nodes_[pid]->submit(std::move(to_self));
    Node::Command to_peer;
    to_peer.kind = Node::Command::Kind::kReattach;
    to_peer.peer = pid;
    to_peer.fd = std::move(theirs);
    nodes_[q]->submit(std::move(to_peer));
  }
  Node::Command reborn;
  reborn.kind = Node::Command::Kind::kRecover;
  reborn.make = std::move(make);
  nodes_[pid]->submit(std::move(reborn));
}

bool SocketNetwork::crashed(ProcessId pid) const {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  return nodes_[pid]->crashed();
}

MessageStats SocketNetwork::stats_snapshot() const {
  const std::scoped_lock lock(stats_mu_);
  return stats_;
}

void SocketNetwork::record_send(std::uint8_t type,
                                const WireAccounting& wire) {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_send(type, wire);
}

void SocketNetwork::record_drop(std::uint8_t type) {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_drop(type);
}

}  // namespace tbr
