// Closed-loop workload over the socket runtime: real TCP, real clocks,
// the same atomicity checking as the simulator and thread workloads.
#pragma once

#include <vector>

#include "checker/history.hpp"
#include "checker/swmr_checker.hpp"
#include "transport/socket_network.hpp"

namespace tbr {

struct SocketWorkloadOptions {
  GroupConfig cfg;
  Algorithm algo = Algorithm::kTwoBit;
  std::uint64_t seed = 1;

  std::uint32_t ops_per_process = 24;
  /// Processes to crash (<= cfg.t, never the writer) partway through.
  std::uint32_t crashes = 0;
  /// Event loops for the underlying SocketNetwork (0 = auto).
  std::uint32_t loops = 0;
  /// Per-connection buffer/budget watermarks (backpressure knobs).
  ConnLimits limits;
  /// Optional process override (e.g. link-wrapped registers).
  std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                     ProcessId)>
      process_factory;
};

struct SocketWorkloadResult {
  std::vector<OpRecord> ops;
  MessageStats stats;
  SocketNetwork::BackpressureStats backpressure;
  std::uint32_t completed_by_correct = 0;
  std::uint32_t quota_of_correct = 0;

  CheckResult check_atomicity(const Value& initial) const {
    return SwmrChecker::check(ops, initial);
  }
};

SocketWorkloadResult run_socket_workload(const SocketWorkloadOptions& options);

}  // namespace tbr
