#include "transport/socket_capacity.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/contracts.hpp"

namespace tbr {

namespace {

enum class EventKind : std::uint8_t {
  kAdmit,      ///< a client op arrives at its node
  kPeerFrame,  ///< a broadcast frame reaches a peer's loop
  kReply,      ///< a peer's reply reaches the origin's loop
};

struct Event {
  Tick at = 0;
  std::uint64_t seq = 0;  ///< deterministic tie-break: insertion order
  EventKind kind = EventKind::kAdmit;
  std::uint32_t client = 0;  // kAdmit
  std::uint32_t op = 0;      // kPeerFrame / kReply
  std::uint32_t peer = 0;    // kPeerFrame: the handling process
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

/// An in-flight broadcast round.
struct OpRound {
  std::uint32_t client = 0;
  std::uint32_t origin = 0;
  std::uint32_t replies = 0;
  bool done = false;
  Tick admitted = 0;
};

}  // namespace

void SocketCapacityOptions::validate() const {
  TBR_ENSURE(n >= 2, "capacity model needs n >= 2");
  TBR_ENSURE(2 * t < n, "need a majority of correct processes (2t < n)");
  TBR_ENSURE(loops >= 1, "at least one event loop");
  TBR_ENSURE(clients >= 1 && ops_per_client >= 1, "need offered load");
  TBR_ENSURE(service_ns >= 1, "frames must cost CPU");
}

SocketCapacityProjection project_socket_capacity(
    const SocketCapacityOptions& opt) {
  opt.validate();
  const std::uint32_t loops = std::min(opt.loops, opt.n);
  const auto loop_of = [&](std::uint32_t pid) { return pid % loops; };
  const std::uint32_t quorum_replies = opt.n - opt.t - 1;

  // Serial-resource clocks: a loop executes one frame's worth of CPU at a
  // time; charging work at virtual time `at` starts at max(at, free_at).
  std::vector<Tick> loop_free(loops, 0);
  std::vector<Tick> loop_busy(loops, 0);
  const auto charge = [&](std::uint32_t loop, Tick at) -> Tick {
    const Tick start = std::max(at, loop_free[loop]);
    loop_free[loop] = start + static_cast<Tick>(opt.service_ns);
    loop_busy[loop] += static_cast<Tick>(opt.service_ns);
    return loop_free[loop];
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> heap;
  std::uint64_t seq = 0;
  const auto push = [&](Event ev) {
    ev.seq = seq++;
    heap.push(ev);
  };

  // Per-process admission: at most one op in flight (the RegisterClient
  // chain), later arrivals queue FIFO.
  std::vector<bool> node_busy(opt.n, false);
  std::vector<std::deque<std::pair<std::uint32_t, Tick>>> node_queue(opt.n);

  std::vector<OpRound> rounds;
  rounds.reserve(opt.clients);  // in-flight ops only; slots are recycled
  std::vector<std::uint32_t> free_rounds;
  std::vector<std::uint64_t> client_issued(opt.clients, 0);

  SocketCapacityProjection out;
  double latency_sum = 0;

  // Start one broadcast round for (client, origin) at virtual time `at`.
  const auto start_round = [&](std::uint32_t client, Tick at) {
    const auto origin = client % opt.n;
    std::uint32_t id;
    if (!free_rounds.empty()) {
      id = free_rounds.back();
      free_rounds.pop_back();
      rounds[id] = OpRound{};
    } else {
      id = static_cast<std::uint32_t>(rounds.size());
      rounds.emplace_back();
    }
    OpRound& op = rounds[id];
    op.client = client;
    op.origin = origin;
    op.admitted = at;
    // The origin serially encodes+sends one frame per peer; each lands at
    // the peer delay_ns after its send completes.
    Tick cursor = at;
    for (std::uint32_t p = 0; p < opt.n; ++p) {
      if (p == origin) continue;
      cursor = charge(loop_of(origin), cursor);
      push(Event{cursor + static_cast<Tick>(opt.delay_ns), 0,
                 EventKind::kPeerFrame, 0, id, p});
      ++out.frames;
    }
  };

  const auto finish_round = [&](std::uint32_t id, Tick done_at) {
    // Copy out before start_round: it may grow `rounds` and invalidate
    // references into it.
    rounds[id].done = true;
    const std::uint32_t origin = rounds[id].origin;
    const std::uint32_t client = rounds[id].client;
    const Tick admitted = rounds[id].admitted;
    out.ops += 1;
    out.completion_ns = std::max(out.completion_ns, done_at);
    latency_sum += static_cast<double>(done_at - admitted);
    // Free the node: start the next queued op, else mark idle.
    if (!node_queue[origin].empty()) {
      const auto [next_client, queued_at] = node_queue[origin].front();
      node_queue[origin].pop_front();
      start_round(next_client, std::max(done_at, queued_at));
    } else {
      node_busy[origin] = false;
    }
    // Closed loop: the client immediately issues its next op.
    if (++client_issued[client] < opt.ops_per_client) {
      push(Event{done_at, 0, EventKind::kAdmit, client, 0, 0});
    }
  };

  for (std::uint32_t c = 0; c < opt.clients; ++c) {
    push(Event{0, 0, EventKind::kAdmit, c, 0, 0});
  }

  while (!heap.empty()) {
    const Event ev = heap.top();
    heap.pop();
    switch (ev.kind) {
      case EventKind::kAdmit: {
        const auto origin = ev.client % opt.n;
        if (node_busy[origin]) {
          node_queue[origin].emplace_back(ev.client, ev.at);
        } else {
          node_busy[origin] = true;
          start_round(ev.client, ev.at);
        }
        break;
      }
      case EventKind::kPeerFrame: {
        // Peer loop: read + decode + handler + reply send, one service
        // charge, then the reply propagates back to the origin.
        const Tick handled = charge(loop_of(ev.peer), ev.at);
        push(Event{handled + static_cast<Tick>(opt.delay_ns), 0,
                   EventKind::kReply, 0, ev.op, 0});
        ++out.frames;
        break;
      }
      case EventKind::kReply: {
        // Every reply charges origin-loop CPU, quorum-complete or not:
        // stragglers are work in the real runtime too. Re-index `rounds`
        // after finish_round — it may reallocate the vector.
        const Tick processed = charge(loop_of(rounds[ev.op].origin), ev.at);
        rounds[ev.op].replies += 1;
        if (!rounds[ev.op].done && rounds[ev.op].replies >= quorum_replies) {
          finish_round(ev.op, processed);
        }
        if (rounds[ev.op].done && rounds[ev.op].replies == opt.n - 1) {
          free_rounds.push_back(ev.op);  // all stragglers accounted
        }
        break;
      }
    }
  }

  out.loop_busy_ns.assign(loop_busy.begin(), loop_busy.end());
  if (out.completion_ns > 0) {
    out.ops_per_msec = static_cast<double>(out.ops) /
                       (static_cast<double>(out.completion_ns) / 1e6);
  }
  if (out.ops > 0) {
    out.mean_latency_us = latency_sum / static_cast<double>(out.ops) / 1e3;
  }
  return out;
}

}  // namespace tbr
