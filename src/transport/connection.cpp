#include "transport/connection.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace tbr {

void ConnLimits::validate() const {
  TBR_ENSURE(outbuf_low_water < outbuf_high_water,
             "outbuf_low_water must be strictly below outbuf_high_water");
  TBR_ENSURE(outbuf_high_water > 0, "outbuf_high_water must be positive");
  TBR_ENSURE(read_budget > 0, "read_budget must be positive");
  TBR_ENSURE(write_budget > 0, "write_budget must be positive");
}

void Connection::adopt(OwnedFd fd) {
  fd_ = std::move(fd);
  inbuf_.clear();
  outbuf_.clear();
  out_pos_ = 0;
  paused_ = false;
}

void Connection::close() {
  fd_.reset();
  inbuf_.clear();
  outbuf_.clear();
  out_pos_ = 0;
  paused_ = false;
}

bool Connection::queue_frame(std::string_view encoded) {
  FrameBuffer::append_frame(outbuf_, encoded);
  if (!paused_ && queued_bytes() >= limits_.outbuf_high_water) {
    paused_ = true;
    return true;
  }
  return false;
}

Connection::FlushOutcome Connection::flush() {
  FlushOutcome out;
  std::size_t budget = limits_.write_budget;
  while (queued_bytes() > 0 && budget > 0) {
    const std::size_t want = std::min(budget, queued_bytes());
    const auto io = tcp::write_some(fd_.get(), outbuf_.data() + out_pos_, want);
    if (io.status != IoStatus::kOk || io.bytes == 0) {
      if (io.status == IoStatus::kClosed) out.status = IoStatus::kClosed;
      break;  // kWouldBlock: EPOLLOUT resumes; budget spent: next round
    }
    out_pos_ += io.bytes;
    budget -= io.bytes;
  }
  compact_out();
  if (paused_ && out.status != IoStatus::kClosed &&
      queued_bytes() <= limits_.outbuf_low_water) {
    paused_ = false;
    out.resumed = true;
  }
  return out;
}

IoStatus Connection::read_budgeted() {
  std::size_t budget = limits_.read_budget;
  while (budget > 0) {
    const auto io = tcp::read_some(fd_.get(), inbuf_.tail(), budget);
    if (io.status == IoStatus::kClosed) return IoStatus::kClosed;
    if (io.status == IoStatus::kWouldBlock) break;
    budget -= std::min(budget, io.bytes);
  }
  return IoStatus::kOk;
}

void Connection::compact_out() {
  if (out_pos_ == 0) return;
  if (out_pos_ == outbuf_.size()) {
    outbuf_.clear();
    out_pos_ = 0;
    return;
  }
  if (out_pos_ > outbuf_.capacity() / 2) {
    outbuf_.erase(0, out_pos_);
    out_pos_ = 0;
  }
}

}  // namespace tbr
