#include "transport/tcp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tbr {

namespace {

[[noreturn]] void fail(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

OwnedFd::~OwnedFd() { reset(); }

OwnedFd::OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

OwnedFd& OwnedFd::operator=(OwnedFd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void OwnedFd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace tcp {

std::pair<OwnedFd, std::uint16_t> listen_loopback(int backlog) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    fail("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail("bind");
  }
  if (::listen(fd.get(), backlog) != 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    fail("getsockname");
  }
  return {std::move(fd), ntohs(bound.sin_port)};
}

OwnedFd connect_loopback(std::uint16_t port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    fail("connect");
  }
}

OwnedFd accept_blocking(int listener_fd) {
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) return OwnedFd(fd);
    if (errno == EINTR) continue;
    fail("accept");
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    fail("setsockopt(TCP_NODELAY)");
  }
}

void set_sndbuf(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    fail("setsockopt(SO_SNDBUF)");
  }
}

void set_rcvbuf(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    fail("setsockopt(SO_RCVBUF)");
  }
}

IoResult read_some(int fd, std::string& buffer, std::size_t cap) {
  char chunk[16 * 1024];
  const std::size_t want = std::min(cap, sizeof(chunk));
  for (;;) {
    const ssize_t got = ::read(fd, chunk, want);
    if (got > 0) {
      buffer.append(chunk, static_cast<std::size_t>(got));
      return {IoStatus::kOk, static_cast<std::size_t>(got)};
    }
    if (got == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    // ECONNRESET and friends: the peer process is gone (e.g. crashed on
    // purpose in a test); the channel is dead, not the environment.
    return {IoStatus::kClosed, 0};
  }
}

IoResult write_some(int fd, const char* data, std::size_t len) {
  for (;;) {
    const ssize_t put = ::send(fd, data, len, MSG_NOSIGNAL);
    if (put >= 0) return {IoStatus::kOk, static_cast<std::size_t>(put)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kClosed, 0};
  }
}

void write_all_blocking(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t put = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      fail("send (handshake)");
    }
    done += static_cast<std::size_t>(put);
  }
}

std::string read_exact_blocking(int fd, std::size_t len) {
  std::string out;
  out.reserve(len);
  while (out.size() < len) {
    char chunk[256];
    const ssize_t got =
        ::read(fd, chunk, std::min(sizeof(chunk), len - out.size()));
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("read (handshake)");
    }
    if (got == 0) throw TransportError("peer closed during handshake");
    out.append(chunk, static_cast<std::size_t>(got));
  }
  return out;
}

std::pair<OwnedFd, OwnedFd> make_loopback_pair() {
  auto [listener, port] = listen_loopback(1);
  OwnedFd dialer = connect_loopback(port);
  OwnedFd accepted = accept_blocking(listener.get());
  return {std::move(dialer), std::move(accepted)};
}

std::pair<OwnedFd, OwnedFd> make_wakeup_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) fail("pipe");
  OwnedFd rd(fds[0]), wr(fds[1]);
  set_nonblocking(rd.get());
  set_nonblocking(wr.get());
  return {std::move(rd), std::move(wr)};
}

void drain_pipe(int fd) {
  char sink[256];
  while (::read(fd, sink, sizeof(sink)) > 0) {
  }
}

}  // namespace tcp
}  // namespace tbr
