// project_socket_capacity — the DEPLOYMENT projection for the socket
// runtime's multi-loop core.
//
// Same philosophy as project_sharded_capacity (workload/sharded_workload
// .hpp): the perf claim behind a design change must be acceptance-gated
// deterministically, because the CI box has one core and wall-clock
// numbers there say nothing about a multi-loop runtime. This model runs
// the runtime's event structure in virtual time: every event loop is a
// serial resource with an availability clock, every frame costs
// `service_ns` of loop CPU (encode + syscall on the send side, read +
// decode + handler on the receive side), and the wire adds `delay_ns` of
// propagation that consumes no CPU.
//
// One client operation is one broadcast round, the shape shared by the
// two-bit WRITE and READ: the origin process sends a frame to each of
// the n-1 peers (serialized on the origin's loop), each peer handles it
// and sends a reply (serialized on the peer's loop), and the op
// completes when the origin has processed n-t-1 peer replies (the n-t
// quorum counts the origin itself). Replies beyond the quorum still
// charge origin-loop CPU — stragglers are work, exactly as in the real
// runtime. Admission is faithful too: at most one op in flight per
// process (the RegisterClient chain), extra clients queue FIFO at their
// node.
//
// What the projection isolates: with 1 loop, every send, handle, and
// reply in the whole mesh serializes on one clock; with L loops the
// per-peer handling and per-origin rounds spread over L clocks. When
// service dominates delay (a saturated box), throughput scales with the
// loop count until n/L processes per loop stop being the bottleneck —
// the ≥2× at 4 loops acceptance line in bench_socket_capacity rides on
// exactly this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace tbr {

struct SocketCapacityOptions {
  std::uint32_t n = 8;   ///< processes in the mesh
  std::uint32_t t = 3;   ///< crash tolerance (quorum = n - t)
  std::uint32_t loops = 1;           ///< event loops (pid % loops sharding)
  std::uint32_t clients = 64;        ///< closed-loop clients (node = c % n)
  std::uint64_t ops_per_client = 200;
  std::uint64_t service_ns = 2000;   ///< loop CPU per frame sent or handled
  std::uint64_t delay_ns = 20000;    ///< wire propagation (no CPU)

  void validate() const;
};

struct SocketCapacityProjection {
  std::uint64_t ops = 0;
  std::uint64_t frames = 0;          ///< frames on the wire (2(n-1) per op)
  Tick completion_ns = 0;            ///< virtual time of the last completion
  std::vector<Tick> loop_busy_ns;    ///< CPU charged per loop
  double ops_per_msec = 0;           ///< ops / completion millisecond
  double mean_latency_us = 0;        ///< mean admission-to-completion
};

SocketCapacityProjection project_socket_capacity(
    const SocketCapacityOptions& options);

}  // namespace tbr
