// Connection: one peer channel of the socket runtime — its fd, the two
// FrameBuffer-framed byte streams, and the backpressure state machine.
//
// The problem this type exists for: an unbounded outbuf turns a slow
// reader into an OOM. The old runtime appended frames to a peer's outbuf
// without limit; if the peer stopped draining its socket, every writer
// kept queueing until memory ran out. Here each connection carries
// watermarks: when the queued bytes cross `outbuf_high_water` the
// connection *parks* (paused() goes true) and the owning process stops
// admitting new client operations; EPOLLOUT-driven flushes drain the
// queue, and once it falls to `outbuf_low_water` the connection resumes.
// Frames already queued are never dropped or reordered — backpressure
// stalls producers, it does not touch the stream.
//
// Budgets bound per-readiness-round work so one hot connection cannot
// starve the rest of its event loop: a readiness callback reads at most
// `read_budget` bytes and writes at most `write_budget` bytes, then
// yields (level-triggered epoll re-reports the remainder).
//
// Threading: a Connection is owned by exactly one event loop and only
// ever touched from that loop's thread (or from the setup thread before
// the loop starts).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "transport/frame_buffer.hpp"
#include "transport/tcp_socket.hpp"

namespace tbr {

/// Per-connection buffer and budget knobs (SocketNetwork::Options::limits).
struct ConnLimits {
  /// Queued-outbuf bytes at which the connection parks (writer stalls).
  std::size_t outbuf_high_water = 1 << 20;
  /// Queued-outbuf bytes at which a parked connection resumes. Must be
  /// strictly below high water: the gap is the hysteresis that stops the
  /// runtime from flapping park/resume on every frame.
  std::size_t outbuf_low_water = 256 * 1024;
  /// Max bytes read from the socket per readiness round.
  std::size_t read_budget = 256 * 1024;
  /// Max bytes written to the socket per readiness round.
  std::size_t write_budget = 256 * 1024;
  /// When nonzero, shrink every mesh socket's kernel buffers (SO_SNDBUF /
  /// SO_RCVBUF) to this many bytes. Loopback kernel buffers auto-tune into
  /// the megabytes, which can absorb a slow reader's entire backlog before
  /// the userspace outbuf ever crosses high water — backpressure tests set
  /// this small so the watermarks, not the kernel, bound the queue.
  int kernel_buffer_bytes = 0;

  void validate() const;
};

class Connection {
 public:
  Connection() = default;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&&) = default;
  Connection& operator=(Connection&&) = default;

  void configure(const ConnLimits& limits) { limits_ = limits; }
  const ConnLimits& limits() const noexcept { return limits_; }

  /// Take ownership of a connected socket. Any previous channel state
  /// (buffers, park flag) is discarded — this is the rejoin fence.
  void adopt(OwnedFd fd);
  /// Tear the channel down: close the fd, drop both buffers, unpark.
  void close();
  bool alive() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }

  // ---- send side -----------------------------------------------------------------

  /// Queue one encoded frame (length prefix added here). Returns true when
  /// this append crossed high water and parked the connection — the caller
  /// owns reacting (stalling its op admission).
  bool queue_frame(std::string_view encoded);

  struct FlushOutcome {
    IoStatus status = IoStatus::kOk;  ///< kClosed: peer gone, tear down
    bool resumed = false;             ///< crossed low water while parked
  };
  /// Write up to `write_budget` queued bytes. Never blocks; kWouldBlock is
  /// folded into kOk (wants_write() says whether EPOLLOUT is still needed).
  FlushOutcome flush();

  bool wants_write() const noexcept { return queued_bytes() > 0; }
  bool paused() const noexcept { return paused_; }
  std::size_t queued_bytes() const noexcept {
    return outbuf_.size() - out_pos_;
  }

  // ---- receive side --------------------------------------------------------------

  /// Read up to `read_budget` bytes into the inbound frame ring. Returns
  /// kClosed on EOF/reset, kOk otherwise (partial progress included).
  IoStatus read_budgeted();
  /// Peel the next complete inbound frame (see FrameBuffer::next_frame).
  bool next_frame(std::string_view& frame) { return inbuf_.next_frame(frame); }
  /// Inbound bytes buffered but not yet consumed as frames.
  std::size_t inbuf_pending() const noexcept { return inbuf_.pending_bytes(); }

 private:
  void compact_out();

  OwnedFd fd_;
  FrameBuffer inbuf_;
  /// Outbound stream with a consumed-offset head, mirroring FrameBuffer's
  /// discipline: flushes advance out_pos_ and the sent prefix is folded
  /// out only when it outgrows half the block — O(bytes) amortized, and
  /// the storage is recycled.
  std::string outbuf_;
  std::size_t out_pos_ = 0;
  ConnLimits limits_;
  bool paused_ = false;
};

}  // namespace tbr
