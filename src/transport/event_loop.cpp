#include "transport/event_loop.hpp"

#include <cerrno>
#include <cstring>

namespace tbr {

namespace {
// Initial wait-buffer size. It doubles whenever a wait comes back full,
// so dense meshes converge to their working set in O(log fds) growths.
constexpr std::size_t kInitialEvents = 64;

epoll_event make_event(std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  return ev;
}
}  // namespace

Epoller::Epoller() : events_(kInitialEvents) {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) throw TransportError("epoll_create1 failed");
  epfd_ = OwnedFd(fd);
}

void Epoller::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev = make_event(events, tag);
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw TransportError(std::string("epoll_ctl(ADD) failed: ") +
                         std::strerror(errno));
  }
}

void Epoller::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev = make_event(events, tag);
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw TransportError(std::string("epoll_ctl(MOD) failed: ") +
                         std::strerror(errno));
  }
}

void Epoller::del(int fd) {
  epoll_event ev{};
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev) != 0) {
    throw TransportError(std::string("epoll_ctl(DEL) failed: ") +
                         std::strerror(errno));
  }
}

std::span<const epoll_event> Epoller::wait(int timeout_ms) {
  for (;;) {
    const int rc = ::epoll_wait(epfd_.get(), events_.data(),
                                static_cast<int>(events_.size()), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw TransportError("epoll_wait failed");
    }
    const auto count = static_cast<std::size_t>(rc);
    if (count == events_.size()) {
      // The buffer filled: more fds may be ready than we can see in one
      // wait. Level-triggered epoll re-reports them, so correctness is
      // fine — grow so the next wait sees the whole ready set at once.
      events_.resize(events_.size() * 2);
    }
    return {events_.data(), count};
  }
}

}  // namespace tbr
