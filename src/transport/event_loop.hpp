// Epoller: thin RAII wrapper over a Linux epoll instance.
//
// The socket runtime's multi-loop core (see socket_network.cpp) runs N
// event loops, each multiplexing the connections of the processes sharded
// onto it. poll(2) — the previous engine — rebuilds and rescans an fd
// array on every iteration: O(fds) per wakeup even when one byte arrived
// on one connection. epoll is readiness-driven: interest is registered
// once per fd, changes are O(1) syscalls, and a wait returns only the
// connections with work. That difference is the whole C100k story — with
// ~10k loopback connections a poll array is 10k entries scanned per
// event, an epoll wait is a handful.
//
// Ownership and threading: one Epoller per event loop, used only by that
// loop's thread once it runs (registration from the setup thread before
// the loop starts is safe: thread creation orders it). The events buffer
// is recycled across waits and grows only when a wait fills it — the
// steady state allocates nothing, same discipline as every other hot-path
// buffer in the tree.
#pragma once

#include <sys/epoll.h>

#include <cstdint>
#include <span>
#include <vector>

#include "transport/tcp_socket.hpp"

namespace tbr {

class Epoller {
 public:
  Epoller();
  Epoller(const Epoller&) = delete;
  Epoller& operator=(const Epoller&) = delete;

  /// Register `fd` with the given interest set (EPOLLIN/EPOLLOUT bits).
  /// `tag` comes back verbatim in epoll_event::data.u64.
  void add(int fd, std::uint32_t events, std::uint64_t tag);
  /// Change the interest set of an already-registered fd.
  void mod(int fd, std::uint32_t events, std::uint64_t tag);
  /// Deregister an fd (closing an fd deregisters it implicitly; this is
  /// for fds that stay open but must stop reporting).
  void del(int fd);

  /// Wait for readiness, at most `timeout_ms` (-1 = block). Returns a view
  /// into the recycled event buffer, valid until the next wait. EINTR is
  /// retried internally.
  std::span<const epoll_event> wait(int timeout_ms);

 private:
  OwnedFd epfd_;
  std::vector<epoll_event> events_;
};

}  // namespace tbr
