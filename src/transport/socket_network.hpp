// SocketNetwork: the register group over real TCP sockets.
//
// The third runtime (after the discrete-event simulator and the in-memory
// thread network): n processes inside this OS process, fully meshed over
// loopback TCP connections, multiplexed onto N epoll event loops. What
// travels between processes is the algorithm codec's wire encoding in
// length-prefixed frames — the actual two-bit frames, over an actual
// transport.
//
// Model mapping: TCP gives reliable FIFO byte streams, which is strictly
// stronger than the CAMP model's reliable non-FIFO channels, so every
// property proven in the model holds here (the simulator covers the
// adversarial-reordering side; the socket runtime covers the "is this a
// real system" side). Crashing a process closes its sockets mid-protocol;
// peers observe the dead channel and drop traffic toward it, exactly the
// model's "a crash stops the process, not its delivered packets".
//
// Multi-loop core: Options::loops event-loop threads (default: one per
// hardware thread, capped at n), each running epoll readiness over the
// connections of the processes sharded onto it (pid % loops — the
// mesh-topology analogue of SO_REUSEPORT sharded accept: every
// connection lands on exactly one loop at admission time and stays
// there). A process's handlers still run only on its owning loop thread,
// so the model's sequential-process guarantee is untouched; what changed
// is that loops no longer rebuild poll arrays — interest is registered
// once and updated O(1) — and that distinct processes on distinct loops
// make progress in parallel.
//
// Backpressure: every connection carries ConnLimits watermarks (see
// transport/connection.hpp). When a peer's outbuf crosses high water the
// connection parks and the owning process stops *admitting* client
// operations — submissions queue in arrival order on the node and the
// RegisterClient chain stalls deterministically instead of the outbuf
// growing without bound. EPOLLOUT-driven flushes resume admission at low
// water. Nothing queued is dropped or reordered. parked()/
// backpressure_snapshot() surface the state.
//
// Client API: client() exposes the same unified RegisterClient as every
// other engine (pooled Ticket/callback completions, uniform Status — see
// src/client/client.hpp): issue enqueues a command to the owning loop
// thread, park blocks on the client pool's condition variable, and the
// loop thread resolves the op (kCrashed after a crash marker, kShutdown
// once the network stops). Inbound bytes ride a consumed-offset ring
// (FrameBuffer), so draining a frame is O(frame), not O(buffer); a
// steady-state ticket round-trip stays allocation-free.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "metrics/message_stats.hpp"
#include "net/register_process.hpp"
#include "transport/connection.hpp"
#include "workload/algorithms.hpp"

namespace tbr {

class SocketNetwork {
 public:
  struct Options {
    GroupConfig cfg;
    Algorithm algo = Algorithm::kTwoBit;
    /// Optional override: build each process yourself (e.g. wrap in a
    /// ReliableLinkProcess). When set, `algo` is informational.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        process_factory;

    /// Optional override for the incarnation built by recover(). Unset +
    /// algo == kTwoBit: a TwoBitProcess with recover_via_catchup. Unset +
    /// any other algorithm: recovery is unavailable.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        recover_factory;

    /// Event-loop threads. 0 = auto: min(n, hardware concurrency).
    /// Processes shard onto loops by pid % loops.
    std::uint32_t loops = 0;

    /// Per-connection buffer/budget watermarks (applied to every channel).
    ConnLimits limits;
  };

  /// Aggregate backpressure counters across all processes.
  struct BackpressureStats {
    std::uint64_t park_events = 0;    ///< outbufs that crossed high water
    std::uint64_t resume_events = 0;  ///< parked outbufs drained to low water
    std::uint64_t deferred_ops = 0;   ///< ops admitted while parked (stalled)
    std::uint64_t peak_outbuf_bytes = 0;  ///< max queued bytes on any channel
    std::uint32_t parked_now = 0;     ///< processes currently parked
  };

  explicit SocketNetwork(Options options);
  ~SocketNetwork();
  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Build the TCP mesh and launch all event loops. Idempotent.
  void start();
  /// Stop loops, close sockets, reject further work. Idempotent.
  void stop();

  /// The unified client API (src/client/client.hpp): pooled Ticket and
  /// callback completions with uniform Status outcomes. Safe from any
  /// thread; completions run on the owning process's loop thread. Steady
  /// state: zero allocations per operation.
  RegisterClient& client() noexcept;

  /// Crash a process: its loop closes every socket and ignores the rest.
  void crash(ProcessId pid);
  bool crashed(ProcessId pid) const;
  /// Rejoin a crashed process as a fresh incarnation (Options::
  /// recover_factory): a brand-new TCP connection per live peer (whatever
  /// the old connections still held dies with them), then the new process
  /// starts on the loop thread and catches up from peer checkpoints.
  void recover(ProcessId pid);

  /// Event loops actually running (after auto-resolution).
  std::uint32_t loop_count() const noexcept;
  /// True while pid's op admission is stalled by backpressure: some
  /// outbound channel is above high water, so newly issued operations
  /// queue at the node instead of starting. The RegisterClient chain
  /// stalls deterministically behind them.
  bool parked(ProcessId pid) const;
  BackpressureStats backpressure_snapshot() const;
  /// Fault-injection hook (tests): while paused, pid's loop stops draining
  /// its inbound sockets — a slow reader without descheduling a thread.
  /// Kernel buffers fill, writers toward pid hit their watermarks.
  void set_read_paused(ProcessId pid, bool paused);

  MessageStats stats_snapshot() const;
  const GroupConfig& config() const noexcept { return cfg_; }
  Tick now() const;  ///< ns since network construction

 private:
  class Node;
  class Loop;
  class ClientImpl;

  GroupConfig cfg_;
  Options opt_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::unique_ptr<ClientImpl> client_impl_;  // engine + RegisterClient

  mutable std::mutex stats_mu_;
  MessageStats stats_;
  void record_send(std::uint8_t type, const WireAccounting& wire);
  void record_drop(std::uint8_t type);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::jthread> threads_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tbr
