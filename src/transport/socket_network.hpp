// SocketNetwork: the register group over real TCP sockets.
//
// The third runtime (after the discrete-event simulator and the in-memory
// thread network): n processes inside this OS process, each with its own
// poll(2) event loop thread, fully meshed over loopback TCP connections.
// What travels between processes is the algorithm codec's wire encoding in
// length-prefixed frames — the actual two-bit frames, over an actual
// transport.
//
// Model mapping: TCP gives reliable FIFO byte streams, which is strictly
// stronger than the CAMP model's reliable non-FIFO channels, so every
// property proven in the model holds here (the simulator covers the
// adversarial-reordering side; the socket runtime covers the "is this a
// real system" side). Crashing a process closes its sockets mid-protocol;
// peers observe the dead channel and drop traffic toward it, exactly the
// model's "a crash stops the process, not its delivered packets".
//
// Threading: each process's handlers run only on its own loop thread (the
// model's processes are sequential). Client operations marshal onto the
// loop thread through a recycled command queue + wakeup pipe and complete
// there. Timers (NetworkContext::schedule) run on the loop thread too.
//
// Client API: client() exposes the same unified RegisterClient as every
// other engine (pooled Ticket/callback completions, uniform Status — see
// src/client/client.hpp): issue enqueues a command to the owning loop
// thread, park blocks on the client pool's condition variable, and the
// loop thread resolves the op (kCrashed after a crash marker, kShutdown
// once the network stops). Inbound bytes ride a consumed-offset ring
// (FrameBuffer), so draining a frame is O(frame), not O(buffer); a
// steady-state ticket round-trip stays allocation-free.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "metrics/message_stats.hpp"
#include "net/register_process.hpp"
#include "workload/algorithms.hpp"

namespace tbr {

class SocketNetwork {
 public:
  struct Options {
    GroupConfig cfg;
    Algorithm algo = Algorithm::kTwoBit;
    /// Optional override: build each process yourself (e.g. wrap in a
    /// ReliableLinkProcess). When set, `algo` is informational.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        process_factory;

    /// Optional override for the incarnation built by recover(). Unset +
    /// algo == kTwoBit: a TwoBitProcess with recover_via_catchup. Unset +
    /// any other algorithm: recovery is unavailable.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        recover_factory;
  };

  explicit SocketNetwork(Options options);
  ~SocketNetwork();
  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Build the TCP mesh and launch all event loops. Idempotent.
  void start();
  /// Stop loops, close sockets, reject further work. Idempotent.
  void stop();

  /// The unified client API (src/client/client.hpp): pooled Ticket and
  /// callback completions with uniform Status outcomes. Safe from any
  /// thread; completions run on the owning process's loop thread. Steady
  /// state: zero allocations per operation.
  RegisterClient& client() noexcept;

  /// Crash a process: its loop closes every socket and ignores the rest.
  void crash(ProcessId pid);
  bool crashed(ProcessId pid) const;
  /// Rejoin a crashed process as a fresh incarnation (Options::
  /// recover_factory): a brand-new TCP connection per live peer (whatever
  /// the old connections still held dies with them), then the new process
  /// starts on the loop thread and catches up from peer checkpoints.
  void recover(ProcessId pid);

  MessageStats stats_snapshot() const;
  const GroupConfig& config() const noexcept { return cfg_; }
  Tick now() const;  ///< ns since network construction

 private:
  class Node;
  class ClientImpl;

  GroupConfig cfg_;
  Options opt_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<ClientImpl> client_impl_;  // engine + RegisterClient

  mutable std::mutex stats_mu_;
  MessageStats stats_;
  void record_send(std::uint8_t type, const WireAccounting& wire);
  void record_drop(std::uint8_t type);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::jthread> threads_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tbr
