// SocketNetwork: the register group over real TCP sockets.
//
// The third runtime (after the discrete-event simulator and the in-memory
// thread network): n processes inside this OS process, each with its own
// poll(2) event loop thread, fully meshed over loopback TCP connections.
// What travels between processes is the algorithm codec's wire encoding in
// length-prefixed frames — the actual two-bit frames, over an actual
// transport.
//
// Model mapping: TCP gives reliable FIFO byte streams, which is strictly
// stronger than the CAMP model's reliable non-FIFO channels, so every
// property proven in the model holds here (the simulator covers the
// adversarial-reordering side; the socket runtime covers the "is this a
// real system" side). Crashing a process closes its sockets mid-protocol;
// peers observe the dead channel and drop traffic toward it, exactly the
// model's "a crash stops the process, not its delivered packets".
//
// Threading: each process's handlers run only on its own loop thread (the
// model's processes are sequential). Client calls marshal operations onto
// the loop thread through a command queue + wakeup pipe and resolve
// futures. Timers (NetworkContext::schedule) run on the loop thread too.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "metrics/message_stats.hpp"
#include "net/register_process.hpp"
#include "runtime/mailbox.hpp"  // ReadResultT
#include "workload/algorithms.hpp"

namespace tbr {

class SocketNetwork {
 public:
  struct Options {
    GroupConfig cfg;
    Algorithm algo = Algorithm::kTwoBit;
    /// Optional override: build each process yourself (e.g. wrap in a
    /// ReliableLinkProcess). When set, `algo` is informational.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        process_factory;
  };

  explicit SocketNetwork(Options options);
  ~SocketNetwork();
  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Build the TCP mesh and launch all event loops. Idempotent.
  void start();
  /// Stop loops, close sockets, reject further work. Idempotent.
  void stop();

  /// Asynchronous write from the writer process; resolves with latency
  /// (ns) or throws if the writer crashed / network stopped.
  std::future<Tick> write(Value v);

  using ReadResult = ReadResultT;
  std::future<ReadResult> read(ProcessId reader);

  /// Crash a process: its loop closes every socket and ignores the rest.
  void crash(ProcessId pid);
  bool crashed(ProcessId pid) const;

  MessageStats stats_snapshot() const;
  const GroupConfig& config() const noexcept { return cfg_; }
  Tick now() const;  ///< ns since network construction

 private:
  class Node;

  GroupConfig cfg_;
  Options opt_;
  std::vector<std::unique_ptr<Node>> nodes_;

  mutable std::mutex stats_mu_;
  MessageStats stats_;
  void record_send(std::uint8_t type, const WireAccounting& wire);
  void record_drop(std::uint8_t type);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::jthread> threads_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tbr
