// McRun: one controlled execution of a scenario.
//
// The run holds the full nondeterminism frontier explicitly: every
// undelivered frame, every startable client op, every crashable process.
// `enabled()` lists the frontier in a canonical order; `apply(choice)`
// executes one element. A *schedule* is the sequence of choice indices
// applied since construction — replaying the same scenario with the same
// index sequence reproduces the same execution bit-for-bit (processes are
// deterministic state machines; this is what makes stateless exploration
// and violation reproduction possible).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checker/history.hpp"
#include "modelcheck/mc_invariants.hpp"
#include "modelcheck/scenario.hpp"

namespace tbr {

class McRun {
 public:
  explicit McRun(const Scenario& scenario);
  ~McRun();
  McRun(const McRun&) = delete;
  McRun& operator=(const McRun&) = delete;

  struct Choice {
    enum class Kind : std::uint8_t { kDeliver, kStartOp, kCrash, kRecover };
    Kind kind = Kind::kDeliver;
    /// kDeliver: position in the in-flight queue. kStartOp: index into
    /// Scenario::ops. kCrash/kRecover: the ProcessId affected.
    std::size_t arg = 0;
  };

  /// The current nondeterminism frontier, in canonical order (deliveries
  /// first, then op starts, then crashes). Empty <=> the run is terminal.
  std::vector<Choice> enabled() const;

  /// Execute choice `index` into the current enabled() list. Invariants
  /// (if enabled and applicable) are evaluated afterwards; a violation is
  /// remembered in invariant_error() rather than thrown, so the explorer
  /// can report the offending schedule.
  void apply_enabled(std::size_t index);

  bool terminal() const { return enabled().empty(); }

  // ---- terminal-state verdicts ------------------------------------------------
  /// Operation records for the atomicity checker.
  std::vector<OpRecord> records() const { return history_.ops(); }
  /// Non-empty if a lemma invariant broke at some step.
  const std::string& invariant_error() const noexcept {
    return invariant_error_;
  }
  /// At a terminal state: every started op of a non-crashed process must
  /// have completed (no frames left, nothing can unblock it — a genuine
  /// liveness violation). Returns a description, or empty if live.
  std::string liveness_error() const;

  // ---- introspection ------------------------------------------------------------
  std::uint64_t steps() const noexcept { return steps_; }
  std::size_t in_flight_count() const noexcept { return in_flight_.size(); }
  std::uint32_t crashes() const noexcept { return crashes_; }
  std::uint32_t recoveries() const noexcept { return recoveries_; }
  RegisterProcessBase& process(ProcessId pid);
  /// The undelivered frames, positionally aligned with the kDeliver
  /// choices in enabled(). Together they make McRun a *scriptable
  /// adversary*: a test can select "the READ from p4 to p2" by content
  /// and drive the protocol into a precise alignment (see
  /// tests/modelcheck_test.cpp's Claim-3 script).
  std::vector<McInFlightFrame> in_flight_frames() const;

 private:
  class McContext;
  struct Frame {
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    Message msg;
  };
  struct OpState {
    bool started = false;
    bool done = false;
    /// Started at an incarnation that has since crashed: the completion
    /// callback died with it, so the op can never finish — the model's
    /// "a faulty process's last operation may not take effect". Excluded
    /// from liveness verdicts and from per-process ordering.
    bool orphaned = false;
    HistoryLog::OpId history_id = 0;
  };

  void apply(const Choice& choice);
  bool op_startable(std::size_t index) const;
  void start_op(std::size_t index);
  void run_invariants();

  const Scenario& scenario_;
  std::vector<std::unique_ptr<RegisterProcessBase>> processes_;
  std::vector<std::unique_ptr<McContext>> contexts_;
  std::vector<bool> crashed_;
  std::vector<Frame> in_flight_;
  std::vector<OpState> op_state_;
  HistoryLog history_;
  std::uint64_t steps_ = 0;
  std::uint32_t crashes_ = 0;
  std::uint32_t recoveries_ = 0;
  bool invariants_applicable_ = false;
  std::string invariant_error_;
};

}  // namespace tbr
