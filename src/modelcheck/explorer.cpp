#include "modelcheck/explorer.hpp"

#include <utility>

#include "checker/swmr_checker.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace tbr {
namespace {

/// Check one terminal run; append any violations to `result`.
void check_terminal(const Scenario& scenario, const McRun& run,
                    const std::vector<std::uint32_t>& schedule,
                    const ExploreOptions& options, ExploreResult& result) {
  ++result.terminal_schedules;
  result.max_depth_seen = std::max(result.max_depth_seen, schedule.size());

  auto report = [&](McViolation::Kind kind, std::string detail) {
    ++result.violations_found;
    if (result.violations.size() < options.max_violations) {
      result.violations.push_back(
          McViolation{kind, std::move(detail), schedule});
    }
  };

  if (!run.invariant_error().empty()) {
    report(McViolation::Kind::kInvariant, run.invariant_error());
  }
  if (const auto liveness = run.liveness_error(); !liveness.empty()) {
    report(McViolation::Kind::kLiveness, liveness);
  }
  const auto check = SwmrChecker::check(run.records(), scenario.cfg.initial);
  if (!check.ok) {
    report(McViolation::Kind::kAtomicity, check.error);
  }
}

}  // namespace

ExploreResult explore(const Scenario& scenario,
                      const ExploreOptions& options) {
  scenario.validate();
  ExploreResult result;

  // DFS over prefixes, newest first. Children are pushed in reverse so the
  // tree is visited left-to-right (schedule order is stable across runs).
  std::vector<std::vector<std::uint32_t>> stack;
  stack.push_back({});
  bool budget_hit = false;

  while (!stack.empty()) {
    if (result.nodes_visited >= options.max_nodes) {
      budget_hit = true;
      break;
    }
    const std::vector<std::uint32_t> prefix = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_visited;

    McRun run(scenario);
    for (const std::uint32_t choice : prefix) run.apply_enabled(choice);
    // An invariant break mid-prefix makes deeper exploration meaningless;
    // report it at this node and prune the subtree.
    if (!run.invariant_error().empty()) {
      check_terminal(scenario, run, prefix, options, result);
      continue;
    }
    const auto choices = run.enabled();
    if (choices.empty()) {
      check_terminal(scenario, run, prefix, options, result);
      continue;
    }
    TBR_ENSURE(prefix.size() < options.max_depth,
               "schedule exceeded max_depth; protocol may not quiesce");
    for (std::size_t k = choices.size(); k-- > 0;) {
      std::vector<std::uint32_t> child = prefix;
      child.push_back(static_cast<std::uint32_t>(k));
      stack.push_back(std::move(child));
    }
  }
  result.complete = !budget_hit;
  return result;
}

ExploreResult random_walks(const Scenario& scenario, std::uint64_t walks,
                           std::uint64_t seed,
                           const ExploreOptions& options) {
  scenario.validate();
  ExploreResult result;
  Rng rng(seed);
  for (std::uint64_t w = 0; w < walks; ++w) {
    McRun run(scenario);
    std::vector<std::uint32_t> schedule;
    for (;;) {
      TBR_ENSURE(schedule.size() < options.max_depth,
                 "walk exceeded max_depth; protocol may not quiesce");
      if (!run.invariant_error().empty()) break;  // pointless to go deeper
      const auto choices = run.enabled();
      if (choices.empty()) break;
      const auto pick = static_cast<std::uint32_t>(
          rng.uniform(0, static_cast<std::int64_t>(choices.size()) - 1));
      schedule.push_back(pick);
      run.apply_enabled(pick);
    }
    ++result.nodes_visited;
    check_terminal(scenario, run, schedule, options, result);
  }
  result.complete = false;  // sampling never proves exhaustiveness
  return result;
}

std::unique_ptr<McRun> replay(const Scenario& scenario,
                              const std::vector<std::uint32_t>& schedule) {
  auto run = std::make_unique<McRun>(scenario);
  for (const std::uint32_t choice : schedule) run->apply_enabled(choice);
  return run;
}

}  // namespace tbr
