// Model-checking scenarios: a register group, a partial order of client
// operations, and a crash budget.
//
// The simulator (src/sim) samples schedules from seeded randomness; the
// model checker (src/modelcheck) *enumerates* them. A scenario fixes
// everything except the nondeterminism the CAMP model grants the adversary:
// which in-flight frame is delivered next, when client operations start
// relative to the protocol's internal traffic, and when (if ever) processes
// crash. For small configurations the explorer covers every reachable
// schedule, turning the paper's pen-and-paper lemmas into machine-checked
// facts for those instances.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/register_process.hpp"

namespace tbr {

/// One client operation in a scenario.
struct McOp {
  enum class Kind { kWrite, kRead };
  Kind kind = Kind::kRead;
  ProcessId proc = kNoProcess;
  Value value;  ///< written value (writes only)

  /// Index of an op (into Scenario::ops) that must have *completed* before
  /// this op may start; -1 = enabled from the beginning. Together with the
  /// per-process sequentiality the model already imposes, this expresses
  /// the real-time precedence patterns the atomicity claims quantify over
  /// (e.g. "read B starts after read A ends").
  int after = -1;
};

struct Scenario {
  GroupConfig cfg;

  /// Process constructor; defaults to the faithful two-bit algorithm.
  std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                     ProcessId)>
      factory;

  std::vector<McOp> ops;

  /// Crash nondeterminism: at any step the adversary may crash one of the
  /// remaining candidates, up to `max_crashes` in total. Every subset and
  /// timing within the schedule tree is explored. Keep max_crashes <= cfg.t
  /// for liveness checking to be meaningful.
  std::uint32_t max_crashes = 0;
  std::vector<ProcessId> crash_candidates;

  /// Rejoin nondeterminism: at any step the adversary may also resurrect a
  /// currently-crashed candidate (up to `max_recoveries` in total) as a
  /// fresh incarnation built by `recover_factory`. The channels touching it
  /// reset: frames in flight to or from the old incarnation are erased,
  /// exactly the runtimes' connection-death semantics. So every
  /// crash-during-GC and checkpoint/catch-up race within the budget is
  /// enumerated. Requires recover_factory when non-zero.
  std::uint32_t max_recoveries = 0;
  std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                     ProcessId)>
      recover_factory;

  /// Run the two-bit lemma invariants after every step (requires processes
  /// to be TwoBitProcess instances; automatically skipped otherwise).
  bool check_invariants = true;

  /// Sanity-check the scenario; throws ContractViolation on nonsense.
  void validate() const;
};

}  // namespace tbr
