// Stateless schedule exploration: bounded-exhaustive DFS and uniform
// random walks over a scenario's schedule tree.
//
// Processes are deterministic state machines, so an execution is fully
// identified by its choice-index sequence; the explorer replays prefixes
// from scratch instead of snapshotting process state (stateless model
// checking). Every *terminal* schedule — no frame undelivered, no op
// startable, no crash budget usable — is checked for:
//
//   - atomicity   (SwmrChecker over the recorded operation history:
//                  Lemma 10's Claims 1-3),
//   - liveness    (every started op of a non-crashed process completed —
//                  Lemmas 8/9 at the exhausted frontier),
//   - invariants  (Lemmas 2-5, P1/P2 after every step, for two-bit runs).
//
// With `complete == true` the result is a machine-checked proof of those
// properties for that instance: no adversarial delivery order, operation
// alignment, or crash timing within the scenario can break the register.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "modelcheck/mc_run.hpp"

namespace tbr {

struct ExploreOptions {
  /// Stop after visiting this many schedule-tree nodes (prefix replays).
  std::uint64_t max_nodes = 5'000'000;
  /// Hard cap on schedule length (guards against runaway protocols).
  std::size_t max_depth = 4'000;
  /// Keep at most this many violation reports (each stores its schedule).
  std::size_t max_violations = 8;
};

/// One property failure, with the schedule that reproduces it.
struct McViolation {
  enum class Kind { kAtomicity, kLiveness, kInvariant };
  Kind kind = Kind::kAtomicity;
  std::string detail;
  /// Choice-index sequence; feed to replay() to reproduce.
  std::vector<std::uint32_t> schedule;
};

struct ExploreResult {
  std::uint64_t nodes_visited = 0;      ///< prefixes replayed
  std::uint64_t terminal_schedules = 0; ///< complete executions checked
  std::size_t max_depth_seen = 0;
  bool complete = false;  ///< whole tree covered within the budget
  std::vector<McViolation> violations;
  std::uint64_t violations_found = 0;  ///< may exceed violations.size()

  bool ok() const noexcept { return violations_found == 0; }
};

/// Bounded-exhaustive DFS over every schedule of `scenario`.
ExploreResult explore(const Scenario& scenario,
                      const ExploreOptions& options = ExploreOptions());

/// Sample `walks` schedules uniformly (each step picks one enabled choice
/// with equal probability). Far deeper reach than exhaustive DFS; no
/// completeness claim. Violation schedules are reported the same way.
ExploreResult random_walks(const Scenario& scenario, std::uint64_t walks,
                           std::uint64_t seed,
                           const ExploreOptions& options = ExploreOptions());

/// Re-execute one schedule (e.g. a McViolation::schedule) and return the
/// finished run for inspection.
std::unique_ptr<McRun> replay(const Scenario& scenario,
                              const std::vector<std::uint32_t>& schedule);

}  // namespace tbr
