#include "modelcheck/mc_run.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "core/twobit_process.hpp"
#include "modelcheck/mc_invariants.hpp"

namespace tbr {

void Scenario::validate() const {
  cfg.validate();
  TBR_ENSURE(!ops.empty(), "scenario needs at least one operation");
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const McOp& op = ops[k];
    TBR_ENSURE(op.proc < cfg.n, "op process out of range");
    TBR_ENSURE(op.kind != McOp::Kind::kWrite || op.proc == cfg.writer,
               "only the writer may write (SWMR)");
    TBR_ENSURE(op.after < static_cast<int>(k),
               "op dependencies must point backwards");
  }
  TBR_ENSURE(max_crashes <= cfg.t,
             "crash budget beyond t voids the liveness verdicts");
  for (const ProcessId pid : crash_candidates) {
    TBR_ENSURE(pid < cfg.n, "crash candidate out of range");
  }
  TBR_ENSURE(max_recoveries == 0 || recover_factory != nullptr,
             "recoveries need a recover_factory");
}

// The controlled network: sends append to the in-flight queue in program
// order; delivery order is the explorer's choice.
class McRun::McContext final : public NetworkContext {
 public:
  McContext(McRun& run, ProcessId self) : run_(run), self_(self) {}

  void send(ProcessId to, const Message& msg) override {
    TBR_ENSURE(to < run_.processes_.size() && to != self_,
               "bad destination");
    if (run_.crashed_[to]) return;  // endpoint gone; frame can never matter
    run_.in_flight_.push_back(Frame{self_, to, msg});
  }
  ProcessId self() const override { return self_; }
  std::uint32_t process_count() const override {
    return static_cast<std::uint32_t>(run_.processes_.size());
  }
  Tick now() const override { return static_cast<Tick>(run_.steps_); }
  void fence_peer(ProcessId to) override {
    // Re-establish our send side toward `to`: our undelivered frames to it
    // belong to the dead connection and are erased from the frontier.
    std::erase_if(run_.in_flight_, [this, to](const Frame& f) {
      return f.from == self_ && f.to == to;
    });
  }
  void schedule(Tick, std::function<void()>) override {
    TBR_ENSURE(false,
               "the model checker explores timer-free protocols only "
               "(the register algorithms never use timers)");
  }

 private:
  McRun& run_;
  ProcessId self_;
};

McRun::McRun(const Scenario& scenario)
    : scenario_(scenario),
      crashed_(scenario.cfg.n, false),
      op_state_(scenario.ops.size()) {
  scenario_.validate();
  const auto& factory = scenario_.factory;
  processes_.reserve(scenario_.cfg.n);
  contexts_.reserve(scenario_.cfg.n);
  for (ProcessId pid = 0; pid < scenario_.cfg.n; ++pid) {
    processes_.push_back(factory
                             ? factory(scenario_.cfg, pid)
                             : std::make_unique<TwoBitProcess>(scenario_.cfg,
                                                               pid));
    contexts_.push_back(std::make_unique<McContext>(*this, pid));
  }
  invariants_applicable_ =
      scenario_.check_invariants &&
      dynamic_cast<TwoBitProcess*>(processes_[0].get()) != nullptr;
  for (ProcessId pid = 0; pid < scenario_.cfg.n; ++pid) {
    processes_[pid]->on_start(*contexts_[pid]);
  }
}

McRun::~McRun() = default;

bool McRun::op_startable(std::size_t index) const {
  const McOp& op = scenario_.ops[index];
  const OpState& state = op_state_[index];
  if (state.started || crashed_[op.proc]) return false;
  if (op.after >= 0 && !op_state_[static_cast<std::size_t>(op.after)].done) {
    return false;
  }
  // Per-process sequentiality: an earlier op at the same process that has
  // started but not finished blocks this one (unless its incarnation died
  // and took the op with it).
  for (std::size_t k = 0; k < index; ++k) {
    if (scenario_.ops[k].proc == op.proc && op_state_[k].started &&
        !op_state_[k].done && !op_state_[k].orphaned) {
      return false;
    }
    // An earlier *unstarted* op at the same process also blocks: client
    // programs issue their ops in order.
    if (scenario_.ops[k].proc == op.proc && !op_state_[k].started &&
        !crashed_[scenario_.ops[k].proc]) {
      return false;
    }
  }
  return true;
}

std::vector<McRun::Choice> McRun::enabled() const {
  std::vector<Choice> out;
  out.reserve(in_flight_.size() + scenario_.ops.size());
  for (std::size_t k = 0; k < in_flight_.size(); ++k) {
    out.push_back(Choice{Choice::Kind::kDeliver, k});
  }
  for (std::size_t k = 0; k < scenario_.ops.size(); ++k) {
    if (op_startable(k)) out.push_back(Choice{Choice::Kind::kStartOp, k});
  }
  if (crashes_ < scenario_.max_crashes) {
    for (const ProcessId pid : scenario_.crash_candidates) {
      if (!crashed_[pid]) out.push_back(Choice{Choice::Kind::kCrash, pid});
    }
  }
  if (recoveries_ < scenario_.max_recoveries) {
    for (const ProcessId pid : scenario_.crash_candidates) {
      if (crashed_[pid]) out.push_back(Choice{Choice::Kind::kRecover, pid});
    }
  }
  return out;
}

void McRun::apply_enabled(std::size_t index) {
  const auto choices = enabled();
  TBR_ENSURE(index < choices.size(), "choice index out of range");
  apply(choices[index]);
}

void McRun::apply(const Choice& choice) {
  ++steps_;
  switch (choice.kind) {
    case Choice::Kind::kDeliver: {
      TBR_ENSURE(choice.arg < in_flight_.size(), "no such frame");
      const Frame frame = in_flight_[choice.arg];
      in_flight_.erase(in_flight_.begin() +
                       static_cast<std::ptrdiff_t>(choice.arg));
      TBR_ENSURE(!crashed_[frame.to], "frame addressed to a crashed process");
      processes_[frame.to]->on_message(*contexts_[frame.to], frame.from,
                                       frame.msg);
      break;
    }
    case Choice::Kind::kStartOp:
      start_op(choice.arg);
      break;
    case Choice::Kind::kCrash: {
      const ProcessId pid = static_cast<ProcessId>(choice.arg);
      TBR_ENSURE(!crashed_[pid], "double crash");
      crashed_[pid] = true;
      ++crashes_;
      processes_[pid]->on_crash();
      // An op in flight at the corpse dies with its completion callback.
      for (std::size_t k = 0; k < scenario_.ops.size(); ++k) {
        if (scenario_.ops[k].proc == pid && op_state_[k].started &&
            !op_state_[k].done) {
          op_state_[k].orphaned = true;
        }
      }
      // Frames addressed to the corpse can never influence anything;
      // removing them prunes schedule-tree branches that differ only in
      // when a dead letter is burned.
      std::erase_if(in_flight_,
                    [pid](const Frame& f) { return f.to == pid; });
      break;
    }
    case Choice::Kind::kRecover: {
      const ProcessId pid = static_cast<ProcessId>(choice.arg);
      TBR_ENSURE(crashed_[pid], "recover of a process that is not crashed");
      // Channel reset, both directions: frames to or from the old
      // incarnation are dead (the runtimes' connection-death semantics).
      std::erase_if(in_flight_, [pid](const Frame& f) {
        return f.from == pid || f.to == pid;
      });
      crashed_[pid] = false;
      ++recoveries_;
      processes_[pid] = scenario_.recover_factory(scenario_.cfg, pid);
      TBR_ENSURE(processes_[pid] != nullptr, "recover factory returned null");
      processes_[pid]->on_start(*contexts_[pid]);
      break;
    }
  }
  if (invariants_applicable_ && invariant_error_.empty()) run_invariants();
}

void McRun::start_op(std::size_t index) {
  const McOp& op = scenario_.ops[index];
  OpState& state = op_state_[index];
  TBR_ENSURE(op_startable(index), "op not startable");
  state.started = true;
  const Tick tick = static_cast<Tick>(steps_);
  if (op.kind == McOp::Kind::kWrite) {
    // The write's history index is its position in the writer's sequence,
    // which for a single writer is the count of writes issued before it +1.
    SeqNo wsn = 1;
    for (std::size_t k = 0; k < index; ++k) {
      if (scenario_.ops[k].kind == McOp::Kind::kWrite) ++wsn;
    }
    state.history_id = history_.begin_write(op.proc, tick, wsn, op.value);
    processes_[op.proc]->start_write(
        *contexts_[op.proc], op.value, [this, index] {
          op_state_[index].done = true;
          history_.end_write(op_state_[index].history_id,
                             static_cast<Tick>(steps_));
        });
  } else {
    state.history_id = history_.begin_read(op.proc, tick);
    processes_[op.proc]->start_read(
        *contexts_[op.proc], [this, index](const Value& v, SeqNo idx) {
          op_state_[index].done = true;
          history_.end_read(op_state_[index].history_id,
                            static_cast<Tick>(steps_), v, idx);
        });
  }
}

std::string McRun::liveness_error() const {
  for (std::size_t k = 0; k < scenario_.ops.size(); ++k) {
    const McOp& op = scenario_.ops[k];
    if (op_state_[k].started && !op_state_[k].done &&
        !op_state_[k].orphaned && !crashed_[op.proc]) {
      return "op #" + std::to_string(k) + " at p" + std::to_string(op.proc) +
             " started but cannot complete (deadlock with empty network)";
    }
  }
  return {};
}

void McRun::run_invariants() {
  std::vector<const TwoBitProcess*> procs;
  procs.reserve(processes_.size());
  for (const auto& p : processes_) {
    // A recover_factory may install non-TwoBit incarnations; the lemma
    // suite only speaks about all-TwoBit groups.
    const auto* tp = dynamic_cast<const TwoBitProcess*>(p.get());
    if (tp == nullptr) return;
    procs.push_back(tp);
  }
  invariant_error_ = check_twobit_state_invariants(procs, in_flight_frames());
}

RegisterProcessBase& McRun::process(ProcessId pid) {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  return *processes_[pid];
}

std::vector<McInFlightFrame> McRun::in_flight_frames() const {
  std::vector<McInFlightFrame> out;
  out.reserve(in_flight_.size());
  for (const Frame& f : in_flight_) {
    out.push_back(
        McInFlightFrame{f.from, f.to, f.msg.type, f.msg.debug_index});
  }
  return out;
}

}  // namespace tbr
