#include "modelcheck/mc_invariants.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/twobit_process.hpp"

namespace tbr {
namespace {

std::string pij(const char* what, ProcessId i, ProcessId j) {
  return std::string(what) + " (i=" + std::to_string(i) +
         ", j=" + std::to_string(j) + ")";
}

}  // namespace

std::string check_twobit_state_invariants(
    const std::vector<const TwoBitProcess*>& ps,
    const std::vector<McInFlightFrame>& in_flight) {
  const auto n = static_cast<ProcessId>(ps.size());

  // Lemmas 2 and 3.
  for (ProcessId i = 0; i < n; ++i) {
    SeqNo row_max = 0;
    for (ProcessId j = 0; j < n; ++j) {
      row_max = std::max(row_max, ps[i]->wsync(j));
      if (ps[i]->wsync(i) < ps[j]->wsync(i)) {
        return pij("Lemma 2 violated: w_sync_i[i] < w_sync_j[i]", i, j);
      }
    }
    if (ps[i]->wsync(i) != row_max) {
      return "Lemma 3 violated: w_sync_i[i] is not the row max (i=" +
             std::to_string(i) + ")";
    }
  }

  // Lemma 4: every local history is a prefix of the writer's. The writer
  // is whichever process has the longest history (Lemma 3 on the writer
  // makes that the writer in any faithful run); compare against the
  // longest to stay writer-id-agnostic.
  std::size_t longest = 0;
  for (ProcessId i = 1; i < n; ++i) {
    if (ps[i]->history().size() > ps[longest]->history().size()) longest = i;
  }
  const auto writer_hist = ps[longest]->history();
  for (ProcessId i = 0; i < n; ++i) {
    const auto hist = ps[i]->history();
    if (static_cast<SeqNo>(hist.size()) != ps[i]->wsync(i) + 1) {
      return "history length out of sync with w_sync_i[i] (i=" +
             std::to_string(i) + ")";
    }
    for (std::size_t x = 0; x < hist.size(); ++x) {
      if (!(hist[x] == writer_hist[x])) {
        return "Lemma 4 violated: divergent histories at index " +
               std::to_string(x) + " (i=" + std::to_string(i) + ")";
      }
    }
  }

  // Lemma 5 (frame counting, correct processes only).
  for (ProcessId i = 0; i < n; ++i) {
    if (ps[i]->crashed()) continue;
    for (ProcessId j = 0; j < n; ++j) {
      if (j == i) continue;
      const SeqNo x = ps[i]->wsync(j);
      const SeqNo sent = ps[i]->write_frames_sent_to(j);
      if (ps[i]->wsync(i) == x && sent != x) {
        return pij("Lemma 5 R1 violated: sent != w_sync_i[j]", i, j);
      }
      if (ps[i]->wsync(i) != x && sent != x + 1) {
        return pij("Lemma 5 R2 violated: sent != w_sync_i[j] + 1", i, j);
      }
    }
  }

  // Property P1 on the undelivered frames.
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = 0; j < n; ++j) {
      if (i == j) continue;
      std::vector<SeqNo> write_indices;
      for (const McInFlightFrame& f : in_flight) {
        if (f.from == i && f.to == j && f.type <= 1) {
          write_indices.push_back(f.debug_index);
        }
      }
      if (write_indices.size() > 2) {
        return pij("P1 violated: >2 WRITE frames in flight", i, j);
      }
      if (write_indices.size() == 2) {
        const auto [lo, hi] =
            std::minmax(write_indices[0], write_indices[1]);
        if (hi != lo + 1) {
          return pij("P1 violated: non-consecutive in-flight WRITEs", i, j);
        }
      }
    }
  }

  // Property P2.
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = i + 1; j < n; ++j) {
      if (std::llabs(ps[i]->wsync(j) - ps[j]->wsync(i)) > 1) {
        return pij("P2 violated: pairwise drift exceeds 1", i, j);
      }
    }
  }
  return {};
}

}  // namespace tbr
