#include "modelcheck/mc_invariants.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/twobit_process.hpp"

namespace tbr {
namespace {

std::string pij(const char* what, ProcessId i, ProcessId j) {
  return std::string(what) + " (i=" + std::to_string(i) +
         ", j=" + std::to_string(j) + ")";
}

// Pairwise lemmas quantify over executions of the published protocol; a
// crash-rejoin resets the channels touching the rejoined process (counters
// restart from checkpoint indices, optimistic w_sync entries), so pairs
// involving one are skipped — mirroring TwoBitInvariantObserver.
bool pair_relaxed(const std::vector<const TwoBitProcess*>& ps, ProcessId i,
                  ProcessId j) {
  return ps[i]->has_recovered() || ps[j]->has_recovered();
}

}  // namespace

std::string check_twobit_state_invariants(
    const std::vector<const TwoBitProcess*>& ps,
    const std::vector<McInFlightFrame>& in_flight) {
  const auto n = static_cast<ProcessId>(ps.size());

  // Lemmas 2 and 3. Lemma 3 survives rejoin unconditionally: a server's
  // optimistic entry for a rejoiner equals its own head, and a rejoiner
  // adopts before it records larger peer checkpoints.
  for (ProcessId i = 0; i < n; ++i) {
    SeqNo row_max = 0;
    for (ProcessId j = 0; j < n; ++j) {
      row_max = std::max(row_max, ps[i]->wsync(j));
      if (!pair_relaxed(ps, i, j) &&
          ps[i]->wsync(i) < ps[j]->wsync(i)) {
        return pij("Lemma 2 violated: w_sync_i[i] < w_sync_j[i]", i, j);
      }
    }
    if (ps[i]->wsync(i) != row_max) {
      return "Lemma 3 violated: w_sync_i[i] is not the row max (i=" +
             std::to_string(i) + ")";
    }
  }

  // Lemma 4, base-aware: every process retains [history_base, w_sync_i[i]]
  // and agrees with the reference history wherever the retained ranges
  // overlap. The reference is whichever process's head reaches furthest
  // (Lemma 3 makes that the writer in any faithful run); with GC and
  // checkpoints off the bases are 0 and this is the literal prefix
  // property.
  std::size_t ref = 0;
  SeqNo ref_head = -1;
  for (ProcessId i = 0; i < n; ++i) {
    const SeqNo head = ps[i]->wsync(i);
    if (head > ref_head) {
      ref_head = head;
      ref = i;
    }
  }
  const auto ref_hist = ps[ref]->history();
  const SeqNo ref_base = ps[ref]->history_base();
  for (ProcessId i = 0; i < n; ++i) {
    const auto hist = ps[i]->history();
    const SeqNo base = ps[i]->history_base();
    const SeqNo head = base + static_cast<SeqNo>(hist.size()) - 1;
    if (head != ps[i]->wsync(i)) {
      return "history head out of sync with w_sync_i[i] (i=" +
             std::to_string(i) + ")";
    }
    const SeqNo lo = std::max(base, ref_base);
    for (SeqNo x = lo; x <= std::min(head, ref_head); ++x) {
      if (!(hist[static_cast<std::size_t>(x - base)] ==
            ref_hist[static_cast<std::size_t>(x - ref_base)])) {
        return "Lemma 4 violated: divergent histories at index " +
               std::to_string(x) + " (i=" + std::to_string(i) + ")";
      }
    }
  }

  // GC soundness: a process may discard only prefixes every process has
  // already applied (that is the acked-prefix checkpoint contract —
  // base_i <= watermark_i <= known_i(j) <= w_sync_j[j] for all j). The
  // window ablation violates this the moment it evicts an entry a lagging
  // peer still needs; lawful bounded GC never does. Rejoined processes are
  // exempt on both sides: a rejoiner's base is an adopted checkpoint (it
  // never held the earlier entries), and its own head restarts below live
  // bases until catch-up completes.
  {
    SeqNo min_head = -1;
    for (ProcessId j = 0; j < n; ++j) {
      if (ps[j]->has_recovered()) continue;
      const SeqNo head = ps[j]->wsync(j);
      if (min_head < 0 || head < min_head) min_head = head;
    }
    for (ProcessId i = 0; i < n && min_head >= 0; ++i) {
      if (ps[i]->has_recovered()) continue;
      if (ps[i]->history_base() > min_head) {
        return "GC soundness violated: p" + std::to_string(i) +
               " evicted history entries a lagging peer still needs "
               "(base=" + std::to_string(ps[i]->history_base()) +
               " > min head=" + std::to_string(min_head) + ")";
      }
    }
  }

  // Lemma 5 (frame counting, correct processes, unrelaxed channels only).
  // Bounded mode relaxes the exact counts to an upper bound: a catch-up
  // whose value the destination already acked is skipped, not sent, so the
  // counters may lag the literal R1/R2 values.
  for (ProcessId i = 0; i < n; ++i) {
    if (ps[i]->crashed()) continue;
    for (ProcessId j = 0; j < n; ++j) {
      if (j == i || pair_relaxed(ps, i, j)) continue;
      const SeqNo x = ps[i]->wsync(j);
      const SeqNo sent = ps[i]->write_frames_sent_to(j);
      if (ps[i]->bounded_mode()) {
        if (sent > x + 1) {
          return pij("Lemma 5 (bounded) violated: sent > w_sync_i[j] + 1", i,
                     j);
        }
        continue;
      }
      if (ps[i]->wsync(i) == x && sent != x) {
        return pij("Lemma 5 R1 violated: sent != w_sync_i[j]", i, j);
      }
      if (ps[i]->wsync(i) != x && sent != x + 1) {
        return pij("Lemma 5 R2 violated: sent != w_sync_i[j] + 1", i, j);
      }
    }
  }

  // Property P1 on the undelivered frames.
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = 0; j < n; ++j) {
      if (i == j || pair_relaxed(ps, i, j)) continue;
      std::vector<SeqNo> write_indices;
      for (const McInFlightFrame& f : in_flight) {
        if (f.from == i && f.to == j && f.type <= 1) {
          write_indices.push_back(f.debug_index);
        }
      }
      if (write_indices.size() > 2) {
        return pij("P1 violated: >2 WRITE frames in flight", i, j);
      }
      if (write_indices.size() == 2) {
        const auto [lo, hi] =
            std::minmax(write_indices[0], write_indices[1]);
        if (hi != lo + 1) {
          return pij("P1 violated: non-consecutive in-flight WRITEs", i, j);
        }
      }
    }
  }

  // Property P2.
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = i + 1; j < n; ++j) {
      if (pair_relaxed(ps, i, j)) continue;
      if (std::llabs(ps[i]->wsync(j) - ps[j]->wsync(i)) > 1) {
        return pij("P2 violated: pairwise drift exceeds 1", i, j);
      }
    }
  }
  return {};
}

}  // namespace tbr
