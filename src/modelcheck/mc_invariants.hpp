// State-predicate versions of the paper's lemmas for the model checker.
//
// The simulator's TwoBitInvariantObserver (core/invariants) throws on the
// first violation — right for tests, wrong for an explorer that wants to
// report *which schedule* broke *which lemma* and keep counting. These
// functions evaluate the same predicates (Lemmas 2-5, Properties P1/P2
// — Lemma 1's step granularity is enforced by contracts inside
// TwoBitProcess itself) and return a description instead of throwing.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"

namespace tbr {

class TwoBitProcess;

/// A frame awaiting delivery, as the explorer sees it.
struct McInFlightFrame {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::uint8_t type = 0;
  SeqNo debug_index = -1;
};

/// Evaluate the global state invariants over all processes and undelivered
/// frames. Returns an empty string when every predicate holds, otherwise a
/// human-readable description of the first violation.
std::string check_twobit_state_invariants(
    const std::vector<const TwoBitProcess*>& processes,
    const std::vector<McInFlightFrame>& in_flight);

}  // namespace tbr
