#include "sim/fault_plan.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace tbr {

FaultPlan FaultPlan::random(Rng& rng, const GroupConfig& cfg,
                            std::uint32_t max_crashes, Tick horizon,
                            bool allow_writer) {
  TBR_ENSURE(max_crashes <= cfg.t, "cannot plan more than t crashes");
  TBR_ENSURE(horizon >= 0, "horizon must be non-negative");
  std::vector<ProcessId> victims;
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    if (!allow_writer && pid == cfg.writer) continue;
    victims.push_back(pid);
  }
  rng.shuffle(victims);
  FaultPlan plan;
  const auto count = std::min<std::size_t>(max_crashes, victims.size());
  for (std::size_t i = 0; i < count; ++i) {
    plan.crashes.push_back(CrashEvent{victims[i], rng.uniform(0, horizon)});
  }
  return plan;
}

FaultPlan FaultPlan::deterministic(const GroupConfig& cfg, std::uint32_t count,
                                   Tick at) {
  TBR_ENSURE(count <= cfg.t, "cannot plan more than t crashes");
  FaultPlan plan;
  ProcessId pid = cfg.n;
  while (plan.crashes.size() < count) {
    TBR_ENSURE(pid > 0, "ran out of victims");
    --pid;
    if (pid == cfg.writer) continue;
    plan.crashes.push_back(CrashEvent{pid, at});
  }
  return plan;
}

FaultPlan FaultPlan::crash_rejoin(const GroupConfig& cfg, std::uint32_t count,
                                  Tick at, Tick rejoin_at) {
  TBR_ENSURE(rejoin_at > at, "rejoin must come after the crash");
  FaultPlan plan = deterministic(cfg, count, at);
  for (const auto& c : plan.crashes) {
    plan.recoveries.push_back(RecoverEvent{c.pid, rejoin_at});
  }
  return plan;
}

void FaultPlan::install(SimNetwork& net) const {
  for (const auto& c : crashes) net.crash_at(c.pid, c.at);
  for (const auto& r : recoveries) {
    bool crashes_first = false;
    for (const auto& c : crashes) {
      if (c.pid == r.pid && c.at < r.at) crashes_first = true;
    }
    TBR_ENSURE(crashes_first, "recovery without an earlier crash");
    net.recover_at(r.pid, r.at);
  }
}

}  // namespace tbr
