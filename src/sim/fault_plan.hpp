// Crash schedules for property tests and resilience benches.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/register_process.hpp"
#include "sim/sim_network.hpp"

namespace tbr {

struct CrashEvent {
  ProcessId pid = kNoProcess;
  Tick at = 0;
};

struct RecoverEvent {
  ProcessId pid = kNoProcess;
  Tick at = 0;
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  /// Rejoins. Each pid must also appear in `crashes` with an earlier time;
  /// installing a recovery requires the network to carry a recover_factory.
  std::vector<RecoverEvent> recoveries;

  static FaultPlan none() { return {}; }

  /// Up to `max_crashes` (<= cfg.t) distinct victims with crash times drawn
  /// uniformly from [0, horizon]. The writer is only eligible when
  /// `allow_writer`; crashing the writer mid-run means the tail of the
  /// workload may contain an incomplete final write, which the atomicity
  /// definition explicitly tolerates and the checker handles.
  static FaultPlan random(Rng& rng, const GroupConfig& cfg,
                          std::uint32_t max_crashes, Tick horizon,
                          bool allow_writer);

  /// Exactly `count` victims chosen round-robin from the highest ids
  /// (deterministic; never the writer), all crashing at `at`.
  static FaultPlan deterministic(const GroupConfig& cfg, std::uint32_t count,
                                 Tick at);

  /// Crash-then-rejoin: like deterministic(), plus every victim recovers at
  /// `rejoin_at` (> at). The network must be built with a recover_factory.
  static FaultPlan crash_rejoin(const GroupConfig& cfg, std::uint32_t count,
                                Tick at, Tick rejoin_at);

  void install(SimNetwork& net) const;
};

}  // namespace tbr
