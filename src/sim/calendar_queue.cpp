#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace tbr {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

bool earlier(const SchedEntry& a, const SchedEntry& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.id < b.id;
}

}  // namespace

CalendarQueue::CalendarQueue(Options options) : opt_(options) {
  std::uint32_t nb = kMinBuckets;
  if (opt_.buckets > 0) {
    nb = std::clamp(round_up_pow2(opt_.buckets), kMinBuckets, kMaxBuckets);
  }
  bucket_.assign(nb, kNil);
  width_ = opt_.width > 0 ? opt_.width : 1;
}

std::uint32_t CalendarQueue::alloc_node(SchedEntry e) {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    pool_[idx].e = std::move(e);
    pool_[idx].next = kNil;
    return idx;
  }
  pool_.push_back(Node{std::move(e), kNil});
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void CalendarQueue::free_node(std::uint32_t idx) {
  pool_[idx].e.fn = nullptr;
  free_.push_back(idx);
}

void CalendarQueue::insert_bucket(std::uint32_t idx, std::uint64_t d) {
  ++work_;
  const std::uint32_t b = bucket_of(d);
  const SchedEntry& e = pool_[idx].e;
  std::uint32_t* link = &bucket_[b];
  std::uint32_t walked = 0;
  while (*link != kNil && !earlier(e, pool_[*link].e)) {
    ++work_;
    ++walked;
    link = &pool_[*link].next;
  }
  pool_[idx].next = *link;
  *link = idx;
  if (walked > kLongInsertLinks) long_insert_ = true;
}

void CalendarQueue::place(std::uint32_t idx) {
  const std::uint64_t d = day(pool_[idx].e.at);
  const std::uint64_t nb = bucket_.size();
  if (d >= base_day_ && d < base_day_ + nb) {
    insert_bucket(idx, d);
    if (d < scan_day_) scan_day_ = d;
    if (head_valid_ && earlier(pool_[idx].e, pool_[head_node_].e)) {
      // The new global minimum sits at the head of its bucket.
      head_node_ = idx;
      head_bucket_ = bucket_of(d);
    }
  } else {
    // Beyond the year: unsorted far-future list, revisited at year-advance.
    pool_[idx].next = overflow_;
    overflow_ = idx;
    ++overflow_count_;
  }
}

void CalendarQueue::push(SchedEntry e) {
  TBR_ENSURE(e.at >= 0, "event time must be non-negative");
  const std::uint32_t idx = alloc_node(std::move(e));
  ++size_;
  const std::uint64_t d = day(pool_[idx].e.at);
  max_at_ = size_ == 1 ? pool_[idx].e.at : std::max(max_at_, pool_[idx].e.at);
  if (size_ == 1) {
    base_day_ = scan_day_ = d;
  } else if (d < base_day_) {
    // Insert before the current year (drained queues re-anchor forward, so
    // only out-of-band direct users hit this): stash the node and rebuild
    // the window around the new minimum.
    pool_[idx].next = overflow_;
    overflow_ = idx;
    ++overflow_count_;
    resize(static_cast<std::uint32_t>(bucket_.size()));
    return;
  }
  place(idx);
  maybe_grow();
  maybe_rewidth();
}

void CalendarQueue::ensure_head() {
  if (head_valid_) return;
  TBR_ENSURE(size_ > 0, "ensure_head on empty calendar queue");
  if (overflow_count_ == size_) advance_year();
  // Scan forward from the cursor. Within the year each day owns one bucket,
  // so the first non-empty bucket's (sorted) head is the global minimum;
  // overflow entries all lie beyond the year and cannot precede it.
  for (;;) {
    ++work_;
    const std::uint32_t b = bucket_of(scan_day_);
    if (bucket_[b] != kNil) {
      head_node_ = bucket_[b];
      head_bucket_ = b;
      head_valid_ = true;
      return;
    }
    ++scan_day_;
  }
}

void CalendarQueue::advance_year() {
  TBR_ENSURE(overflow_count_ == size_ && size_ > 0,
             "advance_year needs all live events in overflow");
  Tick lo = kNever;
  for (std::uint32_t n = overflow_; n != kNil; n = pool_[n].next) {
    ++work_;
    lo = std::min(lo, pool_[n].e.at);
  }
  base_day_ = scan_day_ = day(lo);
  std::uint32_t n = overflow_;
  overflow_ = kNil;
  overflow_count_ = 0;
  while (n != kNil) {
    const std::uint32_t nx = pool_[n].next;
    ++work_;
    place(n);
    n = nx;
  }
}

Tick CalendarQueue::next_time() {
  if (size_ == 0) return kNever;
  ensure_head();
  return pool_[head_node_].e.at;
}

SchedEntry CalendarQueue::pop() {
  TBR_ENSURE(size_ > 0, "pop on empty calendar queue");
  ensure_head();
  const std::uint32_t idx = head_node_;
  ++work_;
  bucket_[head_bucket_] = pool_[idx].next;
  if (pool_[idx].next != kNil) {
    // Same bucket = same day, sorted: the successor is the next global min.
    head_node_ = pool_[idx].next;
  } else {
    head_valid_ = false;
  }
  SchedEntry e = std::move(pool_[idx].e);
  free_node(idx);
  --size_;
  maybe_shrink();
  return e;
}

std::uint32_t CalendarQueue::gather_all(Tick* lo, Tick* hi) {
  *lo = kNever;
  *hi = 0;
  std::uint32_t head = kNil;
  auto take = [&](std::uint32_t n) {
    while (n != kNil) {
      const std::uint32_t nx = pool_[n].next;
      pool_[n].next = head;
      head = n;
      *lo = std::min(*lo, pool_[n].e.at);
      *hi = std::max(*hi, pool_[n].e.at);
      n = nx;
    }
  };
  for (std::uint32_t b = 0; b < bucket_.size(); ++b) {
    take(bucket_[b]);
    bucket_[b] = kNil;
  }
  take(overflow_);
  overflow_ = kNil;
  overflow_count_ = 0;
  return head;
}

void CalendarQueue::resize(std::uint32_t new_buckets) {
  Tick lo = 0;
  Tick hi = 0;
  std::uint32_t n = gather_all(&lo, &hi);
  // assign() reuses capacity when not growing, so re-widths and shrinks are
  // allocation-free; growth allocations amortize like any vector's.
  bucket_.assign(new_buckets, kNil);
  if (opt_.width == 0 && size_ > 1) {
    const Tick span = hi - lo;
    width_ = std::max<Tick>(1, 3 * (span / static_cast<Tick>(size_ - 1)));
  }
  base_day_ = scan_day_ = day(lo);
  if (size_ > 0) max_at_ = hi;  // drop staleness from long-popped maxima
  head_valid_ = false;
  while (n != kNil) {
    const std::uint32_t nx = pool_[n].next;
    ++work_;
    place(n);
    n = nx;
  }
  long_insert_ = false;  // re-places above must not re-trigger immediately
  ++resizes_;
}

void CalendarQueue::maybe_grow() {
  if (opt_.buckets > 0) return;
  const std::uint32_t nb = static_cast<std::uint32_t>(bucket_.size());
  if (size_ > 2u * nb && nb < kMaxBuckets) resize(nb * 2);
}

void CalendarQueue::maybe_shrink() {
  if (opt_.buckets > 0) return;
  const std::uint32_t nb = static_cast<std::uint32_t>(bucket_.size());
  if (nb > kMinBuckets && size_ < nb / 4) resize(nb / 2);
}

void CalendarQueue::maybe_rewidth() {
  if (!long_insert_) return;
  long_insert_ = false;
  if (opt_.width > 0 || size_ < 2) return;
  // Cheap span estimate without touching every node: the largest time ever
  // pushed minus a lower bound on the current minimum (the scan cursor's
  // day). Both err toward a WIDER span, so a drift verdict here can only
  // overestimate the ideal width — and the rebuild derives the exact one.
  const Tick min_est = static_cast<Tick>(scan_day_) * width_;
  if (max_at_ <= min_est) return;
  const Tick est = std::max<Tick>(
      1, 3 * ((max_at_ - min_est) / static_cast<Tick>(size_ - 1)));
  // Hysteresis: rebuild only when >= 2x off. An irreducibly dense queue
  // (more events than ticks in its span) re-derives the same width forever;
  // without this band every long insert would pay an O(size) rebuild.
  if (est >= 2 * width_ || 2 * est <= width_) {
    resize(static_cast<std::uint32_t>(bucket_.size()));
  }
}

}  // namespace tbr
