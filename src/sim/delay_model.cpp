#include "sim/delay_model.hpp"

#include "common/contracts.hpp"

namespace tbr {

ConstantDelay::ConstantDelay(Tick delta) : delta_(delta) {
  TBR_ENSURE(delta_ > 0, "delay must be positive");
}

Tick ConstantDelay::delay(Rng&, ProcessId, ProcessId, const Message&) {
  return delta_;
}

UniformDelay::UniformDelay(Tick lo, Tick hi) : lo_(lo), hi_(hi) {
  TBR_ENSURE(lo_ > 0 && lo_ <= hi_, "need 0 < lo <= hi");
}

Tick UniformDelay::delay(Rng& rng, ProcessId, ProcessId, const Message&) {
  return rng.uniform(lo_, hi_);
}

ExponentialDelay::ExponentialDelay(Tick mean, Tick cap)
    : mean_(mean), cap_(cap) {
  TBR_ENSURE(mean_ > 0 && cap_ >= mean_, "need 0 < mean <= cap");
}

Tick ExponentialDelay::delay(Rng& rng, ProcessId, ProcessId, const Message&) {
  return 1 + rng.exponential(static_cast<double>(mean_), cap_ - 1);
}

FlipFlopDelay::FlipFlopDelay(Tick fast, Tick slow, std::uint32_t n)
    : fast_(fast), slow_(slow), n_(n), flip_(std::size_t{n} * n, false) {
  TBR_ENSURE(0 < fast_ && fast_ < slow_, "need 0 < fast < slow");
  TBR_ENSURE(n_ > 0, "need at least one process");
}

Tick FlipFlopDelay::delay(Rng&, ProcessId from, ProcessId to, const Message&) {
  const std::size_t ch = std::size_t{from} * n_ + to;
  TBR_ENSURE(ch < flip_.size(), "channel index out of range");
  const bool slow_now = flip_[ch];
  flip_[ch] = !slow_now;
  // First message on a channel goes slow, the next fast: the fast one
  // overtakes whenever they are < (slow - fast) ticks apart.
  return slow_now ? fast_ : slow_;
}

StragglerDelay::StragglerDelay(ProcessId straggler, Tick slow, Tick fast)
    : straggler_(straggler), slow_(slow), fast_(fast) {
  TBR_ENSURE(0 < fast_ && fast_ <= slow_, "need 0 < fast <= slow");
}

Tick StragglerDelay::delay(Rng&, ProcessId from, ProcessId to,
                           const Message&) {
  return (from == straggler_ || to == straggler_) ? slow_ : fast_;
}

std::unique_ptr<DelayModel> make_constant_delay(Tick delta) {
  return std::make_unique<ConstantDelay>(delta);
}
std::unique_ptr<DelayModel> make_uniform_delay(Tick lo, Tick hi) {
  return std::make_unique<UniformDelay>(lo, hi);
}
std::unique_ptr<DelayModel> make_exponential_delay(Tick mean, Tick cap) {
  return std::make_unique<ExponentialDelay>(mean, cap);
}
std::unique_ptr<DelayModel> make_flipflop_delay(Tick fast, Tick slow,
                                                std::uint32_t n) {
  return std::make_unique<FlipFlopDelay>(fast, slow, n);
}
std::unique_ptr<DelayModel> make_straggler_delay(ProcessId straggler,
                                                 Tick slow, Tick fast) {
  return std::make_unique<StragglerDelay>(straggler, slow, fast);
}

FrameDelay::FrameDelay(Fn fn) : fn_(std::move(fn)) {
  TBR_ENSURE(fn_ != nullptr, "FrameDelay needs a function");
}

Tick FrameDelay::delay(Rng&, ProcessId from, ProcessId to,
                       const Message& msg) {
  const Tick d = fn_(from, to, msg);
  TBR_ENSURE(d > 0, "frame delay must be positive");
  return d;
}

std::unique_ptr<DelayModel> make_frame_delay(FrameDelay::Fn fn) {
  return std::make_unique<FrameDelay>(std::move(fn));
}

}  // namespace tbr
