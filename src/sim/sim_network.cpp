#include "sim/sim_network.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace tbr {

// Per-process view of the network handed to handlers.
class SimNetwork::Context final : public NetworkContext {
 public:
  Context(SimNetwork& net, ProcessId self) : net_(net), self_(self) {}

  void send(ProcessId to, const Message& msg) override {
    net_.send_from(self_, to, msg);
  }
  ProcessId self() const override { return self_; }
  std::uint32_t process_count() const override {
    return net_.process_count();
  }
  Tick now() const override { return net_.now(); }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(delay > 0, "timer delay must be positive");
    // {pointer, pid, std::function} fits InlineFn's inline buffer: timer
    // scheduling allocates only whatever `fn` itself captured.
    net_.schedule_after(delay, [net = &net_, self = self_,
                                fn = std::move(fn)] {
      if (!net->crashed(self)) fn();
    });
  }
  void fence_peer(ProcessId to) override { net_.fence_from(self_, to); }

 private:
  SimNetwork& net_;
  ProcessId self_;
};

// ---- service-queue ring -----------------------------------------------------

void SimNetwork::FrameFifo::push(ParkedFrame f) {
  if (count_ == ring_.size()) {
    // Grow to the next power of two, unwrapping into the new layout.
    std::vector<ParkedFrame> bigger(ring_.empty() ? 8 : ring_.size() * 2);
    for (std::size_t k = 0; k < count_; ++k) {
      bigger[k] = ring_[(head_ + k) & (ring_.size() - 1)];
    }
    ring_.swap(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) & (ring_.size() - 1)] = f;
  ++count_;
}

SimNetwork::ParkedFrame SimNetwork::FrameFifo::pop() {
  TBR_ENSURE(count_ > 0, "pop from empty service queue");
  const ParkedFrame f = ring_[head_];
  head_ = (head_ + 1) & (ring_.size() - 1);
  --count_;
  return f;
}

// ---- construction -----------------------------------------------------------

SimNetwork::SimNetwork(std::vector<std::unique_ptr<ProcessBase>> processes,
                       Options options)
    : processes_(std::move(processes)),
      crashed_(processes_.size(), false),
      recover_factory_(std::move(options.recover_factory)),
      chan_epoch_(processes_.size() * processes_.size(), 0),
      // queue_ is declared before delay_, so options.delay is still intact
      // here for the kAuto clustered-delays hint (the default model is
      // ConstantDelay, which clusters).
      queue_(EventQueue::Options{
          options.scheduler_policy,
          options.delay ? options.delay->clustered_delays() : true,
          CalendarQueue::Options{options.calendar_buckets,
                                 options.calendar_width}}),
      rng_(options.seed),
      delay_(options.delay ? std::move(options.delay)
                           : make_constant_delay(1000)),
      loss_rate_(options.loss_rate),
      service_time_(options.service_time),
      busy_until_(processes_.size(), 0),
      service_queue_(processes_.size()),
      track_in_flight_(options.track_in_flight) {
  TBR_ENSURE(loss_rate_ >= 0.0 && loss_rate_ < 1.0,
             "loss rate must be in [0, 1)");
  TBR_ENSURE(service_time_ >= 0, "service time cannot be negative");
  TBR_ENSURE(!processes_.empty(), "network needs at least one process");
  for (const auto& p : processes_) {
    TBR_ENSURE(p != nullptr, "null process");
  }
  contexts_.reserve(processes_.size());
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    contexts_.push_back(std::make_unique<Context>(*this, pid));
  }
}

SimNetwork::~SimNetwork() = default;

void SimNetwork::ensure_started() {
  if (started_) return;
  started_ = true;
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    if (!crashed_[pid]) processes_[pid]->on_start(*contexts_[pid]);
  }
}

void SimNetwork::schedule_at(Tick when, EventQueue::Fn fn) {
  TBR_ENSURE(when >= now_, "cannot schedule in the past");
  queue_.schedule(when, std::move(fn));
}

void SimNetwork::schedule_after(Tick delay, EventQueue::Fn fn) {
  TBR_ENSURE(delay >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void SimNetwork::crash_at(ProcessId pid, Tick when) {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  schedule_at(when, [this, pid] { crash_now(pid); });
}

void SimNetwork::crash_now(ProcessId pid) {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  if (crashed_[pid]) return;
  crashed_[pid] = true;
  ++crash_count_;
  if (trace_ != nullptr) {
    trace_->record(
        TraceEvent{TraceEvent::Kind::kCrash, now_, pid, kNoProcess, 0, -1,
                   false});
  }
  processes_[pid]->on_crash();
}

bool SimNetwork::crashed(ProcessId pid) const {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  return crashed_[pid];
}

void SimNetwork::recover_at(ProcessId pid, Tick when) {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  schedule_at(when, [this, pid] { recover_now(pid); });
}

void SimNetwork::recover_now(ProcessId pid) {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  TBR_ENSURE(crashed_[pid], "recover of a process that is not crashed");
  TBR_ENSURE(recover_factory_ != nullptr,
             "recover needs Options::recover_factory");
  // Re-establish every channel touching pid: frames in flight to or from
  // the old incarnation die with it (a restart closes its connections).
  const std::size_t n = processes_.size();
  for (ProcessId peer = 0; peer < n; ++peer) {
    ++chan_epoch_[pid * n + peer];  // sent by the old incarnation
    ++chan_epoch_[peer * n + pid];  // addressed to the old incarnation
  }
  // Frames parked in the dead node's service FIFO are lost with it.
  while (!service_queue_[pid].empty()) {
    const ParkedFrame parked = service_queue_[pid].pop();
    const Message& msg = frame_pool_[parked.frame];
    stats_.record_drop(msg.type);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, parked.from,
                                pid, msg.type, msg.debug_index,
                                msg.has_value});
    }
    release_frame(parked.frame);
  }
  busy_until_[pid] = now_;
  crashed_[pid] = false;
  ++recover_count_;
  processes_[pid] = recover_factory_(pid);
  TBR_ENSURE(processes_[pid] != nullptr, "recover factory returned null");
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{TraceEvent::Kind::kRecover, now_, pid,
                              kNoProcess, 0, -1, false});
  }
  if (started_) processes_[pid]->on_start(*contexts_[pid]);
}

void SimNetwork::fence_from(ProcessId from, ProcessId to) {
  TBR_ENSURE(from < processes_.size() && to < processes_.size(),
             "pid out of range");
  ++chan_epoch_[from * processes_.size() + to];
}

// ---- frame pool --------------------------------------------------------------

EventQueue::FrameId SimNetwork::acquire_frame(const Message& msg) {
  if (free_frames_.empty()) {
    frame_pool_.push_back(msg);
    frame_epoch_.push_back(0);
    return static_cast<EventQueue::FrameId>(frame_pool_.size() - 1);
  }
  const EventQueue::FrameId frame = free_frames_.back();
  free_frames_.pop_back();
  // Copy-assign into the recycled slot: the slot's value-string keeps its
  // capacity across reuses, so a warmed pool absorbs any payload size the
  // workload has already seen without allocating.
  frame_pool_[frame] = msg;
  return frame;
}

void SimNetwork::release_frame(EventQueue::FrameId frame) {
  free_frames_.push_back(frame);
}

// ---- send / deliver ----------------------------------------------------------

void SimNetwork::send_from(ProcessId from, ProcessId to, const Message& msg) {
  TBR_ENSURE(to < processes_.size(), "destination out of range");
  TBR_ENSURE(to != from, "algorithms never send to themselves");
  stats_.record_send(msg.type, msg.wire);
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{TraceEvent::Kind::kSend, now_, from, to,
                              msg.type, msg.debug_index, msg.has_value});
  }
  if (crashed_[to]) {
    // The channel is reliable but the endpoint is gone; the frame can never
    // be processed. Account it as sent-then-dropped.
    stats_.record_drop(msg.type);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, from, to,
                                msg.type, msg.debug_index, msg.has_value});
    }
    return;
  }
  if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
    // Out-of-model loss injection (experiment D8): the frame evaporates.
    ++frames_lost_;
    stats_.record_drop(msg.type);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, from, to,
                                msg.type, msg.debug_index, msg.has_value});
    }
    return;
  }
  const Tick dt = delay_->delay(rng_, from, to, msg);
  TBR_ENSURE(dt > 0, "delay model produced a non-positive delay");
  const Tick deliver_at = now_ + dt;
  const auto frame = acquire_frame(msg);
  frame_epoch_[frame] = chan_epoch(from, to);
  const auto id = queue_.schedule_deliver(deliver_at, from, to, frame);
  if (track_in_flight_) {
    in_flight_.emplace_back(
        id, InFlight{from, to, msg.type, msg.debug_index, deliver_at});
  }
}

void SimNetwork::deliver_frame(ProcessId from, ProcessId to,
                               EventQueue::FrameId frame) {
  const Message& msg = frame_pool_[frame];
  if (frame_epoch_[frame] != chan_epoch(from, to)) {
    // The channel was re-established (an endpoint restarted, or the sender
    // fenced it) after this frame left: it belongs to a dead connection.
    stats_.record_drop(msg.type);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, from, to,
                                msg.type, msg.debug_index, msg.has_value});
    }
    release_frame(frame);
    return;
  }
  if (crashed_[to]) {
    stats_.record_drop(msg.type);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, from, to,
                                msg.type, msg.debug_index, msg.has_value});
    }
    release_frame(frame);
    return;
  }
  if (service_time_ > 0) {
    if (busy_until_[to] > now_ || !service_queue_[to].empty()) {
      // Capacity model: the node's CPU is mid-frame. Park the pooled frame
      // in the node's FIFO; the single drain event pending at
      // busy_until_[to] hands the queue over one service interval at a
      // time.
      const bool first = service_queue_[to].empty();
      service_queue_[to].push(ParkedFrame{from, frame});
      if (first) queue_.schedule_drain(busy_until_[to], to);
      return;  // slot stays acquired until the drain serves it
    }
    busy_until_[to] = now_ + service_time_;
  }
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{TraceEvent::Kind::kDeliver, now_, from, to,
                              msg.type, msg.debug_index, msg.has_value});
  }
  // The slot is released only after the handler returns: handlers hold a
  // reference to the pooled message while their sends recycle OTHER slots
  // (deque-backed pool keeps this one's address stable).
  processes_[to]->on_message(*contexts_[to], from, msg);
  release_frame(frame);
}

void SimNetwork::drain_service_queue(ProcessId to) {
  if (crashed_[to]) {
    // The node died with frames waiting for its CPU: they are lost with it.
    while (!service_queue_[to].empty()) {
      const ParkedFrame parked = service_queue_[to].pop();
      const Message& msg = frame_pool_[parked.frame];
      stats_.record_drop(msg.type);
      if (trace_ != nullptr) {
        trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, parked.from,
                                  to, msg.type, msg.debug_index,
                                  msg.has_value});
      }
      release_frame(parked.frame);
    }
    return;
  }
  if (service_queue_[to].empty()) return;
  const ParkedFrame parked = service_queue_[to].pop();
  busy_until_[to] = now_ + service_time_;
  if (!service_queue_[to].empty()) {
    queue_.schedule_drain(busy_until_[to], to);
  }
  const Message& msg = frame_pool_[parked.frame];
  if (frame_epoch_[parked.frame] != chan_epoch(parked.from, to)) {
    // Channel re-established while the frame waited for CPU: dead on
    // arrival, same as the pre-service epoch check in deliver_frame.
    stats_.record_drop(msg.type);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{TraceEvent::Kind::kDrop, now_, parked.from,
                                to, msg.type, msg.debug_index,
                                msg.has_value});
    }
    release_frame(parked.frame);
    return;
  }
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{TraceEvent::Kind::kDeliver, now_, parked.from,
                              to, msg.type, msg.debug_index, msg.has_value});
  }
  processes_[to]->on_message(*contexts_[to], parked.from, msg);
  release_frame(parked.frame);
}

void SimNetwork::forget_in_flight(EventQueue::EventId id) {
  const auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [id](const auto& entry) { return entry.first == id; });
  if (it != in_flight_.end()) in_flight_.erase(it);
}

void SimNetwork::step() {
  const Tick at = queue_.next_time();
  TBR_ENSURE(at != kNever, "step on empty queue");
  TBR_ENSURE(at >= now_, "time went backwards");
  now_ = at;
  auto fired = queue_.pop_next();
  switch (fired.kind) {
    case EventQueue::Kind::kClosure:
      fired.fn();
      break;
    case EventQueue::Kind::kDeliver:
      deliver_frame(fired.from, fired.to, fired.frame);
      break;
    case EventQueue::Kind::kDrain:
      drain_service_queue(fired.to);
      break;
  }
  if (track_in_flight_) forget_in_flight(fired.id);
  ++events_executed_;
  if (post_event_hook_) post_event_hook_(*this);
}

bool SimNetwork::run(std::uint64_t max_events, Tick max_time) {
  ensure_started();
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.next_time() > max_time) return false;
    if (executed >= max_events) return false;
    step();
    ++executed;
  }
  return true;
}

bool SimNetwork::run_until(const std::function<bool()>& done,
                           std::uint64_t max_events, Tick max_time) {
  TBR_ENSURE(done != nullptr, "run_until needs a predicate");
  ensure_started();
  if (done()) return true;
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.next_time() > max_time) return false;
    if (executed >= max_events) return false;
    step();
    ++executed;
    if (done()) return true;
  }
  return false;
}

ProcessBase& SimNetwork::process(ProcessId pid) {
  TBR_ENSURE(pid < processes_.size(), "pid out of range");
  return *processes_[pid];
}

NetworkContext& SimNetwork::context(ProcessId pid) {
  TBR_ENSURE(pid < contexts_.size(), "pid out of range");
  return *contexts_[pid];
}

std::vector<SimNetwork::InFlight> SimNetwork::in_flight() const {
  TBR_ENSURE(track_in_flight_,
             "in_flight() needs Options::track_in_flight = true");
  std::vector<InFlight> out;
  out.reserve(in_flight_.size());
  for (const auto& [id, info] : in_flight_) out.push_back(info);
  return out;
}

std::vector<SimNetwork::InFlight> SimNetwork::in_flight_between(
    ProcessId from, ProcessId to) const {
  TBR_ENSURE(track_in_flight_,
             "in_flight_between() needs Options::track_in_flight = true");
  std::vector<InFlight> out;
  for (const auto& [id, info] : in_flight_) {
    if (info.from == from && info.to == to) out.push_back(info);
  }
  return out;
}

}  // namespace tbr
