#include "sim/trace.hpp"

#include <iomanip>
#include <sstream>

namespace tbr {

std::vector<TraceEvent> TraceLog::of_kind(TraceEvent::Kind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string TraceLog::render(const Codec& codec, Tick delta) const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << std::setw(8) << std::fixed << std::setprecision(2)
       << (delta > 1 ? static_cast<double>(e.at) / static_cast<double>(delta)
                     : static_cast<double>(e.at))
       << (delta > 1 ? "D " : "t ");
    switch (e.kind) {
      case TraceEvent::Kind::kSend:
        os << "send    p" << e.from << " -> p" << e.to << "  "
           << codec.type_name(e.type);
        break;
      case TraceEvent::Kind::kDeliver:
        os << "deliver p" << e.from << " -> p" << e.to << "  "
           << codec.type_name(e.type);
        break;
      case TraceEvent::Kind::kDrop:
        os << "drop    p" << e.from << " -> p" << e.to << "  "
           << codec.type_name(e.type) << " (receiver crashed)";
        break;
      case TraceEvent::Kind::kCrash:
        os << "CRASH   p" << e.from;
        break;
      case TraceEvent::Kind::kRecover:
        os << "RECOVER p" << e.from;
        break;
    }
    if (e.debug_index >= 0 && e.kind != TraceEvent::Kind::kCrash &&
        e.kind != TraceEvent::Kind::kRecover) {
      os << " [value #" << e.debug_index << "]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tbr
