// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so equal-time events run
// in the order they were scheduled and a fixed seed yields a fixed run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/ids.hpp"

namespace tbr {

class EventQueue {
 public:
  using EventId = std::uint64_t;
  using Fn = std::function<void()>;

  /// Schedule `fn` at absolute time `at`. Returns the event's id.
  EventId schedule(Tick at, Fn fn);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; kNever when empty.
  Tick next_time() const;

  /// Pop and run the earliest event. Returns its (time, id).
  struct Fired {
    Tick at = 0;
    EventId id = 0;
  };
  Fired run_next();

 private:
  struct Entry {
    Tick at;
    EventId id;
    Fn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  EventId next_id_ = 0;
};

}  // namespace tbr
