// Deterministic discrete-event queue with typed, allocation-free entries.
//
// Events fire in (time, insertion-sequence) order, so equal-time events run
// in the order they were scheduled and a fixed seed yields a fixed run.
//
// The hot path of the simulator is "deliver one frame": those events are a
// tagged struct (from, to, frame-pool slot), not a closure, so scheduling
// one costs zero heap allocations once the backing storage is warm. Drain
// events (the capacity model's per-node CPU) are a second tag. The general
// case — client scripts, crash markers, timer wrappers — remains a
// callable, stored in an InlineFn whose 48-byte inline buffer covers every
// closure the engine itself creates.
//
// Two interchangeable backends sit behind one Options::policy knob:
//
//   kHeap      std::priority_queue binary heap. O(log n) per op, robust to
//              any time distribution. The default — the golden-digest
//              determinism constants are pinned on this policy.
//   kCalendar  CalendarQueue bucket ring (calendar_queue.hpp). O(1)
//              amortized for the clustered event horizons that constant/
//              uniform delay models produce; degrades when times are
//              heavy-tailed (overflow churn).
//   kAuto      kCalendar when Options::clustered_delays (fed from
//              DelayModel::clustered_delays()), else kHeap.
//
// Both backends pop the exact same (time, insertion-seq) total order — a
// randomized cross-check property test and the golden-digest suite pin the
// equivalence — and both count "work units" (heap: comparator invocations;
// calendar: bucket probes + node traversals) so benches can project
// relative throughput deterministically on any host.
//
// The queue does not know how to execute Deliver/Drain events (that needs
// the owning network's frame pool); pop_next() hands the typed entry back
// to the caller for dispatch. run_next() is the closure-only convenience
// used by direct EventQueue clients (tests).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/ids.hpp"
#include "common/inline_fn.hpp"
#include "sim/calendar_queue.hpp"

namespace tbr {

class EventQueue {
 public:
  using EventId = std::uint64_t;
  using Fn = InlineFn;
  /// Index into the owning network's in-flight frame pool.
  using FrameId = std::uint32_t;
  using Kind = SchedKind;

  enum class Policy : std::uint8_t { kHeap, kCalendar, kAuto };

  struct Options {
    Policy policy = Policy::kHeap;
    /// kAuto hint: true when the delay model clusters event horizons
    /// (constant / narrow-uniform), false for heavy-tailed models.
    bool clustered_delays = true;
    /// Calendar geometry overrides (0 = automatic). Ignored on kHeap.
    CalendarQueue::Options calendar;
  };

  EventQueue() : EventQueue(Options{}) {}
  explicit EventQueue(Options options);

  // The heap comparator and the calendar peek cache both point back into
  // this object; pin it.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` at absolute time `at`. Returns the event's id.
  EventId schedule(Tick at, Fn fn);

  /// Schedule delivery of pooled frame `frame` from `from` to `to`.
  /// Allocation-free in steady state: no closure is materialized.
  EventId schedule_deliver(Tick at, ProcessId from, ProcessId to,
                           FrameId frame);

  /// Schedule a service-queue drain at node `to` (capacity model).
  EventId schedule_drain(Tick at, ProcessId to);

  bool empty() const noexcept {
    return policy_ == Policy::kCalendar ? calendar_.empty() : heap_.empty();
  }
  std::size_t size() const noexcept {
    return policy_ == Policy::kCalendar ? calendar_.size() : heap_.size();
  }

  /// Time of the earliest pending event; kNever when empty. O(1) on the
  /// heap, amortized O(1) on the calendar (cached earliest-bucket cursor).
  Tick next_time() const;

  /// A popped event, handed to the caller for dispatch.
  struct Fired {
    Tick at = 0;
    EventId id = 0;
    Kind kind = Kind::kClosure;
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    FrameId frame = 0;
    Fn fn;  ///< non-empty iff kind == kClosure
  };

  /// Pop the earliest event WITHOUT running it. The caller dispatches on
  /// `kind` (the simulator's step() owns the frame pool and contexts).
  Fired pop_next();

  /// Pop and run the earliest event; it must be a closure. Convenience for
  /// direct EventQueue users — the network uses pop_next().
  Fired run_next();

  /// The resolved backend (never kAuto).
  Policy policy() const noexcept { return policy_; }

  /// Elementary scheduler operations so far: comparator invocations on the
  /// heap, bucket probes + node traversals on the calendar. Deterministic
  /// for a fixed schedule; bench_event_queue's events/s projection is the
  /// ratio of the two backends' totals over an identical event stream.
  std::uint64_t work_units() const noexcept {
    return policy_ == Policy::kCalendar ? calendar_.work_units() : heap_work_;
  }

  /// Calendar backend introspection (geometry/resize counters). Only
  /// meaningful when policy() == kCalendar.
  const CalendarQueue& calendar() const noexcept { return calendar_; }

 private:
  struct Later {
    std::uint64_t* work = nullptr;
    bool operator()(const SchedEntry& a, const SchedEntry& b) const {
      ++*work;
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  EventId push(Tick at, Kind kind, ProcessId from, ProcessId to,
               FrameId frame, Fn fn);

  Policy policy_ = Policy::kHeap;
  std::uint64_t heap_work_ = 0;  ///< must precede heap_ (comparator aims here)
  std::priority_queue<SchedEntry, std::vector<SchedEntry>, Later> heap_;
  mutable CalendarQueue calendar_;  ///< mutable: next_time() warms its cache
  EventId next_id_ = 0;
};

}  // namespace tbr
