// Deterministic discrete-event queue with typed, allocation-free entries.
//
// Events fire in (time, insertion-sequence) order, so equal-time events run
// in the order they were scheduled and a fixed seed yields a fixed run.
//
// The hot path of the simulator is "deliver one frame": those events are a
// tagged struct (from, to, frame-pool slot), not a closure, so scheduling
// one costs zero heap allocations once the heap's backing vector is warm.
// Drain events (the capacity model's per-node CPU) are a second tag. The
// general case — client scripts, crash markers, timer wrappers — remains a
// callable, stored in an InlineFn whose 48-byte inline buffer covers every
// closure the engine itself creates.
//
// The queue does not know how to execute Deliver/Drain events (that needs
// the owning network's frame pool); pop_next() hands the typed entry back
// to the caller for dispatch. run_next() is the closure-only convenience
// used by direct EventQueue clients (tests).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/ids.hpp"
#include "common/inline_fn.hpp"

namespace tbr {

class EventQueue {
 public:
  using EventId = std::uint64_t;
  using Fn = InlineFn;
  /// Index into the owning network's in-flight frame pool.
  using FrameId = std::uint32_t;

  enum class Kind : std::uint8_t { kClosure, kDeliver, kDrain };

  /// Schedule `fn` at absolute time `at`. Returns the event's id.
  EventId schedule(Tick at, Fn fn);

  /// Schedule delivery of pooled frame `frame` from `from` to `to`.
  /// Allocation-free in steady state: no closure is materialized.
  EventId schedule_deliver(Tick at, ProcessId from, ProcessId to,
                           FrameId frame);

  /// Schedule a service-queue drain at node `to` (capacity model).
  EventId schedule_drain(Tick at, ProcessId to);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; kNever when empty.
  Tick next_time() const;

  /// A popped event, handed to the caller for dispatch.
  struct Fired {
    Tick at = 0;
    EventId id = 0;
    Kind kind = Kind::kClosure;
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    FrameId frame = 0;
    Fn fn;  ///< non-empty iff kind == kClosure
  };

  /// Pop the earliest event WITHOUT running it. The caller dispatches on
  /// `kind` (the simulator's step() owns the frame pool and contexts).
  Fired pop_next();

  /// Pop and run the earliest event; it must be a closure. Convenience for
  /// direct EventQueue users — the network uses pop_next().
  Fired run_next();

 private:
  struct Entry {
    Tick at;
    EventId id;
    Kind kind;
    ProcessId from;
    ProcessId to;
    FrameId frame;
    Fn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  EventId push(Tick at, Kind kind, ProcessId from, ProcessId to,
               FrameId frame, Fn fn);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  EventId next_id_ = 0;
};

}  // namespace tbr
