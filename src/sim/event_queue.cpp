#include "sim/event_queue.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace tbr {

EventQueue::EventId EventQueue::schedule(Tick at, Fn fn) {
  TBR_ENSURE(fn != nullptr, "cannot schedule a null event");
  TBR_ENSURE(at >= 0, "event time must be non-negative");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  return id;
}

Tick EventQueue::next_time() const {
  return heap_.empty() ? kNever : heap_.top().at;
}

EventQueue::Fired EventQueue::run_next() {
  TBR_ENSURE(!heap_.empty(), "run_next on empty queue");
  // priority_queue::top is const; move out via const_cast of the handle we
  // are about to pop (safe: pop() destroys the source immediately).
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  e.fn();
  return Fired{e.at, e.id};
}

}  // namespace tbr
