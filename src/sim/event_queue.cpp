#include "sim/event_queue.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace tbr {

namespace {

EventQueue::Policy resolve(const EventQueue::Options& options) {
  if (options.policy != EventQueue::Policy::kAuto) return options.policy;
  return options.clustered_delays ? EventQueue::Policy::kCalendar
                                  : EventQueue::Policy::kHeap;
}

}  // namespace

EventQueue::EventQueue(Options options)
    : policy_(resolve(options)),
      heap_(Later{&heap_work_}),
      calendar_(options.calendar) {}

EventQueue::EventId EventQueue::push(Tick at, Kind kind, ProcessId from,
                                     ProcessId to, FrameId frame, Fn fn) {
  TBR_ENSURE(at >= 0, "event time must be non-negative");
  const EventId id = next_id_++;
  if (policy_ == Policy::kCalendar) {
    calendar_.push(SchedEntry{at, id, kind, from, to, frame, std::move(fn)});
  } else {
    heap_.push(SchedEntry{at, id, kind, from, to, frame, std::move(fn)});
  }
  return id;
}

EventQueue::EventId EventQueue::schedule(Tick at, Fn fn) {
  TBR_ENSURE(fn != nullptr, "cannot schedule a null event");
  return push(at, Kind::kClosure, kNoProcess, kNoProcess, 0, std::move(fn));
}

EventQueue::EventId EventQueue::schedule_deliver(Tick at, ProcessId from,
                                                 ProcessId to, FrameId frame) {
  return push(at, Kind::kDeliver, from, to, frame, nullptr);
}

EventQueue::EventId EventQueue::schedule_drain(Tick at, ProcessId to) {
  return push(at, Kind::kDrain, kNoProcess, to, 0, nullptr);
}

Tick EventQueue::next_time() const {
  if (policy_ == Policy::kCalendar) return calendar_.next_time();
  return heap_.empty() ? kNever : heap_.top().at;
}

EventQueue::Fired EventQueue::pop_next() {
  if (policy_ == Policy::kCalendar) {
    TBR_ENSURE(!calendar_.empty(), "pop_next on empty queue");
    SchedEntry e = calendar_.pop();
    return Fired{e.at, e.id, e.kind, e.from, e.to, e.frame, std::move(e.fn)};
  }
  TBR_ENSURE(!heap_.empty(), "pop_next on empty queue");
  // priority_queue::top is const; move out via const_cast of the handle we
  // are about to pop (safe: pop() destroys the source immediately).
  SchedEntry e = std::move(const_cast<SchedEntry&>(heap_.top()));
  heap_.pop();
  return Fired{e.at, e.id, e.kind, e.from, e.to, e.frame, std::move(e.fn)};
}

EventQueue::Fired EventQueue::run_next() {
  Fired fired = pop_next();
  TBR_ENSURE(fired.kind == Kind::kClosure,
             "run_next popped a typed event; dispatch it via the network");
  fired.fn();
  return fired;
}

}  // namespace tbr
