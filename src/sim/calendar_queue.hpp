// CalendarQueue: a bucketed O(1)-amortized scheduler for the sim event loop.
//
// The binary heap's O(log n) sift became the dominant per-event cost of the
// simulator once the message path stopped allocating (~10 M events/s on one
// core). The workloads every CI capacity projection runs — constant-Δ
// delays, narrow uniform bands — cluster event horizons tightly, which is
// exactly the shape a calendar queue (Brown, CACM 1988) serves in O(1)
// amortized: a ring of `nbuckets` time buckets of `width` ticks each, where
// an event at time `at` lives in bucket (at / width) mod nbuckets.
//
// Layout invariants (the "year" discipline):
//   * day(at)      = at / width  — the event's bucket-granularity timestamp.
//   * The bucket ring covers one YEAR: days [base_day, base_day + nbuckets).
//     Within that window each day maps to a distinct bucket, so one bucket
//     holds exactly one day's events, sorted by (at, insertion id).
//   * Events beyond the year go to an unsorted OVERFLOW list; when the ring
//     runs dry the year advances to the earliest overflow day and overflow
//     events inside the new window redistribute into buckets.
//   * pop scans days from a cursor (scan_day) that only moves forward within
//     a year, so a year costs at most nbuckets empty-bucket probes total.
//
// Resize ("day-change") heuristic, applied only when Options leave the
// geometry automatic: when bucketed occupancy exceeds 2 events/bucket the
// ring doubles; under 1/4 it halves; each resize re-derives width as 3x the
// mean inter-event gap of the live set, so the year tracks the workload's
// event horizon. Width drift is caught separately: a steady-size churn
// never trips the occupancy thresholds, yet the live span can collapse
// (e.g. constant-delay tokens bunch into one delay window) leaving a stale
// width and long per-bucket chains. A sorted insert that walks more than
// kLongInsertLinks nodes flags the drift; the next push re-estimates the
// width from the tracked max time and the scan cursor and rebuilds — same
// ring size, fresh width — but only when the estimate is >= 2x off, so an
// irreducibly dense queue does not thrash O(n) rebuilds. Every structure —
// node pool, freelist, bucket heads — recycles exactly like the frame
// pool: zero allocations once capacities reach their high-water marks
// (resizes included; bucket storage keeps its capacity across re-widths).
//
// Total order is identical to the binary heap's: strictly ascending
// (at, insertion id), same-time events FIFO. The golden-digest determinism
// suite and the randomized cross-check property test pin this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/inline_fn.hpp"

namespace tbr {

/// Typed event entry shared by both EventQueue backends (heap + calendar).
/// Deliver/Drain are tag-only (no closure) so scheduling them never touches
/// the heap; kClosure carries an InlineFn.
enum class SchedKind : std::uint8_t { kClosure, kDeliver, kDrain };

struct SchedEntry {
  Tick at = 0;
  std::uint64_t id = 0;  ///< insertion sequence; ties on `at` break by id
  SchedKind kind = SchedKind::kClosure;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::uint32_t frame = 0;
  InlineFn fn;  ///< non-empty iff kind == kClosure
};

class CalendarQueue {
 public:
  struct Options {
    /// Fixed bucket count (rounded up to a power of two, >= 16). 0 = start
    /// at the minimum and let the occupancy heuristic resize the ring.
    std::uint32_t buckets = 0;
    /// Fixed bucket width in ticks. 0 = re-derive the width from the live
    /// event set at every resize (3x mean inter-event gap).
    Tick width = 0;
  };

  CalendarQueue() : CalendarQueue(Options{}) {}
  explicit CalendarQueue(Options options);

  /// Insert `e`. (e.at, e.id) must be unique; `at` may be any non-negative
  /// tick, including times before the current cursor (the window rebases).
  void push(SchedEntry e);

  /// Remove and return the earliest entry by (at, id). Queue must be
  /// non-empty.
  SchedEntry pop();

  /// Time of the earliest entry; kNever when empty. Amortized O(1): the
  /// scan that locates the head is cached and reused by the next pop().
  Tick next_time();

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Elementary scheduler operations performed so far (bucket probes, node
  /// traversals, redistributions). Deterministic for a fixed schedule; the
  /// events/s projection in bench_event_queue compares this against the
  /// heap backend's comparison count.
  std::uint64_t work_units() const noexcept { return work_; }

  // Introspection for tests/benches.
  std::uint32_t bucket_count() const noexcept {
    return static_cast<std::uint32_t>(bucket_.size());
  }
  Tick bucket_width() const noexcept { return width_; }
  std::uint64_t resizes() const noexcept { return resizes_; }
  std::size_t overflow_size() const noexcept { return overflow_count_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kMinBuckets = 16;
  static constexpr std::uint32_t kMaxBuckets = 1u << 20;
  /// A sorted insert walking more links than this marks the width stale.
  static constexpr std::uint32_t kLongInsertLinks = 16;

  struct Node {
    SchedEntry e;
    std::uint32_t next = kNil;
  };

  std::uint64_t day(Tick at) const noexcept {
    return static_cast<std::uint64_t>(at) / static_cast<std::uint64_t>(width_);
  }
  std::uint32_t bucket_of(std::uint64_t d) const noexcept {
    return static_cast<std::uint32_t>(d) &
           (static_cast<std::uint32_t>(bucket_.size()) - 1);
  }

  std::uint32_t alloc_node(SchedEntry e);
  void free_node(std::uint32_t idx);
  /// Route node `idx` to its bucket or the overflow list (window assumed
  /// to cover day(at) >= base_day_; rebases first when it does not).
  void place(std::uint32_t idx);
  void insert_bucket(std::uint32_t idx, std::uint64_t d);
  /// Locate the earliest entry and cache it (no-op when already cached).
  void ensure_head();
  /// All buckets empty, events only in overflow: move the year window to
  /// the earliest overflow day and redistribute what now fits.
  void advance_year();
  /// Rebuild the ring with `new_buckets` buckets (and, unless pinned, a
  /// re-derived width). O(size), amortized across the inserts/pops that
  /// triggered it; allocation-free once capacities are warm.
  void resize(std::uint32_t new_buckets);
  void maybe_grow();
  void maybe_shrink();
  /// After a long sorted insert: rebuild with a fresh width when the live
  /// span says the current one is >= 2x off (width-drift adaptation).
  void maybe_rewidth();
  /// Gather every node (buckets + overflow) into one list; returns its
  /// head and records the min/max times seen via the out-params.
  std::uint32_t gather_all(Tick* lo, Tick* hi);

  Options opt_;
  std::vector<Node> pool_;           ///< node storage, index-linked
  std::vector<std::uint32_t> free_;  ///< recycled pool slots
  std::vector<std::uint32_t> bucket_;  ///< heads; size is a power of two
  std::uint32_t overflow_ = kNil;    ///< events beyond the current year
  std::size_t overflow_count_ = 0;
  std::size_t size_ = 0;

  Tick width_ = 1;
  std::uint64_t base_day_ = 0;  ///< year window = [base_day_, base_day_+nb)
  std::uint64_t scan_day_ = 0;  ///< pop cursor, in [base_day_, base_day_+nb)
  Tick max_at_ = 0;  ///< largest time ever pushed (span estimate's top end)
  bool long_insert_ = false;  ///< width-drift flag set by insert_bucket

  // Cached earliest entry (head of its bucket); next_time() fills it,
  // pop() consumes it, an earlier push updates it in O(1).
  std::uint32_t head_node_ = kNil;
  std::uint32_t head_bucket_ = 0;
  bool head_valid_ = false;

  std::uint64_t work_ = 0;
  std::uint64_t resizes_ = 0;
};

}  // namespace tbr
