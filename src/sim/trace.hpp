// Structured protocol tracing for the simulator.
//
// When attached to a SimNetwork, every send, delivery, drop and crash is
// recorded; render() pretty-prints the trace with an algorithm codec for
// frame names. Tests assert on message sequences (e.g. the exact two-hop
// pattern of a write dissemination); the CLI's `trace` subcommand shows
// the protocol to humans.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "net/codec.hpp"

namespace tbr {

struct TraceEvent {
  enum class Kind { kSend, kDeliver, kDrop, kCrash, kRecover };
  Kind kind = Kind::kSend;
  Tick at = 0;
  ProcessId from = kNoProcess;  ///< kCrash/kRecover: the affected process
  ProcessId to = kNoProcess;
  std::uint8_t type = 0;
  SeqNo debug_index = -1;  ///< history index for WRITE-like frames
  bool has_value = false;
};

class TraceLog {
 public:
  void record(TraceEvent event) { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }
  std::size_t size() const noexcept { return events_.size(); }

  /// Events of one kind, in order.
  std::vector<TraceEvent> of_kind(TraceEvent::Kind kind) const;

  /// Human-readable rendering; `codec` names the frame types and `delta`
  /// scales timestamps (pass the delay to print in Δ units, or 1 for ticks).
  std::string render(const Codec& codec, Tick delta = 1) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace tbr
