// SimNetwork: the CAMP_{n,t} model, executable.
//
// n event-driven processes over a complete graph of reliable, non-FIFO,
// asynchronous channels; up to t of them may crash at scheduled instants.
// Virtual time advances only when events fire, so a (processes, delay model,
// seed) triple fully determines the execution — the adversarial-schedule
// property tests sweep seeds to explore distinct interleavings.
//
// Hot-path design (zero allocations per delivered frame in steady state):
// a send copy-assigns the message into a slot of a recycled frame pool
// (std::deque: slot references stay valid while handlers send) and
// schedules a typed Deliver event carrying the slot index — no closure, no
// per-frame Message copy beyond the one the reliable channel semantically
// requires. Slots return to a freelist after delivery, so their string
// capacities are reused and steady-state traffic never touches the heap.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "metrics/message_stats.hpp"
#include "net/context.hpp"
#include "net/process.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace tbr {

class SimNetwork {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::unique_ptr<DelayModel> delay;  ///< default: ConstantDelay(1000)

    /// Event-scheduler backend (event_queue.hpp). kHeap is the default —
    /// the golden-digest determinism constants are pinned there; kCalendar
    /// pops the identical (time, seq) order O(1) amortized for clustered
    /// delay models; kAuto asks the delay model
    /// (DelayModel::clustered_delays()).
    EventQueue::Policy scheduler_policy = EventQueue::Policy::kHeap;
    /// Calendar geometry overrides (0 = automatic; see
    /// CalendarQueue::Options). Ignored on the heap backend.
    std::uint32_t calendar_buckets = 0;
    Tick calendar_width = 0;

    /// OUT-OF-MODEL fault injection: drop each frame with this probability.
    /// The CAMP model's channels are reliable and every algorithm here
    /// assumes that (none retransmits); non-zero loss exists to demonstrate
    /// the model boundary (experiment D8) — safety survives, liveness does
    /// not. Keep 0 for every in-model experiment.
    double loss_rate = 0.0;

    /// Per-node CPU capacity model: each process handles at most one frame
    /// per `service_time` ticks; frames arriving at a busy node queue
    /// behind it (FIFO by arrival). 0 (default) disables the model —
    /// delivery time is the channel delay alone, as the CAMP model assumes.
    /// The asynchronous model is preserved (handling is only ever delayed,
    /// never reordered against causality), so safety results are
    /// unaffected; what changes is THROUGHPUT, which is the point: capacity
    /// projections for the sharded engine use this to measure what finite
    /// per-replica CPU does to an op mix. In-flight introspection does not
    /// track frames re-queued behind a busy node.
    Tick service_time = 0;

    /// Maintain the per-frame in-flight registry read by in_flight() /
    /// in_flight_between() (P1-style channel invariant observers). Off by
    /// default: the registry costs an insert + linear-scan erase per frame,
    /// which is pure overhead for every run that never introspects it.
    bool track_in_flight = false;

    /// Crash-rejoin support: builds the fresh incarnation installed by
    /// recover_now(pid). Typically returns a TwoBitProcess constructed with
    /// recover_via_catchup = true. Recovering without a factory is a
    /// contract error.
    std::function<std::unique_ptr<ProcessBase>(ProcessId)> recover_factory;
  };

  SimNetwork(std::vector<std::unique_ptr<ProcessBase>> processes,
             Options options);
  ~SimNetwork();
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // ---- time & scheduling -------------------------------------------------
  Tick now() const noexcept { return now_; }

  /// Schedule a client-side event (e.g. "process 2 starts a read") at an
  /// absolute virtual time >= now. Captures up to InlineFn::kInlineBytes
  /// are stored inline (no allocation).
  void schedule_at(Tick when, EventQueue::Fn fn);
  void schedule_after(Tick delay, EventQueue::Fn fn);

  // ---- faults -------------------------------------------------------------
  /// Crash `pid` at time `when`: it processes no event at or after `when`;
  /// messages already sent by it remain in flight (a crash stops the
  /// process, not its packets).
  void crash_at(ProcessId pid, Tick when);
  void crash_now(ProcessId pid);
  bool crashed(ProcessId pid) const;
  std::uint32_t crash_count() const noexcept { return crash_count_; }

  /// Replace crashed `pid` with a fresh incarnation from
  /// Options::recover_factory. Models a process restart on the same
  /// identity: every channel touching pid is re-established, so frames
  /// still in flight to or from the old incarnation are dead on arrival
  /// (channel-epoch fencing below) — exactly what a closed-and-reopened
  /// TCP connection gives the socket runtime. The new incarnation's
  /// on_start runs immediately (it broadcasts CATCHUP when configured with
  /// recover_via_catchup).
  void recover_at(ProcessId pid, Tick when);
  void recover_now(ProcessId pid);
  std::uint32_t recover_count() const noexcept { return recover_count_; }

  // ---- execution ----------------------------------------------------------
  /// Run events until the queue drains or a limit is hit.
  /// Returns true if the queue drained.
  bool run(std::uint64_t max_events = kDefaultMaxEvents,
           Tick max_time = kNever);

  /// Run until `done()` holds (checked after every event) or a limit is hit.
  /// Returns true if `done()` held.
  bool run_until(const std::function<bool()>& done,
                 std::uint64_t max_events = kDefaultMaxEvents,
                 Tick max_time = kNever);

  std::uint64_t events_executed() const noexcept { return events_executed_; }

  // ---- access -------------------------------------------------------------
  std::uint32_t process_count() const {
    return static_cast<std::uint32_t>(processes_.size());
  }
  ProcessBase& process(ProcessId pid);
  template <typename T>
  T& process_as(ProcessId pid) {
    auto* p = dynamic_cast<T*>(&process(pid));
    TBR_ENSURE(p != nullptr, "process has unexpected type");
    return *p;
  }
  NetworkContext& context(ProcessId pid);

  MessageStats& stats() noexcept { return stats_; }
  const MessageStats& stats() const noexcept { return stats_; }
  Rng& rng() noexcept { return rng_; }

  /// Resolved scheduler backend (never kAuto) and its elementary-operation
  /// counter — the deterministic basis of bench_event_queue's projection.
  EventQueue::Policy scheduler_policy() const noexcept {
    return queue_.policy();
  }
  std::uint64_t scheduler_work_units() const noexcept {
    return queue_.work_units();
  }

  // ---- introspection (invariant observers, P1-style channel checks) -------
  // Requires Options::track_in_flight; reading an untracked registry is a
  // contract error (it would silently return "no frames in flight").
  struct InFlight {
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    std::uint8_t type = 0;
    SeqNo debug_index = -1;
    Tick deliver_at = 0;
  };
  std::vector<InFlight> in_flight() const;
  std::vector<InFlight> in_flight_between(ProcessId from, ProcessId to) const;

  /// Frames destroyed by out-of-model loss injection (Options::loss_rate).
  std::uint64_t frames_lost() const noexcept { return frames_lost_; }

  /// Called after every executed event with the network in a quiescent
  /// state; the lemma-invariant observers hang here. Throwing from the hook
  /// aborts the run (tests use TBR_INVARIANT).
  using Hook = std::function<void(SimNetwork&)>;
  void set_post_event_hook(Hook hook) { post_event_hook_ = std::move(hook); }

  /// Attach a protocol trace (send/deliver/drop/crash events). The log must
  /// outlive the network; pass nullptr to detach.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  static constexpr std::uint64_t kDefaultMaxEvents = 50'000'000;

 private:
  class Context;

  void send_from(ProcessId from, ProcessId to, const Message& msg);
  /// Invalidate every frame currently in flight from -> to (sender-side
  /// half of a channel re-establishment; NetworkContext::fence_peer).
  void fence_from(ProcessId from, ProcessId to);
  /// Execute a Deliver event for pooled frame `frame`: hand it to its
  /// destination, or park it in the node's service FIFO when the capacity
  /// model says its CPU is mid-frame.
  void deliver_frame(ProcessId from, ProcessId to, EventQueue::FrameId frame);
  /// Serve the next parked frame at `to` (fires at busy_until_[to]).
  void drain_service_queue(ProcessId to);
  void step();  // run one event + hook

  // ---- frame pool ---------------------------------------------------------
  /// Copy `msg` into a recycled pool slot (the slot's string capacity is
  /// reused, so steady-state sends never allocate) and return its index.
  EventQueue::FrameId acquire_frame(const Message& msg);
  void release_frame(EventQueue::FrameId frame);

  std::vector<std::unique_ptr<ProcessBase>> processes_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<bool> crashed_;
  std::uint32_t crash_count_ = 0;
  std::uint32_t recover_count_ = 0;
  std::function<std::unique_ptr<ProcessBase>(ProcessId)> recover_factory_;

  /// Channel epochs, flattened [from * n + to]. A frame is stamped with its
  /// channel's epoch at send time and silently dies if the epoch moved
  /// before delivery. recover_now bumps pid's whole row and column (both
  /// directions of every channel touching the restarted process);
  /// fence_from bumps a single cell (a live peer re-establishing its send
  /// side toward a rejoiner). Everything stays at epoch 0 until a recovery
  /// feature is actually exercised.
  std::vector<std::uint32_t> chan_epoch_;
  std::uint32_t chan_epoch(ProcessId from, ProcessId to) const {
    return chan_epoch_[from * processes_.size() + to];
  }
  /// Send-time epoch stamp per pooled frame, parallel to frame_pool_.
  std::deque<std::uint32_t> frame_epoch_;

  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t events_executed_ = 0;

  Rng rng_;
  std::unique_ptr<DelayModel> delay_;
  double loss_rate_ = 0.0;
  Tick service_time_ = 0;

  /// In-flight frames live here, indexed by EventQueue::FrameId. A deque so
  /// slot references stay valid while a handler's sends grow the pool.
  std::deque<Message> frame_pool_;
  std::vector<EventQueue::FrameId> free_frames_;

  std::vector<Tick> busy_until_;  ///< per-node CPU free time (capacity model)

  /// Frames awaiting a busy node's CPU, FIFO by arrival, as a recycled
  /// vector ring (a deque would churn chunk allocations at every boundary).
  /// Invariant: a non-empty queue has exactly one drain event pending at
  /// busy_until_.
  struct ParkedFrame {
    ProcessId from = kNoProcess;
    EventQueue::FrameId frame = 0;
  };
  class FrameFifo {
   public:
    bool empty() const noexcept { return count_ == 0; }
    std::size_t size() const noexcept { return count_; }
    void push(ParkedFrame f);
    ParkedFrame pop();

   private:
    std::vector<ParkedFrame> ring_;  // capacity always a power of two
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };
  std::vector<FrameFifo> service_queue_;

  std::uint64_t frames_lost_ = 0;
  MessageStats stats_;
  Hook post_event_hook_;
  TraceLog* trace_ = nullptr;

  // In-flight registry keyed by event id (erased on delivery/drop); only
  // maintained when Options::track_in_flight is set.
  bool track_in_flight_ = false;
  std::vector<std::pair<EventQueue::EventId, InFlight>> in_flight_;
  void forget_in_flight(EventQueue::EventId id);
  bool started_ = false;
  void ensure_started();
};

}  // namespace tbr
