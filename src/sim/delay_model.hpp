// Message-delay models for the simulated network.
//
// The CAMP model promises only that delays are finite; these models choose
// them. ConstantDelay reproduces the paper's failure-free timing analysis
// (every delay = Δ); the randomized/adversarial models drive reordering so
// the alternating-bit machinery and the atomicity proofs are stress-tested.
#pragma once

#include <functional>
#include <memory>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace tbr {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  DelayModel() = default;
  DelayModel(const DelayModel&) = delete;
  DelayModel& operator=(const DelayModel&) = delete;

  /// Transit time (> 0 ticks) for `msg` on channel from -> to.
  virtual Tick delay(Rng& rng, ProcessId from, ProcessId to,
                     const Message& msg) = 0;

  /// True when the model's delays cluster event horizons into a narrow band
  /// (constant / bounded two-point / uniform): the shape the calendar-queue
  /// scheduler serves in O(1) amortized. Heavy-tailed and fully
  /// programmable models return false so EventQueue::Policy::kAuto falls
  /// back to the binary heap.
  virtual bool clustered_delays() const { return false; }
};

/// Every message takes exactly Δ: the paper's timing model (Table 1 rows 5-6).
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Tick delta);
  Tick delay(Rng&, ProcessId, ProcessId, const Message&) override;
  bool clustered_delays() const override { return true; }
  Tick delta() const noexcept { return delta_; }

 private:
  Tick delta_;
};

/// Uniform in [lo, hi]: mild asynchrony with frequent reordering.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Tick lo, Tick hi);
  Tick delay(Rng& rng, ProcessId, ProcessId, const Message&) override;
  bool clustered_delays() const override { return true; }

 private:
  Tick lo_, hi_;
};

/// Exponential with mean `mean`, truncated at `cap`: heavy-ish tail.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(Tick mean, Tick cap);
  Tick delay(Rng& rng, ProcessId, ProcessId, const Message&) override;

 private:
  Tick mean_, cap_;
};

/// Alternates per-channel between `fast` and `slow`, guaranteeing that
/// consecutive messages on a channel bypass each other — the worst case the
/// alternating-bit discipline (Property P1) must absorb.
class FlipFlopDelay final : public DelayModel {
 public:
  FlipFlopDelay(Tick fast, Tick slow, std::uint32_t n);
  Tick delay(Rng&, ProcessId from, ProcessId to, const Message&) override;
  bool clustered_delays() const override { return true; }

 private:
  Tick fast_, slow_;
  std::uint32_t n_;
  std::vector<bool> flip_;  // per ordered channel
};

/// One process's links are slow in both directions; everything else is fast.
/// Models the laggard that the paper's Rule R2 (catch-up forwarding) serves.
class StragglerDelay final : public DelayModel {
 public:
  StragglerDelay(ProcessId straggler, Tick slow, Tick fast);
  Tick delay(Rng&, ProcessId from, ProcessId to, const Message&) override;
  bool clustered_delays() const override { return true; }

 private:
  ProcessId straggler_;
  Tick slow_, fast_;
};

/// Fully programmable delays: the adversarial-schedule scenarios pick the
/// transit time per (channel, frame) — e.g. "WRITE frames towards the stale
/// side of the network are slow, control frames are instant".
class FrameDelay final : public DelayModel {
 public:
  using Fn = std::function<Tick(ProcessId from, ProcessId to,
                                const Message& msg)>;
  explicit FrameDelay(Fn fn);
  Tick delay(Rng&, ProcessId from, ProcessId to, const Message& msg) override;

 private:
  Fn fn_;
};

/// Factory helpers (benches/tests name models by these).
std::unique_ptr<DelayModel> make_constant_delay(Tick delta);
std::unique_ptr<DelayModel> make_uniform_delay(Tick lo, Tick hi);
std::unique_ptr<DelayModel> make_exponential_delay(Tick mean, Tick cap);
std::unique_ptr<DelayModel> make_flipflop_delay(Tick fast, Tick slow,
                                                std::uint32_t n);
std::unique_ptr<DelayModel> make_straggler_delay(ProcessId straggler,
                                                 Tick slow, Tick fast);
std::unique_ptr<DelayModel> make_frame_delay(FrameDelay::Fn fn);

}  // namespace tbr
