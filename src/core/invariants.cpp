#include "core/invariants.hpp"

#include <algorithm>

namespace tbr {

TwoBitInvariantObserver::TwoBitInvariantObserver(GroupConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.validate();
  prev_wsync_.assign(cfg_.n, std::vector<SeqNo>(cfg_.n, 0));
}

void TwoBitInvariantObserver::operator()(SimNetwork& net) {
  std::vector<const TwoBitProcess*> ps;
  ps.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    ps.push_back(&net.process_as<TwoBitProcess>(pid));
  }
  check_lemma1_steps(ps);
  check_lemmas_2_3(ps);
  check_lemma4_prefix(ps);
  check_lemma5_counters(ps);
  check_p1_channels(net);
  check_p2_pairwise(ps);
  ++checks_run_;
}

void TwoBitInvariantObserver::check_lemma1_steps(
    const std::vector<const TwoBitProcess*>& ps) {
  // Lemma 1 (steps of exactly 1) holds per message *processed* and is
  // enforced by construction at every mutation site (wsn = w_sync[j] + 1
  // plus the history-contiguity contracts in TwoBitProcess). One simulator
  // event can cascade several parked messages, so at event granularity the
  // observable guarantee is monotone non-decrease, which we check here;
  // monotonicity is also what the proof of Claim 3 (Lemma 10) consumes.
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      const SeqNo cur = ps[i]->wsync(j);
      if (has_prev_) {
        const SeqNo old = prev_wsync_[i][j];
        TBR_INVARIANT(cur >= old, "Lemma 1: w_sync never decreases");
      }
      prev_wsync_[i][j] = cur;
    }
  }
  has_prev_ = true;
}

void TwoBitInvariantObserver::check_lemmas_2_3(
    const std::vector<const TwoBitProcess*>& ps) {
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    SeqNo row_max = 0;
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      row_max = std::max(row_max, ps[i]->wsync(j));
      TBR_INVARIANT(ps[i]->wsync(i) >= ps[j]->wsync(i),
                    "Lemma 2: w_sync_i[i] >= w_sync_j[i]");
    }
    TBR_INVARIANT(ps[i]->wsync(i) == row_max,
                  "Lemma 3: w_sync_i[i] is the row maximum");
  }
}

void TwoBitInvariantObserver::check_lemma4_prefix(
    const std::vector<const TwoBitProcess*>& ps) {
  const auto& writer_hist = ps[cfg_.writer]->history();
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    const auto& hist = ps[i]->history();
    TBR_INVARIANT(
        static_cast<SeqNo>(hist.size()) == ps[i]->wsync(i) + 1,
        "history length tracks w_sync_i[i]");
    TBR_INVARIANT(hist.size() <= writer_hist.size(),
                  "Lemma 4: no history outruns the writer's");
    for (std::size_t x = 0; x < hist.size(); ++x) {
      TBR_INVARIANT(hist[x] == writer_hist[x],
                    "Lemma 4: local histories are prefixes of the writer's");
    }
  }
}

void TwoBitInvariantObserver::check_lemma5_counters(
    const std::vector<const TwoBitProcess*>& ps) {
  // R1: w_sync_i[i] = w_sync_i[j] = x  => i sent exactly x frames to j.
  // R2: w_sync_i[i] > w_sync_i[j] = x  => i sent exactly x+1 frames to j.
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    if (ps[i]->crashed()) continue;  // the lemma quantifies over correct i
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (j == i) continue;
      const SeqNo x = ps[i]->wsync(j);
      const SeqNo sent = ps[i]->write_frames_sent_to(j);
      if (ps[i]->wsync(i) == x) {
        TBR_INVARIANT(sent == x, "Lemma 5 R1: sent = w_sync_i[j]");
      } else {
        TBR_INVARIANT(sent == x + 1, "Lemma 5 R2: sent = w_sync_i[j] + 1");
      }
    }
  }
}

void TwoBitInvariantObserver::check_p1_channels(SimNetwork& net) {
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (i == j) continue;
      std::vector<SeqNo> write_indices;
      for (const auto& f : net.in_flight_between(i, j)) {
        if (f.type <= 1) write_indices.push_back(f.debug_index);
      }
      TBR_INVARIANT(write_indices.size() <= 2,
                    "P1: at most two WRITE frames in flight per channel");
      if (write_indices.size() == 2) {
        const auto [lo, hi] =
            std::minmax(write_indices[0], write_indices[1]);
        TBR_INVARIANT(hi == lo + 1,
                      "P1: in-flight WRITE frames have consecutive indices");
      }
    }
  }
}

void TwoBitInvariantObserver::check_p2_pairwise(
    const std::vector<const TwoBitProcess*>& ps) {
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = i + 1; j < cfg_.n; ++j) {
      const SeqNo a = ps[i]->wsync(j);
      const SeqNo b = ps[j]->wsync(i);
      TBR_INVARIANT(std::llabs(a - b) <= 1,
                    "P2: pairwise views differ by at most 1");
    }
  }
}

}  // namespace tbr
