#include "core/invariants.hpp"

#include <algorithm>

namespace tbr {

namespace {
// The cross-process lemmas quantify over executions of the *published*
// protocol. A crash-rejoin (recover_via_catchup) replaces a process with a
// fresh incarnation and resets the channels touching it: counters restart
// from checkpoint indices, and the server's optimistic w_sync entry for the
// rejoiner is a claim, not knowledge. Pairwise checks therefore skip pairs
// involving a rejoined process; everything single-process (Lemma 3, the
// base-aware Lemma 4) still holds and stays checked for everyone.
bool pair_relaxed(const std::vector<const TwoBitProcess*>& ps, ProcessId i,
                  ProcessId j) {
  return ps[i]->has_recovered() || ps[j]->has_recovered();
}
}  // namespace

TwoBitInvariantObserver::TwoBitInvariantObserver(GroupConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.validate();
  prev_wsync_.assign(cfg_.n, std::vector<SeqNo>(cfg_.n, 0));
}

void TwoBitInvariantObserver::operator()(SimNetwork& net) {
  std::vector<const TwoBitProcess*> ps;
  ps.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    ps.push_back(&net.process_as<TwoBitProcess>(pid));
  }
  check_lemma1_steps(ps);
  check_lemmas_2_3(ps);
  check_lemma4_prefix(ps);
  check_lemma5_counters(ps);
  check_p1_channels(net, ps);
  check_p2_pairwise(ps);
  ++checks_run_;
}

void TwoBitInvariantObserver::check_lemma1_steps(
    const std::vector<const TwoBitProcess*>& ps) {
  // Lemma 1 (steps of exactly 1) holds per message *processed* and is
  // enforced by construction at every mutation site (wsn = w_sync[j] + 1
  // plus the history-contiguity contracts in TwoBitProcess). One simulator
  // event can cascade several parked messages, so at event granularity the
  // observable guarantee is monotone non-decrease, which we check here;
  // monotonicity is also what the proof of Claim 3 (Lemma 10) consumes.
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      const SeqNo cur = ps[i]->wsync(j);
      if (has_prev_ && !pair_relaxed(ps, i, j)) {
        const SeqNo old = prev_wsync_[i][j];
        TBR_INVARIANT(cur >= old, "Lemma 1: w_sync never decreases");
      }
      prev_wsync_[i][j] = cur;
    }
  }
  has_prev_ = true;
}

void TwoBitInvariantObserver::check_lemmas_2_3(
    const std::vector<const TwoBitProcess*>& ps) {
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    SeqNo row_max = 0;
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      row_max = std::max(row_max, ps[i]->wsync(j));
      if (!pair_relaxed(ps, i, j)) {
        TBR_INVARIANT(ps[i]->wsync(i) >= ps[j]->wsync(i),
                      "Lemma 2: w_sync_i[i] >= w_sync_j[i]");
      }
    }
    // Lemma 3 survives rejoin: a server's optimistic entry for a rejoiner
    // equals its own head, and a rejoiner adopts before it records larger
    // peer checkpoints, so the diagonal still dominates the row.
    TBR_INVARIANT(ps[i]->wsync(i) == row_max,
                  "Lemma 3: w_sync_i[i] is the row maximum");
  }
}

void TwoBitInvariantObserver::check_lemma4_prefix(
    const std::vector<const TwoBitProcess*>& ps) {
  // Base-aware form: every process retains the index range
  // [history_base, w_sync_i[i]] and agrees with the writer wherever the two
  // retained ranges overlap. With GC/checkpoints off, bases are 0 and this
  // is the paper's literal prefix property.
  const auto writer_hist = ps[cfg_.writer]->history();
  const SeqNo writer_base = ps[cfg_.writer]->history_base();
  const SeqNo writer_head =
      writer_base + static_cast<SeqNo>(writer_hist.size()) - 1;
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    const auto hist = ps[i]->history();
    const SeqNo base = ps[i]->history_base();
    const SeqNo head = base + static_cast<SeqNo>(hist.size()) - 1;
    TBR_INVARIANT(head == ps[i]->wsync(i),
                  "history head tracks w_sync_i[i]");
    TBR_INVARIANT(head <= writer_head,
                  "Lemma 4: no history outruns the writer's");
    const SeqNo lo = std::max(base, writer_base);
    for (SeqNo idx = lo; idx <= std::min(head, writer_head); ++idx) {
      TBR_INVARIANT(
          hist[static_cast<std::size_t>(idx - base)] ==
              writer_hist[static_cast<std::size_t>(idx - writer_base)],
          "Lemma 4: local histories agree with the writer's");
    }
  }
}

void TwoBitInvariantObserver::check_lemma5_counters(
    const std::vector<const TwoBitProcess*>& ps) {
  // R1: w_sync_i[i] = w_sync_i[j] = x  => i sent exactly x frames to j.
  // R2: w_sync_i[i] > w_sync_i[j] = x  => i sent exactly x+1 frames to j.
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    if (ps[i]->crashed()) continue;  // the lemma quantifies over correct i
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (j == i || pair_relaxed(ps, i, j)) continue;
      const SeqNo x = ps[i]->wsync(j);
      const SeqNo sent = ps[i]->write_frames_sent_to(j);
      if (ps[i]->wsync(i) == x) {
        TBR_INVARIANT(sent == x, "Lemma 5 R1: sent = w_sync_i[j]");
      } else {
        TBR_INVARIANT(sent == x + 1, "Lemma 5 R2: sent = w_sync_i[j] + 1");
      }
    }
  }
}

void TwoBitInvariantObserver::check_p1_channels(
    SimNetwork& net, const std::vector<const TwoBitProcess*>& ps) {
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (i == j || pair_relaxed(ps, i, j)) continue;
      std::vector<SeqNo> write_indices;
      for (const auto& f : net.in_flight_between(i, j)) {
        if (f.type <= 1) write_indices.push_back(f.debug_index);
      }
      TBR_INVARIANT(write_indices.size() <= 2,
                    "P1: at most two WRITE frames in flight per channel");
      if (write_indices.size() == 2) {
        const auto [lo, hi] =
            std::minmax(write_indices[0], write_indices[1]);
        TBR_INVARIANT(hi == lo + 1,
                      "P1: in-flight WRITE frames have consecutive indices");
      }
    }
  }
}

void TwoBitInvariantObserver::check_p2_pairwise(
    const std::vector<const TwoBitProcess*>& ps) {
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    for (ProcessId j = i + 1; j < cfg_.n; ++j) {
      if (pair_relaxed(ps, i, j)) continue;
      const SeqNo a = ps[i]->wsync(j);
      const SeqNo b = ps[j]->wsync(i);
      TBR_INVARIANT(std::llabs(a - b) <= 1,
                    "P2: pairwise views differ by at most 1");
    }
  }
}

}  // namespace tbr
