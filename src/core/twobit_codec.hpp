// Wire format of the two-bit algorithm: the paper's headline property.
//
// Four frame types — WRITE0, WRITE1, READ, PROCEED — and *no* control field
// beyond the type. WRITE frames carry the register value (data plane);
// READ/PROCEED carry nothing at all. Control cost of every frame: 2 bits.
//
// On a byte-oriented wire the 2-bit type necessarily occupies one byte; the
// control-bit accounting counts the 2 meaningful bits, exactly the quantity
// the paper compares in Table 1 line 3 (the 6 padding bits are an artifact
// of byte framing, not protocol information).
#pragma once

#include "net/codec.hpp"

namespace tbr {

/// The four message types of Fig. 1. WRITE parity = (type & 1).
enum class TwoBitType : std::uint8_t {
  kWrite0 = 0,
  kWrite1 = 1,
  kRead = 2,
  kProceed = 3,
};

class TwoBitCodec final : public Codec {
 public:
  void encode_into(const Message& msg, std::string& out) const override;
  void decode_into(std::string_view bytes, Message& out) const override;
  WireAccounting account(const Message& msg) const override;
  std::string type_name(std::uint8_t type) const override;

  static constexpr std::uint64_t kControlBitsPerMessage = 2;
};

/// Shared immutable codec instance.
const TwoBitCodec& twobit_codec();

}  // namespace tbr
