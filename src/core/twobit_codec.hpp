// Wire format of the two-bit algorithm: the paper's headline property.
//
// Four frame types — WRITE0, WRITE1, READ, PROCEED — and *no* control field
// beyond the type. WRITE frames carry the register value (data plane);
// READ/PROCEED carry nothing at all. Control cost of every frame: 2 bits.
//
// On a byte-oriented wire the 2-bit type necessarily occupies one byte; the
// control-bit accounting counts the 2 meaningful bits, exactly the quantity
// the paper compares in Table 1 line 3 (the 6 padding bits are an artifact
// of byte framing, not protocol information).
//
// The bounded-memory extension (Imbs–Mostéfaoui–Perrin–Raynal-style acked
// prefixes; see README "Bounded memory & recovery") adds three frames
// *outside* the paper's protocol: ACK (prefix acknowledgement), CHECKPOINT
// (index + value superseding a prefix) and CATCHUP (rejoin request). These
// carry an explicit 64-bit index and are accounted honestly as 2 + 64
// control bits — the paper's 2-bit claim covers exactly the Fig. 1 frames,
// which remain byte-identical.
#pragma once

#include "net/codec.hpp"

namespace tbr {

/// The four message types of Fig. 1 (WRITE parity = type & 1), plus the
/// bounded-memory extension frames. Type 7 stays invalid.
enum class TwoBitType : std::uint8_t {
  kWrite0 = 0,
  kWrite1 = 1,
  kRead = 2,
  kProceed = 3,
  kAck = 4,        // seq = highest history index the sender has applied
  kCheckpoint = 5, // seq = checkpoint index, value = history[seq]
  kCatchUp = 6,    // rejoin request: "send me your checkpoint"
};

class TwoBitCodec final : public Codec {
 public:
  void encode_into(const Message& msg, std::string& out) const override;
  void decode_into(std::string_view bytes, Message& out) const override;
  WireAccounting account(const Message& msg) const override;
  std::string type_name(std::uint8_t type) const override;

  static constexpr std::uint64_t kControlBitsPerMessage = 2;
  /// Extra control bits of the extension frames carrying an index.
  static constexpr std::uint64_t kIndexBits = 64;
};

/// Shared immutable codec instance.
const TwoBitCodec& twobit_codec();

}  // namespace tbr
