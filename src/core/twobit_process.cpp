#include "core/twobit_process.hpp"

#include <algorithm>
#include <utility>

namespace tbr {

TwoBitProcess::TwoBitProcess(GroupConfig cfg, ProcessId self,
                             TwoBitOptions options)
    : RegisterProcessBase(std::move(cfg), self),
      options_(options),
      history_{cfg_.initial},                 // history_i[0] <- v0
      w_sync_(cfg_.n, 0),                     // w_sync_i[1..n] <- [0..0]
      r_sync_(cfg_.n, 0),                     // r_sync_i[1..n] <- [0..0]
      parked_write_(cfg_.n),
      parked_reads_(cfg_.n),
      write_frames_sent_(cfg_.n, 0) {}

// ---- history storage (unbounded by default; windowed for the ablation) ----

void TwoBitProcess::append_history(Value v) {
  history_.push_back(std::move(v));
  if (options_.history_window > 0) {
    while (history_.size() > options_.history_window) {
      history_.pop_front();
      ++history_base_;
      ++evicted_;
    }
  }
}

bool TwoBitProcess::history_has(SeqNo idx) const {
  return idx >= history_base_ &&
         idx < history_base_ + static_cast<SeqNo>(history_.size());
}

const Value& TwoBitProcess::history_at(SeqNo idx) const {
  TBR_ENSURE(history_has(idx), "history index evicted or out of range");
  return history_[static_cast<std::size_t>(idx - history_base_)];
}

SeqNo TwoBitProcess::history_head() const {
  return history_base_ + static_cast<SeqNo>(history_.size()) - 1;
}

// ---- operation write() — Fig. 1 lines 1-4 ---------------------------------

void TwoBitProcess::start_write(NetworkContext& net, Value v, WriteDone done) {
  TBR_ENSURE(is_writer(), "only the writer p_w may invoke write()");
  TBR_ENSURE(done != nullptr, "write needs a completion callback");
  begin_operation("write");

  // line 1: wsn <- w_sync[w]+1; w_sync[w] <- wsn; history[wsn] <- v
  const SeqNo wsn = w_sync_[self_] + 1;
  w_sync_[self_] = wsn;
  append_history(std::move(v));
  TBR_ENSURE(history_head() == wsn, "history head tracks w_sync[self]");

  // line 2: send WRITE(b, v) to every j with w_sync[j] = wsn-1.
  // (self is excluded naturally: w_sync[self] = wsn.)
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (w_sync_[j] == wsn - 1) send_write_frame(net, j, wsn);
  }

  // line 3: wait until >= n-t processes j have w_sync[j] = wsn.
  pending_write_ = PendingWrite{wsn, std::move(done)};
  after_state_change(net);  // n-t may already hold (e.g. n = 1)
}

// ---- operation read() — Fig. 1 lines 5-10 ---------------------------------

void TwoBitProcess::start_read(NetworkContext& net, ReadDone done) {
  TBR_ENSURE(done != nullptr, "read needs a completion callback");
  begin_operation("read");

  // Remark on line 5: the writer may serve reads locally (opt-in).
  if (cfg_.writer_fast_read && is_writer()) {
    const SeqNo sn = w_sync_[self_];
    end_operation();
    done(history_at(sn), sn);
    return;
  }

  // line 5: rsn <- r_sync[i]+1; r_sync[i] <- rsn
  const SeqNo rsn = r_sync_[self_] + 1;
  r_sync_[self_] = rsn;

  // line 6: send READ() to every other process.
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) send_control_frame(net, j, TwoBitType::kRead);
  }

  // lines 7-10 happen in check_pending_ops as the quorums fill.
  pending_read_ = PendingRead{rsn, ReadStage::kAwaitProceeds, -1,
                              std::move(done)};
  after_state_change(net);
}

// ---- message dispatch ------------------------------------------------------

void TwoBitProcess::on_message(NetworkContext& net, ProcessId from,
                               const Message& msg) {
  TBR_ENSURE(!crashed_, "runtime delivered a message to a crashed process");
  TBR_ENSURE(from < cfg_.n && from != self_, "bad sender");
  switch (static_cast<TwoBitType>(msg.type)) {
    case TwoBitType::kWrite0:
    case TwoBitType::kWrite1:
      TBR_ENSURE(msg.has_value, "WRITE frame without value");
      on_write(net, from, static_cast<std::uint8_t>(msg.type & 1), msg.value);
      break;
    case TwoBitType::kRead:
      on_read(net, from);
      break;
    case TwoBitType::kProceed:
      on_proceed(net, from);
      break;
    default:
      TBR_ENSURE(false, "unknown two-bit frame type");
  }
}

// ---- WRITE(b, v) — Fig. 1 lines 11-18 --------------------------------------

void TwoBitProcess::on_write(NetworkContext& net, ProcessId from,
                             std::uint8_t parity, const Value& v) {
  // line 11: wait (b = (w_sync[j]+1) mod 2). The alternating-bit pattern
  // (Property P1) lets at most one WRITE bypass its predecessor per channel,
  // so a single parking slot per sender suffices — asserted here.
  const auto expected =
      static_cast<std::uint8_t>((w_sync_[from] + 1) % 2);
  if (parity != expected) {
    TBR_ENSURE(!parked_write_[from].has_value(),
               "P1 violated: two WRITE frames bypassed on one channel");
    parked_write_[from] = ParkedWrite{parity, v};
    return;
  }
  process_write(net, from, parity, v);
  after_state_change(net);
}

void TwoBitProcess::process_write(NetworkContext& net, ProcessId from,
                                  std::uint8_t parity, const Value& v) {
  // line 12: this is the (w_sync[j]+1)-th WRITE from j.
  const SeqNo wsn = w_sync_[from] + 1;
  TBR_ENSURE(parity == static_cast<std::uint8_t>(wsn % 2),
             "parity/wsn mismatch");

  if (wsn == w_sync_[self_] + 1) {
    // lines 13-15: the next value of our own history — adopt and forward to
    // everyone we believe knows exactly the first wsn-1 values (Rule R1).
    // Note w_sync[from] is still wsn-1 until line 18, so the sender is
    // among the recipients: that echo is what acknowledges the value.
    w_sync_[self_] = wsn;
    append_history(v);
    TBR_ENSURE(history_head() == wsn, "history head tracks w_sync[self]");
    for (ProcessId l = 0; l < cfg_.n; ++l) {
      if (w_sync_[l] == wsn - 1) send_write_frame(net, l, wsn);
    }
    // line 18: j has now sent us wsn WRITE frames.
    w_sync_[from] = wsn;
  } else {
    // Apply line 18 before line 16: neither line-16 predicate nor payload
    // depends on w_sync[from], and updating first keeps the send-side
    // ping-pong invariant (w_sync[to] = index-1 at every send) intact.
    w_sync_[from] = wsn;
    if (wsn < w_sync_[self_]) {
      // line 16: the sender lags behind us — return its next value (Rule R2).
      if (history_has(wsn + 1)) {
        send_write_frame(net, from, wsn + 1);
      } else {
        // Window ablation only: the needed value was evicted; the sender
        // can never be caught up by us. Faithful mode never gets here.
        TBR_ENSURE(options_.history_window > 0,
                   "evicted history without a window configured");
        ++skipped_catchups_;
      }
    }
    // (wsn == w_sync[self]: nothing to do beyond line 18.)
  }
}

// ---- READ() — Fig. 1 lines 19-21 -------------------------------------------

void TwoBitProcess::on_read(NetworkContext& net, ProcessId from) {
  // Ablation: answer immediately, ABD-style (drops the atomicity guarantee
  // the freshness wait provides — see TwoBitOptions::eager_proceed).
  if (options_.eager_proceed) {
    send_control_frame(net, from, TwoBitType::kProceed);
    return;
  }
  // line 19: freshness point = our newest value.
  const SeqNo sn = w_sync_[self_];
  // line 20: wait (w_sync[from] >= sn); line 21: send PROCEED.
  if (w_sync_[from] >= sn) {
    send_control_frame(net, from, TwoBitType::kProceed);
  } else {
    // Successive READs from one reader see monotonically non-decreasing
    // freshness points, so releasing the deque front-first is correct.
    TBR_ENSURE(parked_reads_[from].empty() ||
                   parked_reads_[from].back() <= sn,
               "freshness points must be monotone per reader");
    parked_reads_[from].push_back(sn);
  }
}

// ---- PROCEED() — Fig. 1 line 22 ---------------------------------------------

void TwoBitProcess::on_proceed(NetworkContext& net, ProcessId from) {
  r_sync_[from] += 1;
  after_state_change(net);
}

// ---- wait re-examination ----------------------------------------------------

void TwoBitProcess::after_state_change(NetworkContext& net) {
  // Completion callbacks may synchronously start the next operation (the
  // closed-loop drivers do), which re-enters this function; the outermost
  // call owns the fixpoint loop and nested calls are no-ops.
  if (in_after_state_change_) return;
  in_after_state_change_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    if (drain_parked_writes(net)) progress = true;
    if (drain_parked_reads(net)) progress = true;
    if (check_pending_ops(net)) progress = true;
  }
  in_after_state_change_ = false;
}

bool TwoBitProcess::drain_parked_writes(NetworkContext& net) {
  bool any = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (!parked_write_[j].has_value()) continue;
      const auto expected =
          static_cast<std::uint8_t>((w_sync_[j] + 1) % 2);
      if (parked_write_[j]->parity != expected) continue;
      ParkedWrite pw = std::move(*parked_write_[j]);
      parked_write_[j].reset();
      process_write(net, j, pw.parity, pw.value);
      progress = true;
      any = true;
    }
  }
  return any;
}

bool TwoBitProcess::drain_parked_reads(NetworkContext& net) {
  bool any = false;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    auto& q = parked_reads_[j];
    while (!q.empty() && w_sync_[j] >= q.front()) {
      q.pop_front();
      send_control_frame(net, j, TwoBitType::kProceed);
      any = true;
    }
  }
  return any;
}

bool TwoBitProcess::check_pending_ops(NetworkContext& net) {
  (void)net;
  const auto quorum = cfg_.quorum();
  bool any = false;

  // line 3: z >= n-t processes j with w_sync[j] = wsn.
  if (pending_write_.has_value() &&
      count_wsync_eq(pending_write_->wsn) >= quorum) {
    WriteDone done = std::move(pending_write_->done);
    pending_write_.reset();
    end_operation();
    done();
    any = true;
  }

  if (pending_read_.has_value() &&
      pending_read_->stage == ReadStage::kAwaitProceeds &&
      count_rsync_eq(pending_read_->rsn) >= quorum) {
    // line 8: sn <- w_sync[i], captured the moment the quorum completes.
    pending_read_->sn = w_sync_[self_];
    if (options_.skip_read_second_wait) {
      // Ablation: return without line 9's quorum.
      const SeqNo sn = pending_read_->sn;
      ReadDone done = std::move(pending_read_->done);
      pending_read_.reset();
      end_operation();
      done(history_at(sn), sn);
      return true;
    }
    pending_read_->stage = ReadStage::kAwaitWsync;
    any = true;
  }
  if (pending_read_.has_value() &&
      pending_read_->stage == ReadStage::kAwaitWsync &&
      count_wsync_ge(pending_read_->sn) >= quorum) {
    // line 10: return history[sn].
    const SeqNo sn = pending_read_->sn;
    ReadDone done = std::move(pending_read_->done);
    pending_read_.reset();
    end_operation();
    done(history_at(sn), sn);
    any = true;
  }
  return any;
}

// ---- sending ---------------------------------------------------------------

void TwoBitProcess::send_write_frame(NetworkContext& net, ProcessId to,
                                     SeqNo index) {
  TBR_ENSURE(index >= 1 && history_has(index),
             "WRITE frame index must reference a retained value");
  if (options_.check_internal_invariants) {
    // Lemma 5 / alternating-bit send discipline: frames to each destination
    // go out exactly once each, in index order, and only when our view of
    // the destination is index-1.
    TBR_INVARIANT(index == write_frames_sent_[to] + 1,
                  "WRITE frames to a peer must be the sequence 1,2,3,...");
    TBR_INVARIANT(w_sync_[to] == index - 1,
                  "ping-pong: send index only when w_sync[to] = index-1");
  }
  write_frames_sent_[to] = index;

  Message msg;
  msg.type = static_cast<std::uint8_t>(index % 2 == 0 ? TwoBitType::kWrite0
                                                      : TwoBitType::kWrite1);
  msg.has_value = true;
  msg.value = history_at(index);
  msg.wire = twobit_codec().account(msg);
  msg.debug_index = index;  // simulator-side diagnostics only; not on wire
  net.send(to, msg);
}

void TwoBitProcess::send_control_frame(NetworkContext& net, ProcessId to,
                                       TwoBitType type) {
  TBR_ENSURE(type == TwoBitType::kRead || type == TwoBitType::kProceed,
             "control frames are READ/PROCEED");
  Message msg;
  msg.type = static_cast<std::uint8_t>(type);
  msg.wire = twobit_codec().account(msg);
  net.send(to, msg);
}

// ---- counting helpers (the paper's z computations) ---------------------------

std::uint32_t TwoBitProcess::count_wsync_eq(SeqNo v) const {
  std::uint32_t z = 0;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    TBR_INVARIANT(w_sync_[j] <= w_sync_[self_],
                  "Lemma 3: w_sync[self] dominates the row");
    if (w_sync_[j] == v) ++z;
  }
  return z;
}

std::uint32_t TwoBitProcess::count_wsync_ge(SeqNo v) const {
  std::uint32_t z = 0;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (w_sync_[j] >= v) ++z;
  }
  return z;
}

std::uint32_t TwoBitProcess::count_rsync_eq(SeqNo v) const {
  std::uint32_t z = 0;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    TBR_INVARIANT(r_sync_[j] <= r_sync_[self_],
                  "no peer can answer more read requests than we issued");
    if (r_sync_[j] == v) ++z;
  }
  return z;
}

// ---- misc --------------------------------------------------------------------

void TwoBitProcess::on_crash() { crashed_ = true; }

std::uint64_t TwoBitProcess::local_memory_bytes() const {
  // Live protocol state, the quantity Table 1 line 4 compares. The history
  // makes it unbounded in the number of writes — the paper's stated cost of
  // eliminating on-wire sequence numbers.
  std::uint64_t bytes = 0;
  for (const auto& v : history_) bytes += 8 + v.size();  // entry + payload
  bytes += 8ull * w_sync_.size();
  bytes += 8ull * r_sync_.size();
  for (const auto& pw : parked_write_) {
    if (pw.has_value()) bytes += 16 + pw->value.size();
  }
  for (const auto& q : parked_reads_) bytes += 8ull * q.size();
  return bytes;
}

std::vector<Value> TwoBitProcess::history() const {
  return {history_.begin(), history_.end()};
}

SeqNo TwoBitProcess::wsync(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return w_sync_[j];
}

SeqNo TwoBitProcess::rsync(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return r_sync_[j];
}

SeqNo TwoBitProcess::write_frames_sent_to(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return write_frames_sent_[j];
}

bool TwoBitProcess::has_parked_write(ProcessId from) const {
  TBR_ENSURE(from < cfg_.n, "pid out of range");
  return parked_write_[from].has_value();
}

std::size_t TwoBitProcess::parked_read_count() const {
  std::size_t count = 0;
  for (const auto& q : parked_reads_) count += q.size();
  return count;
}

std::unique_ptr<RegisterProcessBase> make_twobit_process(GroupConfig cfg,
                                                         ProcessId self) {
  return std::make_unique<TwoBitProcess>(std::move(cfg), self);
}

}  // namespace tbr
