#include "core/twobit_process.hpp"

#include <algorithm>
#include <utility>

namespace tbr {

TwoBitProcess::TwoBitProcess(GroupConfig cfg, ProcessId self,
                             TwoBitOptions options)
    : RegisterProcessBase(std::move(cfg), self),
      options_(options),
      log_(cfg_.initial),                     // history_i[0] <- v0
      w_sync_(cfg_.n, 0),                     // w_sync_i[1..n] <- [0..0]
      r_sync_(cfg_.n, 0),                     // r_sync_i[1..n] <- [0..0]
      acked_(cfg_.n, 0),
      wsync_confirmed_(cfg_.n, 1),
      channel_ready_(cfg_.n, 1),
      deferred_reads_(cfg_.n, 0),
      parked_write_(cfg_.n),
      parked_reads_(cfg_.n),
      write_frames_sent_(cfg_.n, 0) {
  TBR_ENSURE(!(options_.bounded_history && options_.history_window > 0),
             "bounded_history and the window ablation are mutually exclusive");
  TBR_ENSURE(!(options_.recover_via_catchup && options_.history_window > 0),
             "crash-rejoin is not defined for the lossy window ablation");
  TBR_ENSURE(!options_.recover_via_catchup || self_ != cfg_.writer,
             "the single writer cannot rejoin via catch-up (needs a "
             "write-quorum handshake this implementation does not provide)");
}

void TwoBitProcess::on_start(NetworkContext& net) {
  if (!options_.recover_via_catchup) return;
  // Crash-rejoin: announce the reboot. Peers reset their channel to us and
  // answer CHECKPOINT; until a quorum of n-t distinct peers has answered we
  // are "recovering": client operations are deferred and inbound READs are
  // parked, because an amnesiac responder could otherwise certify freshness
  // below a prefix its previous incarnation acknowledged (the quorum makes
  // the adopted maximum dominate every prefix the old incarnation could
  // have contributed to — two n-t quorums over our n-1 peers intersect).
  recovering_ = true;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) channel_ready_[j] = 0;
  }
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) send_control_frame(net, j, TwoBitType::kCatchUp);
  }
}

// ---- history storage -------------------------------------------------------

void TwoBitProcess::append_history(Value v) {
  log_.append(std::move(v));
  if (options_.history_window > 0) {
    while (log_.size() > options_.history_window) {
      log_.evict_front();
      ++evicted_;
    }
  }
}

bool TwoBitProcess::history_has(SeqNo idx) const { return log_.has(idx); }

const Value& TwoBitProcess::history_at(SeqNo idx) const { return log_.at(idx); }

SeqNo TwoBitProcess::history_head() const { return log_.head(); }

// ---- the acked-prefix watermark and GC -------------------------------------

SeqNo TwoBitProcess::known(ProcessId j) const {
  if (j == self_) return w_sync_[self_];
  // An unconfirmed w_sync entry is our own optimistic claim (set when we
  // served this peer's catch-up); only an explicit ACK or genuine channel
  // traffic from the peer may back freshness or quorum decisions.
  return wsync_confirmed_[j] ? std::max(w_sync_[j], acked_[j]) : acked_[j];
}

void TwoBitProcess::maybe_gc() {
  if (!options_.bounded_history) return;
  SeqNo watermark = w_sync_[self_];
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) watermark = std::min(watermark, known(j));
  }
  // A pending read's freshness index pins its value until line 10 returns.
  if (pending_read_.has_value() &&
      pending_read_->stage == ReadStage::kAwaitWsync) {
    watermark = std::min(watermark, pending_read_->sn);
  }
  if (watermark > log_.base()) {
    gc_reclaimed_ += log_.advance_checkpoint(watermark);
  }
}

void TwoBitProcess::maybe_send_acks(NetworkContext& net) {
  if (!acks_enabled() || recovering_) return;
  if (w_sync_[self_] < last_ack_sent_ + options_.ack_interval) return;
  last_ack_sent_ = w_sync_[self_];
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) send_index_frame(net, j, TwoBitType::kAck, last_ack_sent_);
  }
}

// ---- operation write() — Fig. 1 lines 1-4 ---------------------------------

void TwoBitProcess::start_write(NetworkContext& net, Value v, WriteDone done) {
  TBR_ENSURE(is_writer(), "only the writer p_w may invoke write()");
  TBR_ENSURE(done != nullptr, "write needs a completion callback");
  begin_operation("write");

  // line 1: wsn <- w_sync[w]+1; w_sync[w] <- wsn; history[wsn] <- v
  const SeqNo wsn = w_sync_[self_] + 1;
  w_sync_[self_] = wsn;
  append_history(std::move(v));
  TBR_ENSURE(history_head() == wsn, "history head tracks w_sync[self]");

  // line 2: send WRITE(b, v) to every j with w_sync[j] = wsn-1.
  // (self is excluded naturally: w_sync[self] = wsn.) Channels reset by a
  // rejoin stay silent until the peer confirms the checkpoint: a WRITE
  // racing the CHECKPOINT would be dropped by the rejoiner's gate with
  // nobody left to retransmit it (the ACK-confirmation path serves the
  // catch-up instead).
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (w_sync_[j] == wsn - 1 && wsync_confirmed_[j]) {
      send_write_frame(net, j, wsn);
    }
  }

  // line 3: wait until >= n-t processes j have w_sync[j] = wsn.
  pending_write_ = PendingWrite{wsn, std::move(done)};
  after_state_change(net);  // n-t may already hold (e.g. n = 1)
}

// ---- operation read() — Fig. 1 lines 5-10 ---------------------------------

void TwoBitProcess::start_read(NetworkContext& net, ReadDone done) {
  TBR_ENSURE(done != nullptr, "read needs a completion callback");
  begin_operation("read");

  // Remark on line 5: the writer may serve reads locally (opt-in).
  if (cfg_.writer_fast_read && is_writer()) {
    const SeqNo sn = w_sync_[self_];
    end_operation();
    done(history_at(sn), sn);
    return;
  }

  if (recovering_) {
    // Rejoin in progress: accept the operation but defer lines 5-6 until a
    // checkpoint quorum has restored our state.
    pending_read_ = PendingRead{0, ReadStage::kDeferred, -1, std::move(done)};
    return;
  }

  pending_read_ = PendingRead{0, ReadStage::kDeferred, -1, std::move(done)};
  issue_read_round(net);
  after_state_change(net);
}

void TwoBitProcess::issue_read_round(NetworkContext& net) {
  TBR_ENSURE(pending_read_.has_value(), "no read to issue");
  // line 5: rsn <- r_sync[i]+1; r_sync[i] <- rsn
  const SeqNo rsn = r_sync_[self_] + 1;
  r_sync_[self_] = rsn;
  pending_read_->rsn = rsn;
  pending_read_->stage = ReadStage::kAwaitProceeds;
  pending_read_->sn = -1;
  // line 6: send READ() to every other process.
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (j != self_) send_control_frame(net, j, TwoBitType::kRead);
  }
}

// ---- message dispatch ------------------------------------------------------

void TwoBitProcess::on_message(NetworkContext& net, ProcessId from,
                               const Message& msg) {
  TBR_ENSURE(!crashed_, "runtime delivered a message to a crashed process");
  TBR_ENSURE(from < cfg_.n && from != self_, "bad sender");
  switch (static_cast<TwoBitType>(msg.type)) {
    case TwoBitType::kWrite0:
    case TwoBitType::kWrite1:
      TBR_ENSURE(msg.has_value, "WRITE frame without value");
      // A channel reset by our own rejoin replays nothing: frames that left
      // the peer before it processed our CATCHUP are not part of the reset
      // era and are dropped (the peer's fence makes this window finite).
      if (!channel_ready_[from]) return;
      on_write(net, from, static_cast<std::uint8_t>(msg.type & 1), msg.value);
      break;
    case TwoBitType::kRead:
      if (recovering_) {
        ++deferred_reads_[from];  // answered once our state is restored
        return;
      }
      on_read(net, from);
      break;
    case TwoBitType::kProceed:
      on_proceed(net, from);
      break;
    case TwoBitType::kAck:
      on_ack(net, from, msg.seq);
      break;
    case TwoBitType::kCheckpoint:
      TBR_ENSURE(msg.has_value, "CHECKPOINT frame without value");
      on_checkpoint(net, from, msg.seq, msg.value);
      break;
    case TwoBitType::kCatchUp:
      on_catchup(net, from);
      break;
    default:
      TBR_ENSURE(false, "unknown two-bit frame type");
  }
}

// ---- WRITE(b, v) — Fig. 1 lines 11-18 --------------------------------------

void TwoBitProcess::on_write(NetworkContext& net, ProcessId from,
                             std::uint8_t parity, const Value& v) {
  // line 11: wait (b = (w_sync[j]+1) mod 2). The alternating-bit pattern
  // (Property P1) lets at most one WRITE bypass its predecessor per channel,
  // so a single parking slot per sender suffices — asserted here.
  const auto expected =
      static_cast<std::uint8_t>((w_sync_[from] + 1) % 2);
  if (parity != expected) {
    TBR_ENSURE(!parked_write_[from].has_value(),
               "P1 violated: two WRITE frames bypassed on one channel");
    parked_write_[from] = ParkedWrite{parity, v};
    return;
  }
  process_write(net, from, parity, v);
  after_state_change(net);
}

void TwoBitProcess::process_write(NetworkContext& net, ProcessId from,
                                  std::uint8_t parity, const Value& v) {
  // line 12: this is the (w_sync[j]+1)-th WRITE from j.
  const SeqNo wsn = w_sync_[from] + 1;
  TBR_ENSURE(parity == static_cast<std::uint8_t>(wsn % 2),
             "parity/wsn mismatch");
  // A genuine frame from j proves j applied wsn-1 and stored wsn: the
  // channel (possibly reset by a rejoin) is trustworthy again.
  wsync_confirmed_[from] = 1;

  if (wsn == w_sync_[self_] + 1) {
    // lines 13-15: the next value of our own history — adopt and forward to
    // everyone we believe knows exactly the first wsn-1 values (Rule R1).
    // Note w_sync[from] is still wsn-1 until line 18, so the sender is
    // among the recipients: that echo is what acknowledges the value.
    w_sync_[self_] = wsn;
    append_history(v);
    TBR_ENSURE(history_head() == wsn, "history head tracks w_sync[self]");
    for (ProcessId l = 0; l < cfg_.n; ++l) {
      // Channels mid-rejoin-handshake are mute in both roles. As the
      // rejoiner (channel_ready off): an echo before the peer's CHECKPOINT
      // arrives would alias as a fabricated higher index under the
      // two-bit parity encoding, because the peer's optimistic w_sync
      // entry assumes our WRITEs continue from its checkpoint. As the
      // server (wsync_confirmed off): a WRITE racing our CHECKPOINT would
      // be dropped by the rejoiner's gate with nobody retransmitting.
      if (!channel_ready_[l] || !wsync_confirmed_[l]) continue;
      if (w_sync_[l] == wsn - 1) send_write_frame(net, l, wsn);
    }
    // line 18: j has now sent us wsn WRITE frames.
    w_sync_[from] = wsn;
  } else {
    // Apply line 18 before line 16: neither line-16 predicate nor payload
    // depends on w_sync[from], and updating first keeps the send-side
    // ping-pong invariant (w_sync[to] = index-1 at every send) intact.
    w_sync_[from] = wsn;
    // After a channel restart the peer may have learned values through a
    // third party that this channel never carried, leaving the send counter
    // behind its position; realign so the alternating-bit discipline
    // resumes from the peer's actual prefix. Unreachable in faithful mode
    // (Lemma 5 keeps the counter at wsn or wsn+1 here).
    if (write_frames_sent_[from] < wsn) {
      TBR_ENSURE(acks_enabled() || options_.history_window > 0,
                 "send counter fell behind w_sync on a faithful channel");
      write_frames_sent_[from] = wsn;
    }
    if (wsn < w_sync_[self_]) {
      // line 16: the sender lags behind us — return its next value (Rule R2).
      if (history_has(wsn + 1)) {
        send_write_frame(net, from, wsn + 1);
      } else if (acks_enabled()) {
        // The value was superseded by our checkpoint. Under acked-prefix GC
        // that is only possible when the peer itself acknowledged it; after
        // a rejoin our adopted checkpoint may also skip past a laggard, in
        // which case a peer that retains the value serves the catch-up.
        // Either way, skipping the send loses no liveness.
        TBR_ENSURE(!options_.bounded_history ||
                       options_.recover_via_catchup ||
                       wsn + 1 <= acked_[from],
                   "GC reclaimed a value below the acked watermark");
        ++superseded_sends_;
        // Account the suppressed frame: the channel counter must stay
        // aligned with the ping-pong discipline or the next real WRITE to
        // this peer would look non-consecutive.
        write_frames_sent_[from] = std::max(write_frames_sent_[from], wsn + 1);
      } else {
        // Window ablation only: the needed value was evicted; the sender
        // can never be caught up by us. Faithful mode never gets here.
        TBR_ENSURE(options_.history_window > 0,
                   "evicted history without a window configured");
        ++skipped_catchups_;
      }
    }
    // (wsn == w_sync[self]: nothing to do beyond line 18.)
  }
}

// ---- READ() — Fig. 1 lines 19-21 -------------------------------------------

void TwoBitProcess::on_read(NetworkContext& net, ProcessId from) {
  // Ablation: answer immediately, ABD-style (drops the atomicity guarantee
  // the freshness wait provides — see TwoBitOptions::eager_proceed).
  if (options_.eager_proceed) {
    send_control_frame(net, from, TwoBitType::kProceed);
    return;
  }
  // line 19: freshness point = our newest value.
  const SeqNo sn = w_sync_[self_];
  // line 20: wait (w_sync[from] >= sn); line 21: send PROCEED. The wait is
  // on the prefix the reader provably stores — its channel counter or, in
  // bounded mode, its explicit ACK, whichever is larger.
  if (known(from) >= sn) {
    send_control_frame(net, from, TwoBitType::kProceed);
  } else {
    // Successive READs from one reader see monotonically non-decreasing
    // freshness points, so releasing the deque front-first is correct.
    TBR_ENSURE(parked_reads_[from].empty() ||
                   parked_reads_[from].back() <= sn,
               "freshness points must be monotone per reader");
    parked_reads_[from].push_back(sn);
  }
}

// ---- PROCEED() — Fig. 1 line 22 ---------------------------------------------

void TwoBitProcess::on_proceed(NetworkContext& net, ProcessId from) {
  r_sync_[from] += 1;
  after_state_change(net);
}

// ---- bounded-memory extension frames ----------------------------------------

void TwoBitProcess::on_ack(NetworkContext& net, ProcessId from, SeqNo upto) {
  acked_[from] = std::max(acked_[from], upto);
  // A rejoiner's ACK covering our optimistic entry proves the checkpoint
  // was adopted: the channel is trustworthy again. The peer never echoes
  // values it adopted rather than applied, so serve the catch-up here —
  // Rule R2's job on a channel that exchanged no WRITE frames since the
  // reset.
  if (!wsync_confirmed_[from] && acked_[from] >= w_sync_[from]) {
    wsync_confirmed_[from] = 1;
    if (acked_[from] > w_sync_[from]) {
      // The peer adopted a larger checkpoint than ours: resume the channel
      // from its actual prefix, capped at our own head — the entry tracks
      // the peer's prefix of OUR history (Lemma 3's row-max shape), and
      // known() covers the excess through acked_.
      const SeqNo resume = std::min(acked_[from], w_sync_[self_]);
      if (resume > w_sync_[from]) {
        w_sync_[from] = resume;
        write_frames_sent_[from] = resume;
      }
    }
    if (w_sync_[from] < w_sync_[self_] &&
        write_frames_sent_[from] == w_sync_[from] &&
        history_has(w_sync_[from] + 1)) {
      send_write_frame(net, from, w_sync_[from] + 1);
    }
  }
  maybe_gc();
  after_state_change(net);  // known(from) grew: waits may release
}

void TwoBitProcess::on_catchup(NetworkContext& net, ProcessId from) {
  // `from` rebooted with empty state. Everything we knew about the channel
  // — and everything still in flight on it — describes a dead incarnation.
  if (recovering_) return;  // we have nothing to serve yet ourselves
  ++checkpoints_served_;
  net.fence_peer(from);
  parked_write_[from].reset();
  parked_reads_[from].clear();
  deferred_reads_[from] = 0;
  acked_[from] = 0;
  wsync_confirmed_[from] = 0;
  channel_ready_[from] = 1;
  const SeqNo head = w_sync_[self_];
  // Channel restart: our next WRITE frame to `from` is head+1, and `from`
  // treats our checkpoint as the channel base, so both counters align.
  w_sync_[from] = head;
  write_frames_sent_[from] = head;
  // Reads: the rejoiner answers every READ we issue from now on. If one is
  // in flight it never saw, leave the stale counter — it merely excludes
  // the rejoiner from that one quorum.
  if (!pending_read_.has_value()) r_sync_[from] = r_sync_[self_];
  send_index_frame(net, from, TwoBitType::kCheckpoint, head);
  maybe_gc();  // known(from) collapsed to 0: watermark must not advance past it
}

void TwoBitProcess::on_checkpoint(NetworkContext& net, ProcessId from,
                                  SeqNo index, const Value& v) {
  TBR_ENSURE(options_.recover_via_catchup,
             "CHECKPOINT delivered to a process that never sent CATCHUP");
  // Receive-side channel restart, mirroring the server's reset: the
  // checkpoint index is the channel base and is genuine knowledge of the
  // server's prefix.
  if (!channel_ready_[from]) {
    channel_ready_[from] = 1;
    ++checkpoint_responses_;
  }
  parked_write_[from].reset();
  w_sync_[from] = index;
  wsync_confirmed_[from] = 1;
  write_frames_sent_[from] = index;

  if (index > w_sync_[self_]) {
    // Adopt: the largest checkpoint seen so far wins.
    log_.reset_to_checkpoint(index, v);
    w_sync_[self_] = index;
    ++checkpoints_adopted_;
    // A pending read whose freshness index predates the adopted checkpoint
    // lost its value: rerun lines 5-10 with a fresh rsn (still one client
    // operation; only the internal round restarts).
    if (pending_read_.has_value() &&
        pending_read_->stage == ReadStage::kAwaitWsync &&
        pending_read_->sn < log_.base()) {
      issue_read_round(net);
    }
  } else {
    // We already know more than this checkpoint: tell the server, whose
    // optimistic w_sync entry for us stays untrusted until this ACK lands.
    send_index_frame(net, from, TwoBitType::kAck, w_sync_[self_]);
  }

  if (recovering_ && checkpoint_responses_ >= cfg_.quorum()) {
    // Quorum reached: the adopted maximum dominates every prefix our old
    // incarnation can have acknowledged. Go live.
    recovering_ = false;
    last_ack_sent_ = w_sync_[self_];
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (j != self_) {
        send_index_frame(net, j, TwoBitType::kAck, last_ack_sent_);
      }
    }
    // Serve the READs parked during recovery at our restored freshness.
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      while (deferred_reads_[j] > 0) {
        --deferred_reads_[j];
        on_read(net, j);
      }
    }
    // Issue the client read deferred at start_read, if any.
    if (pending_read_.has_value() &&
        pending_read_->stage == ReadStage::kDeferred) {
      issue_read_round(net);
    }
  }
  after_state_change(net);
}

// ---- wait re-examination ----------------------------------------------------

void TwoBitProcess::after_state_change(NetworkContext& net) {
  // Completion callbacks may synchronously start the next operation (the
  // closed-loop drivers do), which re-enters this function; the outermost
  // call owns the fixpoint loop and nested calls are no-ops.
  if (in_after_state_change_) return;
  in_after_state_change_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    if (drain_parked_writes(net)) progress = true;
    if (drain_parked_reads(net)) progress = true;
    if (check_pending_ops(net)) progress = true;
  }
  maybe_send_acks(net);
  maybe_gc();
  in_after_state_change_ = false;
}

bool TwoBitProcess::drain_parked_writes(NetworkContext& net) {
  bool any = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcessId j = 0; j < cfg_.n; ++j) {
      if (!parked_write_[j].has_value()) continue;
      const auto expected =
          static_cast<std::uint8_t>((w_sync_[j] + 1) % 2);
      if (parked_write_[j]->parity != expected) continue;
      ParkedWrite pw = std::move(*parked_write_[j]);
      parked_write_[j].reset();
      process_write(net, j, pw.parity, pw.value);
      progress = true;
      any = true;
    }
  }
  return any;
}

bool TwoBitProcess::drain_parked_reads(NetworkContext& net) {
  bool any = false;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    auto& q = parked_reads_[j];
    while (!q.empty() && known(j) >= q.front()) {
      q.pop_front();
      send_control_frame(net, j, TwoBitType::kProceed);
      any = true;
    }
  }
  return any;
}

bool TwoBitProcess::check_pending_ops(NetworkContext& net) {
  (void)net;
  const auto quorum = cfg_.quorum();
  bool any = false;

  // line 3: z >= n-t processes j with w_sync[j] = wsn. (known(j) never
  // exceeds wsn here — Lemma 3 — so >= is the same count the paper takes.)
  if (pending_write_.has_value() &&
      count_known_ge(pending_write_->wsn) >= quorum) {
    WriteDone done = std::move(pending_write_->done);
    pending_write_.reset();
    end_operation();
    done();
    any = true;
  }

  if (pending_read_.has_value() &&
      pending_read_->stage == ReadStage::kAwaitProceeds &&
      count_rsync_eq(pending_read_->rsn) >= quorum) {
    // line 8: sn <- w_sync[i], captured the moment the quorum completes.
    pending_read_->sn = w_sync_[self_];
    if (options_.skip_read_second_wait) {
      // Ablation: return without line 9's quorum.
      const SeqNo sn = pending_read_->sn;
      ReadDone done = std::move(pending_read_->done);
      pending_read_.reset();
      end_operation();
      done(history_at(sn), sn);
      return true;
    }
    pending_read_->stage = ReadStage::kAwaitWsync;
    any = true;
  }
  if (pending_read_.has_value() &&
      pending_read_->stage == ReadStage::kAwaitWsync &&
      count_known_ge(pending_read_->sn) >= quorum) {
    // line 10: return history[sn].
    const SeqNo sn = pending_read_->sn;
    ReadDone done = std::move(pending_read_->done);
    pending_read_.reset();
    end_operation();
    done(history_at(sn), sn);
    any = true;
  }
  return any;
}

// ---- sending ---------------------------------------------------------------

void TwoBitProcess::send_write_frame(NetworkContext& net, ProcessId to,
                                     SeqNo index) {
  TBR_ENSURE(index >= 1 && history_has(index),
             "WRITE frame index must reference a retained value");
  if (options_.check_internal_invariants) {
    // Lemma 5 / alternating-bit send discipline: frames to each destination
    // go out in index order and only when our view of the destination is
    // index-1. (After a channel restart the counters resume from the
    // checkpoint index instead of 0; the discipline itself is unchanged.)
    TBR_INVARIANT(index == write_frames_sent_[to] + 1,
                  "WRITE frames to a peer must be consecutive");
    TBR_INVARIANT(w_sync_[to] == index - 1,
                  "ping-pong: send index only when w_sync[to] = index-1");
  }
  write_frames_sent_[to] = index;

  Message msg;
  msg.type = static_cast<std::uint8_t>(index % 2 == 0 ? TwoBitType::kWrite0
                                                      : TwoBitType::kWrite1);
  msg.has_value = true;
  msg.value = history_at(index);
  msg.wire = twobit_codec().account(msg);
  msg.debug_index = index;  // simulator-side diagnostics only; not on wire
  net.send(to, msg);
}

void TwoBitProcess::send_control_frame(NetworkContext& net, ProcessId to,
                                       TwoBitType type) {
  TBR_ENSURE(type == TwoBitType::kRead || type == TwoBitType::kProceed ||
                 type == TwoBitType::kCatchUp,
             "control frames are READ/PROCEED/CATCHUP");
  Message msg;
  msg.type = static_cast<std::uint8_t>(type);
  msg.wire = twobit_codec().account(msg);
  net.send(to, msg);
}

void TwoBitProcess::send_index_frame(NetworkContext& net, ProcessId to,
                                     TwoBitType type, SeqNo index) {
  TBR_ENSURE(type == TwoBitType::kAck || type == TwoBitType::kCheckpoint,
             "index frames are ACK/CHECKPOINT");
  Message msg;
  msg.type = static_cast<std::uint8_t>(type);
  msg.seq = index;
  if (type == TwoBitType::kCheckpoint) {
    msg.has_value = true;
    msg.value = history_at(index);
  }
  msg.wire = twobit_codec().account(msg);
  msg.debug_index = index;
  net.send(to, msg);
}

// ---- counting helpers (the paper's z computations) ---------------------------

std::uint32_t TwoBitProcess::count_known_ge(SeqNo v) const {
  std::uint32_t z = 0;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    if (wsync_confirmed_[j]) {
      TBR_INVARIANT(w_sync_[j] <= w_sync_[self_],
                    "Lemma 3: w_sync[self] dominates the row");
    }
    if (known(j) >= v) ++z;
  }
  return z;
}

std::uint32_t TwoBitProcess::count_rsync_eq(SeqNo v) const {
  std::uint32_t z = 0;
  for (ProcessId j = 0; j < cfg_.n; ++j) {
    TBR_INVARIANT(r_sync_[j] <= r_sync_[self_],
                  "no peer can answer more read requests than we issued");
    if (r_sync_[j] == v) ++z;
  }
  return z;
}

// ---- misc --------------------------------------------------------------------

void TwoBitProcess::on_crash() { crashed_ = true; }

TwoBitProcess::MemoryFootprint TwoBitProcess::memory_footprint() const {
  // Live protocol state, the quantity Table 1 line 4 compares. Faithful
  // mode makes it unbounded in the number of writes — the paper's stated
  // cost of eliminating on-wire sequence numbers; bounded mode keeps it
  // flat at O(window). History is accounted at its structural high-water
  // mark (slots allocated, active or recycled), which is what makes the
  // number a *stable* per-process bound rather than a fluctuating gauge.
  MemoryFootprint f;
  const auto& cp = log_.checkpoint_value();
  f.checkpoint_bytes = 16 + cp.size();  // (index, value) record
  f.history_bytes = log_.memory_bytes() - (8 + cp.size());
  f.sync_bytes = 8ull * (w_sync_.size() + r_sync_.size() + acked_.size());
  for (const auto& pw : parked_write_) {
    if (pw.has_value()) f.parked_bytes += 16 + pw->value.size();
  }
  for (const auto& q : parked_reads_) f.parked_bytes += 8ull * q.size();
  f.retained_entries = log_.size();
  f.total =
      f.history_bytes + f.checkpoint_bytes + f.sync_bytes + f.parked_bytes;
  return f;
}

std::uint64_t TwoBitProcess::local_memory_bytes() const {
  return memory_footprint().total;
}

std::vector<Value> TwoBitProcess::history() const {
  std::vector<Value> out;
  out.reserve(log_.size());
  for (SeqNo idx = log_.base(); idx <= log_.head(); ++idx) {
    out.push_back(log_.at(idx));
  }
  return out;
}

SeqNo TwoBitProcess::wsync(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return w_sync_[j];
}

SeqNo TwoBitProcess::rsync(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return r_sync_[j];
}

SeqNo TwoBitProcess::acked(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return acked_[j];
}

SeqNo TwoBitProcess::write_frames_sent_to(ProcessId j) const {
  TBR_ENSURE(j < cfg_.n, "pid out of range");
  return write_frames_sent_[j];
}

bool TwoBitProcess::has_parked_write(ProcessId from) const {
  TBR_ENSURE(from < cfg_.n, "pid out of range");
  return parked_write_[from].has_value();
}

std::size_t TwoBitProcess::parked_read_count() const {
  std::size_t count = 0;
  for (const auto& q : parked_reads_) count += q.size();
  return count;
}

std::unique_ptr<RegisterProcessBase> make_twobit_process(GroupConfig cfg,
                                                         ProcessId self) {
  return std::make_unique<TwoBitProcess>(std::move(cfg), self);
}

}  // namespace tbr
