// BoundedHistoryLog: history ownership for the two-bit protocol, factored
// out of TwoBitProcess so bounded memory is a subsystem rather than an
// ablation hack.
//
// The log stores the contiguous index range [base, head] of the writer's
// history. Entry `base` is the *checkpoint record*: a (index, value) pair
// that supersedes the whole prefix history[0..base]. Faithful mode never
// moves the base, reproducing the paper's unbounded history. Bounded mode
// advances the base to the acked-prefix watermark (the minimum index every
// peer provably stores), reclaiming superseded entries; crash-rejoin resets
// the whole log to a checkpoint received from a peer.
//
// Storage is a ring of fixed-size segments. Retired segments go to a
// freelist and are recycled on append, so steady-state bounded operation
// performs zero allocations once the ring and each Value's capacity have
// warmed up (the property the alloc gates assert). The structural bytes
// (slots ever allocated) are a high-water mark: they grow to the workload's
// maximum retained window and then stay flat, which is what makes
// memory_bytes() a *stable* per-process bound.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "common/value.hpp"

namespace tbr {

class BoundedHistoryLog {
 public:
  /// Values per segment. Small enough that a handful of segments cover the
  /// usual GC windows, large enough to amortise segment rotation.
  static constexpr std::size_t kSegmentSlots = 16;

  /// The log starts as the genesis checkpoint: index 0 = `initial`.
  explicit BoundedHistoryLog(Value initial);

  // ---- the retained range --------------------------------------------------
  SeqNo base() const noexcept { return base_; }   // checkpoint index
  SeqNo head() const noexcept { return head_; }
  /// Retained entries, checkpoint included: head - base + 1.
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(head_ - base_ + 1);
  }
  bool has(SeqNo idx) const noexcept { return idx >= base_ && idx <= head_; }
  const Value& at(SeqNo idx) const;
  const Value& checkpoint_value() const { return at(base_); }

  // ---- mutation ------------------------------------------------------------
  /// history[head+1] <- v.
  void append(const Value& v);
  void append(Value&& v);

  /// Advance the checkpoint to `to` (base <= to <= head): entries below `to`
  /// are superseded by the new checkpoint record and their segments are
  /// recycled. Returns the number of entries reclaimed.
  std::uint64_t advance_checkpoint(SeqNo to);

  /// Drop exactly the oldest entry (the lossy window ablation's eviction).
  /// Mechanically advance_checkpoint(base+1); the *caller* decides whether
  /// the drop was safe.
  void evict_front() { (void)advance_checkpoint(base_ + 1); }

  /// Crash-rejoin: discard everything and become the checkpoint (idx, v)
  /// received from a peer. base == head == idx afterwards.
  void reset_to_checkpoint(SeqNo idx, const Value& v);

  // ---- accounting ----------------------------------------------------------
  /// Bytes of retained payloads (checkpoint included).
  std::uint64_t payload_bytes() const noexcept { return payload_bytes_; }
  /// Stable structural + live bound: retained entry overhead, retained
  /// payloads, and every slot ever allocated (active or recycled).
  std::uint64_t memory_bytes() const noexcept {
    return payload_bytes_ + 8ull * size() +
           8ull * kSegmentSlots * allocated_segments_;
  }
  /// Segments currently allocated (active + freelist). Flat in steady state.
  std::size_t allocated_segments() const noexcept {
    return allocated_segments_;
  }

 private:
  struct Segment {
    std::vector<Value> slots;
    Segment() : slots(kSegmentSlots) {}
  };

  static SeqNo seg_no(SeqNo idx) noexcept {
    return idx / static_cast<SeqNo>(kSegmentSlots);
  }
  Segment& segment(SeqNo idx);
  const Segment& segment(SeqNo idx) const;
  Value& slot(SeqNo idx);
  /// Make sure the segment holding `idx` exists (idx == head_+1 only).
  void ensure_segment_for(SeqNo idx);
  void grow_ring();
  void recycle_segment(SeqNo seg);

  // Ring of segment pointers; segment s lives at ring_[s & mask_]. The
  // active segments [seg_no(base_), seg_no(head_)] are contiguous, so the
  // ring never holds two live segments in one slot as long as it is big
  // enough (grow_ring doubles it when it is not).
  std::vector<std::unique_ptr<Segment>> ring_;
  std::size_t mask_ = 0;
  std::vector<std::unique_ptr<Segment>> freelist_;
  std::size_t allocated_segments_ = 0;

  SeqNo base_ = 0;
  SeqNo head_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

}  // namespace tbr
