#include "core/history_log.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace tbr {

BoundedHistoryLog::BoundedHistoryLog(Value initial) {
  ring_.resize(2);
  mask_ = ring_.size() - 1;
  ensure_segment_for(0);
  slot(0) = std::move(initial);
  payload_bytes_ = slot(0).size();
}

BoundedHistoryLog::Segment& BoundedHistoryLog::segment(SeqNo idx) {
  auto& seg = ring_[static_cast<std::size_t>(seg_no(idx)) & mask_];
  TBR_ENSURE(seg != nullptr, "history segment missing for retained index");
  return *seg;
}

const BoundedHistoryLog::Segment& BoundedHistoryLog::segment(
    SeqNo idx) const {
  const auto& seg = ring_[static_cast<std::size_t>(seg_no(idx)) & mask_];
  TBR_ENSURE(seg != nullptr, "history segment missing for retained index");
  return *seg;
}

Value& BoundedHistoryLog::slot(SeqNo idx) {
  return segment(idx).slots[static_cast<std::size_t>(idx) % kSegmentSlots];
}

const Value& BoundedHistoryLog::at(SeqNo idx) const {
  TBR_ENSURE(has(idx), "history index superseded or out of range");
  return segment(idx).slots[static_cast<std::size_t>(idx) % kSegmentSlots];
}

void BoundedHistoryLog::grow_ring() {
  std::vector<std::unique_ptr<Segment>> next(ring_.size() * 2);
  const std::size_t next_mask = next.size() - 1;
  for (SeqNo s = seg_no(base_); s <= seg_no(head_); ++s) {
    next[static_cast<std::size_t>(s) & next_mask] =
        std::move(ring_[static_cast<std::size_t>(s) & mask_]);
  }
  ring_ = std::move(next);
  mask_ = next_mask;
}

void BoundedHistoryLog::ensure_segment_for(SeqNo idx) {
  const SeqNo s = seg_no(idx);
  // Contiguity check: does the ring have room for one more segment?
  if (allocated_segments_ > 0 && s > seg_no(head_)) {
    const SeqNo active = seg_no(head_) - seg_no(base_) + 1;
    if (static_cast<std::size_t>(active) + 1 > ring_.size()) grow_ring();
  }
  auto& cell = ring_[static_cast<std::size_t>(s) & mask_];
  if (cell != nullptr) return;  // idx extends the segment already in place
  if (!freelist_.empty()) {
    cell = std::move(freelist_.back());
    freelist_.pop_back();
  } else {
    cell = std::make_unique<Segment>();
    ++allocated_segments_;
  }
}

void BoundedHistoryLog::recycle_segment(SeqNo seg) {
  auto& cell = ring_[static_cast<std::size_t>(seg) & mask_];
  TBR_ENSURE(cell != nullptr, "recycling an absent segment");
  freelist_.push_back(std::move(cell));
}

void BoundedHistoryLog::append(const Value& v) {
  const SeqNo idx = head_ + 1;
  ensure_segment_for(idx);
  head_ = idx;
  Value& s = slot(idx);
  s = v;  // copy-assign: reuses the recycled slot's capacity
  payload_bytes_ += s.size();
}

void BoundedHistoryLog::append(Value&& v) {
  const SeqNo idx = head_ + 1;
  ensure_segment_for(idx);
  head_ = idx;
  Value& s = slot(idx);
  s = std::move(v);
  payload_bytes_ += s.size();
}

std::uint64_t BoundedHistoryLog::advance_checkpoint(SeqNo to) {
  TBR_ENSURE(to >= base_ && to <= head_,
             "checkpoint must advance within the retained range");
  const std::uint64_t reclaimed = static_cast<std::uint64_t>(to - base_);
  for (SeqNo idx = base_; idx < to; ++idx) {
    payload_bytes_ -= at(idx).size();
    // Leaving the last slot of a segment: the whole segment is superseded.
    if (static_cast<std::size_t>(idx) % kSegmentSlots == kSegmentSlots - 1) {
      recycle_segment(seg_no(idx));
    }
  }
  base_ = to;
  return reclaimed;
}

void BoundedHistoryLog::reset_to_checkpoint(SeqNo idx, const Value& v) {
  TBR_ENSURE(idx >= 0, "checkpoint index must be a history index");
  for (SeqNo s = seg_no(base_); s <= seg_no(head_); ++s) recycle_segment(s);
  base_ = head_ = idx;
  ensure_segment_for(idx);
  Value& s = slot(idx);
  s = v;
  payload_bytes_ = s.size();
}

}  // namespace tbr
