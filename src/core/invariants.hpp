// Executable versions of the paper's lemmas, run against the global state
// of a simulated execution after every event.
//
//   Lemma 1    every w_sync cell moves in steps of exactly +1
//   Lemma 2    w_sync_i[i] >= w_sync_j[i] for all i, j
//   Lemma 3    w_sync_i[i] = max_j w_sync_i[j]
//   Lemma 4    every local history is a prefix of the writer's history
//   Lemma 5    R1/R2 relate frames-sent counters to w_sync views
//   Property P1 at most two WRITE frames in flight per channel, with
//              consecutive indices (hence distinct parity bits)
//   Property P2 |w_sync_i[j] - w_sync_j[i]| <= 1
//
// Violations throw ContractViolation, failing the enclosing test.
#pragma once

#include <vector>

#include "core/twobit_process.hpp"
#include "sim/sim_network.hpp"

namespace tbr {

class TwoBitInvariantObserver {
 public:
  explicit TwoBitInvariantObserver(GroupConfig cfg);

  /// Install as `net.set_post_event_hook(std::ref(observer))`.
  void operator()(SimNetwork& net);

  std::uint64_t checks_run() const noexcept { return checks_run_; }

 private:
  void check_lemma1_steps(const std::vector<const TwoBitProcess*>& ps);
  void check_lemmas_2_3(const std::vector<const TwoBitProcess*>& ps);
  void check_lemma4_prefix(const std::vector<const TwoBitProcess*>& ps);
  void check_lemma5_counters(const std::vector<const TwoBitProcess*>& ps);
  void check_p1_channels(SimNetwork& net,
                         const std::vector<const TwoBitProcess*>& ps);
  void check_p2_pairwise(const std::vector<const TwoBitProcess*>& ps);

  GroupConfig cfg_;
  std::vector<std::vector<SeqNo>> prev_wsync_;  // Lemma-1 step tracking
  bool has_prev_ = false;
  std::uint64_t checks_run_ = 0;
};

}  // namespace tbr
