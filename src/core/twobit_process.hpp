// TwoBitProcess: the paper's Figure 1, one process's worth.
//
// Line-by-line mapping (paper line -> code):
//   init            constructor
//   write  1-4      start_write / pending-write completion in check_pending_ops
//   read   5-10     start_read  / two-stage completion in check_pending_ops
//   WRITE  11-18    on_write (line 11's wait = per-sender parking slot)
//   READ   19-21    on_read  (line 20's wait = per-reader parked (sn) queue)
//   PROCEED 22      on_proceed
//
// The paper's `wait` statements never block the process: the waited-on work
// is parked and re-examined after every state change (after_state_change).
//
// History lives in a BoundedHistoryLog (core/history_log.hpp). Faithful mode
// never moves its base, reproducing the paper's unbounded history. The
// bounded-memory extension (opt-in) adds:
//   - ACK frames: every ack_interval applied values a process tells its
//     peers the prefix it stores, feeding acked_[j];
//   - known(j) = the prefix j provably stores; min over j (clamped by a
//     pending read's freshness index) is the GC watermark the checkpoint
//     advances to, reclaiming superseded entries;
//   - Rule-R2 catch-ups whose value was reclaimed are *skipped*, soundly:
//     the watermark guarantees the peer already acked that prefix;
//   - crash-rejoin (recover_via_catchup): a restarted process broadcasts
//     CATCHUP, peers reset their channel to it and answer CHECKPOINT
//     (head index + value); the rejoiner adopts the largest checkpoint it
//     receives and resumes from there instead of replaying from genesis.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/history_log.hpp"
#include "core/twobit_codec.hpp"
#include "net/register_process.hpp"

namespace tbr {

struct TwoBitOptions {
  /// Executable Lemma-5 / ping-pong checks on every send (cheap; the
  /// property suite runs with them on).
  bool check_internal_invariants = true;

  /// 0 = faithful algorithm (unbounded history, as the paper requires).
  /// m >= 1 retains only the last m history entries — the ablation for the
  /// paper's concluding open problem ("can local memory be bounded?").
  /// Rule R2 catch-ups that would need an evicted value are skipped, so
  /// safety is preserved but a process lagging more than m values behind
  /// stalls forever: Lemma 9's liveness fails exactly where the authors
  /// conjecture it must. Never enable in production use.
  std::size_t history_window = 0;

  /// Bounded history done right: acked-prefix GC. Processes gossip ACK
  /// frames and advance their checkpoint to the minimum prefix every peer
  /// provably stores, so resident history is O(lag), liveness is untouched
  /// (nobody ever needs a reclaimed value), and memory stays flat for
  /// arbitrarily long workloads. Mutually exclusive with history_window.
  bool bounded_history = false;

  /// Broadcast an ACK every this-many applied values (bounded mode and
  /// rejoined processes). Smaller = tighter GC, more control traffic.
  SeqNo ack_interval = 8;

  /// Crash-rejoin: this process is a fresh incarnation of a crashed one.
  /// On start it broadcasts CATCHUP and bootstraps from the largest peer
  /// CHECKPOINT instead of genesis. Client operations issued before the
  /// first checkpoint arrives are deferred, not refused. The single writer
  /// must not rejoin this way (needs a write-quorum handshake we don't
  /// implement); asserted in the constructor.
  bool recover_via_catchup = false;

  /// ABLATION: drop Fig. 1 line 9 (the read's second quorum wait). Claim 2
  /// survives (its proof only needs lines 7/20 + Lemma 2) but Claim 3 loses
  /// its quorum Q_ri: new/old inversions (C3) become possible. Never enable
  /// in production use.
  bool skip_read_second_wait = false;

  /// ABLATION: drop Fig. 1 line 20 (the responder's freshness wait) and
  /// PROCEED immediately, as an ABD-style "answer by return" would
  /// (footnote 3 of the paper). Readers can then return values older than a
  /// completed write: stale reads (C2). Never enable in production use.
  bool eager_proceed = false;
};

class TwoBitProcess final : public RegisterProcessBase {
 public:
  TwoBitProcess(GroupConfig cfg, ProcessId self,
                TwoBitOptions options = TwoBitOptions());

  // ---- RegisterProcessBase -----------------------------------------------
  void on_start(NetworkContext& net) override;
  void start_write(NetworkContext& net, Value v, WriteDone done) override;
  void start_read(NetworkContext& net, ReadDone done) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;
  std::uint64_t local_memory_bytes() const override;
  const Codec& codec() const override { return twobit_codec(); }

  /// Itemised live state, the quantity Table 1 line 4 compares (and the
  /// quantity the bounded mode keeps flat). total == local_memory_bytes().
  struct MemoryFootprint {
    std::uint64_t history_bytes = 0;     // retained entries + payloads
    std::uint64_t checkpoint_bytes = 0;  // the checkpoint record itself
    std::uint64_t sync_bytes = 0;        // w_sync / r_sync / acked rows
    std::uint64_t parked_bytes = 0;      // parked writes/reads
    std::uint64_t total = 0;
    std::size_t retained_entries = 0;    // history entries currently resident
  };
  MemoryFootprint memory_footprint() const;

  // ---- introspection (invariant observers, tests, benches) ----------------
  /// w_sync_i[j]: to this process's knowledge, j knows history[0..w_sync(j)].
  SeqNo wsync(ProcessId j) const;
  /// r_sync_i[j]: how many of our READ requests j has answered.
  SeqNo rsync(ProcessId j) const;
  /// acked_i[j]: largest prefix j has explicitly ACKed (bounded mode).
  SeqNo acked(ProcessId j) const;
  /// The prefix j provably stores: max(w_sync[j], acked[j]) on a confirmed
  /// channel, acked[j] alone on a channel reset by a rejoin and not yet
  /// re-confirmed by traffic from j.
  SeqNo known(ProcessId j) const;
  /// Copy of the retained history entries; element k is history index
  /// history_base() + k. With history_window = 0 and bounded_history off
  /// (the algorithm as published) the base is always 0 and this is the
  /// full prefix.
  std::vector<Value> history() const;
  /// Smallest retained history index == the checkpoint index (0 unless a
  /// window evicted or the GC advanced the checkpoint).
  SeqNo history_base() const noexcept { return log_.base(); }
  /// Number of entries dropped by the window ablation (0 when faithful).
  std::uint64_t evicted_count() const noexcept { return evicted_; }
  /// Number of entries reclaimed by acked-prefix GC (bounded mode).
  std::uint64_t gc_reclaimed_count() const noexcept { return gc_reclaimed_; }
  /// Number of Rule-R2 catch-ups skipped because the value was evicted.
  std::uint64_t skipped_catchups() const noexcept { return skipped_catchups_; }
  /// Number of Rule-R2 catch-ups skipped because the peer had already acked
  /// the value (bounded mode; these are *not* liveness losses).
  std::uint64_t superseded_sends() const noexcept { return superseded_sends_; }
  std::uint64_t checkpoints_served() const noexcept {
    return checkpoints_served_;
  }
  std::uint64_t checkpoints_adopted() const noexcept {
    return checkpoints_adopted_;
  }
  /// Number of WRITE frames this process has sent to j (Lemma 5's counter).
  SeqNo write_frames_sent_to(ProcessId j) const;
  bool has_parked_write(ProcessId from) const;
  std::size_t parked_read_count() const;
  bool crashed() const noexcept { return crashed_; }
  /// True when acked-prefix GC is on (invariant observers relax the exact
  /// Lemma-5 frame counts: a superseded catch-up is skipped, not sent).
  bool bounded_mode() const noexcept { return options_.bounded_history; }
  /// True for a recover_via_catchup incarnation (invariant observers relax
  /// cross-process lemmas for channels touching a rejoined process).
  bool has_recovered() const noexcept { return options_.recover_via_catchup; }
  /// True while a rejoiner is still waiting for its first checkpoint.
  bool recovering() const noexcept { return recovering_; }

 private:
  struct ParkedWrite {
    std::uint8_t parity = 0;
    Value value;
  };
  struct PendingWrite {
    SeqNo wsn = 0;
    WriteDone done;
  };
  enum class ReadStage { kDeferred, kAwaitProceeds, kAwaitWsync };
  struct PendingRead {
    SeqNo rsn = 0;
    ReadStage stage = ReadStage::kAwaitProceeds;
    SeqNo sn = -1;  // captured at line 8 when stage 1 completes
    ReadDone done;
  };

  // Fig. 1 handlers.
  void on_write(NetworkContext& net, ProcessId from, std::uint8_t parity,
                const Value& v);
  void process_write(NetworkContext& net, ProcessId from, std::uint8_t parity,
                     const Value& v);  // lines 12-18
  void on_read(NetworkContext& net, ProcessId from);     // lines 19-21
  void on_proceed(NetworkContext& net, ProcessId from);  // line 22

  // Bounded-memory extension handlers.
  void on_ack(NetworkContext& net, ProcessId from, SeqNo upto);
  void on_catchup(NetworkContext& net, ProcessId from);
  void on_checkpoint(NetworkContext& net, ProcessId from, SeqNo index,
                     const Value& v);
  void issue_read_round(NetworkContext& net);  // lines 5-6 send phase
  void maybe_send_acks(NetworkContext& net);
  void maybe_gc();
  bool acks_enabled() const {
    return options_.bounded_history || options_.recover_via_catchup;
  }

  /// Re-examine everything the paper `wait`s on. Runs to fixpoint.
  void after_state_change(NetworkContext& net);
  bool drain_parked_writes(NetworkContext& net);
  bool drain_parked_reads(NetworkContext& net);
  bool check_pending_ops(NetworkContext& net);

  void send_write_frame(NetworkContext& net, ProcessId to, SeqNo index);
  void send_control_frame(NetworkContext& net, ProcessId to, TwoBitType type);
  void send_index_frame(NetworkContext& net, ProcessId to, TwoBitType type,
                        SeqNo index);
  std::uint32_t count_known_ge(SeqNo v) const;
  std::uint32_t count_rsync_eq(SeqNo v) const;

  /// history_i[idx] for retained idx; appends evict under the window option.
  void append_history(Value v);
  const Value& history_at(SeqNo idx) const;
  bool history_has(SeqNo idx) const;
  SeqNo history_head() const;  // == w_sync_[self_]

  TwoBitOptions options_;

  // Fig. 1 local state. The log retains indices [base, head]; the base
  // stays 0 unless the window ablation evicts or bounded-mode GC advances
  // the checkpoint.
  BoundedHistoryLog log_;
  std::uint64_t evicted_ = 0;
  std::uint64_t gc_reclaimed_ = 0;
  std::uint64_t skipped_catchups_ = 0;
  std::uint64_t superseded_sends_ = 0;
  std::uint64_t checkpoints_served_ = 0;
  std::uint64_t checkpoints_adopted_ = 0;
  std::vector<SeqNo> w_sync_;    // w_sync_i[1..n] (0-based here)
  std::vector<SeqNo> r_sync_;    // r_sync_i[1..n]

  // Bounded-memory extension state.
  std::vector<SeqNo> acked_;            // largest prefix j explicitly ACKed
  std::vector<std::uint8_t> wsync_confirmed_;  // channel trust (see known())
  std::vector<std::uint8_t> channel_ready_;    // rejoin: checkpoint received
  std::vector<std::uint32_t> deferred_reads_;  // READs parked while recovering
  bool recovering_ = false;
  std::uint32_t checkpoint_responses_ = 0;  // distinct peers that answered
  SeqNo last_ack_sent_ = 0;

  // `wait` translations.
  std::vector<std::optional<ParkedWrite>> parked_write_;  // line 11, per sender
  std::vector<std::deque<SeqNo>> parked_reads_;           // line 20, per reader
  std::optional<PendingWrite> pending_write_;             // line 3
  std::optional<PendingRead> pending_read_;               // lines 7/9

  // Diagnostics (not part of the algorithm).
  std::vector<SeqNo> write_frames_sent_;  // per destination
  bool crashed_ = false;
  bool in_after_state_change_ = false;
};

/// Factory with the RegisterProcessBase signature used by group builders.
std::unique_ptr<RegisterProcessBase> make_twobit_process(GroupConfig cfg,
                                                         ProcessId self);

}  // namespace tbr
