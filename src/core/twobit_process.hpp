// TwoBitProcess: the paper's Figure 1, one process's worth.
//
// Line-by-line mapping (paper line -> code):
//   init            constructor
//   write  1-4      start_write / pending-write completion in check_pending_ops
//   read   5-10     start_read  / two-stage completion in check_pending_ops
//   WRITE  11-18    on_write (line 11's wait = per-sender parking slot)
//   READ   19-21    on_read  (line 20's wait = per-reader parked (sn) queue)
//   PROCEED 22      on_proceed
//
// The paper's `wait` statements never block the process: the waited-on work
// is parked and re-examined after every state change (after_state_change).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/twobit_codec.hpp"
#include "net/register_process.hpp"

namespace tbr {

struct TwoBitOptions {
  /// Executable Lemma-5 / ping-pong checks on every send (cheap; the
  /// property suite runs with them on).
  bool check_internal_invariants = true;

  /// 0 = faithful algorithm (unbounded history, as the paper requires).
  /// m >= 1 retains only the last m history entries — the ablation for the
  /// paper's concluding open problem ("can local memory be bounded?").
  /// Rule R2 catch-ups that would need an evicted value are skipped, so
  /// safety is preserved but a process lagging more than m values behind
  /// stalls forever: Lemma 9's liveness fails exactly where the authors
  /// conjecture it must. Never enable in production use.
  std::size_t history_window = 0;

  /// ABLATION: drop Fig. 1 line 9 (the read's second quorum wait). Claim 2
  /// survives (its proof only needs lines 7/20 + Lemma 2) but Claim 3 loses
  /// its quorum Q_ri: new/old inversions (C3) become possible. Never enable
  /// in production use.
  bool skip_read_second_wait = false;

  /// ABLATION: drop Fig. 1 line 20 (the responder's freshness wait) and
  /// PROCEED immediately, as an ABD-style "answer by return" would
  /// (footnote 3 of the paper). Readers can then return values older than a
  /// completed write: stale reads (C2). Never enable in production use.
  bool eager_proceed = false;
};

class TwoBitProcess final : public RegisterProcessBase {
 public:
  TwoBitProcess(GroupConfig cfg, ProcessId self,
                TwoBitOptions options = TwoBitOptions());

  // ---- RegisterProcessBase -----------------------------------------------
  void start_write(NetworkContext& net, Value v, WriteDone done) override;
  void start_read(NetworkContext& net, ReadDone done) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;
  std::uint64_t local_memory_bytes() const override;
  const Codec& codec() const override { return twobit_codec(); }

  // ---- introspection (invariant observers, tests, benches) ----------------
  /// w_sync_i[j]: to this process's knowledge, j knows history[0..w_sync(j)].
  SeqNo wsync(ProcessId j) const;
  /// r_sync_i[j]: how many of our READ requests j has answered.
  SeqNo rsync(ProcessId j) const;
  /// Copy of the retained history entries; element k is history index
  /// history_base() + k. With history_window = 0 (the algorithm as
  /// published) the base is always 0 and this is the full prefix.
  std::vector<Value> history() const;
  /// Smallest retained history index (0 unless a window evicted entries).
  SeqNo history_base() const noexcept { return history_base_; }
  /// Number of entries dropped by the window ablation (0 when faithful).
  std::uint64_t evicted_count() const noexcept { return evicted_; }
  /// Number of Rule-R2 catch-ups skipped because the value was evicted.
  std::uint64_t skipped_catchups() const noexcept { return skipped_catchups_; }
  /// Number of WRITE frames this process has sent to j (Lemma 5's counter).
  SeqNo write_frames_sent_to(ProcessId j) const;
  bool has_parked_write(ProcessId from) const;
  std::size_t parked_read_count() const;
  bool crashed() const noexcept { return crashed_; }

 private:
  struct ParkedWrite {
    std::uint8_t parity = 0;
    Value value;
  };
  struct PendingWrite {
    SeqNo wsn = 0;
    WriteDone done;
  };
  enum class ReadStage { kAwaitProceeds, kAwaitWsync };
  struct PendingRead {
    SeqNo rsn = 0;
    ReadStage stage = ReadStage::kAwaitProceeds;
    SeqNo sn = -1;  // captured at line 8 when stage 1 completes
    ReadDone done;
  };

  // Fig. 1 handlers.
  void on_write(NetworkContext& net, ProcessId from, std::uint8_t parity,
                const Value& v);
  void process_write(NetworkContext& net, ProcessId from, std::uint8_t parity,
                     const Value& v);  // lines 12-18
  void on_read(NetworkContext& net, ProcessId from);     // lines 19-21
  void on_proceed(NetworkContext& net, ProcessId from);  // line 22

  /// Re-examine everything the paper `wait`s on. Runs to fixpoint.
  void after_state_change(NetworkContext& net);
  bool drain_parked_writes(NetworkContext& net);
  bool drain_parked_reads(NetworkContext& net);
  bool check_pending_ops(NetworkContext& net);

  void send_write_frame(NetworkContext& net, ProcessId to, SeqNo index);
  void send_control_frame(NetworkContext& net, ProcessId to, TwoBitType type);
  std::uint32_t count_wsync_eq(SeqNo v) const;
  std::uint32_t count_wsync_ge(SeqNo v) const;
  std::uint32_t count_rsync_eq(SeqNo v) const;

  /// history_i[idx] for retained idx; appends evict under the window option.
  void append_history(Value v);
  const Value& history_at(SeqNo idx) const;
  bool history_has(SeqNo idx) const;
  SeqNo history_head() const;  // == w_sync_[self_]

  TwoBitOptions options_;

  // Fig. 1 local state. The deque holds indices
  // [history_base_, history_base_ + size); base stays 0 unless the
  // window ablation evicts.
  std::deque<Value> history_;
  SeqNo history_base_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t skipped_catchups_ = 0;
  std::vector<SeqNo> w_sync_;    // w_sync_i[1..n] (0-based here)
  std::vector<SeqNo> r_sync_;    // r_sync_i[1..n]

  // `wait` translations.
  std::vector<std::optional<ParkedWrite>> parked_write_;  // line 11, per sender
  std::vector<std::deque<SeqNo>> parked_reads_;           // line 20, per reader
  std::optional<PendingWrite> pending_write_;             // line 3
  std::optional<PendingRead> pending_read_;               // lines 7/9

  // Diagnostics (not part of the algorithm).
  std::vector<SeqNo> write_frames_sent_;  // per destination
  bool crashed_ = false;
  bool in_after_state_change_ = false;
};

/// Factory with the RegisterProcessBase signature used by group builders.
std::unique_ptr<RegisterProcessBase> make_twobit_process(GroupConfig cfg,
                                                         ProcessId self);

}  // namespace tbr
