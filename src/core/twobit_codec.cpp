#include "core/twobit_codec.hpp"

#include "common/contracts.hpp"

namespace tbr {

namespace {
bool is_write_type(std::uint8_t type) {
  return type == static_cast<std::uint8_t>(TwoBitType::kWrite0) ||
         type == static_cast<std::uint8_t>(TwoBitType::kWrite1);
}
bool carries_index(std::uint8_t type) {
  return type == static_cast<std::uint8_t>(TwoBitType::kAck) ||
         type == static_cast<std::uint8_t>(TwoBitType::kCheckpoint);
}
}  // namespace

void TwoBitCodec::encode_into(const Message& msg, std::string& out) const {
  TBR_ENSURE(msg.type <= 6, "bad two-bit frame type");
  TBR_ENSURE(msg.aux == 0, "two-bit frames carry no aux field");
  out.clear();
  out.push_back(static_cast<char>(msg.type));  // 2 meaningful bits
  if (is_write_type(msg.type)) {
    TBR_ENSURE(msg.seq == 0,
               "two-bit frames carry no sequence numbers — that is the point");
    TBR_ENSURE(msg.has_value, "WRITE frames carry the written value");
    wire::put_u32(out, static_cast<std::uint32_t>(msg.value.size()));
    out.append(msg.value.bytes());
    return;
  }
  if (carries_index(msg.type)) {
    wire::put_u64(out, static_cast<std::uint64_t>(msg.seq));
    if (msg.type == static_cast<std::uint8_t>(TwoBitType::kCheckpoint)) {
      TBR_ENSURE(msg.has_value, "CHECKPOINT frames carry the checkpoint value");
      wire::put_u32(out, static_cast<std::uint32_t>(msg.value.size()));
      out.append(msg.value.bytes());
    } else {
      TBR_ENSURE(!msg.has_value, "ACK frames carry no value");
    }
    return;
  }
  // READ / PROCEED / CATCHUP: bare type byte.
  TBR_ENSURE(msg.seq == 0,
             "two-bit frames carry no sequence numbers — that is the point");
  TBR_ENSURE(!msg.has_value, "READ/PROCEED/CATCHUP frames carry no value");
}

void TwoBitCodec::decode_into(std::string_view bytes, Message& msg) const {
  wire::reset_for_decode(msg);
  std::size_t pos = 0;
  msg.type = wire::get_u8(bytes, pos);
  TBR_ENSURE(msg.type <= 6, "bad two-bit frame type");
  if (is_write_type(msg.type)) {
    const auto len = wire::get_u32(bytes, pos);
    wire::get_blob_into(bytes, pos, len, msg.value.mutable_bytes());
    msg.has_value = true;
  } else if (carries_index(msg.type)) {
    msg.seq = static_cast<SeqNo>(wire::get_u64(bytes, pos));
    if (msg.type == static_cast<std::uint8_t>(TwoBitType::kCheckpoint)) {
      const auto len = wire::get_u32(bytes, pos);
      wire::get_blob_into(bytes, pos, len, msg.value.mutable_bytes());
      msg.has_value = true;
    }
  }
  TBR_ENSURE(pos == bytes.size(), "trailing bytes in two-bit frame");
  msg.wire = account(msg);
}

WireAccounting TwoBitCodec::account(const Message& msg) const {
  WireAccounting wire;
  wire.control_bits = kControlBitsPerMessage;
  if (carries_index(msg.type)) wire.control_bits += kIndexBits;
  wire.data_bits = msg.has_value ? 32 + msg.value.size_bits() : 0;
  return wire;
}

std::string TwoBitCodec::type_name(std::uint8_t type) const {
  switch (static_cast<TwoBitType>(type)) {
    case TwoBitType::kWrite0:
      return "WRITE0";
    case TwoBitType::kWrite1:
      return "WRITE1";
    case TwoBitType::kRead:
      return "READ";
    case TwoBitType::kProceed:
      return "PROCEED";
    case TwoBitType::kAck:
      return "ACK";
    case TwoBitType::kCheckpoint:
      return "CHECKPOINT";
    case TwoBitType::kCatchUp:
      return "CATCHUP";
  }
  return "UNKNOWN(" + std::to_string(type) + ")";
}

const TwoBitCodec& twobit_codec() {
  static const TwoBitCodec codec;
  return codec;
}

}  // namespace tbr
