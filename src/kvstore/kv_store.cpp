#include "kvstore/kv_store.hpp"

#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "kvstore/shard_router.hpp"

namespace tbr {

namespace {
constexpr Status kHomeCrashed{StatusCode::kCrashed,
                              "the key's home node has crashed"};
constexpr Status kReaderCrashed{StatusCode::kCrashed,
                                "the requested replica has crashed"};
constexpr Status kStoreLiveness{
    StatusCode::kLivenessLost,
    "kv store lost liveness; operations are refused"};
}  // namespace

// ---- ClientImpl: the unified client API over the flat (sim) store ------------
//
// Deferred-issue engine: submissions queue client-side; the first wait()
// flushes everything queued since the last window into one
// MuxProcess::start_batch per replica, then drives the simulation. That
// makes the flat store's batching semantics match the sharded engine's
// mailbox windows — reads at one replica share a protocol round, queued
// same-slot writes coalesce last-write-wins — with no worker thread.
// Heap-held so client handles stay valid across moves of the owning store.

class KvStore::ClientImpl final : public KvClientEngine {
 public:
  ClientImpl(SimNetwork& net, std::uint32_t n, std::uint32_t slots,
             bool coalesce)
      : net_(&net), n_(n), slots_(slots), coalesce_(coalesce), client_(*this) {
    per_node_.resize(n_);
  }

  void client_route(std::string_view key, OpState& st) override {
    st.slot = static_cast<std::uint32_t>(ShardRouter::hash(key) % slots_);
    if (st.kind == OpKind::kWrite) {
      st.node = st.slot % n_;
    } else {
      TBR_ENSURE(st.node == kAnyReplica || st.node < n_,
                 "reader out of range");
    }
  }

  void client_issue(OpState& st) override { pending_.push_back(&st); }

  void client_flush() override {
    if (pending_.empty()) return;
    // Finish the previous window first: its chains hold the per-slot
    // one-op-at-a-time guards armed until they complete.
    if (lost_liveness_ ||
        (outstanding_ > 0 &&
         !net_->run_until([this] { return outstanding_ == 0; }))) {
      lost_liveness_ = true;
      for (OpState* op : pending_) {
        op->owner->complete_failed(*op, kStoreLiveness);
      }
      pending_.clear();
      return;
    }

    for (auto& ops : per_node_) ops.clear();
    for (OpState* stp : pending_) {
      OpState& op = *stp;
      if (op.kind == OpKind::kRead && op.node == kAnyReplica) {
        for (std::uint32_t tries = 0; tries < n_; ++tries) {
          op.node = next_reader_;
          next_reader_ = (next_reader_ + 1) % n_;
          if (!net_->crashed(op.node)) break;
        }
      }
      if (net_->crashed(op.node)) {
        op.owner->complete_failed(op, op.kind == OpKind::kWrite
                                          ? kHomeCrashed
                                          : kReaderCrashed);
        continue;
      }
      op.start = net_->now();
      MuxProcess::BatchOp batch_op;
      batch_op.slot = op.slot;
      if (op.kind == OpKind::kWrite) {
        batch_op.is_write = true;
        batch_op.value = std::move(op.value);
        batch_op.write_done = [this, &op](SeqNo version, bool absorbed) {
          op.result.version = version;
          op.result.absorbed = absorbed;
          op.result.latency = net_->now() - op.start;
          op.owner->complete(op);
        };
      } else {
        batch_op.read_done = [this, &op](const Value& v, SeqNo index) {
          op.result.value = v;
          op.result.version = index;
          op.result.latency = net_->now() - op.start;
          op.owner->complete(op);
        };
      }
      per_node_[op.node].push_back(std::move(batch_op));
    }
    pending_.clear();

    for (ProcessId pid = 0; pid < n_; ++pid) {
      auto& node_ops = per_node_[pid];
      if (node_ops.empty()) continue;
      ++outstanding_;
      auto& mux = net_->process_as<MuxProcess>(pid);
      mux.start_batch(net_->context(pid),
                      std::span<MuxProcess::BatchOp>(node_ops), coalesce_,
                      [this] { --outstanding_; }, &batch_);
    }
  }

  void client_park(OpState& st, OpPool& /*pool*/) override {
    const bool ok = net_->run_until(
        [&st] { return st.ready.load(std::memory_order_acquire); });
    if (!ok) {
      lost_liveness_ = true;
      st.result.status =
          Status(StatusCode::kLivenessLost,
                 "kv store cannot complete the operation (crashed quorum "
                 "or stuck run)");
    }
  }

  KvClient& client() noexcept { return client_; }
  const BatchStats& batch_stats() const noexcept { return batch_; }

 private:
  SimNetwork* net_;
  std::uint32_t n_ = 0;
  std::uint32_t slots_ = 0;
  bool coalesce_ = true;
  ProcessId next_reader_ = 0;
  std::size_t outstanding_ = 0;
  bool lost_liveness_ = false;
  std::vector<OpState*> pending_;
  std::vector<std::vector<MuxProcess::BatchOp>> per_node_;
  BatchStats batch_;
  KvClient client_;
};

KvStore::KvStore(KvStore&&) noexcept = default;
KvStore& KvStore::operator=(KvStore&&) noexcept = default;
KvStore::~KvStore() = default;

KvClient& KvStore::client() {
  if (!client_impl_) {
    client_impl_ =
        std::make_unique<ClientImpl>(*net_, n_, slots_, coalesce_writes_);
  }
  return client_impl_->client();
}

KvStore::KvStore(Options options)
    : n_(options.n),
      slots_(options.slots),
      coalesce_writes_(options.coalesce_writes) {
  TBR_ENSURE(slots_ >= 1, "store needs at least one slot");
  const std::uint32_t n = options.n;
  const std::uint32_t t = options.t;
  const Value initial = options.initial;
  auto slot_cfg = [n, t, initial](std::uint32_t slot) {
    GroupConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.writer = slot % n;  // shard placement: slot's home node
    cfg.initial = initial;
    cfg.validate();
    return cfg;
  };

  // An explicit factory wins; otherwise the engine knob picks the per-slot
  // register protocol (two-bit default, or a fast-path read engine).
  MuxProcess::SlotFactory factory = std::move(options.register_factory);
  if (!factory) {
    const Algorithm engine = options.engine;
    factory = [engine](const GroupConfig& cfg, ProcessId pid) {
      return make_register_process(engine, cfg, pid);
    };
  }

  std::vector<std::unique_ptr<ProcessBase>> processes;
  processes.reserve(n_);
  for (ProcessId pid = 0; pid < n_; ++pid) {
    processes.push_back(
        std::make_unique<MuxProcess>(slots_, slot_cfg, pid, factory));
  }
  SimNetwork::Options net_opt;
  net_opt.seed = options.seed;
  net_opt.loss_rate = options.loss_rate;
  net_opt.scheduler_policy = options.scheduler_policy;
  net_opt.delay =
      options.delay ? std::move(options.delay) : make_constant_delay(1000);
  net_ = std::make_unique<SimNetwork>(std::move(processes),
                                      std::move(net_opt));
}

std::uint32_t KvStore::slot_of(std::string_view key) const {
  // Same FNV-1a the sharded engine routes with (full hash mod slots: the
  // flat store predates the split-hash router and keeps its placement).
  return static_cast<std::uint32_t>(ShardRouter::hash(key) % slots_);
}

ProcessId KvStore::home_node(std::string_view key) const {
  return slot_of(key) % n_;
}

MuxProcess& KvStore::mux_at(ProcessId node) {
  return net_->process_as<MuxProcess>(node);
}

void KvStore::crash(ProcessId node) { net_->crash_now(node); }

bool KvStore::crashed(ProcessId node) const { return net_->crashed(node); }

void KvStore::settle() {
  // Hand any deferred client window to the protocol first: settle() is
  // the flat store's "drive everything" call, and callback-mode or
  // polled client ops have no wait() to trigger the flush.
  if (client_impl_) client_impl_->client_flush();
  (void)net_->run();
}

std::uint64_t KvStore::total_memory_bytes() {
  std::uint64_t bytes = 0;
  for (ProcessId pid = 0; pid < n_; ++pid) {
    bytes += mux_at(pid).local_memory_bytes();
  }
  return bytes;
}

}  // namespace tbr
