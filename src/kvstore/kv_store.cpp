#include "kvstore/kv_store.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "kvstore/shard_router.hpp"

namespace tbr {

KvStore::KvStore(Options options)
    : n_(options.n), slots_(options.slots) {
  TBR_ENSURE(slots_ >= 1, "store needs at least one slot");
  const std::uint32_t n = options.n;
  const std::uint32_t t = options.t;
  const Value initial = options.initial;
  auto slot_cfg = [n, t, initial](std::uint32_t slot) {
    GroupConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.writer = slot % n;  // shard placement: slot's home node
    cfg.initial = initial;
    cfg.validate();
    return cfg;
  };

  std::vector<std::unique_ptr<ProcessBase>> processes;
  processes.reserve(n_);
  for (ProcessId pid = 0; pid < n_; ++pid) {
    processes.push_back(std::make_unique<MuxProcess>(
        slots_, slot_cfg, pid, options.register_factory));
  }
  SimNetwork::Options net_opt;
  net_opt.seed = options.seed;
  net_opt.loss_rate = options.loss_rate;
  net_opt.delay =
      options.delay ? std::move(options.delay) : make_constant_delay(1000);
  net_ = std::make_unique<SimNetwork>(std::move(processes),
                                      std::move(net_opt));
}

std::uint32_t KvStore::slot_of(std::string_view key) const {
  // Same FNV-1a the sharded engine routes with (full hash mod slots: the
  // flat store predates the split-hash router and keeps its placement).
  return static_cast<std::uint32_t>(ShardRouter::hash(key) % slots_);
}

ProcessId KvStore::home_node(std::string_view key) const {
  return slot_of(key) % n_;
}

MuxProcess& KvStore::mux_at(ProcessId node) {
  return net_->process_as<MuxProcess>(node);
}

void KvStore::put(std::string_view key, Value value) {
  const std::uint32_t slot = slot_of(key);
  const ProcessId home = slot % n_;
  if (net_->crashed(home)) {
    throw std::runtime_error("put(" + std::string(key) +
                             "): home node p" + std::to_string(home) +
                             " has crashed");
  }
  bool done = false;
  mux_at(home).start_write(net_->context(home), slot, std::move(value),
                           [&done] { done = true; });
  const bool finished = net_->run_until([&done] { return done; });
  TBR_ENSURE(finished, "put could not complete (liveness lost?)");
}

KvStore::GetResult KvStore::get(std::string_view key, ProcessId reader) {
  TBR_ENSURE(reader < n_, "reader out of range");
  if (net_->crashed(reader)) {
    throw std::runtime_error("get(" + std::string(key) + "): replica p" +
                             std::to_string(reader) + " has crashed");
  }
  const std::uint32_t slot = slot_of(key);
  GetResult out;
  bool done = false;
  const Tick start = net_->now();
  mux_at(reader).start_read(net_->context(reader), slot,
                            [&](const Value& v, SeqNo index) {
                              out.value = v;
                              out.version = index;
                              done = true;
                            });
  const bool finished = net_->run_until([&done] { return done; });
  TBR_ENSURE(finished, "get could not complete (liveness lost?)");
  out.latency = net_->now() - start;
  return out;
}

void KvStore::crash(ProcessId node) { net_->crash_now(node); }

bool KvStore::crashed(ProcessId node) const { return net_->crashed(node); }

void KvStore::settle() { (void)net_->run(); }

std::uint64_t KvStore::total_memory_bytes() {
  std::uint64_t bytes = 0;
  for (ProcessId pid = 0; pid < n_; ++pid) {
    bytes += mux_at(pid).local_memory_bytes();
  }
  return bytes;
}

}  // namespace tbr
