// MuxProcess: many independent registers multiplexed over one network node.
//
// The paper builds ONE register. A usable store needs many, and spinning up
// a full mesh per register would waste sockets and simulator state. The mux
// hosts one register instance per *slot* at each node and routes frames
// with a slot tag, exactly as ports multiplex TCP connections over one
// host pair.
//
// Accounting convention: the slot tag is addressing (data plane), not
// protocol control information — the paper's control-bit claim is per
// register instance, and each embedded two-bit register still ships
// exactly 2 control bits per frame. The tag is tallied in the frame's
// data_bits so the overhead stays visible in benches.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/register_process.hpp"

namespace tbr {

class MuxProcess final : public ProcessBase {
 public:
  using SlotFactory = std::function<std::unique_ptr<RegisterProcessBase>(
      const GroupConfig&, ProcessId)>;

  /// Create `slots` register instances at node `self`. `slot_cfg(slot)`
  /// gives each slot's group config (writer assignment varies per slot);
  /// `factory` builds the per-slot register (default: the two-bit
  /// algorithm).
  MuxProcess(std::uint32_t slots,
             std::function<GroupConfig(std::uint32_t)> slot_cfg,
             ProcessId self, SlotFactory factory = {});
  ~MuxProcess() override;

  void on_start(NetworkContext& net) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;

  // ---- per-slot operations (invoked by the store facade) -------------------------
  void start_write(NetworkContext& net, std::uint32_t slot, Value v,
                   RegisterProcessBase::WriteDone done);
  void start_read(NetworkContext& net, std::uint32_t slot,
                  RegisterProcessBase::ReadDone done);

  std::uint32_t slot_count() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  RegisterProcessBase& slot(std::uint32_t index);
  /// Total bytes of protocol state across all hosted registers.
  std::uint64_t local_memory_bytes() const;
  bool crashed() const noexcept { return crashed_; }

 private:
  class SlotContext;

  ProcessId self_;
  std::vector<std::unique_ptr<RegisterProcessBase>> slots_;
  std::vector<std::unique_ptr<SlotContext>> contexts_;
  NetworkContext* net_ = nullptr;  // stable per runtime; stashed on entry
  bool crashed_ = false;
};

}  // namespace tbr
