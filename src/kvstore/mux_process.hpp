// MuxProcess: many independent registers multiplexed over one network node.
//
// The paper builds ONE register. A usable store needs many, and spinning up
// a full mesh per register would waste sockets and simulator state. The mux
// hosts one register instance per *slot* at each node and routes frames
// with a slot tag, exactly as ports multiplex TCP connections over one
// host pair.
//
// Accounting convention: the slot tag is addressing (data plane), not
// protocol control information — the paper's control-bit claim is per
// register instance, and each embedded two-bit register still ships
// exactly 2 control bits per frame. The tag is tallied in the frame's
// data_bits so the overhead stays visible in benches.
//
// Hot-path design: the slot wrapper reuses a per-slot scratch Message
// (the inner frame is encoded straight into its recycled Value buffer —
// no fresh string per send), inbound frames decode into a reused scratch
// via Codec::decode_into, and the batching window runs on a recycled
// BatchPlan whose chains/steps/completion vectors keep their high-water
// capacities — so a steady-state batched operation allocates nothing
// inside the mux.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/register_process.hpp"

namespace tbr {

/// Tally of what a batching window saved. Single-threaded per shard; the
/// sharded store aggregates snapshots across shards under its own locks.
struct BatchStats {
  std::uint64_t batches = 0;          ///< start_batch invocations
  std::uint64_t client_ops = 0;       ///< operations admitted to batches
  std::uint64_t protocol_reads = 0;   ///< read rounds actually issued
  std::uint64_t protocol_writes = 0;  ///< write rounds actually issued
  std::uint64_t coalesced_reads = 0;  ///< reads served by another op's round
  std::uint64_t absorbed_writes = 0;  ///< writes absorbed by last-write-wins
  std::uint64_t max_batch_ops = 0;    ///< largest single batch seen

  void merge(const BatchStats& other) {
    batches += other.batches;
    client_ops += other.client_ops;
    protocol_reads += other.protocol_reads;
    protocol_writes += other.protocol_writes;
    coalesced_reads += other.coalesced_reads;
    absorbed_writes += other.absorbed_writes;
    max_batch_ops = std::max(max_batch_ops, other.max_batch_ops);
  }
};

class MuxProcess final : public ProcessBase {
 public:
  using SlotFactory = std::function<std::unique_ptr<RegisterProcessBase>(
      const GroupConfig&, ProcessId)>;

  /// Create `slots` register instances at node `self`. `slot_cfg(slot)`
  /// gives each slot's group config (writer assignment varies per slot);
  /// `factory` builds the per-slot register (default: the two-bit
  /// algorithm).
  MuxProcess(std::uint32_t slots,
             std::function<GroupConfig(std::uint32_t)> slot_cfg,
             ProcessId self, SlotFactory factory = {});
  ~MuxProcess() override;

  void on_start(NetworkContext& net) override;
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override;
  void on_crash() override;

  // ---- per-slot operations (invoked by the store facade) -------------------------
  void start_write(NetworkContext& net, std::uint32_t slot, Value v,
                   RegisterProcessBase::WriteDone done);
  void start_read(NetworkContext& net, std::uint32_t slot,
                  RegisterProcessBase::ReadDone done);

  // ---- batched operations (the engines' batching window) -------------------------
  /// Write completion in a batch: `version` is the slot register's index
  /// the write landed as (counted here — valid as long as every write to
  /// the slot goes through this mux, which the SWMR home-node placement
  /// guarantees); `absorbed` marks a write whose value was replaced by a
  /// later queued write before reaching the register.
  using BatchWriteDone = std::function<void(SeqNo version, bool absorbed)>;

  /// One client operation bound for this node: a read issued at this
  /// replica, or a write whose slot is homed here.
  struct BatchOp {
    std::uint32_t slot = 0;
    bool is_write = false;
    Value value;  ///< writes only
    BatchWriteDone write_done;
    RegisterProcessBase::ReadDone read_done;
  };

  /// Execute a window's worth of client operations in as few protocol
  /// rounds as the register spec allows. Ops are grouped per slot into
  /// arrival-order chains (one register admits one operation at a time per
  /// process); chains for distinct slots proceed concurrently. Within a
  /// chain, a run of consecutive reads shares ONE protocol read (every
  /// waiting client gets the same (value, index) — all of them linearize at
  /// that round's point, inside each caller's interval), and, when
  /// `coalesce_writes` is set, a run of consecutive writes collapses
  /// last-write-wins into ONE protocol write (the absorbed writes linearize
  /// immediately before the surviving one; no read can observe the skipped
  /// values because none ever reaches the register). `done` fires once
  /// every chain has completed; `stats`, when given, tallies the savings.
  ///
  /// The plan is recycled storage owned by this mux: at most ONE batch may
  /// be in flight per MuxProcess at a time (every in-tree driver waits for
  /// the previous window before issuing the next). Op payloads and
  /// completions are moved out of `ops`; the caller keeps the container
  /// and its capacity for the next window.
  void start_batch(NetworkContext& net, std::span<BatchOp> ops,
                   bool coalesce_writes, std::function<void()> done,
                   BatchStats* stats = nullptr);
  /// Convenience overload consuming a vector (capacity is discarded).
  void start_batch(NetworkContext& net, std::vector<BatchOp> ops,
                   bool coalesce_writes, std::function<void()> done,
                   BatchStats* stats = nullptr) {
    start_batch(net, std::span<BatchOp>(ops), coalesce_writes,
                std::move(done), stats);
  }

  std::uint32_t slot_count() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  RegisterProcessBase& slot(std::uint32_t index);
  /// Total bytes of protocol state across all hosted registers.
  std::uint64_t local_memory_bytes() const;
  bool crashed() const noexcept { return crashed_; }

 private:
  class SlotContext;

  /// The window's execution plan, recycled across batches: chains and
  /// steps are high-water arrays with live counts, so planning a window
  /// the same size as a previous one performs no allocation.
  struct BatchPlan {
    struct Step {
      bool is_write = false;
      Value value;  ///< surviving write value (write steps only)
      SeqNo version = 0;  ///< assigned when the write step issues
      std::vector<BatchWriteDone> write_dones;
      std::vector<RegisterProcessBase::ReadDone> read_dones;
    };
    struct Chain {
      std::uint32_t slot = 0;
      std::size_t step_count = 0;  ///< live prefix of `steps`
      std::vector<Step> steps;
    };
    std::size_t chain_count = 0;  ///< live prefix of `chains`
    std::vector<Chain> chains;
    std::size_t outstanding = 0;  ///< chains not yet run to completion
    bool active = false;
    std::function<void()> done;

    Chain& push_chain(std::uint32_t slot);
    static Step& push_step(Chain& chain);
  };

  void run_batch_chain(std::size_t chain, std::size_t step);

  ProcessId self_;
  std::vector<std::unique_ptr<RegisterProcessBase>> slots_;
  std::vector<std::unique_ptr<SlotContext>> contexts_;
  /// Protocol writes issued per slot via start_batch; tracks the slot
  /// register's index because this node is the slot's single writer.
  std::vector<SeqNo> batch_versions_;
  BatchPlan plan_;
  /// start_batch scratch: slot -> live chain index (kNoChain = none yet),
  /// reset via the plan's chain list after each window is planned.
  std::vector<std::uint32_t> slot_chain_;
  /// Inbound scratch: frames decode into this reused Message.
  Message inbound_;
  NetworkContext* net_ = nullptr;  // stable per runtime; stashed on entry
  bool crashed_ = false;
};

}  // namespace tbr
