#include "kvstore/mux_process.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "core/twobit_process.hpp"

namespace tbr {

// Per-slot view of the network: wraps the inner register's frames in a
// slot-tagged envelope before they reach the real transport.
class MuxProcess::SlotContext final : public NetworkContext {
 public:
  SlotContext(MuxProcess& mux, std::uint32_t slot)
      : mux_(mux), slot_(slot) {}

  void send(ProcessId to, const Message& inner) override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    Message outer;
    outer.type = inner.type;  // per-type stats still reflect the protocol
    outer.seq = slot_;        // routing tag (addressing, not control)
    outer.value =
        Value::from_bytes(mux_.slots_[slot_]->codec().encode(inner));
    outer.has_value = true;
    outer.debug_index = inner.debug_index;
    outer.wire.control_bits = inner.wire.control_bits;
    outer.wire.data_bits = inner.wire.data_bits + 32;  // the slot tag
    mux_.net_->send(to, outer);
  }
  ProcessId self() const override { return mux_.self_; }
  std::uint32_t process_count() const override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    return mux_.net_->process_count();
  }
  Tick now() const override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    return mux_.net_->now();
  }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    mux_.net_->schedule(delay, std::move(fn));
  }

 private:
  MuxProcess& mux_;
  std::uint32_t slot_;
};

MuxProcess::MuxProcess(std::uint32_t slots,
                       std::function<GroupConfig(std::uint32_t)> slot_cfg,
                       ProcessId self, SlotFactory factory)
    : self_(self) {
  TBR_ENSURE(slots >= 1, "mux needs at least one slot");
  TBR_ENSURE(slot_cfg != nullptr, "mux needs a slot config source");
  slots_.reserve(slots);
  contexts_.reserve(slots);
  for (std::uint32_t s = 0; s < slots; ++s) {
    const GroupConfig cfg = slot_cfg(s);
    slots_.push_back(factory
                         ? factory(cfg, self)
                         : std::make_unique<TwoBitProcess>(cfg, self));
    contexts_.push_back(std::make_unique<SlotContext>(*this, s));
  }
}

MuxProcess::~MuxProcess() = default;

void MuxProcess::on_start(NetworkContext& net) {
  net_ = &net;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    slots_[s]->on_start(*contexts_[s]);
  }
}

void MuxProcess::on_message(NetworkContext& net, ProcessId from,
                            const Message& msg) {
  net_ = &net;
  TBR_ENSURE(msg.has_value, "mux frame without payload");
  TBR_ENSURE(msg.seq >= 0 &&
                 msg.seq < static_cast<SeqNo>(slots_.size()),
             "mux frame for unknown slot");
  const auto slot_index = static_cast<std::uint32_t>(msg.seq);
  const Message inner =
      slots_[slot_index]->codec().decode(msg.value.bytes());
  slots_[slot_index]->on_message(*contexts_[slot_index], from, inner);
}

void MuxProcess::on_crash() {
  crashed_ = true;
  for (auto& reg : slots_) reg->on_crash();
}

void MuxProcess::start_write(NetworkContext& net, std::uint32_t slot_index,
                             Value v, RegisterProcessBase::WriteDone done) {
  net_ = &net;
  TBR_ENSURE(slot_index < slots_.size(), "slot out of range");
  slots_[slot_index]->start_write(*contexts_[slot_index], std::move(v),
                                  std::move(done));
}

void MuxProcess::start_read(NetworkContext& net, std::uint32_t slot_index,
                            RegisterProcessBase::ReadDone done) {
  net_ = &net;
  TBR_ENSURE(slot_index < slots_.size(), "slot out of range");
  slots_[slot_index]->start_read(*contexts_[slot_index], std::move(done));
}

RegisterProcessBase& MuxProcess::slot(std::uint32_t index) {
  TBR_ENSURE(index < slots_.size(), "slot out of range");
  return *slots_[index];
}

std::uint64_t MuxProcess::local_memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& reg : slots_) bytes += reg->local_memory_bytes();
  return bytes;
}

}  // namespace tbr
