#include "kvstore/mux_process.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "core/twobit_process.hpp"

namespace tbr {

namespace {
/// slot_chain_ sentinel: no live chain for this slot in the current plan.
constexpr std::uint32_t kNoChain = 0xFFFFFFFFu;
}  // namespace

// Per-slot view of the network: wraps the inner register's frames in a
// slot-tagged envelope before they reach the real transport. The envelope
// is a reused scratch Message — the inner frame encodes straight into its
// recycled Value buffer, so a steady-state wrapped send allocates nothing
// (ROADMAP's "mux slot-frame wrapping" item).
class MuxProcess::SlotContext final : public NetworkContext {
 public:
  SlotContext(MuxProcess& mux, std::uint32_t slot)
      : mux_(mux), slot_(slot) {}

  void send(ProcessId to, const Message& inner) override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    outer_.type = inner.type;  // per-type stats still reflect the protocol
    outer_.seq = slot_;        // routing tag (addressing, not control)
    mux_.slots_[slot_]->codec().encode_into(inner,
                                            outer_.value.mutable_bytes());
    outer_.has_value = true;
    outer_.aux = 0;
    outer_.debug_index = inner.debug_index;
    outer_.wire.control_bits = inner.wire.control_bits;
    outer_.wire.data_bits = inner.wire.data_bits + 32;  // the slot tag
    mux_.net_->send(to, outer_);
  }
  ProcessId self() const override { return mux_.self_; }
  std::uint32_t process_count() const override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    return mux_.net_->process_count();
  }
  Tick now() const override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    return mux_.net_->now();
  }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    mux_.net_->schedule(delay, std::move(fn));
  }

 private:
  MuxProcess& mux_;
  std::uint32_t slot_;
  Message outer_;  ///< reused envelope (the transport copies on send)
};

MuxProcess::MuxProcess(std::uint32_t slots,
                       std::function<GroupConfig(std::uint32_t)> slot_cfg,
                       ProcessId self, SlotFactory factory)
    : self_(self) {
  TBR_ENSURE(slots >= 1, "mux needs at least one slot");
  TBR_ENSURE(slot_cfg != nullptr, "mux needs a slot config source");
  slots_.reserve(slots);
  contexts_.reserve(slots);
  batch_versions_.assign(slots, 0);
  slot_chain_.assign(slots, kNoChain);
  for (std::uint32_t s = 0; s < slots; ++s) {
    const GroupConfig cfg = slot_cfg(s);
    slots_.push_back(factory
                         ? factory(cfg, self)
                         : std::make_unique<TwoBitProcess>(cfg, self));
    contexts_.push_back(std::make_unique<SlotContext>(*this, s));
  }
}

MuxProcess::~MuxProcess() = default;

void MuxProcess::on_start(NetworkContext& net) {
  net_ = &net;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    slots_[s]->on_start(*contexts_[s]);
  }
}

void MuxProcess::on_message(NetworkContext& net, ProcessId from,
                            const Message& msg) {
  net_ = &net;
  TBR_ENSURE(msg.has_value, "mux frame without payload");
  TBR_ENSURE(msg.seq >= 0 &&
                 msg.seq < static_cast<SeqNo>(slots_.size()),
             "mux frame for unknown slot");
  const auto slot_index = static_cast<std::uint32_t>(msg.seq);
  // Unwrap into the reused inbound scratch (no per-frame Value string).
  slots_[slot_index]->codec().decode_into(msg.value.bytes(), inbound_);
  slots_[slot_index]->on_message(*contexts_[slot_index], from, inbound_);
}

void MuxProcess::on_crash() {
  crashed_ = true;
  for (auto& reg : slots_) reg->on_crash();
}

void MuxProcess::start_write(NetworkContext& net, std::uint32_t slot_index,
                             Value v, RegisterProcessBase::WriteDone done) {
  net_ = &net;
  TBR_ENSURE(slot_index < slots_.size(), "slot out of range");
  slots_[slot_index]->start_write(*contexts_[slot_index], std::move(v),
                                  std::move(done));
}

void MuxProcess::start_read(NetworkContext& net, std::uint32_t slot_index,
                            RegisterProcessBase::ReadDone done) {
  net_ = &net;
  TBR_ENSURE(slot_index < slots_.size(), "slot out of range");
  slots_[slot_index]->start_read(*contexts_[slot_index], std::move(done));
}

// ---- batching window --------------------------------------------------------
//
// A batch becomes a set of per-slot chains. Each chain is a sequence of
// protocol *steps* in client arrival order; coalescing merges a run of
// consecutive reads into one read step (every caller shares the round's
// (value, index)) and — opt-in — a run of consecutive writes into one write
// step carrying only the last value. Chains for different slots are
// independent registers, so they are all started at once and interleave
// freely in the underlying network.
//
// The plan lives in recycled storage (chains, steps and their completion
// vectors keep high-water capacity), and the per-step protocol completion
// captures {this, packed chain/step} — 16 bytes, std::function's inline
// buffer — so planning and running a steady-state window is allocation-free.

MuxProcess::BatchPlan::Chain& MuxProcess::BatchPlan::push_chain(
    std::uint32_t slot) {
  if (chain_count == chains.size()) chains.emplace_back();
  Chain& chain = chains[chain_count++];
  chain.slot = slot;
  chain.step_count = 0;
  return chain;
}

MuxProcess::BatchPlan::Step& MuxProcess::BatchPlan::push_step(Chain& chain) {
  if (chain.step_count == chain.steps.size()) chain.steps.emplace_back();
  Step& step = chain.steps[chain.step_count++];
  step.is_write = false;
  step.version = 0;
  step.write_dones.clear();
  step.read_dones.clear();
  return step;
}

void MuxProcess::start_batch(NetworkContext& net, std::span<BatchOp> ops,
                             bool coalesce_writes, std::function<void()> done,
                             BatchStats* stats) {
  net_ = &net;
  TBR_ENSURE(done != nullptr, "batch needs a completion callback");
  TBR_ENSURE(!ops.empty(), "batch must contain at least one operation");
  TBR_ENSURE(!plan_.active,
             "one batch at a time per mux (wait for the previous window)");
  if (stats != nullptr) {
    stats->batches += 1;
    stats->client_ops += ops.size();
    stats->max_batch_ops = std::max(
        stats->max_batch_ops, static_cast<std::uint64_t>(ops.size()));
  }

  // Plan: ops are already in arrival order; route each to its slot's live
  // chain (creating one on first touch), extending or starting a step run.
  plan_.chain_count = 0;
  for (BatchOp& op : ops) {
    TBR_ENSURE(op.slot < slots_.size(), "batch op for unknown slot");
    std::uint32_t chain_index = slot_chain_[op.slot];
    if (chain_index == kNoChain) {
      chain_index = static_cast<std::uint32_t>(plan_.chain_count);
      slot_chain_[op.slot] = chain_index;
      plan_.push_chain(op.slot);
    }
    BatchPlan::Chain& chain = plan_.chains[chain_index];
    const bool extends_run =
        chain.step_count > 0 &&
        chain.steps[chain.step_count - 1].is_write == op.is_write;
    if (op.is_write) {
      if (coalesce_writes && extends_run) {
        BatchPlan::Step& step = chain.steps[chain.step_count - 1];
        step.value = std::move(op.value);  // last write wins
        step.write_dones.push_back(std::move(op.write_done));
        if (stats != nullptr) stats->absorbed_writes += 1;
      } else {
        BatchPlan::Step& step = BatchPlan::push_step(chain);
        step.is_write = true;
        step.value = std::move(op.value);
        step.write_dones.push_back(std::move(op.write_done));
        if (stats != nullptr) stats->protocol_writes += 1;
      }
    } else {
      if (extends_run) {
        chain.steps[chain.step_count - 1].read_dones.push_back(
            std::move(op.read_done));
        if (stats != nullptr) stats->coalesced_reads += 1;
      } else {
        BatchPlan::Step& step = BatchPlan::push_step(chain);
        step.read_dones.push_back(std::move(op.read_done));
        if (stats != nullptr) stats->protocol_reads += 1;
      }
    }
  }
  for (std::size_t c = 0; c < plan_.chain_count; ++c) {
    slot_chain_[plan_.chains[c].slot] = kNoChain;
  }
  plan_.outstanding = plan_.chain_count;
  plan_.active = true;
  plan_.done = std::move(done);

  for (std::size_t c = 0; c < plan_.chain_count; ++c) {
    run_batch_chain(c, 0);
  }
}

void MuxProcess::run_batch_chain(std::size_t chain, std::size_t step) {
  BatchPlan::Chain& ch = plan_.chains[chain];
  if (step == ch.step_count) {
    if (--plan_.outstanding == 0) {
      plan_.active = false;
      // Moved out first: the callback may start the next window, which
      // reuses plan_ (including plan_.done) immediately.
      const std::function<void()> finished = std::move(plan_.done);
      plan_.done = nullptr;
      finished();
    }
    return;
  }
  // {this, packed} is 16 bytes — std::function stores it inline.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(chain) << 32) |
      static_cast<std::uint64_t>(step);
  BatchPlan::Step& st = ch.steps[step];
  if (st.is_write) {
    st.version = ++batch_versions_[ch.slot];
    start_write(*net_, ch.slot, std::move(st.value), [this, packed] {
      const auto chain_index = static_cast<std::size_t>(packed >> 32);
      const auto step_index =
          static_cast<std::size_t>(packed & 0xFFFFFFFFu);
      auto& done_step = plan_.chains[chain_index].steps[step_index];
      for (std::size_t k = 0; k < done_step.write_dones.size(); ++k) {
        // Only the run's last write reached the register.
        if (done_step.write_dones[k]) {
          done_step.write_dones[k](done_step.version,
                                   k + 1 != done_step.write_dones.size());
        }
      }
      run_batch_chain(chain_index, step_index + 1);
    });
  } else {
    start_read(*net_, ch.slot, [this, packed](const Value& v, SeqNo index) {
      const auto chain_index = static_cast<std::size_t>(packed >> 32);
      const auto step_index =
          static_cast<std::size_t>(packed & 0xFFFFFFFFu);
      auto& done_step = plan_.chains[chain_index].steps[step_index];
      for (auto& done : done_step.read_dones) {
        if (done) done(v, index);
      }
      run_batch_chain(chain_index, step_index + 1);
    });
  }
}

RegisterProcessBase& MuxProcess::slot(std::uint32_t index) {
  TBR_ENSURE(index < slots_.size(), "slot out of range");
  return *slots_[index];
}

std::uint64_t MuxProcess::local_memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& reg : slots_) bytes += reg->local_memory_bytes();
  return bytes;
}

}  // namespace tbr
