#include "kvstore/mux_process.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "core/twobit_process.hpp"

namespace tbr {

// Per-slot view of the network: wraps the inner register's frames in a
// slot-tagged envelope before they reach the real transport.
class MuxProcess::SlotContext final : public NetworkContext {
 public:
  SlotContext(MuxProcess& mux, std::uint32_t slot)
      : mux_(mux), slot_(slot) {}

  void send(ProcessId to, const Message& inner) override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    Message outer;
    outer.type = inner.type;  // per-type stats still reflect the protocol
    outer.seq = slot_;        // routing tag (addressing, not control)
    outer.value =
        Value::from_bytes(mux_.slots_[slot_]->codec().encode(inner));
    outer.has_value = true;
    outer.debug_index = inner.debug_index;
    outer.wire.control_bits = inner.wire.control_bits;
    outer.wire.data_bits = inner.wire.data_bits + 32;  // the slot tag
    mux_.net_->send(to, outer);
  }
  ProcessId self() const override { return mux_.self_; }
  std::uint32_t process_count() const override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    return mux_.net_->process_count();
  }
  Tick now() const override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    return mux_.net_->now();
  }
  void schedule(Tick delay, std::function<void()> fn) override {
    TBR_ENSURE(mux_.net_ != nullptr, "slot context used before start");
    mux_.net_->schedule(delay, std::move(fn));
  }

 private:
  MuxProcess& mux_;
  std::uint32_t slot_;
};

MuxProcess::MuxProcess(std::uint32_t slots,
                       std::function<GroupConfig(std::uint32_t)> slot_cfg,
                       ProcessId self, SlotFactory factory)
    : self_(self) {
  TBR_ENSURE(slots >= 1, "mux needs at least one slot");
  TBR_ENSURE(slot_cfg != nullptr, "mux needs a slot config source");
  slots_.reserve(slots);
  contexts_.reserve(slots);
  batch_versions_.assign(slots, 0);
  for (std::uint32_t s = 0; s < slots; ++s) {
    const GroupConfig cfg = slot_cfg(s);
    slots_.push_back(factory
                         ? factory(cfg, self)
                         : std::make_unique<TwoBitProcess>(cfg, self));
    contexts_.push_back(std::make_unique<SlotContext>(*this, s));
  }
}

MuxProcess::~MuxProcess() = default;

void MuxProcess::on_start(NetworkContext& net) {
  net_ = &net;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    slots_[s]->on_start(*contexts_[s]);
  }
}

void MuxProcess::on_message(NetworkContext& net, ProcessId from,
                            const Message& msg) {
  net_ = &net;
  TBR_ENSURE(msg.has_value, "mux frame without payload");
  TBR_ENSURE(msg.seq >= 0 &&
                 msg.seq < static_cast<SeqNo>(slots_.size()),
             "mux frame for unknown slot");
  const auto slot_index = static_cast<std::uint32_t>(msg.seq);
  const Message inner =
      slots_[slot_index]->codec().decode(msg.value.bytes());
  slots_[slot_index]->on_message(*contexts_[slot_index], from, inner);
}

void MuxProcess::on_crash() {
  crashed_ = true;
  for (auto& reg : slots_) reg->on_crash();
}

void MuxProcess::start_write(NetworkContext& net, std::uint32_t slot_index,
                             Value v, RegisterProcessBase::WriteDone done) {
  net_ = &net;
  TBR_ENSURE(slot_index < slots_.size(), "slot out of range");
  slots_[slot_index]->start_write(*contexts_[slot_index], std::move(v),
                                  std::move(done));
}

void MuxProcess::start_read(NetworkContext& net, std::uint32_t slot_index,
                            RegisterProcessBase::ReadDone done) {
  net_ = &net;
  TBR_ENSURE(slot_index < slots_.size(), "slot out of range");
  slots_[slot_index]->start_read(*contexts_[slot_index], std::move(done));
}

// ---- batching window --------------------------------------------------------
//
// A batch becomes a set of per-slot chains. Each chain is a sequence of
// protocol *steps* in client arrival order; coalescing merges a run of
// consecutive reads into one read step (every caller shares the round's
// (value, index)) and — opt-in — a run of consecutive writes into one write
// step carrying only the last value. Chains for different slots are
// independent registers, so they are all started at once and interleave
// freely in the underlying network.

struct MuxProcess::BatchPlan {
  struct Step {
    bool is_write = false;
    Value value;  ///< surviving write value (write steps only)
    std::vector<BatchWriteDone> write_dones;
    std::vector<RegisterProcessBase::ReadDone> read_dones;
  };
  struct Chain {
    std::uint32_t slot = 0;
    std::vector<Step> steps;
  };
  std::vector<Chain> chains;
  std::size_t outstanding = 0;  ///< chains not yet run to completion
  std::function<void()> done;
};

void MuxProcess::start_batch(NetworkContext& net, std::vector<BatchOp> ops,
                             bool coalesce_writes, std::function<void()> done,
                             BatchStats* stats) {
  net_ = &net;
  TBR_ENSURE(done != nullptr, "batch needs a completion callback");
  TBR_ENSURE(!ops.empty(), "batch must contain at least one operation");
  if (stats != nullptr) {
    stats->batches += 1;
    stats->client_ops += ops.size();
    stats->max_batch_ops = std::max(
        stats->max_batch_ops, static_cast<std::uint64_t>(ops.size()));
  }

  // Partition into arrival-order chains per slot.
  std::vector<std::vector<BatchOp>> per_slot(slots_.size());
  for (auto& op : ops) {
    TBR_ENSURE(op.slot < slots_.size(), "batch op for unknown slot");
    per_slot[op.slot].push_back(std::move(op));
  }

  auto plan = std::make_shared<BatchPlan>();
  for (std::uint32_t s = 0; s < per_slot.size(); ++s) {
    if (per_slot[s].empty()) continue;
    BatchPlan::Chain chain;
    chain.slot = s;
    for (auto& op : per_slot[s]) {
      const bool extends_run = !chain.steps.empty() &&
                               chain.steps.back().is_write == op.is_write;
      if (op.is_write) {
        if (coalesce_writes && extends_run) {
          auto& step = chain.steps.back();
          step.value = std::move(op.value);  // last write wins
          step.write_dones.push_back(std::move(op.write_done));
          if (stats != nullptr) stats->absorbed_writes += 1;
        } else {
          BatchPlan::Step step;
          step.is_write = true;
          step.value = std::move(op.value);
          step.write_dones.push_back(std::move(op.write_done));
          chain.steps.push_back(std::move(step));
          if (stats != nullptr) stats->protocol_writes += 1;
        }
      } else {
        if (extends_run) {
          chain.steps.back().read_dones.push_back(std::move(op.read_done));
          if (stats != nullptr) stats->coalesced_reads += 1;
        } else {
          BatchPlan::Step step;
          step.read_dones.push_back(std::move(op.read_done));
          chain.steps.push_back(std::move(step));
          if (stats != nullptr) stats->protocol_reads += 1;
        }
      }
    }
    plan->chains.push_back(std::move(chain));
  }
  plan->outstanding = plan->chains.size();
  plan->done = std::move(done);

  for (std::size_t c = 0; c < plan->chains.size(); ++c) {
    run_batch_chain(plan, c, 0);
  }
}

void MuxProcess::run_batch_chain(std::shared_ptr<BatchPlan> plan,
                                 std::size_t chain, std::size_t step) {
  auto& ch = plan->chains[chain];
  if (step == ch.steps.size()) {
    if (--plan->outstanding == 0) plan->done();
    return;
  }
  auto& st = ch.steps[step];
  if (st.is_write) {
    const SeqNo version = ++batch_versions_[ch.slot];
    start_write(*net_, ch.slot, std::move(st.value),
                [this, plan, chain, step, version] {
                  auto& dones = plan->chains[chain].steps[step].write_dones;
                  for (std::size_t k = 0; k < dones.size(); ++k) {
                    // Only the run's last write reached the register.
                    if (dones[k]) dones[k](version, k + 1 != dones.size());
                  }
                  run_batch_chain(plan, chain, step + 1);
                });
  } else {
    start_read(*net_, ch.slot,
               [this, plan, chain, step](const Value& v, SeqNo index) {
                 for (auto& done : plan->chains[chain].steps[step].read_dones) {
                   if (done) done(v, index);
                 }
                 run_batch_chain(plan, chain, step + 1);
               });
  }
}

RegisterProcessBase& MuxProcess::slot(std::uint32_t index) {
  TBR_ENSURE(index < slots_.size(), "slot out of range");
  return *slots_[index];
}

std::uint64_t MuxProcess::local_memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& reg : slots_) bytes += reg->local_memory_bytes();
  return bytes;
}

}  // namespace tbr
