#include "kvstore/sharded_store.hpp"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/contracts.hpp"
#include "runtime/affinity.hpp"

namespace tbr {

namespace {

constexpr Status kStoreShutdown{StatusCode::kShutdown, "store is shut down"};
constexpr Status kHomeCrashed{StatusCode::kCrashed,
                              "the key's home replica has crashed"};
constexpr Status kReaderCrashed{StatusCode::kCrashed,
                                "the requested replica has crashed"};
constexpr Status kLivenessRefused{
    StatusCode::kLivenessLost, "shard lost liveness; operations are refused"};
constexpr Status kLivenessMidBatch{StatusCode::kLivenessLost,
                                   "shard lost liveness mid-batch"};

}  // namespace

/// One queued client request (or a crash marker) bound for a shard worker.
/// The operation itself is a pooled OpState owned by the store's client;
/// the mailbox entry is just a pointer — no promises, no shared state.
struct ShardedKvStore::ShardOp {
  OpState* op = nullptr;             ///< null => crash marker
  ProcessId crash_node = kNoProcess; ///< crash markers only
};

/// Everything one register group owns. The worker thread is the only one
/// touching `net` and the plain fields below it; cross-thread state is the
/// mailbox, the inflight counter, and the report snapshot, each with its
/// own synchronization.
struct ShardedKvStore::Shard {
  std::uint32_t id = 0;
  std::uint32_t n = 0;
  bool coalesce_writes = true;
  std::size_t max_batch = 0;
  std::size_t min_batch = 0;
  std::chrono::microseconds min_batch_wait{0};
  bool pin = false;

  MailboxT<ShardOp> mailbox;

  // Worker-only.
  std::unique_ptr<SimNetwork> net;
  BatchStats batch;
  std::uint64_t failed_ops = 0;
  ProcessId next_reader = 0;
  /// A batch stalled (more than t crashes, or an event-budget blowout).
  /// The stalled registers keep their one-op-at-a-time guard armed, so no
  /// further protocol operation may be issued here: every later client op
  /// fails fast instead. The latch also guarantees the shard never runs
  /// its simulator again, so a stalled window's parked callbacks can never
  /// fire late into recycled state.
  bool lost_liveness = false;
  /// Window scratch, reused every batch (steady state: no allocation).
  std::vector<std::vector<MuxProcess::BatchOp>> per_node;
  std::vector<std::pair<OpState*, std::uint32_t>> issued;  // (op, gen)
  std::vector<OpState*> to_fail;
  std::size_t outstanding_nodes = 0;

  // drain(): ops accepted but not yet resolved.
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  std::int64_t inflight = 0;

  // Published after every window; readable from any thread.
  mutable std::mutex report_mu;
  ShardReport report;

  void op_accepted() {
    const std::scoped_lock lock(idle_mu);
    ++inflight;
  }
  void ops_resolved(std::int64_t count) {
    {
      const std::scoped_lock lock(idle_mu);
      inflight -= count;
      TBR_ENSURE(inflight >= 0, "inflight underflow");
    }
    idle_cv.notify_all();
  }
};

// ---- ClientImpl: the unified client API over the shard workers ---------------

class ShardedKvStore::ClientImpl final : public KvClientEngine {
 public:
  explicit ClientImpl(ShardedKvStore& store) : store_(store), client_(*this) {}

  void client_route(std::string_view key, OpState& st) override {
    const ShardRouter::Placement at = store_.router_.place(key);
    st.shard = at.shard;
    st.slot = at.slot;
    if (st.kind == OpKind::kWrite) {
      st.node = at.home;
    } else {
      TBR_ENSURE(st.node == kAnyReplica || st.node < store_.opt_.n,
                 "reader out of range");
    }
  }

  void client_issue(OpState& st) override {
    Shard& shard = *store_.shards_[st.shard];
    shard.op_accepted();
    ShardOp op;
    op.op = &st;
    if (!shard.mailbox.push(std::move(op))) {
      shard.ops_resolved(1);
      st.owner->complete_failed(st, kStoreShutdown);
    }
  }

  void client_park(OpState& st, OpPool& pool) override {
    pool.block_until_ready(st);
  }

  KvClient& client() noexcept { return client_; }

 private:
  ShardedKvStore& store_;
  KvClient client_;
};

ShardedKvStore::ShardedKvStore(Options options)
    : opt_(std::move(options)),
      router_(opt_.shards, opt_.slots_per_shard, opt_.n) {
  TBR_ENSURE(opt_.shards >= 1, "store needs at least one shard");
  const std::uint32_t n = opt_.n;
  const std::uint32_t t = opt_.t;
  const Value initial = opt_.initial;
  auto slot_cfg = [n, t, initial](std::uint32_t slot) {
    GroupConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.writer = slot % n;  // shard-internal placement, as in KvStore
    cfg.initial = initial;
    cfg.validate();
    return cfg;
  };

  // An explicit factory wins; otherwise the engine knob picks the per-slot
  // register protocol (two-bit default, or a fast-path read engine).
  if (!opt_.register_factory) {
    const Algorithm engine = opt_.engine;
    opt_.register_factory = [engine](const GroupConfig& cfg, ProcessId pid) {
      return make_register_process(engine, cfg, pid);
    };
  }

  shards_.reserve(opt_.shards);
  for (std::uint32_t s = 0; s < opt_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    shard->n = n;
    shard->coalesce_writes = opt_.coalesce_writes;
    shard->max_batch = opt_.max_batch;
    shard->min_batch = opt_.min_batch;
    shard->min_batch_wait = opt_.min_batch_wait;
    shard->pin = opt_.pin_shard_threads;
    shard->per_node.resize(n);

    std::vector<std::unique_ptr<ProcessBase>> processes;
    processes.reserve(n);
    for (ProcessId pid = 0; pid < n; ++pid) {
      processes.push_back(std::make_unique<MuxProcess>(
          opt_.slots_per_shard, slot_cfg, pid, opt_.register_factory));
    }
    SimNetwork::Options net_opt;
    net_opt.seed = opt_.seed ^ (0x5A17ULL * (s + 1));
    net_opt.service_time = opt_.service_time;
    net_opt.scheduler_policy = opt_.scheduler_policy;
    net_opt.delay = opt_.delay_factory
                        ? opt_.delay_factory(s)
                        : make_constant_delay(opt_.delay_ticks);
    shard->net = std::make_unique<SimNetwork>(std::move(processes),
                                              std::move(net_opt));
    shards_.push_back(std::move(shard));
  }

  client_impl_ = std::make_unique<ClientImpl>(*this);

  workers_.reserve(opt_.shards);
  for (auto& shard : shards_) {
    workers_.emplace_back([s = shard.get()](std::stop_token st) {
      worker_loop(*s, st);
    });
  }
}

ShardedKvStore::~ShardedKvStore() { stop(); }

void ShardedKvStore::stop() {
  for (auto& shard : shards_) shard->mailbox.close();
  workers_.clear();  // jthread: request_stop + join (drains queued windows)
}

KvClient& ShardedKvStore::client() noexcept { return client_impl_->client(); }

std::uint32_t ShardedKvStore::shard_count() const noexcept {
  return static_cast<std::uint32_t>(shards_.size());
}

std::uint32_t ShardedKvStore::node_count() const noexcept { return opt_.n; }

ShardedKvStore::Shard& ShardedKvStore::shard_for(
    std::string_view key, ShardRouter::Placement& out) {
  out = router_.place(key);
  return *shards_[out.shard];
}

void ShardedKvStore::crash(std::uint32_t shard, ProcessId node) {
  TBR_ENSURE(shard < shards_.size(), "shard out of range");
  TBR_ENSURE(node < opt_.n, "node out of range");
  ShardOp op;
  op.crash_node = node;
  Shard& s = *shards_[shard];
  s.op_accepted();
  if (!s.mailbox.push(std::move(op))) s.ops_resolved(1);
}

void ShardedKvStore::drain() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->idle_mu);
    shard->idle_cv.wait(lock, [&] { return shard->inflight == 0; });
  }
}

// ---- observability ------------------------------------------------------------

ShardedKvStore::ShardReport ShardedKvStore::shard_report(
    std::uint32_t shard) const {
  TBR_ENSURE(shard < shards_.size(), "shard out of range");
  const std::scoped_lock lock(shards_[shard]->report_mu);
  return shards_[shard]->report;
}

BatchStats ShardedKvStore::batch_stats() const {
  BatchStats merged;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    merged.merge(shard_report(s).batch);
  }
  return merged;
}

std::uint64_t ShardedKvStore::frames_sent() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    total += shard_report(s).net.total_sent();
  }
  return total;
}

// ---- the shard worker ---------------------------------------------------------

void ShardedKvStore::worker_loop(Shard& shard, std::stop_token st) {
  if (shard.pin) (void)pin_current_thread(shard.id);

  // One window buffer for the worker's lifetime: pop_all refills it in
  // place, so steady-state batching never allocates for the window itself.
  std::vector<ShardOp> window;
  while (true) {
    shard.mailbox.pop_all(st, window, shard.max_batch, shard.min_batch,
                          shard.min_batch_wait);
    if (window.empty()) return;  // closed and drained, or stop requested

    // Crash markers apply between batching windows: everything in this
    // window is planned against the post-crash group.
    std::int64_t resolved = 0;
    for (auto& op : window) {
      if (op.op != nullptr) continue;
      shard.net->crash_now(op.crash_node);
      ++resolved;
    }

    // A shard that stalled once can never complete another quorum — and
    // its stalled registers still hold their one-op-per-process guard, so
    // issuing into them would be a contract violation. Everything fails
    // fast from here on.
    if (shard.lost_liveness) {
      for (auto& op : window) {
        if (op.op == nullptr) continue;
        op.op->owner->complete_failed(*op.op, kLivenessRefused);
        ++resolved;
        ++shard.failed_ops;
      }
      publish_report(shard);
      shard.ops_resolved(resolved);
      continue;
    }

    // Plan the window: one MuxProcess batch per replica that has work.
    // Reads go to their chosen replica, writes to their slot's home; ops
    // whose replica has crashed fail fast, before any protocol traffic.
    // All scratch (per-node op lists, the issued registry) is reused.
    for (auto& ops : shard.per_node) ops.clear();
    shard.issued.clear();
    for (auto& sop : window) {
      if (sop.op == nullptr) continue;
      OpState& op = *sop.op;
      if (op.kind == OpKind::kWrite) {
        if (shard.net->crashed(op.node)) {
          op.owner->complete_failed(op, kHomeCrashed);
          ++resolved;
          ++shard.failed_ops;
          continue;
        }
        MuxProcess::BatchOp batch_op;
        batch_op.slot = op.slot;
        batch_op.is_write = true;
        batch_op.value = std::move(op.value);
        // One captured pointer: stays in std::function's inline storage.
        batch_op.write_done = [&op](SeqNo version, bool absorbed) {
          op.result.version = version;
          op.result.absorbed = absorbed;
          op.owner->complete(op);
        };
        shard.issued.emplace_back(&op, op.gen);
        shard.per_node[op.node].push_back(std::move(batch_op));
      } else {
        ProcessId reader = op.node;
        if (reader == kAnyReplica) {
          // Rotate over live replicas for an even read fan-out.
          for (std::uint32_t tries = 0; tries < shard.n; ++tries) {
            reader = shard.next_reader;
            shard.next_reader = (shard.next_reader + 1) % shard.n;
            if (!shard.net->crashed(reader)) break;
          }
        }
        if (shard.net->crashed(reader)) {
          op.owner->complete_failed(op, kReaderCrashed);
          ++resolved;
          ++shard.failed_ops;
          continue;
        }
        MuxProcess::BatchOp batch_op;
        batch_op.slot = op.slot;
        batch_op.read_done = [&op](const Value& v, SeqNo index) {
          op.result.value = v;  // copy into the pooled capacity
          op.result.version = index;
          op.owner->complete(op);
        };
        shard.issued.emplace_back(&op, op.gen);
        shard.per_node[reader].push_back(std::move(batch_op));
      }
    }

    // Issue every node's batch into one simulation run; chains across
    // nodes and slots interleave exactly as concurrent clients would. The
    // outstanding counter is a plain shard field: the lost_liveness latch
    // guarantees a stalled window's parked callbacks can never fire later
    // (the shard's simulator never runs again).
    shard.outstanding_nodes = 0;
    std::size_t issued_ops = 0;
    for (ProcessId pid = 0; pid < shard.n; ++pid) {
      auto& node_ops = shard.per_node[pid];
      if (node_ops.empty()) continue;
      ++shard.outstanding_nodes;
      issued_ops += node_ops.size();
      auto& mux = shard.net->process_as<MuxProcess>(pid);
      mux.start_batch(shard.net->context(pid),
                      std::span<MuxProcess::BatchOp>(node_ops),
                      shard.coalesce_writes,
                      [&shard] { --shard.outstanding_nodes; },
                      &shard.batch);
    }
    if (shard.outstanding_nodes > 0) {
      const bool ok = shard.net->run_until(
          [&shard] { return shard.outstanding_nodes == 0; });
      if (!ok) {
        // Liveness lost (more than t crashes, or an event-budget blowout):
        // whatever the protocol could not finish fails over to the client,
        // and the shard refuses everything from now on (see above). The
        // issued registry is filtered under the pool lock: ops that
        // already completed are ready (wait mode) or recycled with a new
        // generation (callback mode) — only the stuck ones are failed.
        shard.lost_liveness = true;
        shard.to_fail.clear();
        if (!shard.issued.empty()) {
          OpPool& pool = shard.issued.front().first->owner->pool();
          const std::scoped_lock lock(pool.mu());
          for (const auto& [op, gen] : shard.issued) {
            if (op->ready.load(std::memory_order_acquire)) continue;
            if (op->gen != gen) continue;
            shard.to_fail.push_back(op);
          }
        }
        for (OpState* op : shard.to_fail) {
          op->owner->complete_failed(*op, kLivenessMidBatch);
        }
        shard.failed_ops += issued_ops;  // upper bound; resolved ops ignore it
      }
    }
    resolved += static_cast<std::int64_t>(issued_ops);

    publish_report(shard);
    shard.ops_resolved(resolved);
  }
}

void ShardedKvStore::publish_report(Shard& shard) {
  const std::scoped_lock lock(shard.report_mu);
  shard.report.batch = shard.batch;
  shard.report.net = shard.net->stats();
  shard.report.virtual_now = shard.net->now();
  shard.report.failed_ops = shard.failed_ops;
  shard.report.lost_liveness = shard.lost_liveness;
}

}  // namespace tbr
