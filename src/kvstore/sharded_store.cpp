#include "kvstore/sharded_store.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "runtime/affinity.hpp"

namespace tbr {

namespace {

/// Resolve a promise that a stalled batch may also try to fail later (or
/// vice versa): first resolution wins, the loser is a no-op.
template <typename P, typename V>
void fulfill(const std::shared_ptr<P>& promise, V&& value) {
  try {
    promise->set_value(std::forward<V>(value));
  } catch (const std::future_error&) {
  }
}

template <typename P>
void fail(const std::shared_ptr<P>& promise, const std::string& why) {
  try {
    promise->set_exception(
        std::make_exception_ptr(std::runtime_error(why)));
  } catch (const std::future_error&) {
  }
}

}  // namespace

/// One queued client request (or a crash marker) bound for a shard worker.
struct ShardedKvStore::ShardOp {
  enum class Kind { kPut, kGet, kCrash };
  Kind kind = Kind::kGet;
  std::uint32_t slot = 0;
  /// kPut: home replica. kGet: requested reader (kAnyReplica = rotate).
  /// kCrash: the victim.
  ProcessId node = kNoProcess;
  Value value;  ///< kPut payload
  std::shared_ptr<std::promise<PutResult>> put_done;
  std::shared_ptr<std::promise<GetResult>> get_done;
};

/// Everything one register group owns. The worker thread is the only one
/// touching `net` and the plain fields below it; cross-thread state is the
/// mailbox, the inflight counter, and the report snapshot, each with its
/// own synchronization.
struct ShardedKvStore::Shard {
  std::uint32_t id = 0;
  std::uint32_t n = 0;
  bool coalesce_writes = true;
  std::size_t max_batch = 0;
  bool pin = false;

  MailboxT<ShardOp> mailbox;

  // Worker-only.
  std::unique_ptr<SimNetwork> net;
  BatchStats batch;
  std::uint64_t failed_ops = 0;
  ProcessId next_reader = 0;
  /// A batch stalled (more than t crashes, or an event-budget blowout).
  /// The stalled registers keep their one-op-at-a-time guard armed, so no
  /// further protocol operation may be issued here: every later client op
  /// fails fast instead.
  bool lost_liveness = false;

  // drain(): ops accepted but not yet resolved.
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  std::int64_t inflight = 0;

  // Published after every window; readable from any thread.
  mutable std::mutex report_mu;
  ShardReport report;

  void op_accepted() {
    const std::scoped_lock lock(idle_mu);
    ++inflight;
  }
  void ops_resolved(std::int64_t count) {
    {
      const std::scoped_lock lock(idle_mu);
      inflight -= count;
      TBR_ENSURE(inflight >= 0, "inflight underflow");
    }
    idle_cv.notify_all();
  }
};

ShardedKvStore::ShardedKvStore(Options options)
    : opt_(std::move(options)),
      router_(opt_.shards, opt_.slots_per_shard, opt_.n) {
  TBR_ENSURE(opt_.shards >= 1, "store needs at least one shard");
  const std::uint32_t n = opt_.n;
  const std::uint32_t t = opt_.t;
  const Value initial = opt_.initial;
  auto slot_cfg = [n, t, initial](std::uint32_t slot) {
    GroupConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.writer = slot % n;  // shard-internal placement, as in KvStore
    cfg.initial = initial;
    cfg.validate();
    return cfg;
  };

  shards_.reserve(opt_.shards);
  for (std::uint32_t s = 0; s < opt_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    shard->n = n;
    shard->coalesce_writes = opt_.coalesce_writes;
    shard->max_batch = opt_.max_batch;
    shard->pin = opt_.pin_shard_threads;

    std::vector<std::unique_ptr<ProcessBase>> processes;
    processes.reserve(n);
    for (ProcessId pid = 0; pid < n; ++pid) {
      processes.push_back(std::make_unique<MuxProcess>(
          opt_.slots_per_shard, slot_cfg, pid, opt_.register_factory));
    }
    SimNetwork::Options net_opt;
    net_opt.seed = opt_.seed ^ (0x5A17ULL * (s + 1));
    net_opt.service_time = opt_.service_time;
    net_opt.delay = opt_.delay_factory
                        ? opt_.delay_factory(s)
                        : make_constant_delay(opt_.delay_ticks);
    shard->net = std::make_unique<SimNetwork>(std::move(processes),
                                              std::move(net_opt));
    shards_.push_back(std::move(shard));
  }

  workers_.reserve(opt_.shards);
  for (auto& shard : shards_) {
    workers_.emplace_back([s = shard.get()](std::stop_token st) {
      worker_loop(*s, st);
    });
  }
}

ShardedKvStore::~ShardedKvStore() {
  for (auto& shard : shards_) shard->mailbox.close();
  workers_.clear();  // jthread: request_stop + join (drains queued windows)
}

std::uint32_t ShardedKvStore::shard_count() const noexcept {
  return static_cast<std::uint32_t>(shards_.size());
}

std::uint32_t ShardedKvStore::node_count() const noexcept { return opt_.n; }

ShardedKvStore::Shard& ShardedKvStore::shard_for(
    std::string_view key, ShardRouter::Placement& out) {
  out = router_.place(key);
  return *shards_[out.shard];
}

// ---- client API --------------------------------------------------------------

std::future<ShardedKvStore::PutResult> ShardedKvStore::put_async(
    std::string_view key, Value value) {
  ShardRouter::Placement at;
  Shard& shard = shard_for(key, at);
  auto promise = std::make_shared<std::promise<PutResult>>();
  auto future = promise->get_future();
  ShardOp op;
  op.kind = ShardOp::Kind::kPut;
  op.slot = at.slot;
  op.node = at.home;
  op.value = std::move(value);
  op.put_done = promise;
  shard.op_accepted();
  if (!shard.mailbox.push(std::move(op))) {
    shard.ops_resolved(1);
    fail(promise, "put(" + std::string(key) + "): store is shut down");
  }
  return future;
}

std::future<ShardedKvStore::GetResult> ShardedKvStore::get_async(
    std::string_view key, ProcessId reader) {
  ShardRouter::Placement at;
  Shard& shard = shard_for(key, at);
  TBR_ENSURE(reader == kAnyReplica || reader < opt_.n,
             "reader out of range");
  auto promise = std::make_shared<std::promise<GetResult>>();
  auto future = promise->get_future();
  ShardOp op;
  op.kind = ShardOp::Kind::kGet;
  op.slot = at.slot;
  op.node = reader;
  op.get_done = promise;
  shard.op_accepted();
  if (!shard.mailbox.push(std::move(op))) {
    shard.ops_resolved(1);
    fail(promise, "get(" + std::string(key) + "): store is shut down");
  }
  return future;
}

ShardedKvStore::PutResult ShardedKvStore::put(std::string_view key,
                                              Value value) {
  return put_async(key, std::move(value)).get();
}

ShardedKvStore::GetResult ShardedKvStore::get(std::string_view key,
                                              ProcessId reader) {
  return get_async(key, reader).get();
}

void ShardedKvStore::crash(std::uint32_t shard, ProcessId node) {
  TBR_ENSURE(shard < shards_.size(), "shard out of range");
  TBR_ENSURE(node < opt_.n, "node out of range");
  ShardOp op;
  op.kind = ShardOp::Kind::kCrash;
  op.node = node;
  Shard& s = *shards_[shard];
  s.op_accepted();
  if (!s.mailbox.push(std::move(op))) s.ops_resolved(1);
}

void ShardedKvStore::drain() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->idle_mu);
    shard->idle_cv.wait(lock, [&] { return shard->inflight == 0; });
  }
}

// ---- observability ------------------------------------------------------------

ShardedKvStore::ShardReport ShardedKvStore::shard_report(
    std::uint32_t shard) const {
  TBR_ENSURE(shard < shards_.size(), "shard out of range");
  const std::scoped_lock lock(shards_[shard]->report_mu);
  return shards_[shard]->report;
}

BatchStats ShardedKvStore::batch_stats() const {
  BatchStats merged;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    merged.merge(shard_report(s).batch);
  }
  return merged;
}

std::uint64_t ShardedKvStore::frames_sent() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    total += shard_report(s).net.total_sent();
  }
  return total;
}

// ---- the shard worker ---------------------------------------------------------

void ShardedKvStore::worker_loop(Shard& shard, std::stop_token st) {
  if (shard.pin) (void)pin_current_thread(shard.id);

  // One window buffer for the worker's lifetime: pop_all refills it in
  // place, so steady-state batching never allocates for the window itself.
  std::vector<ShardOp> window;
  while (true) {
    shard.mailbox.pop_all(st, window, shard.max_batch);
    if (window.empty()) return;  // closed and drained, or stop requested

    // Crash markers apply between batching windows: everything in this
    // window is planned against the post-crash group.
    std::int64_t resolved = 0;
    for (auto& op : window) {
      if (op.kind != ShardOp::Kind::kCrash) continue;
      shard.net->crash_now(op.node);
      ++resolved;
    }

    // A shard that stalled once can never complete another quorum — and
    // its stalled registers still hold their one-op-per-process guard, so
    // issuing into them would be a contract violation. Everything fails
    // fast from here on.
    if (shard.lost_liveness) {
      for (auto& op : window) {
        if (op.kind == ShardOp::Kind::kCrash) continue;
        const std::string why = "shard " + std::to_string(shard.id) +
                                " lost liveness; operations are refused";
        if (op.kind == ShardOp::Kind::kPut) {
          fail(op.put_done, "put: " + why);
        } else {
          fail(op.get_done, "get: " + why);
        }
        ++resolved;
        ++shard.failed_ops;
      }
      publish_report(shard);
      shard.ops_resolved(resolved);
      continue;
    }

    // Plan the window: one MuxProcess batch per replica that has work.
    // Reads go to their chosen replica, writes to their slot's home; ops
    // whose replica has crashed fail fast, before any protocol traffic.
    std::vector<std::vector<MuxProcess::BatchOp>> per_node(shard.n);
    std::vector<std::shared_ptr<std::promise<PutResult>>> put_promises;
    std::vector<std::shared_ptr<std::promise<GetResult>>> get_promises;
    for (auto& op : window) {
      if (op.kind == ShardOp::Kind::kCrash) continue;
      if (op.kind == ShardOp::Kind::kPut) {
        if (shard.net->crashed(op.node)) {
          fail(op.put_done, "put: home replica p" + std::to_string(op.node) +
                                " of shard " + std::to_string(shard.id) +
                                " has crashed");
          ++resolved;
          ++shard.failed_ops;
          continue;
        }
        MuxProcess::BatchOp batch_op;
        batch_op.slot = op.slot;
        batch_op.is_write = true;
        batch_op.value = std::move(op.value);
        batch_op.write_done = [done = op.put_done](SeqNo version,
                                                   bool absorbed) {
          fulfill(done, PutResult{version, absorbed});
        };
        put_promises.push_back(std::move(op.put_done));
        per_node[op.node].push_back(std::move(batch_op));
      } else {
        ProcessId reader = op.node;
        if (reader == kAnyReplica) {
          // Rotate over live replicas for an even read fan-out.
          for (std::uint32_t tries = 0; tries < shard.n; ++tries) {
            reader = shard.next_reader;
            shard.next_reader = (shard.next_reader + 1) % shard.n;
            if (!shard.net->crashed(reader)) break;
          }
        }
        if (shard.net->crashed(reader)) {
          fail(op.get_done, "get: replica p" + std::to_string(reader) +
                                " of shard " + std::to_string(shard.id) +
                                " has crashed");
          ++resolved;
          ++shard.failed_ops;
          continue;
        }
        MuxProcess::BatchOp batch_op;
        batch_op.slot = op.slot;
        batch_op.read_done = [done = op.get_done](const Value& v,
                                                  SeqNo index) {
          fulfill(done, GetResult{v, index});
        };
        get_promises.push_back(std::move(op.get_done));
        per_node[reader].push_back(std::move(batch_op));
      }
    }

    // Issue every node's batch into one simulation run; chains across
    // nodes and slots interleave exactly as concurrent clients would. The
    // completion counter is heap-held: a batch that stalls (liveness lost)
    // leaves its callbacks parked in the simulator, and they may fire
    // during a LATER window's run — they must land on their own window's
    // counter, not on a dead stack slot.
    auto outstanding_nodes = std::make_shared<std::size_t>(0);
    std::size_t issued_ops = 0;
    for (ProcessId pid = 0; pid < shard.n; ++pid) {
      if (per_node[pid].empty()) continue;
      ++*outstanding_nodes;
      issued_ops += per_node[pid].size();
      auto& mux = shard.net->process_as<MuxProcess>(pid);
      mux.start_batch(shard.net->context(pid), std::move(per_node[pid]),
                      shard.coalesce_writes,
                      [outstanding_nodes] { --*outstanding_nodes; },
                      &shard.batch);
    }
    if (*outstanding_nodes > 0) {
      const bool ok = shard.net->run_until(
          [outstanding_nodes] { return *outstanding_nodes == 0; });
      if (!ok) {
        // Liveness lost (more than t crashes, or an event-budget blowout):
        // whatever the protocol could not finish fails over to the client,
        // and the shard refuses everything from now on (see above).
        shard.lost_liveness = true;
        for (const auto& p : put_promises) {
          fail(p, "put: shard " + std::to_string(shard.id) +
                      " lost liveness mid-batch");
        }
        for (const auto& p : get_promises) {
          fail(p, "get: shard " + std::to_string(shard.id) +
                      " lost liveness mid-batch");
        }
        shard.failed_ops += issued_ops;  // upper bound; resolved ops ignore it
      }
    }
    resolved += static_cast<std::int64_t>(issued_ops);

    publish_report(shard);
    shard.ops_resolved(resolved);
  }
}

void ShardedKvStore::publish_report(Shard& shard) {
  const std::scoped_lock lock(shard.report_mu);
  shard.report.batch = shard.batch;
  shard.report.net = shard.net->stats();
  shard.report.virtual_now = shard.net->now();
  shard.report.failed_ops = shard.failed_ops;
  shard.report.lost_liveness = shard.lost_liveness;
}

}  // namespace tbr
