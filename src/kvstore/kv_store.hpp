// KvStore: a replicated key-value store built from SWMR atomic registers.
//
// The downstream-product layer: what adopting the paper's register looks
// like when an application wants a keyspace instead of one cell. Keys are
// hashed onto a fixed set of register slots; slot s is writable at node
// s mod n (the SWMR constraint made into a sharding policy, the way
// single-leader-per-shard systems assign partitions), and readable at
// every node. Every slot is an independent register instance multiplexed
// over one simulated network (MuxProcess), so per-key histories are
// per-slot register histories — atomicity per key follows from Theorem 1,
// and the tests check exactly that.
#pragma once

#include <memory>
#include <string_view>

#include "client/client.hpp"
#include "kvstore/mux_process.hpp"
#include "sim/sim_network.hpp"
#include "workload/algorithms.hpp"

namespace tbr {

class KvStore {
 public:
  struct Options {
    std::uint32_t n = 5;      ///< replica nodes
    std::uint32_t t = 2;      ///< crash budget (2t < n)
    std::uint32_t slots = 16; ///< register instances (keyspace shards)
    std::uint64_t seed = 1;
    /// nullptr => ConstantDelay(1000).
    std::unique_ptr<DelayModel> delay;
    /// Per-slot register engine when `register_factory` is unset. The
    /// fast-path read engines (Algorithm::kOhRam / kTimeEfficient) drop
    /// get latency from 4Δ to 3Δ / 2Δ at the same crash budget.
    Algorithm engine = Algorithm::kTwoBit;
    /// Per-slot register implementation; overrides `engine` when set.
    MuxProcess::SlotFactory register_factory;
    /// Initial value of every slot (what get() of a never-written key
    /// returns, with version 0).
    Value initial;

    /// client() batch windows: collapse runs of queued writes to one slot
    /// into a single protocol write (last value wins; absorbed puts
    /// complete with `absorbed = true`). Reads always share rounds.
    bool coalesce_writes = true;

    /// Event-scheduler backend (SimNetwork::Options::scheduler_policy).
    EventQueue::Policy scheduler_policy = EventQueue::Policy::kHeap;

    /// OUT-OF-MODEL loss injection (see SimNetwork::Options::loss_rate).
    /// Keep 0 unless the per-slot registers ride a retransmitting link
    /// (`register_factory` wrapping in ReliableLinkProcess) — bare
    /// registers assume the model's reliable channels.
    double loss_rate = 0.0;
  };

  explicit KvStore(Options options);
  KvStore(KvStore&&) noexcept;
  KvStore& operator=(KvStore&&) noexcept;
  ~KvStore();

  // ---- the unified client API ------------------------------------------------
  /// Pooled Ticket/callback completions with uniform Status outcomes
  /// (src/client/client.hpp). Ops submitted between waits form one
  /// batching window, handed to MuxProcess::start_batch per replica —
  /// reads issued at one replica share a protocol round, queued writes to
  /// one slot coalesce last-write-wins (Options::coalesce_writes). wait()
  /// drives the simulation. Lazily built; stable across store moves.
  KvClient& client();

  // ---- placement ----------------------------------------------------------------
  std::uint32_t slot_of(std::string_view key) const;
  ProcessId home_node(std::string_view key) const;

  // ---- environment ----------------------------------------------------------------
  void crash(ProcessId node);
  bool crashed(ProcessId node) const;
  /// Drain in-flight protocol traffic (steady state between measurements).
  void settle();
  SimNetwork& net() noexcept { return *net_; }
  std::uint32_t node_count() const noexcept { return n_; }
  std::uint32_t slot_count() const noexcept { return slots_; }
  /// Protocol state across all nodes and slots.
  std::uint64_t total_memory_bytes();

 private:
  class ClientImpl;

  MuxProcess& mux_at(ProcessId node);

  std::uint32_t n_ = 0;
  std::uint32_t slots_ = 0;
  bool coalesce_writes_ = true;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<ClientImpl> client_impl_;  // engine + KvClient
};

}  // namespace tbr
