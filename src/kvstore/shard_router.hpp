// ShardRouter: deterministic key placement for the sharded KV engine.
//
// One hash, three coordinates. A key's 64-bit FNV-1a hash is split so the
// coordinates stay independent as the topology changes:
//
//   shard = high 32 bits  mod  #shards     (which register group)
//   slot  = low  32 bits  mod  slots/shard (which register inside the group)
//   home  = slot          mod  n           (which replica owns the write)
//
// Using disjoint hash halves for shard and slot means resharding (changing
// the shard count) re-balances keys across groups without also reshuffling
// their slot assignment pattern, and vice versa. KvStore routes through the
// single-shard router, so the flat store is the degenerate case of this
// scheme rather than a different one.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/ids.hpp"

namespace tbr {

class ShardRouter {
 public:
  ShardRouter(std::uint32_t shards, std::uint32_t slots_per_shard,
              std::uint32_t nodes_per_shard);

  /// Stable 64-bit FNV-1a; the one hash every placement decision derives
  /// from (shared with KvStore so flat and sharded placement agree).
  static std::uint64_t hash(std::string_view key);

  struct Placement {
    std::uint32_t shard = 0;  ///< register group
    std::uint32_t slot = 0;   ///< register instance within the group
    ProcessId home = 0;       ///< replica that owns the slot's writes
  };
  Placement place(std::string_view key) const;

  std::uint32_t shard_of(std::string_view key) const;
  std::uint32_t slot_of(std::string_view key) const;
  ProcessId home_node(std::string_view key) const;

  std::uint32_t shard_count() const noexcept { return shards_; }
  std::uint32_t slots_per_shard() const noexcept { return slots_; }
  std::uint32_t nodes_per_shard() const noexcept { return nodes_; }

 private:
  std::uint32_t shards_ = 1;
  std::uint32_t slots_ = 1;
  std::uint32_t nodes_ = 1;
};

}  // namespace tbr
