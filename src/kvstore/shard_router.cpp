#include "kvstore/shard_router.hpp"

#include "common/contracts.hpp"

namespace tbr {

ShardRouter::ShardRouter(std::uint32_t shards, std::uint32_t slots_per_shard,
                         std::uint32_t nodes_per_shard)
    : shards_(shards), slots_(slots_per_shard), nodes_(nodes_per_shard) {
  TBR_ENSURE(shards_ >= 1, "router needs at least one shard");
  TBR_ENSURE(slots_ >= 1, "router needs at least one slot per shard");
  TBR_ENSURE(nodes_ >= 1, "router needs at least one node per shard");
}

std::uint64_t ShardRouter::hash(std::string_view key) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {

/// splitmix64 finalizer. Raw FNV-1a mixes its LOW bits well but leaves the
/// high half nearly constant for short, similar keys ("key-0".."key-255"
/// cover as few as 3 of 8 high-bits shard classes) — routing on it starves
/// shards. The avalanche spreads every input bit over the whole word, so
/// the two halves become independently usable.
std::uint64_t avalanche(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ShardRouter::Placement ShardRouter::place(std::string_view key) const {
  const std::uint64_t h = avalanche(hash(key));
  Placement p;
  p.shard = static_cast<std::uint32_t>((h >> 32) % shards_);
  p.slot = static_cast<std::uint32_t>((h & 0xFFFFFFFFULL) % slots_);
  p.home = p.slot % nodes_;
  return p;
}

std::uint32_t ShardRouter::shard_of(std::string_view key) const {
  return place(key).shard;
}

std::uint32_t ShardRouter::slot_of(std::string_view key) const {
  return place(key).slot;
}

ProcessId ShardRouter::home_node(std::string_view key) const {
  return place(key).home;
}

}  // namespace tbr
