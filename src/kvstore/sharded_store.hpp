// ShardedKvStore: the keyspace partitioned across independent register
// groups, with a per-shard batching window.
//
// The flat KvStore multiplexes every slot over ONE n-node network and
// drives it one blocking operation at a time — fine for a demo, a wall for
// throughput: every key in the store serializes through one event loop.
// This engine is the scale-out layer:
//
//   * ShardRouter splits the keyspace across `shards` register GROUPS, each
//     a full n-node crash-prone network of its own (its own MuxProcess per
//     node, its own simulator, its own worker thread). Groups share
//     nothing, so throughput scales with cores.
//   * Each shard has a mailbox (MailboxT<ShardOp>) and one worker thread.
//     The worker drains whatever accumulated while it executed the previous
//     batch — a natural batching window, as in group commit — and hands the
//     window to MuxProcess::start_batch, which collapses it into as few
//     protocol rounds as the register spec allows (reads issued at the same
//     replica share one round; queued writes to one slot can collapse
//     last-write-wins).
//   * Clients use the unified client() API (src/client/client.hpp): pooled
//     Ticket/callback completions resolved on the owning shard's worker,
//     with uniform Status outcomes. Any thread may submit. (The legacy
//     promise-backed put_async/get_async futures cost ~4 allocations per
//     op; they are gone — the pooled path costs none beyond the window
//     bookkeeping.)
//
// Atomicity is untouched: every slot is still one paper register; batching
// only chooses WHICH protocol operations to issue, never changes what a
// protocol operation does. tests/sharded_linearizability_test.cpp checks
// per-key histories across shard boundaries.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "kvstore/mux_process.hpp"
#include "kvstore/shard_router.hpp"
#include "metrics/message_stats.hpp"
#include "runtime/mailbox.hpp"
#include "sim/sim_network.hpp"
#include "workload/algorithms.hpp"

namespace tbr {

class ShardedKvStore {
 public:
  struct Options {
    std::uint32_t shards = 4;          ///< independent register groups
    std::uint32_t n = 3;               ///< replica nodes per shard
    std::uint32_t t = 1;               ///< crash budget per shard (2t < n)
    std::uint32_t slots_per_shard = 16;
    std::uint64_t seed = 1;
    Value initial;                     ///< value of every never-written key

    /// Collapse runs of queued writes to one slot into a single protocol
    /// write (last value wins; absorbed puts resolve with the surviving
    /// version and `absorbed = true`). Reads always coalesce.
    bool coalesce_writes = true;
    /// Largest window handed to one batch (0 = unbounded drain).
    std::size_t max_batch = 0;
    /// Batching window floor: a worker waits (up to min_batch_wait) until
    /// at least this many ops are queued before opening a window, like a
    /// group-commit minimum. 0 or 1 = drain whatever accumulated (the
    /// default). Pipelined clients get deterministic window sizes — the
    /// allocs-per-op gates rely on this.
    std::size_t min_batch = 0;
    /// Patience for min_batch before the worker opens a partial window
    /// anyway (keeps drain()/ragged traffic live).
    std::chrono::microseconds min_batch_wait{1000};
    /// Pin shard worker s to core s (best-effort; see runtime/affinity.hpp).
    bool pin_shard_threads = false;

    /// Per-shard network knobs (defaults match KvStore).
    Tick delay_ticks = 1000;  ///< constant channel delay when no factory set
    std::function<std::unique_ptr<DelayModel>(std::uint32_t shard)>
        delay_factory;                         ///< overrides delay_ticks
    Tick service_time = 0;                     ///< SimNetwork node capacity
    /// Event-scheduler backend for every shard's simulator
    /// (SimNetwork::Options::scheduler_policy).
    EventQueue::Policy scheduler_policy = EventQueue::Policy::kHeap;
    /// Per-slot register engine when `register_factory` is unset
    /// (two-bit default, or a fast-path read engine for 3Δ/2Δ gets).
    Algorithm engine = Algorithm::kTwoBit;
    MuxProcess::SlotFactory register_factory;  ///< overrides `engine`
  };

  /// Replica selector for gets: rotate over the shard's live-looking nodes.
  static constexpr ProcessId kAnyReplica = kNoProcess;

  explicit ShardedKvStore(Options options);
  ~ShardedKvStore();
  ShardedKvStore(const ShardedKvStore&) = delete;
  ShardedKvStore& operator=(const ShardedKvStore&) = delete;

  // ---- the unified client API (any thread) ---------------------------------------
  /// Pooled Ticket/callback completions with uniform Status outcomes
  /// (src/client/client.hpp). Ops execute inside their shard's next
  /// batching window; completions (and callbacks) run on the shard worker.
  /// put results carry version/absorbed; steady state costs at most one
  /// allocation per op end to end (gated).
  KvClient& client() noexcept;

  // ---- environment ---------------------------------------------------------------
  /// Crash replica `node` in shard `shard` (applied between batches).
  void crash(std::uint32_t shard, ProcessId node);
  /// Block until every shard queue is empty and its worker is idle.
  void drain();
  /// Stop accepting work and join the shard workers (already-queued
  /// windows drain first). Idempotent; the destructor calls it. Later
  /// submissions complete with StatusCode::kShutdown.
  void stop();

  const ShardRouter& router() const noexcept { return router_; }
  std::uint32_t shard_count() const noexcept;
  std::uint32_t node_count() const noexcept;

  // ---- observability (aggregated snapshots, safe from any thread) ---------------
  struct ShardReport {
    BatchStats batch;
    MessageStats net;
    Tick virtual_now = 0;        ///< shard simulator clock
    std::uint64_t failed_ops = 0;
    /// The shard stalled (over-budget crashes); it now refuses all ops.
    bool lost_liveness = false;
  };
  ShardReport shard_report(std::uint32_t shard) const;
  BatchStats batch_stats() const;      ///< merged across shards
  std::uint64_t frames_sent() const;   ///< merged across shards

 private:
  struct Shard;
  struct ShardOp;
  class ClientImpl;

  Shard& shard_for(std::string_view key, ShardRouter::Placement& out);
  static void worker_loop(Shard& shard, std::stop_token st);
  /// Copy the worker-owned counters into the cross-thread snapshot.
  static void publish_report(Shard& shard);

  Options opt_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ClientImpl> client_impl_;  // engine + KvClient
  std::vector<std::jthread> workers_;
};

}  // namespace tbr
