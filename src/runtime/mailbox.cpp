#include "runtime/mailbox.hpp"

namespace tbr {

bool Mailbox::push(Envelope env) {
  {
    const std::scoped_lock lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(env));
  }
  cv_.notify_one();
  return true;
}

std::optional<Envelope> Mailbox::pop(std::stop_token st) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, st, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // stopped or closed
  Envelope env = std::move(queue_.front());
  queue_.pop_front();
  return env;
}

void Mailbox::close() {
  {
    const std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::depth() const {
  const std::scoped_lock lock(mu_);
  return queue_.size();
}

}  // namespace tbr
