// Mailbox: the per-process event queue of the threaded runtime, and — in its
// generic MailboxT<T> form — the per-shard operation queue of the sharded
// KV engine.
//
// Exactly one consumer (the owning thread) pops; any thread may push.
// Blocking pop integrates with jthread stop tokens so shutdown never hangs
// (Core Guidelines CP.42: always wait with a condition). `pop_all` is the
// batching primitive: it drains everything queued in one swap, which is what
// makes a natural batching window — the consumer takes whatever accumulated
// while it was busy with the previous batch.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <stop_token>
#include <variant>

#include "common/ids.hpp"
#include "common/value.hpp"
#include "net/message.hpp"

namespace tbr {

/// A message delivery.
struct DeliverEnvelope {
  ProcessId from = kNoProcess;
  std::string encoded;  ///< wire bytes; decoded by the recipient's codec
};

/// Client request: start a write on this (writer) process.
struct WriteEnvelope {
  Value value;
  std::shared_ptr<std::promise<Tick>> done;  ///< resolves with latency (ns)
};

/// Client request: start a read on this process.
struct ReadResultT {
  Value value;
  SeqNo index = -1;
  Tick latency = 0;
};
struct ReadEnvelope {
  std::shared_ptr<std::promise<ReadResultT>> done;
};

/// Crash marker: the process stops handling everything at this point.
struct CrashEnvelope {};

/// Timer expiry (NetworkContext::schedule): run `fn` on the process thread.
struct TimerEnvelope {
  std::function<void()> fn;
};

using Envelope = std::variant<DeliverEnvelope, WriteEnvelope, ReadEnvelope,
                              CrashEnvelope, TimerEnvelope>;

template <typename T>
class MailboxT {
 public:
  /// Enqueue; returns false if the box has been closed (shutdown).
  bool push(T item) {
    {
      const std::scoped_lock lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or stop is requested / box closed.
  std::optional<T> pop(std::stop_token st) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, st, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;  // stopped or closed
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Block until at least one item is available, then drain up to
  /// `max_items` of them in arrival order (0 = everything queued). Returns
  /// an empty deque when stopped or closed — the consumer's exit signal.
  std::deque<T> pop_all(std::stop_token st, std::size_t max_items = 0) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, st, [this] { return !queue_.empty() || closed_; });
    std::deque<T> batch;
    if (queue_.empty()) return batch;  // stopped or closed
    if (max_items == 0 || queue_.size() <= max_items) {
      batch.swap(queue_);
    } else {
      for (std::size_t k = 0; k < max_items; ++k) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    return batch;
  }

  /// Wake consumers and reject further pushes.
  void close() {
    {
      const std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    const std::scoped_lock lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// The threaded register runtime's mailbox (its historical name).
using Mailbox = MailboxT<Envelope>;

}  // namespace tbr
