// Mailbox: the per-process event queue of the threaded runtime, and — in its
// generic MailboxT<T> form — the per-shard operation queue of the sharded
// KV engine.
//
// Exactly one consumer (the owning thread) pops; any thread may push.
// Blocking pop integrates with jthread stop tokens so shutdown never hangs
// (Core Guidelines CP.42: always wait with a condition). `pop_all` is the
// batching primitive: it drains everything queued into a caller-owned
// buffer in one pass, which is what makes a natural batching window — the
// consumer takes whatever accumulated while it was busy with the previous
// batch.
//
// Storage is a recycled power-of-two ring over a vector, not a deque: a
// deque crosses (and frees/reallocates) a chunk boundary every ~few dozen
// envelopes, which on the message hot path is a steady allocation drip.
// The ring grows to the high-water mark once and then never allocates.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <string>
#include <variant>
#include <vector>

#include "client/status.hpp"
#include "common/ids.hpp"
#include "common/value.hpp"
#include "net/message.hpp"

namespace tbr {

/// A message delivery. `encoded` travels by move from the sender's encode
/// buffer through the dispatcher into the receiving process, which recycles
/// it back to the network's buffer pool after decoding.
struct DeliverEnvelope {
  ProcessId from = kNoProcess;
  std::string encoded;  ///< wire bytes; decoded by the recipient's codec
  /// Channel epoch at send time (crash-rejoin fencing). The receiver drops
  /// the frame if the from->to channel was re-established after the stamp.
  std::uint32_t epoch = 0;
};

/// Completion callbacks for the client fast path. `status` is the client
/// layer's uniform outcome type (ok / crashed / shut down; see
/// client/status.hpp) built from static strings — no allocation. Callbacks
/// run on the owning process's thread; captures up to two pointers stay
/// inside std::function's inline storage, so a lean caller pays no
/// allocation per operation.
struct ReadResultT {
  Value value;
  SeqNo index = -1;
  Tick latency = 0;
};
using WriteCallback = std::function<void(Tick latency_ns, Status status)>;
using ReadCallback =
    std::function<void(const ReadResultT& result, Status status)>;

/// Client request: start a write on this (writer) process.
struct WriteEnvelope {
  Value value;
  WriteCallback done;
};

/// Client request: start a read on this process.
struct ReadEnvelope {
  ReadCallback done;
};

/// Crash marker: the process stops handling everything at this point.
struct CrashEnvelope {};

class RegisterProcessBase;

/// Rejoin marker: replace the crashed process with a fresh incarnation
/// built by `make` (run on the loop thread, so the new process is
/// constructed where it will live). Handled even while crashed — it is the
/// one envelope that ends the crashed state.
struct RecoverEnvelope {
  std::function<std::unique_ptr<RegisterProcessBase>()> make;
};

/// Timer expiry (NetworkContext::schedule): run `fn` on the process thread.
struct TimerEnvelope {
  std::function<void()> fn;
};

using Envelope = std::variant<DeliverEnvelope, WriteEnvelope, ReadEnvelope,
                              CrashEnvelope, RecoverEnvelope, TimerEnvelope>;

template <typename T>
class MailboxT {
 public:
  /// Enqueue; returns false if the box has been closed (shutdown). Takes an
  /// rvalue and moves from it only on success, so a rejected item — e.g. an
  /// envelope carrying a completion callback — is still intact for the
  /// caller's failure handling.
  bool push(T&& item) {
    {
      const std::scoped_lock lock(mu_);
      if (closed_) return false;
      if (count_ == ring_.size()) grow();
      ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(item);
      ++count_;
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or stop is requested / box closed.
  std::optional<T> pop(std::stop_token st) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, st, [this] { return count_ > 0 || closed_; });
    if (count_ == 0) return std::nullopt;  // stopped or closed
    return take();
  }

  /// Block until at least one item is available, then drain up to
  /// `max_items` of them in arrival order (0 = everything queued) into
  /// `out`, which is cleared first — reuse one buffer across calls and the
  /// drain itself never allocates. `out` left empty means stopped or
  /// closed: the consumer's exit signal.
  ///
  /// `min_items` > 1 is a batching-window floor (group-commit style): the
  /// consumer lingers up to `min_wait` for the queue to reach `min_items`
  /// before draining, so pipelined producers get deterministic window
  /// sizes; close(), stop, or the timeout open a partial window anyway.
  void pop_all(std::stop_token st, std::vector<T>& out,
               std::size_t max_items = 0, std::size_t min_items = 1,
               std::chrono::microseconds min_wait =
                   std::chrono::microseconds(0)) {
    out.clear();
    std::unique_lock lock(mu_);
    cv_.wait(lock, st, [this] { return count_ > 0 || closed_; });
    if (min_items > 1 && count_ < min_items && !closed_ &&
        min_wait.count() > 0) {
      (void)cv_.wait_for(lock, st, min_wait, [this, min_items] {
        return count_ >= min_items || closed_;
      });
    }
    if (count_ == 0) return;  // stopped or closed
    const std::size_t take_n =
        max_items == 0 ? count_ : std::min(count_, max_items);
    for (std::size_t k = 0; k < take_n; ++k) out.push_back(take());
  }

  /// Wake consumers and reject further pushes.
  void close() {
    {
      const std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    const std::scoped_lock lock(mu_);
    return count_;
  }

 private:
  T take() {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
    return item;
  }

  void grow() {
    std::vector<T> bigger(ring_.empty() ? 8 : ring_.size() * 2);
    for (std::size_t k = 0; k < count_; ++k) {
      bigger[k] = std::move(ring_[(head_ + k) & (ring_.size() - 1)]);
    }
    ring_.swap(bigger);
    head_ = 0;
  }

  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::vector<T> ring_;  // capacity always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

/// The threaded register runtime's mailbox (its historical name).
using Mailbox = MailboxT<Envelope>;

}  // namespace tbr
