// Mailbox: the per-process event queue of the threaded runtime.
//
// Exactly one consumer (the process's own thread) pops envelopes; any thread
// may push. Blocking pop integrates with jthread stop tokens so shutdown
// never hangs (Core Guidelines CP.42: always wait with a condition).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <stop_token>
#include <variant>

#include "common/ids.hpp"
#include "common/value.hpp"
#include "net/message.hpp"

namespace tbr {

/// A message delivery.
struct DeliverEnvelope {
  ProcessId from = kNoProcess;
  std::string encoded;  ///< wire bytes; decoded by the recipient's codec
};

/// Client request: start a write on this (writer) process.
struct WriteEnvelope {
  Value value;
  std::shared_ptr<std::promise<Tick>> done;  ///< resolves with latency (ns)
};

/// Client request: start a read on this process.
struct ReadResultT {
  Value value;
  SeqNo index = -1;
  Tick latency = 0;
};
struct ReadEnvelope {
  std::shared_ptr<std::promise<ReadResultT>> done;
};

/// Crash marker: the process stops handling everything at this point.
struct CrashEnvelope {};

/// Timer expiry (NetworkContext::schedule): run `fn` on the process thread.
struct TimerEnvelope {
  std::function<void()> fn;
};

using Envelope = std::variant<DeliverEnvelope, WriteEnvelope, ReadEnvelope,
                              CrashEnvelope, TimerEnvelope>;

class Mailbox {
 public:
  /// Enqueue; returns false if the box has been closed (shutdown).
  bool push(Envelope env);

  /// Block until an envelope is available or stop is requested / box closed.
  std::optional<Envelope> pop(std::stop_token st);

  /// Wake consumers and reject further pushes.
  void close();

  std::size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

}  // namespace tbr
