// Closed-loop workload over the threaded runtime: real concurrency, real
// clocks, the same atomicity checking as the simulator workloads.
#pragma once

#include <vector>

#include "checker/history.hpp"
#include "checker/swmr_checker.hpp"
#include "runtime/thread_network.hpp"

namespace tbr {

struct ThreadWorkloadOptions {
  GroupConfig cfg;
  Algorithm algo = Algorithm::kTwoBit;
  std::uint64_t seed = 1;

  std::uint32_t ops_per_process = 32;
  /// Artificial network delay range (reordering pressure), microseconds.
  std::uint32_t min_delay_us = 0;
  std::uint32_t max_delay_us = 300;
  /// Processes to crash (<= cfg.t, never the writer) partway through.
  std::uint32_t crashes = 0;
  /// Pin process/dispatcher threads to consecutive cores (best-effort).
  bool pin_threads = false;
};

struct ThreadWorkloadResult {
  std::vector<OpRecord> ops;
  MessageStats stats;
  std::uint32_t completed_by_correct = 0;
  std::uint32_t quota_of_correct = 0;

  CheckResult check_atomicity(const Value& initial) const {
    return SwmrChecker::check(ops, initial);
  }
};

ThreadWorkloadResult run_thread_workload(const ThreadWorkloadOptions& options);

}  // namespace tbr
