// ThreadNetwork: the register group on real threads.
//
// One jthread + mailbox per process (handlers are single-threaded per
// process, as the model requires); one dispatcher jthread that holds every
// in-flight frame until its randomized release time, providing genuine
// asynchrony and reordering. Frames are round-tripped through the
// algorithm's codec — what travels between threads is the wire encoding.
//
// Hot-path design: encode buffers come from a recycled pool (take on send,
// encode_into a warmed string, move the buffer through PendingFrame and
// DeliverEnvelope to the receiver, recycle after decode), mailboxes are
// ring-backed, and the callback client API keeps per-operation completion
// inside std::function's inline storage — so a steady-state operation
// allocates nothing in the runtime.
//
// Client API: client() exposes the unified RegisterClient (pooled
// Ticket/callback completions, uniform Status — see src/client/client.hpp);
// it reaches steady-state zero allocations per operation in both shapes.
// write_async/read_async are the raw callback path underneath it (callback
// runs on the owning process's thread; do not block in it). The
// promise-backed future wrappers this runtime once carried are gone —
// client() is the one way in.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/rng.hpp"
#include "metrics/message_stats.hpp"
#include "net/register_process.hpp"
#include "runtime/mailbox.hpp"
#include "workload/algorithms.hpp"

namespace tbr {

class ThreadNetwork {
 public:
  struct Options {
    GroupConfig cfg;
    Algorithm algo = Algorithm::kTwoBit;
    std::uint64_t seed = 1;
    /// Uniform per-frame artificial delay before delivery, in microseconds.
    /// max > min enables reordering; {0,0} is "as fast as possible".
    std::uint32_t min_delay_us = 0;
    std::uint32_t max_delay_us = 200;
    /// Optional override: build each process yourself (e.g. wrap in a
    /// ReliableLinkProcess). When set, `algo` is informational.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        process_factory;

    /// >= 0: pin process p's thread to core pin_cpu_base + p and the
    /// dispatcher to pin_cpu_base + n (mod hardware cores; best-effort).
    /// Keeps per-process cache state warm and throughput runs reproducible.
    int pin_cpu_base = -1;

    /// Optional override for the incarnation built by recover(). Unset +
    /// algo == kTwoBit: a TwoBitProcess with recover_via_catchup. Unset +
    /// any other algorithm: recovery is unavailable.
    std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                       ProcessId)>
        recover_factory;
  };

  explicit ThreadNetwork(Options options);
  ~ThreadNetwork();
  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  /// Launch all process threads and the dispatcher. Idempotent.
  void start();
  /// Stop threads and reject further work. Idempotent; called by ~.
  void stop();

  // ---- the unified client API ----------------------------------------------
  /// Pooled Ticket/callback completions with uniform Status outcomes
  /// (src/client/client.hpp). Safe from any thread; completions run on the
  /// owning process's thread. Steady state: zero allocations per op.
  RegisterClient& client() noexcept;

  // ---- client fast path (allocation-free completion) -----------------------
  /// Start a write at the writer process; `done(latency_ns, status)` runs
  /// on the writer's thread when the operation completes (non-ok status:
  /// the writer crashed or the network is shut down).
  void write_async(Value v, WriteCallback done);
  /// Start a read at `reader`; `done(result, status)` runs on the reader's
  /// thread.
  void read_async(ProcessId reader, ReadCallback done);

  /// Crash a process: it handles nothing after the marker is processed.
  void crash(ProcessId pid);
  bool crashed(ProcessId pid) const;
  /// Rejoin a crashed process as a fresh incarnation (Options::
  /// recover_factory). Every channel touching it is re-established:
  /// in-flight frames stamped with the old channel epoch are dropped at
  /// delivery, exactly as a closed-and-reopened TCP connection would lose
  /// them. The new incarnation starts (and catches up) on the loop thread.
  void recover(ProcessId pid);

  MessageStats stats_snapshot() const;
  const GroupConfig& config() const noexcept { return cfg_; }
  Tick now() const;  ///< ns since network construction

 private:
  class ProcessHost;
  class ClientImpl;
  struct PendingFrame {
    Tick release_at = 0;
    std::uint64_t seq = 0;
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    std::string encoded;
    std::uint32_t epoch = 0;  ///< channel epoch at send time (fencing)
    /// Set => this entry is a timer expiry for `to`, not a frame.
    std::function<void()> timer;
    bool operator>(const PendingFrame& other) const {
      if (release_at != other.release_at) return release_at > other.release_at;
      return seq > other.seq;
    }
  };

  void dispatch(ProcessId from, ProcessId to, const Message& msg);
  void schedule_timer(ProcessId pid, Tick delay, std::function<void()> fn);
  void dispatcher_loop(std::stop_token st);

  /// Channel epochs, flattened [from * n + to]; see SimNetwork's matrix for
  /// the semantics. Atomics because a cell is bumped by the endpoint
  /// threads (fence_peer / recover) and read by the sender's stamp and the
  /// receiver's delivery check.
  std::atomic<std::uint32_t>& chan_epoch(ProcessId from, ProcessId to) {
    return chan_epoch_[from * cfg_.n + to];
  }
  void record_fenced_drop();

  /// Encode-buffer pool: warmed strings cycled sender -> dispatcher ->
  /// receiver -> pool. Bounded so a burst cannot pin memory forever.
  std::string take_buffer();
  void recycle_buffer(std::string&& buf);
  static constexpr std::size_t kMaxPooledBuffers = 256;

  GroupConfig cfg_;
  Options opt_;
  std::vector<std::unique_ptr<ProcessHost>> hosts_;
  std::unique_ptr<ClientImpl> client_impl_;  // engine + RegisterClient
  std::unique_ptr<std::atomic<std::uint32_t>[]> chan_epoch_;  // n*n cells

  // Dispatcher state.
  mutable std::mutex dispatch_mu_;
  std::condition_variable_any dispatch_cv_;
  std::vector<PendingFrame> frame_heap_;  // min-heap via std::push_heap
  std::uint64_t frame_seq_ = 0;
  Rng delay_rng_;

  std::mutex buffer_mu_;
  std::vector<std::string> buffer_pool_;

  mutable std::mutex stats_mu_;
  MessageStats stats_;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::jthread> threads_;  // processes + dispatcher
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tbr
