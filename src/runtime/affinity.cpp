#include "runtime/affinity.hpp"

#include <algorithm>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tbr {

bool pin_current_thread(std::uint32_t core) {
#if defined(__linux__)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % cores, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace tbr
