// CPU affinity for the threaded runtimes.
//
// Shard workers and register-process threads are long-lived, CPU-bound
// loops; pinning each to a fixed core keeps their caches warm and makes
// multi-shard throughput measurements reproducible (a migrating worker
// shows up as noise, not as engine behaviour). Pinning is best-effort:
// platforms without sched_setaffinity simply run unpinned.
#pragma once

#include <cstdint>

namespace tbr {

/// Pin the calling thread to `core % hardware_concurrency`. Returns true on
/// success, false when unsupported or refused by the OS — callers treat
/// pinning as a hint, never a requirement.
bool pin_current_thread(std::uint32_t core);

}  // namespace tbr
