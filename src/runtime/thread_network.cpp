#include "runtime/thread_network.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/twobit_process.hpp"
#include "runtime/affinity.hpp"

namespace tbr {

using Clock = std::chrono::steady_clock;

namespace {
constexpr Status kCrashedStatus{StatusCode::kCrashed, "process has crashed"};
constexpr Status kShutdownStatus{StatusCode::kShutdown,
                                 "network is shut down"};
}  // namespace

// ---- ProcessHost: one process, its mailbox, its thread ----------------------

class ThreadNetwork::ProcessHost final : public NetworkContext {
 public:
  ProcessHost(ThreadNetwork& net, ProcessId pid,
              std::unique_ptr<RegisterProcessBase> proc)
      : net_(net), pid_(pid), proc_(std::move(proc)) {}

  // NetworkContext (called from the process thread inside handlers).
  void send(ProcessId to, const Message& msg) override {
    net_.dispatch(pid_, to, msg);
  }
  ProcessId self() const override { return pid_; }
  std::uint32_t process_count() const override { return net_.cfg_.n; }
  Tick now() const override { return net_.now(); }
  void schedule(Tick delay, std::function<void()> fn) override {
    net_.schedule_timer(pid_, delay, std::move(fn));
  }
  void fence_peer(ProcessId to) override {
    // Runs on this host's loop thread (inside a handler): re-establish our
    // send side toward `to`, so frames we sent before this point die.
    net_.chan_epoch(pid_, to).fetch_add(1, std::memory_order_release);
  }

  Mailbox& mailbox() noexcept { return mailbox_; }
  RegisterProcessBase& process() noexcept { return *proc_; }
  bool crashed() const noexcept {
    return crashed_.load(std::memory_order_acquire);
  }

  void run(std::stop_token st) {
    while (auto env = mailbox_.pop(st)) {
      handle(std::move(*env));
    }
  }

 private:
  void handle(Envelope env) {
    if (crashed()) {
      // The one envelope a dead process still honours is its own rebirth.
      if (auto* r = std::get_if<RecoverEnvelope>(&env)) {
        handle_one(std::move(*r));
        return;
      }
      fail_if_request(env);
      return;
    }
    std::visit(
        [this](auto&& e) { this->handle_one(std::forward<decltype(e)>(e)); },
        std::move(env));
  }

  static void fail_if_request(Envelope& env) {
    if (auto* w = std::get_if<WriteEnvelope>(&env)) {
      w->done(0, kCrashedStatus);
    }
    if (auto* r = std::get_if<ReadEnvelope>(&env)) {
      r->done(ReadResultT{}, kCrashedStatus);
    }
  }

  void handle_one(DeliverEnvelope e) {
    if (e.epoch !=
        net_.chan_epoch(e.from, pid_).load(std::memory_order_acquire)) {
      // The from->us channel was re-established after this frame was
      // stamped (a rejoin or a fence): it belongs to a dead connection.
      net_.record_fenced_drop();
      net_.recycle_buffer(std::move(e.encoded));
      return;
    }
    // Decode into the host's scratch Message: large payloads land in the
    // scratch value's recycled buffer instead of a fresh string per frame.
    proc_->codec().decode_into(e.encoded, inbound_);
    // The wire buffer's job is done; hand its capacity back to the pool
    // before the handler runs (its sends will want encode buffers).
    net_.recycle_buffer(std::move(e.encoded));
    proc_->on_message(*this, e.from, inbound_);
  }

  void handle_one(WriteEnvelope e) {
    const Tick start = net_.now();
    pending_write_ = std::move(e.done);
    // {this, start} fits std::function's inline storage: no allocation.
    proc_->start_write(*this, std::move(e.value), [this, start] {
      const WriteCallback done = std::move(pending_write_);
      pending_write_ = nullptr;
      if (done) done(net_.now() - start, Status());
    });
  }

  void handle_one(ReadEnvelope e) {
    const Tick start = net_.now();
    pending_read_ = std::move(e.done);
    proc_->start_read(*this, [this, start](const Value& v, SeqNo index) {
      const ReadCallback done = std::move(pending_read_);
      pending_read_ = nullptr;
      if (done) done(ReadResultT{v, index, net_.now() - start}, Status());
    });
  }

  void handle_one(CrashEnvelope) {
    crashed_.store(true, std::memory_order_release);
    proc_->on_crash();
    // The model says a faulty process's last operation may never take
    // effect (§2.2); its *client* still must not wait forever. Fail the
    // in-flight op's completion — the algorithm will never complete it.
    if (pending_write_) {
      const WriteCallback done = std::move(pending_write_);
      pending_write_ = nullptr;
      done(0, kCrashedStatus);
    }
    if (pending_read_) {
      const ReadCallback done = std::move(pending_read_);
      pending_read_ = nullptr;
      done(ReadResultT{}, kCrashedStatus);
    }
  }

  void handle_one(RecoverEnvelope e) {
    // Re-establish every channel touching us: frames stamped before these
    // bumps are dead on arrival wherever they are queued.
    for (ProcessId peer = 0; peer < net_.cfg_.n; ++peer) {
      if (peer == pid_) continue;
      net_.chan_epoch(pid_, peer).fetch_add(1, std::memory_order_release);
      net_.chan_epoch(peer, pid_).fetch_add(1, std::memory_order_release);
    }
    proc_ = e.make();
    TBR_ENSURE(proc_ != nullptr, "recover factory returned null");
    crashed_.store(false, std::memory_order_release);
    proc_->on_start(*this);  // a rejoiner broadcasts CATCHUP here
  }

  void handle_one(TimerEnvelope e) {
    if (e.fn) e.fn();
  }

  ThreadNetwork& net_;
  ProcessId pid_;
  std::unique_ptr<RegisterProcessBase> proc_;
  Mailbox mailbox_;
  Message inbound_;  ///< decode_into scratch (loop thread only)
  std::atomic<bool> crashed_{false};
  // In-flight client operation callbacks (loop thread only): invoked by
  // the completion callback or failed by a crash, whichever comes first.
  // Parked in members so the algorithm-facing completion lambdas capture
  // only {this, start} and stay allocation-free.
  WriteCallback pending_write_;
  ReadCallback pending_read_;
};

// ---- ClientImpl: the unified client API over this runtime -------------------
//
// Issue = push a Write/ReadEnvelope whose completion callback captures one
// OpState pointer (std::function inline storage; no allocation); park =
// block on the client pool's condition variable. Completion is guaranteed:
// the runtime's crash and shutdown paths fail every accepted envelope.

class ThreadNetwork::ClientImpl final : public RegisterClientEngine {
 public:
  explicit ClientImpl(ThreadNetwork& net) : net_(net), client_(*this) {}

  std::uint32_t client_nodes() const override { return net_.cfg_.n; }
  ProcessId client_writer() const override { return net_.cfg_.writer; }

  ProcessId client_pick_reader() override {
    return rotor_.pick(net_.cfg_.n,
                       [this](ProcessId r) { return net_.crashed(r); });
  }

  void client_issue(OpState& st) override {
    TBR_ENSURE(net_.started_, "start() the network first");
    st.start = net_.now();
    if (st.kind == OpKind::kWrite) {
      WriteEnvelope env{std::move(st.value),
                        WriteCallback([&st](Tick latency, Status status) {
                          st.result.status = status;
                          st.result.latency = latency;
                          st.owner->complete(st);
                        })};
      if (!net_.hosts_[st.node]->mailbox().push(std::move(env))) {
        st.owner->complete_failed(st, kShutdownStatus);
      }
    } else {
      ReadEnvelope env{
          ReadCallback([&st](const ReadResultT& r, Status status) {
            st.result.status = status;
            st.result.value = r.value;  // copy into the pooled capacity
            st.result.version = r.index;
            st.result.latency = r.latency;
            st.owner->complete(st);
          })};
      if (!net_.hosts_[st.node]->mailbox().push(std::move(env))) {
        st.owner->complete_failed(st, kShutdownStatus);
      }
    }
  }

  void client_park(OpState& st, OpPool& pool) override {
    pool.block_until_ready(st);
  }

  RegisterClient& client() noexcept { return client_; }

 private:
  ThreadNetwork& net_;
  ReaderRotor rotor_;
  RegisterClient client_;
};

// ---- ThreadNetwork -----------------------------------------------------------

ThreadNetwork::ThreadNetwork(Options options)
    : cfg_(options.cfg),
      opt_(options),
      chan_epoch_(new std::atomic<std::uint32_t>[static_cast<std::size_t>(
          options.cfg.n) * options.cfg.n]()),
      delay_rng_(options.seed ^ 0xD15417C4E5ULL),
      epoch_(Clock::now()) {
  cfg_.validate();
  TBR_ENSURE(opt_.min_delay_us <= opt_.max_delay_us,
             "need min_delay <= max_delay");
  hosts_.reserve(cfg_.n);
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    auto proc = opt_.process_factory
                    ? opt_.process_factory(cfg_, pid)
                    : make_register_process(opt_.algo, cfg_, pid);
    hosts_.push_back(std::make_unique<ProcessHost>(*this, pid,
                                                   std::move(proc)));
  }
  client_impl_ = std::make_unique<ClientImpl>(*this);
}

RegisterClient& ThreadNetwork::client() noexcept {
  return client_impl_->client();
}

ThreadNetwork::~ThreadNetwork() { stop(); }

Tick ThreadNetwork::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

void ThreadNetwork::start() {
  TBR_ENSURE(!stopped_, "network cannot be restarted");
  if (started_) return;
  started_ = true;
  threads_.reserve(cfg_.n + 1);
  const int pin_base = opt_.pin_cpu_base;
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    threads_.emplace_back([host = hosts_[pid].get(), pin_base,
                           pid](std::stop_token st) {
      if (pin_base >= 0) {
        (void)pin_current_thread(static_cast<std::uint32_t>(pin_base) + pid);
      }
      host->run(st);
    });
  }
  threads_.emplace_back([this, pin_base](std::stop_token st) {
    if (pin_base >= 0) {
      (void)pin_current_thread(static_cast<std::uint32_t>(pin_base) +
                               cfg_.n);
    }
    dispatcher_loop(st);
  });
}

void ThreadNetwork::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& host : hosts_) host->mailbox().close();
  dispatch_cv_.notify_all();
  for (auto& th : threads_) th.request_stop();
  threads_.clear();  // jthread joins on destruction
  // Loop threads are joined: process state is safe to read. Record the
  // final local-memory gauge next to the wire tallies.
  std::uint64_t peak = 0;
  for (auto& host : hosts_) {
    peak = std::max(peak, host->process().local_memory_bytes());
  }
  const std::scoped_lock lock(stats_mu_);
  stats_.record_local_memory(peak);
}

std::string ThreadNetwork::take_buffer() {
  const std::scoped_lock lock(buffer_mu_);
  if (buffer_pool_.empty()) return std::string();
  std::string buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buf;
}

void ThreadNetwork::recycle_buffer(std::string&& buf) {
  const std::scoped_lock lock(buffer_mu_);
  if (buffer_pool_.size() < kMaxPooledBuffers) {
    buffer_pool_.push_back(std::move(buf));
  }
}

void ThreadNetwork::dispatch(ProcessId from, ProcessId to,
                             const Message& msg) {
  TBR_ENSURE(to < cfg_.n && to != from, "bad destination");
  {
    const std::scoped_lock lock(stats_mu_);
    stats_.record_send(msg.type, msg.wire);
    if (hosts_[to]->crashed()) {
      stats_.record_drop(msg.type);
      return;
    }
  }
  std::string encoded = take_buffer();
  hosts_[from]->process().codec().encode_into(msg, encoded);
  {
    const std::scoped_lock lock(dispatch_mu_);
    const Tick jitter_us = opt_.max_delay_us == 0
                               ? 0
                               : delay_rng_.uniform(opt_.min_delay_us,
                                                    opt_.max_delay_us);
    PendingFrame frame;
    frame.release_at = now() + jitter_us * 1000;
    frame.seq = frame_seq_++;
    frame.from = from;
    frame.to = to;
    frame.encoded = std::move(encoded);
    frame.epoch = chan_epoch(from, to).load(std::memory_order_acquire);
    frame_heap_.push_back(std::move(frame));
    std::push_heap(frame_heap_.begin(), frame_heap_.end(),
                   std::greater<>{});
  }
  dispatch_cv_.notify_one();
}

void ThreadNetwork::schedule_timer(ProcessId pid, Tick delay,
                                   std::function<void()> fn) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  TBR_ENSURE(delay > 0, "timer delay must be positive");
  {
    const std::scoped_lock lock(dispatch_mu_);
    PendingFrame frame;
    frame.release_at = now() + delay;
    frame.seq = frame_seq_++;
    frame.from = pid;
    frame.to = pid;
    frame.timer = std::move(fn);
    frame_heap_.push_back(std::move(frame));
    std::push_heap(frame_heap_.begin(), frame_heap_.end(), std::greater<>{});
  }
  dispatch_cv_.notify_one();
}

void ThreadNetwork::dispatcher_loop(std::stop_token st) {
  std::unique_lock lock(dispatch_mu_);
  while (!st.stop_requested()) {
    if (frame_heap_.empty()) {
      dispatch_cv_.wait(lock, st, [this] { return !frame_heap_.empty(); });
      if (st.stop_requested()) return;
      continue;
    }
    const Tick release_at = frame_heap_.front().release_at;
    const Tick current = now();
    if (current < release_at) {
      dispatch_cv_.wait_for(
          lock, st, std::chrono::nanoseconds(release_at - current),
          [this, release_at] {
            return !frame_heap_.empty() &&
                   frame_heap_.front().release_at < release_at;
          });
      continue;
    }
    std::pop_heap(frame_heap_.begin(), frame_heap_.end(), std::greater<>{});
    PendingFrame frame = std::move(frame_heap_.back());
    frame_heap_.pop_back();
    lock.unlock();
    if (frame.timer) {
      // Timer expiry: runs on the owning process's thread like any handler;
      // the crashed check in ProcessHost::handle suppresses it post-crash.
      hosts_[frame.to]->mailbox().push(TimerEnvelope{std::move(frame.timer)});
    } else {
      const bool delivered = hosts_[frame.to]->mailbox().push(
          DeliverEnvelope{frame.from, std::move(frame.encoded),
                          frame.epoch});
      if (!delivered || hosts_[frame.to]->crashed()) {
        const std::scoped_lock slock(stats_mu_);
        // type is inside the encoding; account the drop generically as 0.
        stats_.record_drop(0);
      }
    }
    lock.lock();
  }
}

void ThreadNetwork::write_async(Value v, WriteCallback done) {
  TBR_ENSURE(started_, "start() the network first");
  TBR_ENSURE(done != nullptr, "write_async needs a completion callback");
  WriteEnvelope env{std::move(v), std::move(done)};
  if (!hosts_[cfg_.writer]->mailbox().push(std::move(env))) {
    // push() moves from its argument only on success, so this branch
    // still owns the callback.
    env.done(0, kShutdownStatus);
  }
}

void ThreadNetwork::read_async(ProcessId reader, ReadCallback done) {
  TBR_ENSURE(started_, "start() the network first");
  TBR_ENSURE(reader < cfg_.n, "reader id out of range");
  TBR_ENSURE(done != nullptr, "read_async needs a completion callback");
  ReadEnvelope env{std::move(done)};
  if (!hosts_[reader]->mailbox().push(std::move(env))) {
    env.done(ReadResultT{}, kShutdownStatus);
  }
}

void ThreadNetwork::crash(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  hosts_[pid]->mailbox().push(CrashEnvelope{});
}

void ThreadNetwork::record_fenced_drop() {
  const std::scoped_lock lock(stats_mu_);
  stats_.record_drop(0);
}

void ThreadNetwork::recover(ProcessId pid) {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  TBR_ENSURE(crashed(pid), "recover of a process that is not crashed");
  std::function<std::unique_ptr<RegisterProcessBase>()> make;
  if (opt_.recover_factory) {
    make = [factory = opt_.recover_factory, cfg = cfg_, pid] {
      return factory(cfg, pid);
    };
  } else {
    TBR_ENSURE(opt_.algo == Algorithm::kTwoBit && !opt_.process_factory,
               "recover needs Options::recover_factory");
    make = [cfg = cfg_, pid]() -> std::unique_ptr<RegisterProcessBase> {
      TwoBitOptions topt;
      topt.recover_via_catchup = true;
      return std::make_unique<TwoBitProcess>(cfg, pid, topt);
    };
  }
  hosts_[pid]->mailbox().push(RecoverEnvelope{std::move(make)});
}

bool ThreadNetwork::crashed(ProcessId pid) const {
  TBR_ENSURE(pid < cfg_.n, "pid out of range");
  return hosts_[pid]->crashed();
}

MessageStats ThreadNetwork::stats_snapshot() const {
  const std::scoped_lock lock(stats_mu_);
  return stats_;
}

}  // namespace tbr
