// RegisterClient / KvClient: one client API for every engine in the tree.
//
// The repo grew four incompatible client surfaces — KvStore's blocking
// put/get (exceptions), ShardedKvStore's promise-backed futures (~4
// allocations per op), ThreadNetwork's callback/future split, and
// SimRegisterGroup's raw std::function hooks. This layer replaces all of
// them with a single completion model:
//
//   * submit an operation -> get a Ticket (or attach an OpCallback and the
//     pooled state auto-recycles after it runs);
//   * wait(ticket) blocks (thread engines) or drives the event loop (sim
//     engines) until the op completes and returns a uniform OpResult
//     carrying a Status — never an exception, never a static string;
//   * submit(span<Op>) hands a whole window to the engine at once — the kv
//     engines feed it into MuxProcess::start_batch (shared read rounds,
//     last-write-wins coalescing), the register engines pipeline it
//     through per-process chains.
//
// Per-operation cost is the design target, extending the allocs-per-frame
// discipline to allocs-per-operation: OpStates recycle through OpPool, all
// engine-facing callbacks capture at most two pointers (std::function's
// inline storage), so a steady-state operation through the Ticket
// convenience API allocates nothing (sim and threaded engines; the sharded
// engine's cross-thread window bookkeeping stays <= 1 allocation per op).
// tests/alloc_regression_test.cpp and bench_engine_hotpath gate this.
//
// Engines plug in via the small *ClientEngine interfaces below; the
// facades (SimRegisterGroup, ThreadNetwork, KvStore, ShardedKvStore) each
// expose a lazily-built client() backed by their implementation.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "client/op.hpp"

namespace tbr {

/// Shared machinery: the op pool, per-node submission chains, the
/// wait/poll surface, and the engine-facing completion entry point.
class ClientBase {
 public:
  virtual ~ClientBase() = default;
  ClientBase(const ClientBase&) = delete;
  ClientBase& operator=(const ClientBase&) = delete;

  /// Block until the ticket's operation completes (drives the simulator
  /// for sim-backed engines), return its result and recycle the slot. The
  /// ticket is consumed: waiting twice on the same ticket is a contract
  /// violation. The result's Value is copied out, so the pooled buffer
  /// keeps its capacity (callers that must avoid the copy for large
  /// payloads should use the callback form instead).
  OpResult wait(Ticket t);

  /// Non-blocking poll: if the op has completed, copy its result into
  /// `out`, recycle the slot (consuming the ticket) and return true.
  bool try_result(Ticket t, OpResult& out);

  // ---- engine side ---------------------------------------------------------
  /// Completion entry point: the engine has filled `st.result` (and is done
  /// touching `st`). Runs the user callback if any, publishes readiness or
  /// auto-recycles (callback mode), and issues the next chained op bound
  /// for the same process. Runs on the engine's completion thread.
  void complete(OpState& st);
  /// Shorthand for ops that fail before reaching the protocol.
  void complete_failed(OpState& st, Status status) {
    st.result.status = status;
    complete(st);
  }

  OpPool& pool() noexcept { return pool_; }

 protected:
  explicit ClientBase(bool serialize_per_node)
      : serialize_per_node_(serialize_per_node) {}

  /// Acquire + stamp a pooled op for this client.
  OpState& fresh_op() {
    OpState& st = pool_.acquire();
    st.owner = this;
    return st;
  }

  /// Hand a prepared op to the engine, honoring the per-node chains.
  /// Returns the caller-facing ticket (empty in callback mode).
  Ticket dispatch(OpState& st);

  /// Issue a chained successor without recursing: engines fail ops
  /// synchronously on their terminal paths (crashed target, closed
  /// queue), and that completion pops the NEXT chain entry — a deeply
  /// pipelined chain unwinding at shutdown must drain as a loop, not as
  /// mutual recursion complete() -> engine_issue() -> complete().
  void issue_chained(std::uint32_t first);

  // Engine hooks, implemented by the concrete client over its engine.
  virtual void engine_issue(OpState& st) = 0;
  virtual void engine_park(OpState& st) = 0;
  virtual void engine_flush() {}

  /// Size the per-node chains (register engines; kv engines skip them).
  void init_chains(std::uint32_t nodes) { chains_.resize(nodes); }

  OpPool pool_;

 private:
  /// Per-process FIFO of submitted-but-not-issued ops, linked intrusively
  /// through OpState::next_pending. The engines' processes admit one
  /// operation at a time (the model's sequential-process contract); the
  /// chain is what lets submit(span) pipeline safely anyway.
  struct Chain {
    std::uint32_t head = Ticket::kEmpty;
    std::uint32_t tail = Ticket::kEmpty;
    bool busy = false;
  };

  bool serialize_per_node_ = false;
  std::vector<Chain> chains_;

  // Chained-issue drain state (guarded by the pool mutex): one thread at
  // a time owns the drain loop; completions landing mid-drain (including
  // the synchronous-failure cascade) defer here instead of recursing.
  // The vector recycles its capacity — steady state allocates nothing.
  bool unwinding_ = false;
  std::size_t deferred_head_ = 0;
  std::vector<std::uint32_t> deferred_issues_;
};

// ---- the register-group client ----------------------------------------------

/// One operation against a single register group (for submit(span)).
struct RegisterOp {
  OpKind kind = OpKind::kRead;
  Value value;                    ///< writes: payload (moved from)
  ProcessId reader = kAnyReplica; ///< reads: replica (kAnyReplica = rotate)
};

/// Round-robin live-replica rotation for kAnyReplica reads, shared by
/// the engines' client_pick_reader implementations. Falls back to
/// replica 0 when every replica looks crashed (the op then fails with
/// kCrashed at issue). Safe from any thread; on the single-threaded sim
/// engine the relaxed counter degenerates to a plain increment, so the
/// rotation sequence stays deterministic.
class ReaderRotor {
 public:
  template <typename CrashedFn>
  ProcessId pick(std::uint32_t n, CrashedFn&& crashed) {
    for (std::uint32_t tries = 0; tries < n; ++tries) {
      const ProcessId r = static_cast<ProcessId>(
          next_.fetch_add(1, std::memory_order_relaxed) % n);
      if (!crashed(r)) return r;
    }
    return 0;
  }

 private:
  std::atomic<std::uint32_t> next_{0};
};

/// What a runtime facade implements to host a RegisterClient.
class RegisterClientEngine {
 public:
  virtual ~RegisterClientEngine() = default;
  virtual std::uint32_t client_nodes() const = 0;
  virtual ProcessId client_writer() const = 0;
  /// Rotate over live-looking replicas for kAnyReplica reads.
  virtual ProcessId client_pick_reader() = 0;
  /// Issue `st` into the runtime; on completion fill st.result and call
  /// st.owner->complete(st).
  virtual void client_issue(OpState& st) = 0;
  /// Block until st.ready: drive the event loop (sim) or park on the pool
  /// (threads). On a failed drive, fill st.result.status and return.
  virtual void client_park(OpState& st, OpPool& pool) = 0;
};

class RegisterClient final : public ClientBase {
 public:
  explicit RegisterClient(RegisterClientEngine& engine);

  /// Start REG.write(v) at the group's writer.
  Ticket write(Value v, OpCallback cb = {});
  /// Start REG.read() at `reader` (kAnyReplica = rotate over live nodes).
  Ticket read(ProcessId reader = kAnyReplica, OpCallback cb = {});

  /// Pipelined batch: ops are issued in order, serialized per process via
  /// the client chains (values are moved from `ops`). `tickets`, when
  /// non-null, receives one ticket per op (ops.size() entries).
  std::size_t submit(std::span<RegisterOp> ops, Ticket* tickets = nullptr);

  // Blocking round-trips (steady-state allocation-free for SSO payloads).
  OpResult write_sync(Value v) { return wait(write(std::move(v))); }
  OpResult read_sync(ProcessId reader = kAnyReplica) {
    return wait(read(reader));
  }

 protected:
  void engine_issue(OpState& st) override { engine_.client_issue(st); }
  void engine_park(OpState& st) override { engine_.client_park(st, pool_); }

 private:
  RegisterClientEngine& engine_;
};

// ---- the key-value client ----------------------------------------------------

/// One operation against a kv store (for submit(span)). The key is only
/// read during submit (routing); it does not need to outlive the call.
struct KvOp {
  OpKind kind = OpKind::kRead;
  std::string_view key;
  Value value;                     ///< puts: payload (moved from)
  ProcessId reader = kAnyReplica;  ///< gets: replica within the key's group
};

/// What a kv engine implements to host a KvClient.
class KvClientEngine {
 public:
  virtual ~KvClientEngine() = default;
  /// Resolve `key` into st.shard / st.slot / st.node (puts: home replica;
  /// gets: leave st.node as requested, kAnyReplica resolves at issue).
  virtual void client_route(std::string_view key, OpState& st) = 0;
  virtual void client_issue(OpState& st) = 0;
  virtual void client_park(OpState& st, OpPool& pool) = 0;
  /// Deferred-issue engines (the flat KvStore batches everything submitted
  /// since the last wait into one MuxProcess::start_batch window).
  virtual void client_flush() {}
};

class KvClient final : public ClientBase {
 public:
  explicit KvClient(KvClientEngine& engine);

  /// Store `value` under `key` (executed at the key's home replica).
  Ticket put(std::string_view key, Value value, OpCallback cb = {});
  /// Read `key` at `reader` within its group (kAnyReplica = rotate).
  Ticket get(std::string_view key, ProcessId reader = kAnyReplica,
             OpCallback cb = {});

  /// Batch window: every op routed and handed to the engine together —
  /// one MuxProcess::start_batch per replica on the sim-backed store, one
  /// mailbox window on the sharded store. Values/keys are consumed.
  std::size_t submit(std::span<KvOp> ops, Ticket* tickets = nullptr);

  // Blocking round-trips.
  OpResult put_sync(std::string_view key, Value value) {
    return wait(put(key, std::move(value)));
  }
  OpResult get_sync(std::string_view key, ProcessId reader = kAnyReplica) {
    return wait(get(key, reader));
  }

 protected:
  void engine_issue(OpState& st) override { engine_.client_issue(st); }
  void engine_park(OpState& st) override { engine_.client_park(st, pool_); }
  void engine_flush() override { engine_.client_flush(); }

 private:
  KvClientEngine& engine_;
};

}  // namespace tbr
