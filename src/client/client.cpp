#include "client/client.hpp"

#include <utility>

namespace tbr {

// ---- ClientBase --------------------------------------------------------------

Ticket ClientBase::dispatch(OpState& st) {
  const bool callback_mode = st.callback != nullptr;
  Ticket t;
  if (!callback_mode) {
    t.index = st.index;
    t.gen = st.gen;
  }
  if (serialize_per_node_ && st.node < chains_.size()) {
    bool queued = false;
    {
      const std::scoped_lock lock(pool_.mu());
      Chain& chain = chains_[st.node];
      if (chain.busy) {
        st.next_pending = Ticket::kEmpty;
        if (chain.tail == Ticket::kEmpty) {
          chain.head = st.index;
        } else {
          pool_.slot(chain.tail).next_pending = st.index;
        }
        chain.tail = st.index;
        queued = true;
      } else {
        chain.busy = true;
      }
    }
    if (queued) return t;
  }
  engine_issue(st);
  return t;
}

void ClientBase::complete(OpState& st) {
  if (st.abandoned) {
    // Late completion of an op whose wait() already gave up (sim liveness
    // loss): nobody is listening any more, just free the quarantined slot.
    pool_.reclaim_abandoned(st);
    return;
  }
  const bool callback_mode = st.callback != nullptr;
  if (callback_mode) {
    OpCallback cb = std::move(st.callback);
    st.callback = nullptr;
    cb(st.result);
  }
  std::uint32_t next = Ticket::kEmpty;
  {
    const std::scoped_lock lock(pool_.mu());
    if (serialize_per_node_ && st.node < chains_.size()) {
      Chain& chain = chains_[st.node];
      if (chain.head != Ticket::kEmpty) {
        next = chain.head;
        chain.head = pool_.slot(next).next_pending;
        if (chain.head == Ticket::kEmpty) chain.tail = Ticket::kEmpty;
      } else {
        chain.busy = false;
      }
    }
    if (callback_mode) pool_.release_locked(st);
  }
  if (!callback_mode) pool_.mark_ready(st);
  if (next != Ticket::kEmpty) issue_chained(next);
}

void ClientBase::issue_chained(std::uint32_t first) {
  {
    const std::scoped_lock lock(pool_.mu());
    deferred_issues_.push_back(first);
    // Someone (an outer frame of this very cascade, or a concurrent
    // completion thread) already owns the drain loop: it will pick this
    // up. Returning here is what bounds the cascade's stack depth.
    if (unwinding_) return;
    unwinding_ = true;
  }
  for (;;) {
    std::uint32_t index;
    {
      const std::scoped_lock lock(pool_.mu());
      if (deferred_head_ == deferred_issues_.size()) {
        deferred_issues_.clear();
        deferred_head_ = 0;
        unwinding_ = false;
        return;
      }
      index = deferred_issues_[deferred_head_++];
    }
    // May complete synchronously (terminal engine paths), re-entering
    // complete() -> issue_chained(), which defers to this loop.
    engine_issue(pool_.slot(index));
  }
}

OpResult ClientBase::wait(Ticket t) {
  OpState* st = pool_.find(t);
  TBR_ENSURE(st != nullptr, "wait on an empty, stale or consumed ticket");
  if (!st->ready.load(std::memory_order_acquire)) {
    engine_flush();
    if (!st->ready.load(std::memory_order_acquire)) engine_park(*st);
  }
  if (!st->ready.load(std::memory_order_acquire)) {
    // The drive failed (liveness lost). The engine stamped a status; the
    // slot is quarantined in case its completion fires on a later drive.
    OpResult out = st->result;
    if (out.status.ok()) {
      out.status = Status(StatusCode::kLivenessLost,
                          "operation did not complete (liveness lost)");
    }
    pool_.abandon(*st);
    return out;
  }
  OpResult out = st->result;
  pool_.release(*st);
  return out;
}

bool ClientBase::try_result(Ticket t, OpResult& out) {
  OpState* st = pool_.find(t);
  TBR_ENSURE(st != nullptr, "poll on an empty, stale or consumed ticket");
  if (!st->ready.load(std::memory_order_acquire)) {
    // Deferred-issue engines (the flat KvStore) hand the window to the
    // protocol here, so a poll loop makes progress; the caller still
    // drives completion (wait(), or the sim facade's settle()).
    engine_flush();
  }
  if (!st->ready.load(std::memory_order_acquire)) return false;
  out = st->result;
  pool_.release(*st);
  return true;
}

// ---- RegisterClient ----------------------------------------------------------

RegisterClient::RegisterClient(RegisterClientEngine& engine)
    : ClientBase(/*serialize_per_node=*/true), engine_(engine) {
  init_chains(engine.client_nodes());
}

Ticket RegisterClient::write(Value v, OpCallback cb) {
  OpState& st = fresh_op();
  st.kind = OpKind::kWrite;
  st.node = engine_.client_writer();
  st.value = std::move(v);
  st.callback = std::move(cb);
  return dispatch(st);
}

Ticket RegisterClient::read(ProcessId reader, OpCallback cb) {
  TBR_ENSURE(reader == kAnyReplica || reader < engine_.client_nodes(),
             "reader id out of range");
  OpState& st = fresh_op();
  st.kind = OpKind::kRead;
  st.node = reader == kAnyReplica ? engine_.client_pick_reader() : reader;
  st.callback = std::move(cb);
  return dispatch(st);
}

std::size_t RegisterClient::submit(std::span<RegisterOp> ops,
                                   Ticket* tickets) {
  std::size_t k = 0;
  for (RegisterOp& op : ops) {
    const Ticket t = op.kind == OpKind::kWrite ? write(std::move(op.value))
                                               : read(op.reader);
    if (tickets != nullptr) tickets[k] = t;
    ++k;
  }
  return k;
}

// ---- KvClient ----------------------------------------------------------------

KvClient::KvClient(KvClientEngine& engine)
    : ClientBase(/*serialize_per_node=*/false), engine_(engine) {}

Ticket KvClient::put(std::string_view key, Value value, OpCallback cb) {
  OpState& st = fresh_op();
  st.kind = OpKind::kWrite;
  st.value = std::move(value);
  st.callback = std::move(cb);
  engine_.client_route(key, st);
  return dispatch(st);
}

Ticket KvClient::get(std::string_view key, ProcessId reader, OpCallback cb) {
  OpState& st = fresh_op();
  st.kind = OpKind::kRead;
  st.node = reader;
  st.callback = std::move(cb);
  engine_.client_route(key, st);
  return dispatch(st);
}

std::size_t KvClient::submit(std::span<KvOp> ops, Ticket* tickets) {
  std::size_t k = 0;
  for (KvOp& op : ops) {
    const Ticket t = op.kind == OpKind::kWrite
                         ? put(op.key, std::move(op.value))
                         : get(op.key, op.reader);
    if (tickets != nullptr) tickets[k] = t;
    ++k;
  }
  return k;
}

}  // namespace tbr
