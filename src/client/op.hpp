// The unified operation model: pooled OpState fronted by a Ticket.
//
// One completion shape for every engine in the tree. A client submits an
// operation and gets back a Ticket — an 8-byte generation-checked handle
// into the client's OpPool — or attaches a callback, in which case the
// pooled state auto-recycles after the callback runs. Either way the
// per-operation storage is an OpState slot recycled through an intrusive
// freelist, exactly the discipline the frame pool gave the message hot
// path: after warm-up, an operation round-trip performs zero heap
// allocations regardless of which API shape the caller prefers.
//
// Threading: OpPool is internally synchronized (any thread may submit or
// wait; engine threads complete). The sim-backed engines are driven from
// the waiting thread itself, so their park() drives the event loop rather
// than blocking on the pool's condition variable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "client/status.hpp"
#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "common/value.hpp"

namespace tbr {

class ClientBase;

enum class OpKind : std::uint8_t { kWrite, kRead };

/// Replica selector for reads routed by a client: rotate over the target
/// group's live-looking replicas. (ShardedKvStore::kAnyReplica aliases it.)
inline constexpr ProcessId kAnyReplica = kNoProcess;

/// What every completed operation reports, regardless of engine.
struct OpResult {
  Status status;
  /// Reads: the value returned by the register/store.
  Value value;
  /// Reads: the history index of `value` (0 = initial). Writes: the
  /// version the write landed as, on engines that count versions
  /// (kv batching); 0 otherwise.
  SeqNo version = 0;
  /// Operation latency in the engine's native ticks (virtual ticks for the
  /// sim engines, nanoseconds for the threaded ones).
  Tick latency = 0;
  /// Writes only: the value never reached the register because a later
  /// queued write to the same slot superseded it (last-write-wins
  /// coalescing). The op still linearizes — immediately before the
  /// surviving write — so this is an outcome, not an error.
  bool absorbed = false;
};

/// Optional per-op completion hook; runs on the engine's completion thread
/// (the process/worker thread, or the submitting thread for sim engines
/// while they are driven). Captures of up to two pointers stay inside
/// std::function's inline storage — keep it lean and non-blocking.
using OpCallback = std::function<void(const OpResult&)>;

/// Generation-checked handle to a pooled operation. Default-constructed
/// tickets are empty (callback-mode submissions return one).
class Ticket {
 public:
  Ticket() = default;
  bool valid() const noexcept { return index != kEmpty; }

  // The pool's coordinates; treat as opaque.
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  std::uint32_t index = kEmpty;
  std::uint32_t gen = 0;
};

/// One pooled operation: submission fields in, result fields out. Lives in
/// an OpPool slot; recycled via the pool's freelist. Engines treat it as
/// the operation's identity — callbacks capture a single OpState pointer.
struct OpState {
  // ---- submission (client fills, engine consumes) -------------------------
  OpKind kind = OpKind::kRead;
  /// Resolved target process (writer / reader / key's home replica), or
  /// kAnyReplica for reads the engine rotates itself.
  ProcessId node = kNoProcess;
  std::uint32_t slot = 0;   ///< kv engines: register slot within the group
  std::uint32_t shard = 0;  ///< sharded engine: owning shard
  Value value;              ///< writes: payload (moved in, consumed)
  Tick start = 0;           ///< engine clock at issue (latency bookkeeping)

  // ---- completion (engine fills, client consumes) -------------------------
  OpResult result;
  OpCallback callback;  ///< set => auto-recycle after it runs

  // ---- pool / chain plumbing ---------------------------------------------
  ClientBase* owner = nullptr;
  std::atomic<bool> ready{false};
  /// Park failed (sim liveness lost): the slot is quarantined — excluded
  /// from the freelist until the engine's late completion (if any) frees it.
  bool abandoned = false;
  std::uint32_t index = 0;
  std::uint32_t gen = 0;
  /// Intrusive per-node submission chain (ClientBase serializes ops per
  /// target process for engines whose processes admit one op at a time).
  std::uint32_t next_pending = Ticket::kEmpty;
};

/// Recycling slab of OpStates. Slots live in a deque (stable addresses
/// while the pool grows); the freelist is a vector of indices. Steady
/// state: acquire/release never allocate.
class OpPool {
 public:
  /// Take a warmed slot (or grow by one). Resets submission/result fields
  /// to a just-constructed shape while keeping Value capacities.
  OpState& acquire() {
    const std::scoped_lock lock(mu_);
    OpState* st = nullptr;
    if (!free_.empty()) {
      st = &slots_[free_.back()];
      free_.pop_back();
    } else {
      st = &slots_.emplace_back();
      st->index = static_cast<std::uint32_t>(slots_.size() - 1);
    }
    st->kind = OpKind::kRead;
    st->node = kNoProcess;
    st->slot = 0;
    st->shard = 0;
    st->start = 0;
    st->result.status = Status();
    st->result.version = 0;
    st->result.latency = 0;
    st->result.absorbed = false;
    st->abandoned = false;
    st->ready.store(false, std::memory_order_relaxed);
    st->next_pending = Ticket::kEmpty;
    return *st;
  }

  /// Return a slot to the freelist and invalidate outstanding tickets.
  void release(OpState& st) {
    const std::scoped_lock lock(mu_);
    release_locked(st);
  }

  /// Resolve a ticket; nullptr if stale (already recycled) or empty.
  OpState* find(Ticket t) {
    const std::scoped_lock lock(mu_);
    if (t.index >= slots_.size()) return nullptr;
    OpState& st = slots_[t.index];
    return st.gen == t.gen ? &st : nullptr;
  }

  /// Engine side: publish completion and wake blocked waiters. The store
  /// happens under the pool mutex: a waiter that just evaluated the
  /// predicate (false) still holds the lock until it is parked, so the
  /// notify cannot slip into that gap and be lost.
  void mark_ready(OpState& st) {
    {
      const std::scoped_lock lock(mu_);
      st.ready.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// Blocking-park for thread-backed engines (sim engines drive their
  /// event loop instead). Completion is guaranteed by those engines'
  /// crash/shutdown paths, so this wait cannot hang.
  void block_until_ready(const OpState& st) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&st] { return st.ready.load(std::memory_order_acquire); });
  }

  /// Quarantine a slot whose completion may still arrive later (sim
  /// liveness loss): tickets die now, the slot rejoins the freelist only
  /// when/if the engine's completion shows up.
  void abandon(OpState& st) {
    const std::scoped_lock lock(mu_);
    st.gen += 1;
    st.abandoned = true;
  }

  /// Free an abandoned slot from the engine's late completion path.
  void reclaim_abandoned(OpState& st) {
    const std::scoped_lock lock(mu_);
    TBR_ENSURE(st.abandoned, "reclaim of a live op");
    st.abandoned = false;
    st.callback = nullptr;
    free_.push_back(st.index);
  }

  std::mutex& mu() noexcept { return mu_; }
  std::size_t capacity() const {
    const std::scoped_lock lock(mu_);
    return slots_.size();
  }

 private:
  friend class ClientBase;

  void release_locked(OpState& st) {
    st.gen += 1;
    st.callback = nullptr;
    free_.push_back(st.index);
  }
  OpState& slot(std::uint32_t index) { return slots_[index]; }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<OpState> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace tbr
