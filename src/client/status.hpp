// Status: the one operation outcome type of the client API.
//
// Before the unified client layer, each runtime reported failures its own
// way — KvStore threw std::runtime_error, the threaded callbacks passed
// static `const char*` strings, the sharded futures threw out of get().
// Status replaces all of them with a value type the hot path can afford:
// a code plus a pointer to a static message, no ownership, no allocation.
//
// Convention: engines construct Status only from string literals (or other
// static-duration strings), so copying a Status never touches the heap and
// message() is valid for the life of the process.
#pragma once

#include <cstdint>

namespace tbr {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// The operation's target process (writer, reader, or a key's home
  /// replica) has crashed; the op failed before or instead of completing.
  kCrashed,
  /// The engine was stopped (or destroyed) before the op could complete.
  kShutdown,
  /// The op's register group can no longer assemble quorums (more than t
  /// crashes, or a stalled batch); the engine refuses or abandons ops.
  kLivenessLost,
};

class Status {
 public:
  /// Success.
  constexpr Status() = default;
  constexpr Status(StatusCode code, const char* message)
      : code_(code), message_(message) {}

  constexpr bool ok() const noexcept { return code_ == StatusCode::kOk; }
  constexpr StatusCode code() const noexcept { return code_; }
  /// Never null; "" on success, a static description otherwise.
  constexpr const char* message() const noexcept { return message_; }

  friend constexpr bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  const char* message_ = "";
};

}  // namespace tbr
