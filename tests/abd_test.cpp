// Functional tests of the ABD-family baselines (phased quorum engine):
// basic semantics, Table-1 message-count and timing structure per spec,
// crash tolerance, and wire accounting.
#include <gtest/gtest.h>

#include "abd/phased_process.hpp"
#include "common/bits.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = 1000;

SimRegisterGroup make_group(Algorithm algo, std::uint32_t n, std::uint32_t t,
                            std::uint64_t seed = 1) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = algo;
  opt.seed = seed;
  opt.delay = make_constant_delay(kDelta);
  return SimRegisterGroup(std::move(opt));
}

class BaselineFunctional : public testing::TestWithParam<Algorithm> {};

TEST_P(BaselineFunctional, InitialValueReadable) {
  auto group = make_group(GetParam(), 5, 2);
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto out = group.client().read_sync(pid);
    EXPECT_EQ(out.value.to_int64(), 0);
    EXPECT_EQ(out.version, 0);
  }
}

TEST_P(BaselineFunctional, WriteThenReadEverywhere) {
  auto group = make_group(GetParam(), 5, 2);
  group.client().write_sync(Value::from_int64(31));
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto out = group.client().read_sync(pid);
    EXPECT_EQ(out.value.to_int64(), 31);
    EXPECT_EQ(out.version, 1);
  }
}

TEST_P(BaselineFunctional, SequenceOfWrites) {
  auto group = make_group(GetParam(), 3, 1);
  for (int k = 1; k <= 12; ++k) {
    group.client().write_sync(Value::from_int64(k * 7));
    EXPECT_EQ(group.client().read_sync(static_cast<ProcessId>(k % 3)).value.to_int64(),
              k * 7);
  }
}

TEST_P(BaselineFunctional, SurvivesMinorityCrash) {
  auto group = make_group(GetParam(), 5, 2);
  group.client().write_sync(Value::from_int64(1));
  group.crash(3);
  group.crash(4);
  group.client().write_sync(Value::from_int64(2));
  EXPECT_EQ(group.client().read_sync(1).value.to_int64(), 2);
}

TEST_P(BaselineFunctional, WriterCanRead) {
  auto group = make_group(GetParam(), 3, 1);
  group.client().write_sync(Value::from_int64(5));
  EXPECT_EQ(group.client().read_sync(0).value.to_int64(), 5);
}

TEST_P(BaselineFunctional, SingleProcessGroup) {
  auto group = make_group(GetParam(), 1, 0);
  group.client().write_sync(Value::from_int64(3));
  EXPECT_EQ(group.client().read_sync(0).value.to_int64(), 3);
}

TEST_P(BaselineFunctional, RejectsWriteFromNonWriter) {
  auto group = make_group(GetParam(), 3, 1);
  auto& p1 = group.process(1);
  EXPECT_THROW(
      p1.start_write(group.net().context(1), Value::from_int64(1), [] {}),
      ContractViolation);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineFunctional,
    testing::Values(Algorithm::kAbdUnbounded, Algorithm::kAbdBounded,
                    Algorithm::kAttiya),
    [](const testing::TestParamInfo<Algorithm>& param_info) {
      auto name = algorithm_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Table-1 structure: timing -------------------------------------------------

struct TimingRow {
  Algorithm algo;
  Tick write_deltas;
  Tick read_deltas;
};

class BaselineTiming : public testing::TestWithParam<TimingRow> {};

TEST_P(BaselineTiming, PhaseTimingMatchesTable1) {
  const auto& row = GetParam();
  auto group = make_group(row.algo, 5, 2);
  const Tick w = group.client().write_sync(Value::from_int64(1)).latency;
  EXPECT_EQ(w, row.write_deltas * kDelta);
  group.settle();
  const auto r = group.client().read_sync(3);
  EXPECT_EQ(r.latency, row.read_deltas * kDelta);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BaselineTiming,
    testing::Values(TimingRow{Algorithm::kAbdUnbounded, 2, 4},
                    TimingRow{Algorithm::kAbdBounded, 12, 12},
                    TimingRow{Algorithm::kAttiya, 14, 18}),
    [](const testing::TestParamInfo<TimingRow>& param_info) {
      auto name = algorithm_name(param_info.param.algo);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Table-1 structure: message counts ----------------------------------------------

TEST(BaselineMessages, AbdUnboundedWriteIsLinear) {
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    auto group = make_group(Algorithm::kAbdUnbounded, n, (n - 1) / 2);
    const auto before = group.net().stats().snapshot();
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    const auto delta = group.net().stats().diff_since(before);
    // 1 phase: n-1 requests + n-1 acks.
    EXPECT_EQ(delta.total_sent(), 2ull * (n - 1)) << "n=" << n;
  }
}

TEST(BaselineMessages, AbdUnboundedReadIsLinear) {
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    auto group = make_group(Algorithm::kAbdUnbounded, n, (n - 1) / 2);
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    const auto before = group.net().stats().snapshot();
    group.client().read_sync(n - 1);
    group.settle();
    const auto delta = group.net().stats().diff_since(before);
    // 2 phases: query + write-back.
    EXPECT_EQ(delta.total_sent(), 4ull * (n - 1)) << "n=" << n;
  }
}

TEST(BaselineMessages, AbdBoundedOpsAreQuadratic) {
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    auto group = make_group(Algorithm::kAbdBounded, n, (n - 1) / 2);
    const auto before = group.net().stats().snapshot();
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    const auto delta = group.net().stats().diff_since(before);
    // 6 phases x [ (n-1) req + (n-1) ack + (n-1)(n-2) echo ].
    const std::uint64_t expected =
        6ull * ((n - 1) + (n - 1) + std::uint64_t(n - 1) * (n - 2));
    EXPECT_EQ(delta.total_sent(), expected) << "n=" << n;
  }
}

TEST(BaselineMessages, AttiyaOpsAreLinearDespiteManyPhases) {
  const std::uint32_t n = 7;
  auto group = make_group(Algorithm::kAttiya, n, 3);
  const auto before = group.net().stats().snapshot();
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto wdelta = group.net().stats().diff_since(before);
  EXPECT_EQ(wdelta.total_sent(), 7ull * 2 * (n - 1));  // 7 phases, no echo

  const auto before_r = group.net().stats().snapshot();
  group.client().read_sync(3);
  group.settle();
  const auto rdelta = group.net().stats().diff_since(before_r);
  EXPECT_EQ(rdelta.total_sent(), 9ull * 2 * (n - 1));  // 9 phases
}

// ---- wire accounting -------------------------------------------------------------------

TEST(BaselineWire, BoundedLabelSizesDominate) {
  const std::uint32_t n = 5;
  auto bounded = make_group(Algorithm::kAbdBounded, n, 2);
  bounded.client().write_sync(Value::from_int64(1));
  bounded.settle();
  EXPECT_GE(bounded.net().stats().max_control_bits_per_msg(),
            pow_saturating(n, 5));

  auto attiya = make_group(Algorithm::kAttiya, n, 2);
  attiya.client().write_sync(Value::from_int64(1));
  attiya.settle();
  EXPECT_GE(attiya.net().stats().max_control_bits_per_msg(),
            pow_saturating(n, 3));
  EXPECT_LT(attiya.net().stats().max_control_bits_per_msg(),
            pow_saturating(n, 5));
}

TEST(BaselineWire, UnboundedControlBitsGrowWithWriteCount) {
  auto group = make_group(Algorithm::kAbdUnbounded, 3, 1);
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto early = group.net().stats().max_control_bits_per_msg();
  for (int k = 2; k <= 5000; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  const auto late = group.net().stats().max_control_bits_per_msg();
  EXPECT_GT(late, early);  // the live sequence number got wider
}

// ---- memory model --------------------------------------------------------------------------

TEST(BaselineMemory, UnboundedAbdIsConstantSize) {
  auto group = make_group(Algorithm::kAbdUnbounded, 3, 1);
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto& p1 = group.net().process_as<PhasedProcess>(1);
  const auto before = p1.local_memory_bytes();
  for (int k = 2; k <= 100; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  EXPECT_EQ(p1.local_memory_bytes(), before);  // replicas keep one value
}

TEST(BaselineMemory, ModeledLabelStoresMatchTable1Exponents) {
  const std::uint32_t n = 5;
  auto bounded = make_group(Algorithm::kAbdBounded, n, 2);
  auto attiya = make_group(Algorithm::kAttiya, n, 2);
  const auto b = bounded.process(1).local_memory_bytes();
  const auto a = attiya.process(1).local_memory_bytes();
  EXPECT_GE(b, pow_saturating(n, 6) / 8);
  EXPECT_GE(a, pow_saturating(n, 5) / 8);
  EXPECT_GT(b, a);  // O(n^6) > O(n^5)
}

// ---- replica convergence -----------------------------------------------------------------

TEST(BaselineReplicas, EchoGossipSpreadsFreshValues) {
  auto group = make_group(Algorithm::kAbdBounded, 5, 2);
  group.client().write_sync(Value::from_int64(99));
  group.settle();
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto& proc = group.net().process_as<PhasedProcess>(pid);
    EXPECT_EQ(proc.replica_seq(), 1);
    EXPECT_EQ(proc.replica_value().to_int64(), 99);
  }
}

}  // namespace
}  // namespace tbr
