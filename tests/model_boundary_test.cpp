// Model-boundary tests: the CAMP model's two assumptions — reliable
// channels and a crashed minority — are each *necessary*. Violating either
// must never corrupt safety (completed operations stay atomic) but must
// break liveness, and the harness must detect both outcomes.
#include <gtest/gtest.h>

#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

// ---- reliable channels are necessary ----------------------------------------------

class LossSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LossSweep, LossNeverBreaksSafety) {
  // Whatever completes under 5% frame loss must still be atomic.
  for (const auto algo : {Algorithm::kTwoBit, Algorithm::kAbdUnbounded}) {
    SimWorkloadOptions opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = algo;
    opt.seed = GetParam();
    opt.ops_per_process = 10;
    opt.think_time_max = 300;
    opt.loss_rate = 0.05;
    const auto result = run_sim_workload(opt);
    EXPECT_TRUE(result.drained) << algorithm_name(algo);
    const auto check = result.check_atomicity(opt.cfg.initial);
    EXPECT_TRUE(check.ok) << algorithm_name(algo) << ": " << check.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSweep, testing::Range<std::uint64_t>(0, 8));

TEST(ModelBoundary, LossEventuallyStallsTheProtocols) {
  // Neither algorithm retransmits (the model promises reliable channels),
  // so with enough traffic and loss, some correct process's operation hangs
  // forever. Demonstrated across a seed sweep: at 10% loss at least one run
  // must fail to complete its quota — and usually most do.
  for (const auto algo : {Algorithm::kTwoBit, Algorithm::kAbdUnbounded}) {
    std::uint32_t stalled_runs = 0;
    std::uint64_t lost_total = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      SimWorkloadOptions opt;
      opt.cfg.n = 5;
      opt.cfg.t = 2;
      opt.cfg.writer = 0;
      opt.cfg.initial = Value::from_int64(0);
      opt.algo = algo;
      opt.seed = seed;
      opt.ops_per_process = 20;
      opt.think_time_max = 200;
      opt.loss_rate = 0.10;
      const auto result = run_sim_workload(opt);
      EXPECT_TRUE(result.drained);
      lost_total += result.stats.total_dropped();
      if (result.completed_by_correct < result.quota_of_correct) {
        ++stalled_runs;
      }
      // Safety must survive even in stalled runs.
      const auto check = result.check_atomicity(opt.cfg.initial);
      EXPECT_TRUE(check.ok) << check.error;
    }
    EXPECT_GT(stalled_runs, 0u)
        << algorithm_name(algo)
        << ": 10% loss should stall at least one of 10 runs";
    EXPECT_GT(lost_total, 0u);
  }
}

TEST(ModelBoundary, ZeroLossRemainsFullyLive) {
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 3;
  opt.ops_per_process = 20;
  opt.loss_rate = 0.0;
  const auto result = run_sim_workload(opt);
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
}

// ---- t < n/2 is necessary ------------------------------------------------------------

TEST(ModelBoundary, MajorityCrashStallsWritesButKeepsSafety) {
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 5;
  gopt.cfg.t = 2;
  gopt.cfg.writer = 0;
  gopt.cfg.initial = Value::from_int64(0);
  gopt.algo = Algorithm::kTwoBit;
  SimRegisterGroup group(std::move(gopt));
  group.client().write_sync(Value::from_int64(1));

  // Kill a majority: quorums of n-t = 3 are now unreachable.
  group.crash(2);
  group.crash(3);
  group.crash(4);

  bool write_done = false;
  group.begin_write(Value::from_int64(2), [&] { write_done = true; });
  bool read_done = false;
  SeqNo read_idx = -1;
  group.begin_read(1, [&](const Value&, SeqNo idx) {
    read_done = true;
    read_idx = idx;
  });
  EXPECT_TRUE(group.net().run());  // drains: nothing left to deliver
  EXPECT_FALSE(write_done) << "a write must hang without a live quorum";
  EXPECT_FALSE(read_done) << "a read must hang without a live quorum";
  (void)read_idx;
}

TEST(ModelBoundary, ExactlyHalfAliveIsNotEnough) {
  // n = 4, two crashed: 2 alive = n/2 < quorum n-t = 3.
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 4;
  gopt.cfg.t = 1;
  gopt.cfg.writer = 0;
  gopt.cfg.initial = Value::from_int64(0);
  gopt.algo = Algorithm::kAbdUnbounded;
  SimRegisterGroup group(std::move(gopt));
  group.crash(2);
  group.crash(3);
  bool done = false;
  group.begin_write(Value::from_int64(1), [&] { done = true; });
  EXPECT_TRUE(group.net().run());
  EXPECT_FALSE(done);
}

TEST(ModelBoundary, OneMoreAliveProcessRestoresLiveness) {
  // Same as above but only one crash (within t): everything works.
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 4;
  gopt.cfg.t = 1;
  gopt.cfg.writer = 0;
  gopt.cfg.initial = Value::from_int64(0);
  gopt.algo = Algorithm::kAbdUnbounded;
  SimRegisterGroup group(std::move(gopt));
  group.crash(3);
  group.client().write_sync(Value::from_int64(1));
  EXPECT_EQ(group.client().read_sync(1).value.to_int64(), 1);
}

}  // namespace
}  // namespace tbr
