// Simulator tests: event ordering, determinism, delay models, crash
// semantics, in-flight introspection and post-event hooks.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plan.hpp"
#include "sim/sim_network.hpp"

namespace tbr {
namespace {

// A trivial process that counts deliveries and can bounce messages back.
class PingProcess final : public ProcessBase {
 public:
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override {
    ++received;
    last_from = from;
    last_type = msg.type;
    if (bounce_budget > 0) {
      --bounce_budget;
      Message reply;
      reply.type = 1;
      reply.wire = {2, 0};
      net.send(from, reply);
    }
  }
  void on_crash() override { crashed = true; }

  int received = 0;
  int bounce_budget = 0;
  ProcessId last_from = kNoProcess;
  std::uint8_t last_type = 255;
  bool crashed = false;
};

std::vector<std::unique_ptr<ProcessBase>> make_pings(std::size_t n) {
  std::vector<std::unique_ptr<ProcessBase>> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<PingProcess>());
  }
  return out;
}

Message mk(std::uint8_t type) {
  Message m;
  m.type = type;
  m.wire = {2, 0};
  return m;
}

// ---- EventQueue ---------------------------------------------------------------

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
  q.schedule(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RejectsNullAndNegative) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1, nullptr), ContractViolation);
  EXPECT_THROW(q.schedule(-1, [] {}), ContractViolation);
}

// ---- CalendarQueue backend ----------------------------------------------------

EventQueue::Options calendar_options(std::uint32_t buckets = 0,
                                     Tick width = 0) {
  EventQueue::Options opt;
  opt.policy = EventQueue::Policy::kCalendar;
  opt.calendar.buckets = buckets;
  opt.calendar.width = width;
  return opt;
}

TEST(CalendarQueueTest, FiresInTimeOrder) {
  EventQueue q(calendar_options());
  EXPECT_EQ(q.policy(), EventQueue::Policy::kCalendar);
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CalendarQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q(calendar_options());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(CalendarQueueTest, EmptyNonemptyEmptyTransitions) {
  EventQueue q(calendar_options());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
  // Several full drain cycles: the cursor/window state must re-anchor each
  // time the queue goes empty, including at times far from the last batch.
  for (Tick base : {Tick{0}, Tick{7'000}, Tick{5'000'000'000}}) {
    q.schedule(base + 42, [] {});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.next_time(), base + 42);
    EXPECT_EQ(q.size(), 1u);
    q.schedule(base + 7, [] {});
    EXPECT_EQ(q.next_time(), base + 7);
    EXPECT_EQ(q.run_next().at, base + 7);
    EXPECT_EQ(q.next_time(), base + 42);
    EXPECT_EQ(q.run_next().at, base + 42);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_time(), kNever);
  }
}

TEST(CalendarQueueTest, RejectsNullAndNegative) {
  EventQueue q(calendar_options());
  EXPECT_THROW(q.schedule(1, nullptr), ContractViolation);
  EXPECT_THROW(q.schedule(-1, [] {}), ContractViolation);
}

TEST(CalendarQueueTest, FarFutureOutliersLandInOverflow) {
  // Fixed geometry (16 buckets x 10 ticks = a 160-tick year) so the
  // outliers demonstrably sit in the far-future list until the window
  // advances to them.
  EventQueue q(calendar_options(16, 10));
  std::vector<Tick> want;
  for (int i = 0; i < 20; ++i) {
    q.schedule(i * 7, [] {});
    want.push_back(i * 7);
  }
  q.schedule(1'000'000'000, [] {});
  q.schedule(2'000'000'000, [] {});
  want.push_back(1'000'000'000);
  want.push_back(2'000'000'000);
  EXPECT_GE(q.calendar().overflow_size(), 2u);
  std::vector<Tick> got;
  while (!q.empty()) got.push_back(q.run_next().at);
  EXPECT_EQ(got, want);
}

TEST(CalendarQueueTest, ResizeTracksOccupancy) {
  EventQueue q(calendar_options());
  Rng rng(99);
  // Burst: enough events to force the ring to grow well past the minimum.
  std::vector<Tick> want;
  for (int i = 0; i < 2000; ++i) {
    const Tick at = rng.uniform(0, 100'000);
    q.schedule(at, [] {});
    want.push_back(at);
  }
  std::sort(want.begin(), want.end());
  EXPECT_GT(q.calendar().bucket_count(), 16u);
  EXPECT_GT(q.calendar().resizes(), 0u);
  // Drain: pops come out sorted across every grow/shrink boundary, and the
  // ring contracts back toward the minimum.
  std::vector<Tick> got;
  while (!q.empty()) got.push_back(q.run_next().at);
  EXPECT_EQ(got, want);
  EXPECT_EQ(q.calendar().bucket_count(), 16u);
}

// The backend-equivalence property: any interleaving of schedules and pops
// produces byte-identical (time, id, kind, routing) pop sequences on kHeap
// and kCalendar. Phases alternate push-heavy and pop-heavy so occupancy
// sweeps across resize boundaries in both directions; timestamps mix
// duplicates, small steps and +1e9 far-future outliers.
void cross_check_backends(std::uint64_t seed, EventQueue::Options cal_opt) {
  EventQueue heap;  // default policy: kHeap
  EventQueue cal(cal_opt);
  ASSERT_EQ(cal.policy(), EventQueue::Policy::kCalendar);
  Rng rng(seed);
  Tick frontier = 0;

  auto push_one = [&] {
    Tick at = frontier;
    const double shape = rng.uniform01();
    if (shape < 0.25) {
      // duplicate timestamp: FIFO tiebreak must agree
    } else if (shape < 0.92) {
      at = frontier + rng.uniform(1, 5000);
    } else {
      at = frontier + 1'000'000'000;  // far-future outlier
    }
    const auto kind = rng.uniform(0, 2);
    const auto from = static_cast<ProcessId>(rng.uniform(0, 7));
    const auto to = static_cast<ProcessId>(rng.uniform(0, 7));
    const auto frame = static_cast<EventQueue::FrameId>(rng.uniform(0, 999));
    if (kind == 0) {
      heap.schedule(at, [] {});
      cal.schedule(at, [] {});
    } else if (kind == 1) {
      heap.schedule_deliver(at, from, to, frame);
      cal.schedule_deliver(at, from, to, frame);
    } else {
      heap.schedule_drain(at, to);
      cal.schedule_drain(at, to);
    }
  };
  auto pop_and_compare = [&] {
    ASSERT_EQ(heap.next_time(), cal.next_time());
    ASSERT_EQ(heap.size(), cal.size());
    const auto a = heap.pop_next();
    const auto b = cal.pop_next();
    ASSERT_EQ(a.at, b.at);
    ASSERT_EQ(a.id, b.id);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
    ASSERT_EQ(a.from, b.from);
    ASSERT_EQ(a.to, b.to);
    ASSERT_EQ(a.frame, b.frame);
    frontier = a.at;
  };

  for (int phase = 0; phase < 6; ++phase) {
    const double push_bias = (phase % 2 == 0) ? 0.8 : 0.2;
    for (int step = 0; step < 600; ++step) {
      if (heap.empty() || rng.chance(push_bias)) {
        push_one();
      } else {
        pop_and_compare();
      }
    }
  }
  while (!heap.empty()) pop_and_compare();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.next_time(), kNever);
}

TEST(CalendarQueueTest, CrossCheckMatchesHeapAutoGeometry) {
  for (const std::uint64_t seed : {1u, 42u, 1337u}) {
    cross_check_backends(seed, calendar_options());
  }
}

TEST(CalendarQueueTest, CrossCheckMatchesHeapTinyFixedGeometry) {
  // 16 buckets x 1 tick pins a pathological geometry: nearly everything
  // overflows and every pop churns the year-advance path.
  for (const std::uint64_t seed : {3u, 99u}) {
    cross_check_backends(seed, calendar_options(16, 1));
  }
}

// ---- delay models -----------------------------------------------------------------

TEST(DelayModelTest, ConstantIsConstant) {
  ConstantDelay d(500);
  Rng rng(1);
  Message m;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.delay(rng, 0, 1, m), 500);
}

TEST(DelayModelTest, UniformStaysInRange) {
  UniformDelay d(10, 20);
  Rng rng(1);
  Message m;
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.delay(rng, 0, 1, m);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(DelayModelTest, ExponentialPositiveAndCapped) {
  ExponentialDelay d(100, 1000);
  Rng rng(1);
  Message m;
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.delay(rng, 0, 1, m);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
  }
}

TEST(DelayModelTest, FlipFlopAlternatesPerChannel) {
  FlipFlopDelay d(10, 1000, 3);
  Rng rng(1);
  Message m;
  // Channel 0->1: slow, fast, slow, ...
  EXPECT_EQ(d.delay(rng, 0, 1, m), 1000);
  EXPECT_EQ(d.delay(rng, 0, 1, m), 10);
  EXPECT_EQ(d.delay(rng, 0, 1, m), 1000);
  // Independent channel 1->0 starts fresh.
  EXPECT_EQ(d.delay(rng, 1, 0, m), 1000);
}

TEST(DelayModelTest, StragglerSlowsItsLinksOnly) {
  StragglerDelay d(2, 900, 10);
  Rng rng(1);
  Message m;
  EXPECT_EQ(d.delay(rng, 0, 1, m), 10);
  EXPECT_EQ(d.delay(rng, 0, 2, m), 900);
  EXPECT_EQ(d.delay(rng, 2, 1, m), 900);
}

TEST(DelayModelTest, ConstructorContracts) {
  EXPECT_THROW(ConstantDelay(0), ContractViolation);
  EXPECT_THROW(UniformDelay(5, 4), ContractViolation);
  EXPECT_THROW(ExponentialDelay(10, 5), ContractViolation);
  EXPECT_THROW(FlipFlopDelay(10, 10, 2), ContractViolation);
}

// ---- SimNetwork ----------------------------------------------------------------------

TEST(SimNetworkTest, DeliversWithDelay) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.now(), 100);
  auto& p1 = net.process_as<PingProcess>(1);
  EXPECT_EQ(p1.received, 1);
  EXPECT_EQ(p1.last_from, 0u);
}

TEST(SimNetworkTest, SelfSendIsContractError) {
  SimNetwork net(make_pings(2), {});
  net.schedule_at(0, [&] { net.context(0).send(0, mk(0)); });
  EXPECT_THROW((void)net.run(), ContractViolation);
}

TEST(SimNetworkTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    SimNetwork::Options opt;
    opt.seed = seed;
    opt.delay = make_uniform_delay(1, 1000);
    SimNetwork net(make_pings(3), std::move(opt));
    auto& p0 = net.process_as<PingProcess>(0);
    p0.bounce_budget = 50;
    net.process_as<PingProcess>(1).bounce_budget = 50;
    net.schedule_at(0, [&] { net.context(1).send(0, mk(0)); });
    (void)net.run();
    return std::make_tuple(net.now(), net.events_executed(),
                           net.stats().total_sent());
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimNetworkTest, AutoPolicyFollowsDelayModel) {
  {
    SimNetwork::Options opt;
    opt.scheduler_policy = EventQueue::Policy::kAuto;
    opt.delay = make_constant_delay(100);
    SimNetwork net(make_pings(2), std::move(opt));
    EXPECT_EQ(net.scheduler_policy(), EventQueue::Policy::kCalendar);
  }
  {
    SimNetwork::Options opt;
    opt.scheduler_policy = EventQueue::Policy::kAuto;
    opt.delay = make_exponential_delay(100, 10'000);
    SimNetwork net(make_pings(2), std::move(opt));
    EXPECT_EQ(net.scheduler_policy(), EventQueue::Policy::kHeap);
  }
  {
    // kAuto with the default (constant) delay model clusters too.
    SimNetwork::Options opt;
    opt.scheduler_policy = EventQueue::Policy::kAuto;
    SimNetwork net(make_pings(2), std::move(opt));
    EXPECT_EQ(net.scheduler_policy(), EventQueue::Policy::kCalendar);
  }
}

TEST(SimNetworkTest, CalendarPolicyMatchesHeapExecution) {
  auto run_once = [](EventQueue::Policy policy) {
    SimNetwork::Options opt;
    opt.seed = 7;
    opt.scheduler_policy = policy;
    opt.delay = make_uniform_delay(1, 1000);
    SimNetwork net(make_pings(3), std::move(opt));
    net.process_as<PingProcess>(0).bounce_budget = 50;
    net.process_as<PingProcess>(1).bounce_budget = 50;
    net.schedule_at(0, [&] { net.context(1).send(0, mk(0)); });
    (void)net.run();
    return std::make_tuple(net.now(), net.events_executed(),
                           net.stats().total_sent());
  };
  EXPECT_EQ(run_once(EventQueue::Policy::kHeap),
            run_once(EventQueue::Policy::kCalendar));
}

TEST(SimNetworkTest, CrashStopsDelivery) {
  SimNetwork net(make_pings(2), {});
  net.crash_now(1);
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 0);
  EXPECT_EQ(net.stats().total_dropped(), 1u);
  EXPECT_TRUE(net.process_as<PingProcess>(1).crashed);
}

TEST(SimNetworkTest, CrashMidFlightDropsAtDelivery) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  net.crash_at(1, 50);  // frame is in flight when the receiver dies
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 0);
  EXPECT_EQ(net.stats().total_dropped(), 1u);
}

TEST(SimNetworkTest, CrashedSendersPacketsStillFly) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  net.crash_at(0, 10);  // sender dies after sending
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 1);
}

TEST(SimNetworkTest, InFlightIntrospection) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  opt.track_in_flight = true;
  SimNetwork net(make_pings(3), std::move(opt));
  net.schedule_at(0, [&] {
    net.context(0).send(1, mk(0));
    net.context(0).send(2, mk(1));
  });
  // Run just the send event.
  EXPECT_FALSE(net.run(/*max_events=*/1));
  const auto flights = net.in_flight();
  EXPECT_EQ(flights.size(), 2u);
  EXPECT_EQ(net.in_flight_between(0, 1).size(), 1u);
  EXPECT_EQ(net.in_flight_between(1, 0).size(), 0u);
  EXPECT_TRUE(net.run());
  EXPECT_TRUE(net.in_flight().empty());
}

TEST(SimNetworkTest, PostEventHookSeesEveryEvent) {
  SimNetwork net(make_pings(2), {});
  int hooks = 0;
  net.set_post_event_hook([&hooks](SimNetwork&) { ++hooks; });
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_TRUE(net.run());
  EXPECT_EQ(hooks, 2);  // the client event + the delivery
}

TEST(SimNetworkTest, RunUntilPredicate) {
  SimNetwork net(make_pings(2), {});
  auto& p1 = net.process_as<PingProcess>(1);
  for (int i = 0; i < 5; ++i) {
    net.schedule_at(i * 10, [&] { net.context(0).send(1, mk(0)); });
  }
  EXPECT_TRUE(net.run_until([&] { return p1.received >= 2; }));
  EXPECT_EQ(p1.received, 2);
  EXPECT_TRUE(net.run());
  EXPECT_EQ(p1.received, 5);
}

TEST(SimNetworkTest, MaxTimeStopsEarly) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(1000);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_FALSE(net.run(SimNetwork::kDefaultMaxEvents, /*max_time=*/500));
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 0);
}

TEST(SimNetworkTest, SchedulingInThePastRejected) {
  SimNetwork net(make_pings(1), {});
  net.schedule_at(100, [] {});
  (void)net.run();
  EXPECT_THROW(net.schedule_at(50, [] {}), ContractViolation);
}

TEST(SimNetworkTest, StatsAccumulateWire) {
  SimNetwork net(make_pings(2), {});
  net.schedule_at(0, [&] {
    Message m = mk(0);
    m.wire = {2, 64};
    net.context(0).send(1, m);
  });
  (void)net.run();
  EXPECT_EQ(net.stats().total_control_bits(), 2u);
  EXPECT_EQ(net.stats().total_data_bits(), 64u);
}

// ---- FaultPlan -----------------------------------------------------------------------

GroupConfig small_cfg() {
  GroupConfig cfg;
  cfg.n = 5;
  cfg.t = 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

TEST(FaultPlanTest, RandomRespectsBudgetAndWriterFlag) {
  Rng rng(3);
  const auto plan = FaultPlan::random(rng, small_cfg(), 2, 1000,
                                      /*allow_writer=*/false);
  EXPECT_LE(plan.crashes.size(), 2u);
  for (const auto& c : plan.crashes) {
    EXPECT_NE(c.pid, 0u);
    EXPECT_LE(c.at, 1000);
  }
}

TEST(FaultPlanTest, RandomRejectsOverBudget) {
  Rng rng(3);
  EXPECT_THROW(
      (void)FaultPlan::random(rng, small_cfg(), 3, 1000, false),
      ContractViolation);
}

TEST(FaultPlanTest, DeterministicPicksHighestNonWriter) {
  const auto plan = FaultPlan::deterministic(small_cfg(), 2, 77);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].pid, 4u);
  EXPECT_EQ(plan.crashes[1].pid, 3u);
  EXPECT_EQ(plan.crashes[0].at, 77);
}

TEST(FaultPlanTest, InstallCrashesProcesses) {
  SimNetwork net(make_pings(5), {});
  const auto plan = FaultPlan::deterministic(small_cfg(), 2, 10);
  plan.install(net);
  (void)net.run();
  EXPECT_TRUE(net.crashed(4));
  EXPECT_TRUE(net.crashed(3));
  EXPECT_FALSE(net.crashed(0));
  EXPECT_EQ(net.crash_count(), 2u);
}

}  // namespace
}  // namespace tbr
