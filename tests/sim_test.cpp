// Simulator tests: event ordering, determinism, delay models, crash
// semantics, in-flight introspection and post-event hooks.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plan.hpp"
#include "sim/sim_network.hpp"

namespace tbr {
namespace {

// A trivial process that counts deliveries and can bounce messages back.
class PingProcess final : public ProcessBase {
 public:
  void on_message(NetworkContext& net, ProcessId from,
                  const Message& msg) override {
    ++received;
    last_from = from;
    last_type = msg.type;
    if (bounce_budget > 0) {
      --bounce_budget;
      Message reply;
      reply.type = 1;
      reply.wire = {2, 0};
      net.send(from, reply);
    }
  }
  void on_crash() override { crashed = true; }

  int received = 0;
  int bounce_budget = 0;
  ProcessId last_from = kNoProcess;
  std::uint8_t last_type = 255;
  bool crashed = false;
};

std::vector<std::unique_ptr<ProcessBase>> make_pings(std::size_t n) {
  std::vector<std::unique_ptr<ProcessBase>> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<PingProcess>());
  }
  return out;
}

Message mk(std::uint8_t type) {
  Message m;
  m.type = type;
  m.wire = {2, 0};
  return m;
}

// ---- EventQueue ---------------------------------------------------------------

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
  q.schedule(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RejectsNullAndNegative) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1, nullptr), ContractViolation);
  EXPECT_THROW(q.schedule(-1, [] {}), ContractViolation);
}

// ---- delay models -----------------------------------------------------------------

TEST(DelayModelTest, ConstantIsConstant) {
  ConstantDelay d(500);
  Rng rng(1);
  Message m;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.delay(rng, 0, 1, m), 500);
}

TEST(DelayModelTest, UniformStaysInRange) {
  UniformDelay d(10, 20);
  Rng rng(1);
  Message m;
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.delay(rng, 0, 1, m);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(DelayModelTest, ExponentialPositiveAndCapped) {
  ExponentialDelay d(100, 1000);
  Rng rng(1);
  Message m;
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.delay(rng, 0, 1, m);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
  }
}

TEST(DelayModelTest, FlipFlopAlternatesPerChannel) {
  FlipFlopDelay d(10, 1000, 3);
  Rng rng(1);
  Message m;
  // Channel 0->1: slow, fast, slow, ...
  EXPECT_EQ(d.delay(rng, 0, 1, m), 1000);
  EXPECT_EQ(d.delay(rng, 0, 1, m), 10);
  EXPECT_EQ(d.delay(rng, 0, 1, m), 1000);
  // Independent channel 1->0 starts fresh.
  EXPECT_EQ(d.delay(rng, 1, 0, m), 1000);
}

TEST(DelayModelTest, StragglerSlowsItsLinksOnly) {
  StragglerDelay d(2, 900, 10);
  Rng rng(1);
  Message m;
  EXPECT_EQ(d.delay(rng, 0, 1, m), 10);
  EXPECT_EQ(d.delay(rng, 0, 2, m), 900);
  EXPECT_EQ(d.delay(rng, 2, 1, m), 900);
}

TEST(DelayModelTest, ConstructorContracts) {
  EXPECT_THROW(ConstantDelay(0), ContractViolation);
  EXPECT_THROW(UniformDelay(5, 4), ContractViolation);
  EXPECT_THROW(ExponentialDelay(10, 5), ContractViolation);
  EXPECT_THROW(FlipFlopDelay(10, 10, 2), ContractViolation);
}

// ---- SimNetwork ----------------------------------------------------------------------

TEST(SimNetworkTest, DeliversWithDelay) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.now(), 100);
  auto& p1 = net.process_as<PingProcess>(1);
  EXPECT_EQ(p1.received, 1);
  EXPECT_EQ(p1.last_from, 0u);
}

TEST(SimNetworkTest, SelfSendIsContractError) {
  SimNetwork net(make_pings(2), {});
  net.schedule_at(0, [&] { net.context(0).send(0, mk(0)); });
  EXPECT_THROW((void)net.run(), ContractViolation);
}

TEST(SimNetworkTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    SimNetwork::Options opt;
    opt.seed = seed;
    opt.delay = make_uniform_delay(1, 1000);
    SimNetwork net(make_pings(3), std::move(opt));
    auto& p0 = net.process_as<PingProcess>(0);
    p0.bounce_budget = 50;
    net.process_as<PingProcess>(1).bounce_budget = 50;
    net.schedule_at(0, [&] { net.context(1).send(0, mk(0)); });
    (void)net.run();
    return std::make_tuple(net.now(), net.events_executed(),
                           net.stats().total_sent());
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimNetworkTest, CrashStopsDelivery) {
  SimNetwork net(make_pings(2), {});
  net.crash_now(1);
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 0);
  EXPECT_EQ(net.stats().total_dropped(), 1u);
  EXPECT_TRUE(net.process_as<PingProcess>(1).crashed);
}

TEST(SimNetworkTest, CrashMidFlightDropsAtDelivery) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  net.crash_at(1, 50);  // frame is in flight when the receiver dies
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 0);
  EXPECT_EQ(net.stats().total_dropped(), 1u);
}

TEST(SimNetworkTest, CrashedSendersPacketsStillFly) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  net.crash_at(0, 10);  // sender dies after sending
  EXPECT_TRUE(net.run());
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 1);
}

TEST(SimNetworkTest, InFlightIntrospection) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(100);
  opt.track_in_flight = true;
  SimNetwork net(make_pings(3), std::move(opt));
  net.schedule_at(0, [&] {
    net.context(0).send(1, mk(0));
    net.context(0).send(2, mk(1));
  });
  // Run just the send event.
  EXPECT_FALSE(net.run(/*max_events=*/1));
  const auto flights = net.in_flight();
  EXPECT_EQ(flights.size(), 2u);
  EXPECT_EQ(net.in_flight_between(0, 1).size(), 1u);
  EXPECT_EQ(net.in_flight_between(1, 0).size(), 0u);
  EXPECT_TRUE(net.run());
  EXPECT_TRUE(net.in_flight().empty());
}

TEST(SimNetworkTest, PostEventHookSeesEveryEvent) {
  SimNetwork net(make_pings(2), {});
  int hooks = 0;
  net.set_post_event_hook([&hooks](SimNetwork&) { ++hooks; });
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_TRUE(net.run());
  EXPECT_EQ(hooks, 2);  // the client event + the delivery
}

TEST(SimNetworkTest, RunUntilPredicate) {
  SimNetwork net(make_pings(2), {});
  auto& p1 = net.process_as<PingProcess>(1);
  for (int i = 0; i < 5; ++i) {
    net.schedule_at(i * 10, [&] { net.context(0).send(1, mk(0)); });
  }
  EXPECT_TRUE(net.run_until([&] { return p1.received >= 2; }));
  EXPECT_EQ(p1.received, 2);
  EXPECT_TRUE(net.run());
  EXPECT_EQ(p1.received, 5);
}

TEST(SimNetworkTest, MaxTimeStopsEarly) {
  SimNetwork::Options opt;
  opt.delay = make_constant_delay(1000);
  SimNetwork net(make_pings(2), std::move(opt));
  net.schedule_at(0, [&] { net.context(0).send(1, mk(0)); });
  EXPECT_FALSE(net.run(SimNetwork::kDefaultMaxEvents, /*max_time=*/500));
  EXPECT_EQ(net.process_as<PingProcess>(1).received, 0);
}

TEST(SimNetworkTest, SchedulingInThePastRejected) {
  SimNetwork net(make_pings(1), {});
  net.schedule_at(100, [] {});
  (void)net.run();
  EXPECT_THROW(net.schedule_at(50, [] {}), ContractViolation);
}

TEST(SimNetworkTest, StatsAccumulateWire) {
  SimNetwork net(make_pings(2), {});
  net.schedule_at(0, [&] {
    Message m = mk(0);
    m.wire = {2, 64};
    net.context(0).send(1, m);
  });
  (void)net.run();
  EXPECT_EQ(net.stats().total_control_bits(), 2u);
  EXPECT_EQ(net.stats().total_data_bits(), 64u);
}

// ---- FaultPlan -----------------------------------------------------------------------

GroupConfig small_cfg() {
  GroupConfig cfg;
  cfg.n = 5;
  cfg.t = 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

TEST(FaultPlanTest, RandomRespectsBudgetAndWriterFlag) {
  Rng rng(3);
  const auto plan = FaultPlan::random(rng, small_cfg(), 2, 1000,
                                      /*allow_writer=*/false);
  EXPECT_LE(plan.crashes.size(), 2u);
  for (const auto& c : plan.crashes) {
    EXPECT_NE(c.pid, 0u);
    EXPECT_LE(c.at, 1000);
  }
}

TEST(FaultPlanTest, RandomRejectsOverBudget) {
  Rng rng(3);
  EXPECT_THROW(
      (void)FaultPlan::random(rng, small_cfg(), 3, 1000, false),
      ContractViolation);
}

TEST(FaultPlanTest, DeterministicPicksHighestNonWriter) {
  const auto plan = FaultPlan::deterministic(small_cfg(), 2, 77);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].pid, 4u);
  EXPECT_EQ(plan.crashes[1].pid, 3u);
  EXPECT_EQ(plan.crashes[0].at, 77);
}

TEST(FaultPlanTest, InstallCrashesProcesses) {
  SimNetwork net(make_pings(5), {});
  const auto plan = FaultPlan::deterministic(small_cfg(), 2, 10);
  plan.install(net);
  (void)net.run();
  EXPECT_TRUE(net.crashed(4));
  EXPECT_TRUE(net.crashed(3));
  EXPECT_FALSE(net.crashed(0));
  EXPECT_EQ(net.crash_count(), 2u);
}

}  // namespace
}  // namespace tbr
