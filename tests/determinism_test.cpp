// Golden-digest determinism suite.
//
// The EventQueue contract — events fire in (time, insertion-seq) order, so a
// fixed seed yields a fixed run — is load-bearing for every property test in
// the tree. These tests pin entire executions (trace event streams, workload
// histories) to FNV-1a digests captured before the typed-event/frame-pool
// rework of the engine, so any refactor of the scheduling hot path that
// changes ANY ordering, delay draw, drop decision or history is caught
// immediately. If one of these fails, the engine is no longer executing the
// same schedules: do not re-pin the constants without understanding why.

#include <gtest/gtest.h>

#include "sim/trace.hpp"
#include "workload/sim_register_group.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_bytes(std::uint64_t h, const std::string& bytes) {
  h = mix(h, bytes.size());
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t digest_trace(const TraceLog& trace) {
  std::uint64_t h = kFnvOffset;
  for (const auto& e : trace.events()) {
    h = mix(h, static_cast<std::uint64_t>(e.kind));
    h = mix(h, static_cast<std::uint64_t>(e.at));
    h = mix(h, e.from);
    h = mix(h, e.to);
    h = mix(h, e.type);
    h = mix(h, static_cast<std::uint64_t>(e.debug_index));
    h = mix(h, e.has_value ? 1 : 0);
  }
  return h;
}

std::uint64_t digest_result(const SimWorkloadResult& result) {
  std::uint64_t h = kFnvOffset;
  for (const auto& op : result.ops) {
    h = mix(h, static_cast<std::uint64_t>(op.kind));
    h = mix(h, op.proc);
    h = mix(h, static_cast<std::uint64_t>(op.start.tick));
    h = mix(h, op.start.order);
    h = mix(h, static_cast<std::uint64_t>(op.end.tick));
    h = mix(h, op.end.order);
    h = mix(h, op.completed ? 1 : 0);
    h = mix(h, static_cast<std::uint64_t>(op.index));
    h = mix_bytes(h, op.value.bytes());
  }
  h = mix(h, result.stats.total_sent());
  h = mix(h, result.stats.total_dropped());
  h = mix(h, static_cast<std::uint64_t>(result.duration));
  h = mix(h, result.crashes);
  return h;
}

GroupConfig cfg_n(std::uint32_t n) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

// A scripted run with overlap, a crash, random (seeded) delays and a trace:
// exercises send/deliver/drop scheduling, crash events, client events and
// timers of the event queue in one deterministic scenario.
std::uint64_t scripted_trace_digest(
    std::uint64_t seed,
    EventQueue::Policy policy = EventQueue::Policy::kHeap) {
  SimRegisterGroup::Options opt;
  opt.cfg = cfg_n(5);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = seed;
  opt.delay = make_uniform_delay(1, 1000);
  opt.scheduler_policy = policy;
  SimRegisterGroup group(std::move(opt));

  TraceLog trace;
  group.net().set_trace(&trace);

  int writes_done = 0;
  int reads_done = 0;
  std::function<void()> next_write = [&] {
    ++writes_done;
    if (writes_done < 12) {
      group.begin_write(Value::from_int64(writes_done), next_write);
    }
  };
  group.begin_write(Value::from_int64(0), next_write);
  // Per-reader closed loops. The callbacks live in a container that
  // outlives the run and are captured by reference — no ownership cycle.
  std::vector<std::function<void(const Value&, SeqNo)>> read_cbs(4);
  for (ProcessId reader = 1; reader <= 3; ++reader) {
    read_cbs[reader] = [&, reader](const Value&, SeqNo) {
      ++reads_done;
      if (reads_done < 30 && !group.net().crashed(reader)) {
        group.begin_read(reader, read_cbs[reader]);
      }
    };
    group.begin_read(reader, read_cbs[reader]);
  }
  group.crash_at(4, 2500);
  group.net().run();
  group.net().set_trace(nullptr);
  return digest_trace(trace);
}

std::uint64_t workload_digest(
    Algorithm algo, std::uint64_t seed, std::uint32_t crashes,
    EventQueue::Policy policy = EventQueue::Policy::kHeap) {
  SimWorkloadOptions opt;
  opt.cfg = cfg_n(5);
  opt.algo = algo;
  opt.seed = seed;
  opt.ops_per_process = 10;
  opt.writer_read_fraction = 0.25;
  opt.crashes = crashes;
  opt.invariant_checks = false;
  opt.scheduler_policy = policy;
  return digest_result(run_sim_workload(opt));
}

// Golden digests. Captured at commit 04722b9 (pre-rework event queue);
// identical event orderings across the typed-event refactor is an explicit
// acceptance criterion of the zero-allocation PR.
//
// mt19937_64 output is fixed by the standard, but the distributions
// (uniform_int/real) are implementation-defined, so the pinned constants
// hold per standard library. All CI test jobs run libstdc++; other
// standard libraries still get the run-twice stability check below.
#if defined(__GLIBCXX__)
TEST(DeterminismGolden, TwoBitScriptedTraceSeed42) {
  EXPECT_EQ(scripted_trace_digest(42), 12275735979123642976ULL);
}

TEST(DeterminismGolden, TwoBitScriptedTraceSeed7) {
  EXPECT_EQ(scripted_trace_digest(7), 4688055022592829549ULL);
}

TEST(DeterminismGolden, TwoBitWorkloadSeed1) {
  EXPECT_EQ(workload_digest(Algorithm::kTwoBit, 1, 0), 5804822980810446865ULL);
}

TEST(DeterminismGolden, TwoBitWorkloadSeed9Crashy) {
  EXPECT_EQ(workload_digest(Algorithm::kTwoBit, 9, 2), 16356525218755894778ULL);
}

TEST(DeterminismGolden, AbdWorkloadSeed3) {
  EXPECT_EQ(workload_digest(Algorithm::kAbdUnbounded, 3, 1), 13041571012308724545ULL);
}

// The fast-path read engines ride the same scheduler contract: pin one
// crash-free and one crashy workload per engine so a change to their
// message flow (relay fan-out, echo suppression) shows up as a digest
// diff, not as a silent reordering.
TEST(DeterminismGolden, OhRamWorkloadSeed5) {
  EXPECT_EQ(workload_digest(Algorithm::kOhRam, 5, 0), 2381760943655314305ULL);
}

TEST(DeterminismGolden, OhRamWorkloadSeed13Crashy) {
  EXPECT_EQ(workload_digest(Algorithm::kOhRam, 13, 2), 862416080980553890ULL);
}

TEST(DeterminismGolden, TimeEfficientWorkloadSeed5) {
  EXPECT_EQ(workload_digest(Algorithm::kTimeEfficient, 5, 0), 15779028740564427076ULL);
}

TEST(DeterminismGolden, TimeEfficientWorkloadSeed13Crashy) {
  EXPECT_EQ(workload_digest(Algorithm::kTimeEfficient, 13, 2), 9057313251012063291ULL);
}

// The calendar backend pops the exact (time, insertion-seq) order the heap
// does, so the SAME pinned constants must hold on Policy::kCalendar — no
// re-capture. A divergence here means the backends disagree on ordering.
TEST(DeterminismGolden, TwoBitScriptedTraceSeed42Calendar) {
  EXPECT_EQ(scripted_trace_digest(42, EventQueue::Policy::kCalendar),
            12275735979123642976ULL);
}

TEST(DeterminismGolden, TwoBitWorkloadSeed9CrashyCalendar) {
  EXPECT_EQ(
      workload_digest(Algorithm::kTwoBit, 9, 2, EventQueue::Policy::kCalendar),
      16356525218755894778ULL);
}

TEST(DeterminismGolden, OhRamWorkloadSeed13CrashyCalendar) {
  EXPECT_EQ(
      workload_digest(Algorithm::kOhRam, 13, 2, EventQueue::Policy::kCalendar),
      862416080980553890ULL);
}
#endif  // __GLIBCXX__

// Library-independent form of the same claim: heap and calendar digests are
// equal on any standard library, whatever the distribution draws are.
TEST(DeterminismGolden, PoliciesDigestIdentically) {
  EXPECT_EQ(scripted_trace_digest(2026, EventQueue::Policy::kHeap),
            scripted_trace_digest(2026, EventQueue::Policy::kCalendar));
  EXPECT_EQ(
      workload_digest(Algorithm::kTwoBit, 55, 1, EventQueue::Policy::kHeap),
      workload_digest(Algorithm::kTwoBit, 55, 1,
                      EventQueue::Policy::kCalendar));
}

TEST(DeterminismGolden, RunTwiceBitIdentical) {
  EXPECT_EQ(scripted_trace_digest(1234), scripted_trace_digest(1234));
  EXPECT_EQ(workload_digest(Algorithm::kTwoBit, 77, 1),
            workload_digest(Algorithm::kTwoBit, 77, 1));
}

TEST(DeterminismGolden, FastReadRunTwiceAndPoliciesIdentical) {
  for (const auto algo : fastread_algorithms()) {
    EXPECT_EQ(workload_digest(algo, 77, 1), workload_digest(algo, 77, 1))
        << algorithm_name(algo);
    EXPECT_EQ(workload_digest(algo, 55, 1, EventQueue::Policy::kHeap),
              workload_digest(algo, 55, 1, EventQueue::Policy::kCalendar))
        << algorithm_name(algo);
  }
}

}  // namespace
}  // namespace tbr
