// Socket runtime (src/transport): the register over real loopback TCP —
// basic semantics via the unified client, all four algorithms on the
// wire, crash behaviour, the inbound frame ring, concurrent-history
// atomicity, and composition with the reliable-link decorator (timers on
// a real event loop).
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "core/twobit_process.hpp"
#include "link/reliable_link.hpp"
#include "transport/frame_buffer.hpp"
#include "transport/socket_workload.hpp"

namespace tbr {
namespace {

GroupConfig make_cfg(std::uint32_t n, std::uint32_t t) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

SocketNetwork::Options net_options(Algorithm algo, std::uint32_t n,
                                   std::uint32_t t) {
  SocketNetwork::Options opt;
  opt.cfg = make_cfg(n, t);
  opt.algo = algo;
  return opt;
}

TEST(SocketNetworkTest, WriteThenReadEverywhere) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(77)).status.ok());
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const OpResult out = net.client().read_sync(pid);
    EXPECT_EQ(out.value.to_int64(), 77) << "process " << pid;
    EXPECT_EQ(out.version, 1);
  }
  net.stop();
}

TEST(SocketNetworkTest, SequentialWritesVisibleInOrder) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  for (int k = 1; k <= 20; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
    const OpResult out =
        net.client().read_sync(static_cast<ProcessId>(k % 3));
    EXPECT_EQ(out.value.to_int64(), k);
  }
  net.stop();
}

TEST(SocketNetworkTest, StringValuesSurviveTheWire) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  const std::string payload(4096, 'x');  // bigger than one read chunk slice
  ASSERT_TRUE(
      net.client().write_sync(Value::from_string(payload + "end")).status.ok());
  EXPECT_EQ(net.client().read_sync(2).value.to_string(), payload + "end");
  net.stop();
}

TEST(SocketNetworkTest, TwoBitFramesCostTwoBitsOnTcpToo) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  (void)net.client().read_sync(1);
  const auto stats = net.stats_snapshot();
  EXPECT_GT(stats.total_sent(), 0u);
  EXPECT_EQ(stats.max_control_bits_per_msg(), 2u)
      << "the headline property is transport-independent";
  net.stop();
}

TEST(SocketNetworkTest, AllFourAlgorithmsSpeakTcp) {
  for (const auto algo : all_algorithms()) {
    SocketNetwork net(net_options(algo, 3, 1));
    net.start();
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(11)).status.ok());
    EXPECT_EQ(net.client().read_sync(1).value.to_int64(), 11)
        << algorithm_name(algo);
    net.stop();
  }
}

TEST(SocketNetworkTest, PipelinedBatchCompletesInOrderPerProcess) {
  // submit(span) through the socket client: the per-process chains keep at
  // most one op in flight per loop thread, the rest pipeline behind it.
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  std::array<RegisterOp, 6> ops;
  for (int k = 0; k < 3; ++k) {
    ops[2 * k].kind = OpKind::kWrite;
    ops[2 * k].value = Value::from_int64(k + 1);
    ops[2 * k + 1].kind = OpKind::kRead;
    ops[2 * k + 1].reader = 1;
  }
  std::array<Ticket, 6> tickets;
  ASSERT_EQ(net.client().submit(ops, tickets.data()), 6u);
  SeqNo last_version = -1;
  for (int k = 0; k < 6; ++k) {
    const OpResult r = net.client().wait(tickets[k]);
    EXPECT_TRUE(r.status.ok()) << r.status.message();
    if (k % 2 == 1) {
      EXPECT_GE(r.version, last_version);
      last_version = r.version;
    }
  }
  const OpResult after = net.client().read_sync(2);
  EXPECT_EQ(after.version, 3);
  EXPECT_EQ(after.value.to_int64(), 3);
  net.stop();
}

TEST(SocketNetworkTest, CrashedProcessRejectsOpsAndGroupSurvives) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  net.crash(4);
  while (!net.crashed(4)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(net.client().read_sync(4).status.code(), StatusCode::kCrashed);
  // Peers observe the dead channel; quorums never needed p4.
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(2)).status.ok());
  EXPECT_EQ(net.client().read_sync(1).value.to_int64(), 2);
  net.stop();
}

TEST(SocketNetworkTest, MinorityCrashMidProtocol) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  net.crash(3);
  net.crash(4);  // f = t = 2: the group must still be live
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
    EXPECT_EQ(net.client()
                  .read_sync(static_cast<ProcessId>(k % 3))
                  .value.to_int64(),
              k);
  }
  net.stop();
}

TEST(SocketNetworkTest, MultiLoopCrashAndRecoverAcrossLoops) {
  // Crash and rejoin with processes sharded over several event loops: the
  // reattach commands cross loop boundaries (victim and peers live on
  // different loops), and the rejoined process serves reads again.
  auto opt = net_options(Algorithm::kTwoBit, 5, 2);
  opt.loops = 4;
  SocketNetwork net(std::move(opt));
  ASSERT_EQ(net.loop_count(), 4u);
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  net.crash(3);
  while (!net.crashed(3)) {  // crash is a command on the victim's loop
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(2)).status.ok());
  EXPECT_EQ(net.client().read_sync(1).value.to_int64(), 2);
  net.recover(3);
  // Rejoin re-meshes asynchronously; poll until the rejoiner serves reads.
  OpResult out;
  for (int attempt = 0; attempt < 500; ++attempt) {
    out = net.client().read_sync(3);
    if (out.status.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(out.status.ok()) << out.status.message();
  EXPECT_EQ(out.value.to_int64(), 2);
  EXPECT_FALSE(net.crashed(3));
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(3)).status.ok());
  EXPECT_EQ(net.client().read_sync(3).value.to_int64(), 3);
  net.stop();
}

TEST(SocketNetworkTest, StopIsIdempotentAndDestructorSafe) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  net.stop();
  net.stop();
}

TEST(SocketNetworkTest, ShutdownDrainsDeepPipelinedChainIteratively) {
  // Regression: a pipelined chain unwinding at shutdown cascades through
  // synchronous complete_failed() calls — with mutual recursion that is a
  // stack frame per queued op, and 20k ops would overflow; the client's
  // deferred-issue drain must unwind it as a loop.
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  constexpr std::size_t kOps = 20'000;
  std::vector<RegisterOp> ops(kOps);
  for (auto& op : ops) {
    op.kind = OpKind::kWrite;
    op.value = Value::from_int64(1);
  }
  std::vector<Ticket> tickets(kOps);
  ASSERT_EQ(net.client().submit(ops, tickets.data()), kOps);
  net.stop();
  std::size_t completed = 0;
  for (const Ticket& t : tickets) {
    const OpResult r = net.client().wait(t);
    if (r.status.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kShutdown);
    }
  }
  EXPECT_LT(completed, kOps) << "stop() should strand most of the chain";
}

TEST(SocketNetworkTest, ShutdownReportsShutdownStatus) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  net.stop();
  EXPECT_EQ(net.client().write_sync(Value::from_int64(2)).status.code(),
            StatusCode::kShutdown);
  EXPECT_EQ(net.client().read_sync(1).status.code(), StatusCode::kShutdown);
}

TEST(SocketNetworkTest, LinkDecoratorComposesOverTcp) {
  // TCP is already reliable, so the link's sequencing must be exactly-once
  // pass-through (no retransmissions); this exercises the timer path of
  // the socket event loop and the decorator's runtime-independence.
  SocketNetwork::Options opt = net_options(Algorithm::kTwoBit, 3, 1);
  LinkOptions lopt;
  lopt.retransmit_timeout = 50'000'000;  // 50 ms in ns
  opt.process_factory = [lopt](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<ReliableLinkProcess>(
        cfg, pid, std::make_unique<TwoBitProcess>(cfg, pid), lopt);
  };
  SocketNetwork net(std::move(opt));
  net.start();
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
    EXPECT_EQ(net.client()
                  .read_sync(static_cast<ProcessId>(k % 3))
                  .value.to_int64(),
              k);
  }
  net.stop();
}

// ---- the inbound frame ring --------------------------------------------------------

TEST(FrameBufferTest, DrainsManySmallFramesFromOneBufferedRead) {
  // One large buffered read delivering hundreds of small frames — the case
  // the consumed-offset ring exists for. Every frame must come back intact
  // and in order, with the consumed prefix folded away only on the
  // amortized compaction schedule (never once per drain).
  FrameBuffer buf;
  constexpr int kFrames = 512;
  for (int k = 0; k < kFrames; ++k) {
    FrameBuffer::append_frame(buf.tail(),
                              "frame-" + std::to_string(k) + "-payload");
  }
  std::string_view frame;
  for (int k = 0; k < kFrames; ++k) {
    ASSERT_TRUE(buf.next_frame(frame)) << "frame " << k;
    EXPECT_EQ(frame, "frame-" + std::to_string(k) + "-payload");
  }
  EXPECT_FALSE(buf.next_frame(frame));
  EXPECT_EQ(buf.pending_bytes(), 0u);
  EXPECT_LT(buf.compactions(), static_cast<std::uint64_t>(kFrames) / 4)
      << "draining a frame must not memmove the whole remainder each time";
}

TEST(FrameBufferTest, PartialFramesSpanAppends) {
  // Stream bytes arrive in arbitrary slices: a frame split across appends
  // must only surface once complete, and zero-length frames are legal.
  FrameBuffer buf;
  std::string wire;
  FrameBuffer::append_frame(wire, "alpha");
  FrameBuffer::append_frame(wire, "");
  FrameBuffer::append_frame(wire, std::string(3000, 'z'));
  std::string_view frame;
  for (std::size_t cut = 1; cut < wire.size(); cut += 911) {
    FrameBuffer sliced;
    sliced.tail().append(wire, 0, cut);
    std::vector<std::string> seen;
    while (sliced.next_frame(frame)) seen.push_back(std::string(frame));
    sliced.tail().append(wire, cut, std::string::npos);
    while (sliced.next_frame(frame)) seen.push_back(std::string(frame));
    ASSERT_EQ(seen.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(seen[0], "alpha");
    EXPECT_EQ(seen[1], "");
    EXPECT_EQ(seen[2], std::string(3000, 'z'));
  }
  (void)buf;
}

TEST(FrameBufferTest, InterleavedAppendDrainKeepsOffsetBounded) {
  // Producer/consumer in lockstep with a persistent one-frame backlog: the
  // read offset must stay bounded by compaction instead of growing without
  // limit (the ring's whole point).
  FrameBuffer buf;
  std::string_view frame;
  FrameBuffer::append_frame(buf.tail(), "backlog");
  for (int k = 0; k < 10000; ++k) {
    FrameBuffer::append_frame(buf.tail(), "item-" + std::to_string(k));
    ASSERT_TRUE(buf.next_frame(frame));
  }
  EXPECT_LT(buf.read_offset() + buf.pending_bytes(), 4096u)
      << "storage must stay near the backlog size, not the bytes ever seen";
  ASSERT_TRUE(buf.next_frame(frame));
  EXPECT_EQ(frame, "item-9999");
}

// ---- concurrent workloads with atomicity checking -----------------------------------

struct SocketLinCase {
  Algorithm algo;
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  std::uint64_t seed;
  std::uint32_t loops = 0;  ///< 0 = auto (see SocketNetwork::Options)
};

std::string case_name(const testing::TestParamInfo<SocketLinCase>& info) {
  const auto& c = info.param;
  std::string name = algorithm_name(c.algo);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_n" + std::to_string(c.n) + "c" + std::to_string(c.crashes) +
          "_s" + std::to_string(c.seed);
  if (c.loops != 0) name += "_l" + std::to_string(c.loops);
  return name;
}

class SocketLinearizability : public testing::TestWithParam<SocketLinCase> {};

TEST_P(SocketLinearizability, ConcurrentTcpHistoryIsAtomic) {
  const auto& c = GetParam();
  SocketWorkloadOptions opt;
  opt.cfg = make_cfg(c.n, c.t);
  opt.algo = c.algo;
  opt.seed = c.seed;
  opt.ops_per_process = 20;
  opt.crashes = c.crashes;
  opt.loops = c.loops;
  const auto result = run_socket_workload(opt);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  if (c.crashes == 0) {
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  }
  EXPECT_GT(result.stats.total_sent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SocketLinearizability,
    testing::Values(SocketLinCase{Algorithm::kTwoBit, 3, 1, 0, 1},
                    SocketLinCase{Algorithm::kTwoBit, 5, 2, 0, 2},
                    SocketLinCase{Algorithm::kTwoBit, 5, 2, 2, 3},
                    SocketLinCase{Algorithm::kTwoBit, 7, 3, 3, 4},
                    SocketLinCase{Algorithm::kAbdUnbounded, 5, 2, 0, 5},
                    SocketLinCase{Algorithm::kAbdUnbounded, 5, 2, 2, 6},
                    SocketLinCase{Algorithm::kAttiya, 3, 1, 0, 7},
                    SocketLinCase{Algorithm::kAbdBounded, 3, 1, 0, 8},
                    // Multi-loop sweep: the same histories must stay atomic
                    // when processes are sharded pid % loops across event
                    // loops (cross-loop frames, timers, and crashes).
                    SocketLinCase{Algorithm::kTwoBit, 5, 2, 0, 9, 2},
                    SocketLinCase{Algorithm::kTwoBit, 5, 2, 2, 10, 4},
                    SocketLinCase{Algorithm::kTwoBit, 7, 3, 3, 11, 4},
                    SocketLinCase{Algorithm::kAbdUnbounded, 5, 2, 2, 12, 2}),
    case_name);

}  // namespace
}  // namespace tbr
