// Socket runtime (src/transport): the register over real loopback TCP —
// basic semantics, all four algorithms on the wire, crash behaviour,
// concurrent-history atomicity, and composition with the reliable-link
// decorator (timers on a real event loop).
#include <gtest/gtest.h>

#include <thread>

#include "core/twobit_process.hpp"
#include "link/reliable_link.hpp"
#include "transport/socket_workload.hpp"

namespace tbr {
namespace {

GroupConfig make_cfg(std::uint32_t n, std::uint32_t t) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

SocketNetwork::Options net_options(Algorithm algo, std::uint32_t n,
                                   std::uint32_t t) {
  SocketNetwork::Options opt;
  opt.cfg = make_cfg(n, t);
  opt.algo = algo;
  return opt;
}

TEST(SocketNetworkTest, WriteThenReadEverywhere) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  net.write(Value::from_int64(77)).get();
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto out = net.read(pid).get();
    EXPECT_EQ(out.value.to_int64(), 77) << "process " << pid;
    EXPECT_EQ(out.index, 1);
  }
  net.stop();
}

TEST(SocketNetworkTest, SequentialWritesVisibleInOrder) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  for (int k = 1; k <= 20; ++k) {
    net.write(Value::from_int64(k)).get();
    const auto out = net.read(static_cast<ProcessId>(k % 3)).get();
    EXPECT_EQ(out.value.to_int64(), k);
  }
  net.stop();
}

TEST(SocketNetworkTest, StringValuesSurviveTheWire) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  const std::string payload(4096, 'x');  // bigger than one read chunk slice
  net.write(Value::from_string(payload + "end")).get();
  EXPECT_EQ(net.read(2).get().value.to_string(), payload + "end");
  net.stop();
}

TEST(SocketNetworkTest, TwoBitFramesCostTwoBitsOnTcpToo) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  net.write(Value::from_int64(1)).get();
  (void)net.read(1).get();
  const auto stats = net.stats_snapshot();
  EXPECT_GT(stats.total_sent(), 0u);
  EXPECT_EQ(stats.max_control_bits_per_msg(), 2u)
      << "the headline property is transport-independent";
  net.stop();
}

TEST(SocketNetworkTest, AllFourAlgorithmsSpeakTcp) {
  for (const auto algo : all_algorithms()) {
    SocketNetwork net(net_options(algo, 3, 1));
    net.start();
    net.write(Value::from_int64(11)).get();
    EXPECT_EQ(net.read(1).get().value.to_int64(), 11)
        << algorithm_name(algo);
    net.stop();
  }
}

TEST(SocketNetworkTest, CrashedProcessRejectsOpsAndGroupSurvives) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  net.write(Value::from_int64(1)).get();
  net.crash(4);
  while (!net.crashed(4)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_THROW(net.read(4).get(), std::runtime_error);
  // Peers observe the dead channel; quorums never needed p4.
  net.write(Value::from_int64(2)).get();
  EXPECT_EQ(net.read(1).get().value.to_int64(), 2);
  net.stop();
}

TEST(SocketNetworkTest, MinorityCrashMidProtocol) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  net.crash(3);
  net.crash(4);  // f = t = 2: the group must still be live
  for (int k = 1; k <= 10; ++k) {
    net.write(Value::from_int64(k)).get();
    EXPECT_EQ(net.read(static_cast<ProcessId>(k % 3)).get().value.to_int64(),
              k);
  }
  net.stop();
}

TEST(SocketNetworkTest, StopIsIdempotentAndDestructorSafe) {
  SocketNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  net.write(Value::from_int64(1)).get();
  net.stop();
  net.stop();
}

TEST(SocketNetworkTest, LinkDecoratorComposesOverTcp) {
  // TCP is already reliable, so the link's sequencing must be exactly-once
  // pass-through (no retransmissions); this exercises the timer path of
  // the socket event loop and the decorator's runtime-independence.
  SocketNetwork::Options opt = net_options(Algorithm::kTwoBit, 3, 1);
  LinkOptions lopt;
  lopt.retransmit_timeout = 50'000'000;  // 50 ms in ns
  opt.process_factory = [lopt](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<ReliableLinkProcess>(
        cfg, pid, std::make_unique<TwoBitProcess>(cfg, pid), lopt);
  };
  SocketNetwork net(std::move(opt));
  net.start();
  for (int k = 1; k <= 10; ++k) {
    net.write(Value::from_int64(k)).get();
    EXPECT_EQ(net.read(static_cast<ProcessId>(k % 3)).get().value.to_int64(),
              k);
  }
  net.stop();
}

// ---- concurrent workloads with atomicity checking -----------------------------------

struct SocketLinCase {
  Algorithm algo;
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<SocketLinCase>& info) {
  const auto& c = info.param;
  std::string name = algorithm_name(c.algo);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_n" + std::to_string(c.n) + "c" + std::to_string(c.crashes) +
         "_s" + std::to_string(c.seed);
}

class SocketLinearizability : public testing::TestWithParam<SocketLinCase> {};

TEST_P(SocketLinearizability, ConcurrentTcpHistoryIsAtomic) {
  const auto& c = GetParam();
  SocketWorkloadOptions opt;
  opt.cfg = make_cfg(c.n, c.t);
  opt.algo = c.algo;
  opt.seed = c.seed;
  opt.ops_per_process = 20;
  opt.crashes = c.crashes;
  const auto result = run_socket_workload(opt);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  if (c.crashes == 0) {
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  }
  EXPECT_GT(result.stats.total_sent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SocketLinearizability,
    testing::Values(SocketLinCase{Algorithm::kTwoBit, 3, 1, 0, 1},
                    SocketLinCase{Algorithm::kTwoBit, 5, 2, 0, 2},
                    SocketLinCase{Algorithm::kTwoBit, 5, 2, 2, 3},
                    SocketLinCase{Algorithm::kTwoBit, 7, 3, 3, 4},
                    SocketLinCase{Algorithm::kAbdUnbounded, 5, 2, 0, 5},
                    SocketLinCase{Algorithm::kAbdUnbounded, 5, 2, 2, 6},
                    SocketLinCase{Algorithm::kAttiya, 3, 1, 0, 7},
                    SocketLinCase{Algorithm::kAbdBounded, 3, 1, 0, 8}),
    case_name);

}  // namespace
}  // namespace tbr
