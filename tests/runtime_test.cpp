// Threaded-runtime tests: real concurrency, the unified client, crash
// semantics, and linearizability of histories produced under genuine
// thread interleavings.
#include <gtest/gtest.h>

#include "runtime/thread_workload.hpp"

namespace tbr {
namespace {

GroupConfig make_cfg(std::uint32_t n, std::uint32_t t) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

ThreadNetwork::Options net_options(Algorithm algo, std::uint32_t n,
                                   std::uint32_t t) {
  ThreadNetwork::Options opt;
  opt.cfg = make_cfg(n, t);
  opt.algo = algo;
  opt.min_delay_us = 0;
  opt.max_delay_us = 100;
  return opt;
}

TEST(ThreadNetworkTest, WriteThenReadEverywhere) {
  ThreadNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(77)).status.ok());
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const OpResult out = net.client().read_sync(pid);
    EXPECT_EQ(out.value.to_int64(), 77) << "process " << pid;
    EXPECT_EQ(out.version, 1);
  }
  net.stop();
}

TEST(ThreadNetworkTest, SequentialWritesVisibleInOrder) {
  ThreadNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  for (int k = 1; k <= 25; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
    const OpResult out =
        net.client().read_sync(static_cast<ProcessId>(k % 3));
    EXPECT_EQ(out.value.to_int64(), k);
  }
  net.stop();
}

TEST(ThreadNetworkTest, LatenciesArePositive) {
  ThreadNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  const OpResult w = net.client().write_sync(Value::from_int64(1));
  EXPECT_GT(w.latency, 0);
  const OpResult r = net.client().read_sync(2);
  EXPECT_GT(r.latency, 0);
  net.stop();
}

TEST(ThreadNetworkTest, CrashedProcessRejectsOps) {
  ThreadNetwork net(net_options(Algorithm::kTwoBit, 5, 2));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  net.crash(4);
  // Wait until the crash marker has been consumed.
  while (!net.crashed(4)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(net.client().read_sync(4).status.code(), StatusCode::kCrashed);
  // The rest of the group keeps working.
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(2)).status.ok());
  EXPECT_EQ(net.client().read_sync(1).value.to_int64(), 2);
  net.stop();
}

TEST(ThreadNetworkTest, StatsAccumulate) {
  ThreadNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  const auto stats = net.stats_snapshot();
  EXPECT_GT(stats.total_sent(), 0u);
  EXPECT_EQ(stats.max_control_bits_per_msg(), 2u);
  net.stop();
}

TEST(ThreadNetworkTest, StopIsIdempotentAndDestructorSafe) {
  ThreadNetwork net(net_options(Algorithm::kTwoBit, 3, 1));
  net.start();
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  net.stop();
  net.stop();  // second stop is a no-op
}

TEST(ThreadNetworkTest, BaselinesRunOnThreadsToo) {
  for (const auto algo :
       {Algorithm::kAbdUnbounded, Algorithm::kAbdBounded, Algorithm::kAttiya}) {
    ThreadNetwork net(net_options(algo, 3, 1));
    net.start();
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(11)).status.ok());
    EXPECT_EQ(net.client().read_sync(1).value.to_int64(), 11)
        << algorithm_name(algo);
    net.stop();
  }
}

// ---- concurrent workloads with atomicity checking -----------------------------------

struct ThreadLinCase {
  Algorithm algo;
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<ThreadLinCase>& info) {
  const auto& c = info.param;
  std::string name = algorithm_name(c.algo);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_n" + std::to_string(c.n) + "c" + std::to_string(c.crashes) +
         "_s" + std::to_string(c.seed);
}

class ThreadedLinearizability : public testing::TestWithParam<ThreadLinCase> {
};

TEST_P(ThreadedLinearizability, ConcurrentHistoryIsAtomic) {
  const auto& c = GetParam();
  ThreadWorkloadOptions opt;
  opt.cfg = make_cfg(c.n, c.t);
  opt.algo = c.algo;
  opt.seed = c.seed;
  opt.ops_per_process = 24;
  opt.min_delay_us = 0;
  opt.max_delay_us = 250;
  opt.crashes = c.crashes;
  const auto result = run_thread_workload(opt);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  if (c.crashes == 0) {
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  }
  EXPECT_GT(result.stats.total_sent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreadedLinearizability,
    testing::Values(ThreadLinCase{Algorithm::kTwoBit, 3, 1, 0, 1},
                    ThreadLinCase{Algorithm::kTwoBit, 5, 2, 0, 2},
                    ThreadLinCase{Algorithm::kTwoBit, 5, 2, 0, 3},
                    ThreadLinCase{Algorithm::kTwoBit, 7, 3, 0, 4},
                    ThreadLinCase{Algorithm::kTwoBit, 5, 2, 2, 5},
                    ThreadLinCase{Algorithm::kTwoBit, 7, 3, 3, 6},
                    ThreadLinCase{Algorithm::kTwoBit, 9, 4, 4, 11},
                    ThreadLinCase{Algorithm::kAbdUnbounded, 5, 2, 0, 7},
                    ThreadLinCase{Algorithm::kAbdUnbounded, 5, 2, 2, 8},
                    ThreadLinCase{Algorithm::kAbdUnbounded, 7, 3, 3, 12},
                    ThreadLinCase{Algorithm::kAbdBounded, 3, 1, 0, 9},
                    ThreadLinCase{Algorithm::kAbdBounded, 5, 2, 2, 13},
                    ThreadLinCase{Algorithm::kAttiya, 3, 1, 0, 10},
                    ThreadLinCase{Algorithm::kAttiya, 5, 2, 2, 14}),
    case_name);

}  // namespace
}  // namespace tbr
