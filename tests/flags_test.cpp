// Unit tests for the CLI flag parser.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/flags.hpp"

namespace tbr {
namespace {

FlagParser make_parser() {
  FlagParser flags("test", "test parser");
  flags.add_string("algo", "twobit", "algorithm");
  flags.add_int("n", 5, "processes");
  flags.add_bool("verbose", false, "chatty");
  flags.add_double("fraction", 0.5, "a ratio");
  return flags;
}

TEST(FlagsTest, DefaultsApply) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({}));
  EXPECT_EQ(flags.get_string("algo"), "twobit");
  EXPECT_EQ(flags.get_int("n"), 5);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(flags.get_double("fraction"), 0.5);
}

TEST(FlagsTest, EqualsForm) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"--algo=attiya", "--n=9", "--fraction=0.25"}));
  EXPECT_EQ(flags.get_string("algo"), "attiya");
  EXPECT_EQ(flags.get_int("n"), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("fraction"), 0.25);
}

TEST(FlagsTest, SpaceForm) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"--n", "13", "--algo", "abd-bounded"}));
  EXPECT_EQ(flags.get_int("n"), 13);
  EXPECT_EQ(flags.get_string("algo"), "abd-bounded");
}

TEST(FlagsTest, BareBooleanSetsTrue) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"--verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagsTest, ExplicitBooleanValue) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"--verbose=true"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
  auto flags2 = make_parser();
  EXPECT_TRUE(flags2.parse({"--verbose=false"}));
  EXPECT_FALSE(flags2.get_bool("verbose"));
}

TEST(FlagsTest, PositionalTokensCollected) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"run", "--n=3", "extra"}));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagsTest, UnknownFlagRejected) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--frobnicate=1"}));
  EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
}

TEST(FlagsTest, BadIntRejected) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--n=three"}));
  EXPECT_NE(flags.error().find("expects an integer"), std::string::npos);
}

TEST(FlagsTest, BadBoolRejected) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--verbose=yes"}));
  EXPECT_NE(flags.error().find("true/false"), std::string::npos);
}

TEST(FlagsTest, BadDoubleRejected) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--fraction=half"}));
}

TEST(FlagsTest, MissingValueRejected) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--n"}));
  EXPECT_NE(flags.error().find("needs a value"), std::string::npos);
}

TEST(FlagsTest, HelpRequested) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"--help"}));
  EXPECT_TRUE(flags.help_requested());
  const auto help = flags.help_text();
  EXPECT_NE(help.find("--algo"), std::string::npos);
  EXPECT_NE(help.find("default: twobit"), std::string::npos);
}

TEST(FlagsTest, TypeMismatchIsContractError) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({}));
  EXPECT_THROW((void)flags.get_int("algo"), ContractViolation);
  EXPECT_THROW((void)flags.get_string("missing"), ContractViolation);
}

TEST(FlagsTest, DuplicateDeclarationRejected) {
  FlagParser flags("t", "t");
  flags.add_int("n", 1, "doc");
  EXPECT_THROW(flags.add_string("n", "x", "doc"), ContractViolation);
}

TEST(FlagsTest, NegativeIntegers) {
  auto flags = make_parser();
  EXPECT_TRUE(flags.parse({"--n=-1"}));
  EXPECT_EQ(flags.get_int("n"), -1);
}

}  // namespace
}  // namespace tbr
