// Unit tests for GuardSet: the predicate-parked continuation primitive that
// implements the paper's wait statements.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "net/guard.hpp"

namespace tbr {
namespace {

TEST(GuardTest, FiresWhenPredicateHolds) {
  GuardSet guards;
  bool fired = false;
  int x = 0;
  guards.park("x>=3", [&] { return x >= 3; }, [&] { fired = true; });
  guards.poll();
  EXPECT_FALSE(fired);
  x = 3;
  guards.poll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(guards.pending(), 0u);
}

TEST(GuardTest, FiresOnlyOnce) {
  GuardSet guards;
  int count = 0;
  guards.park("always", [] { return true; }, [&] { ++count; });
  guards.poll();
  guards.poll();
  EXPECT_EQ(count, 1);
}

TEST(GuardTest, AlreadyTruePredicateWaitsForPoll) {
  GuardSet guards;
  bool fired = false;
  guards.park("true", [] { return true; }, [&] { fired = true; });
  EXPECT_FALSE(fired);  // park never runs the action inline
  guards.poll();
  EXPECT_TRUE(fired);
}

TEST(GuardTest, ChainedGuardsReachFixpoint) {
  GuardSet guards;
  int stage = 0;
  guards.park("s1", [&] { return stage >= 1; }, [&] { stage = 2; });
  guards.park("s2", [&] { return stage >= 2; }, [&] { stage = 3; });
  stage = 1;
  guards.poll();  // one poll must cascade through both
  EXPECT_EQ(stage, 3);
  EXPECT_EQ(guards.pending(), 0u);
}

TEST(GuardTest, ActionMayParkNewGuard) {
  GuardSet guards;
  bool second_fired = false;
  guards.park("outer", [] { return true; }, [&] {
    guards.park("inner", [] { return true; }, [&] { second_fired = true; });
  });
  guards.poll();
  EXPECT_TRUE(second_fired);
}

TEST(GuardTest, NestedPollIsCoalesced) {
  GuardSet guards;
  int order = 0;
  int first = 0, second = 0;
  guards.park("a", [] { return true; }, [&] {
    first = ++order;
    guards.poll();  // re-entrant: must not recurse into "b" twice
  });
  guards.park("b", [] { return true; }, [&] { second = ++order; });
  guards.poll();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(GuardTest, UnsatisfiedGuardsStayParked) {
  GuardSet guards;
  guards.park("never", [] { return false; }, [] {});
  guards.park("also-never", [] { return false; }, [] {});
  guards.poll();
  EXPECT_EQ(guards.pending(), 2u);
  const auto labels = guards.pending_labels();
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "never");
}

TEST(GuardTest, MixedFiringLeavesOthers) {
  GuardSet guards;
  bool fired = false;
  guards.park("no", [] { return false; }, [] {});
  guards.park("yes", [] { return true; }, [&] { fired = true; });
  guards.poll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(guards.pending(), 1u);
}

TEST(GuardTest, NullPredicateRejected) {
  GuardSet guards;
  EXPECT_THROW(guards.park("bad", nullptr, [] {}), ContractViolation);
  EXPECT_THROW(guards.park("bad", [] { return true; }, nullptr),
               ContractViolation);
}

TEST(GuardTest, ManyGuardsAllFire) {
  GuardSet guards;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    guards.park("g", [] { return true; }, [&] { ++count; });
  }
  guards.poll();
  EXPECT_EQ(count, 100);
}

}  // namespace
}  // namespace tbr
