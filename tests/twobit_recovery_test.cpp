// Bounded history and crash-rejoin, end to end: acked-prefix GC keeps the
// per-process footprint flat, a crashed process bootstraps from a peer
// checkpoint, reads routed to a rejoiner are deferred rather than refused,
// and histories with a mid-stream rejoin stay atomic — on the simulator,
// the threaded runtime, and the socket runtime alike.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "checker/swmr_checker.hpp"
#include "core/twobit_process.hpp"
#include "runtime/thread_workload.hpp"
#include "transport/socket_workload.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = 1000;

GroupConfig make_cfg(std::uint32_t n) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

TwoBitOptions bounded_options(std::uint32_t ack_interval, bool rejoiner) {
  TwoBitOptions o;
  o.bounded_history = true;
  o.ack_interval = ack_interval;
  o.recover_via_catchup = rejoiner;
  return o;
}

/// A group whose processes all run acked-prefix GC, with a matching
/// bounded rejoiner factory for recover().
SimRegisterGroup make_bounded(std::uint32_t n, std::uint32_t ack_interval,
                              std::unique_ptr<DelayModel> delay) {
  SimRegisterGroup::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = std::move(delay);
  opt.process_factory = [ack_interval](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<TwoBitProcess>(
        cfg, pid, bounded_options(ack_interval, /*rejoiner=*/false));
  };
  opt.recover_factory = [ack_interval](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<TwoBitProcess>(
        cfg, pid, bounded_options(ack_interval, /*rejoiner=*/true));
  };
  return SimRegisterGroup(std::move(opt));
}

SimRegisterGroup make_faithful(std::uint32_t n) {
  SimRegisterGroup::Options opt;
  opt.cfg = make_cfg(n);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = make_constant_delay(kDelta);
  return SimRegisterGroup(std::move(opt));
}

// ---- acked-prefix GC -------------------------------------------------------

TEST(BoundedGc, SteadyStateFootprintIsFlat) {
  auto group = make_bounded(3, /*ack_interval=*/1, make_constant_delay(kDelta));
  for (int k = 1; k <= 60; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.settle();
  std::uint64_t mid[3];
  for (ProcessId pid = 0; pid < 3; ++pid) {
    mid[pid] = group.net().process_as<TwoBitProcess>(pid).memory_footprint().total;
  }
  for (int k = 61; k <= 120; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.settle();
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const auto& p = group.net().process_as<TwoBitProcess>(pid);
    const auto fp = p.memory_footprint();
    EXPECT_EQ(fp.total, mid[pid]) << "footprint grew at p" << pid;
    EXPECT_GT(p.gc_reclaimed_count(), 0u);
    EXPECT_GT(p.history_base(), 0);
    // GC is not the lossy window ablation: nothing was ever evicted unsafely.
    EXPECT_EQ(p.evicted_count(), 0u);
    EXPECT_EQ(p.wsync(pid), 120);
  }
  EXPECT_EQ(group.client().read_sync(2).value.to_int64(), 120);
}

TEST(BoundedGc, FootprintStaysFarBelowFaithful) {
  auto bounded = make_bounded(3, /*ack_interval=*/8, make_constant_delay(kDelta));
  auto faithful = make_faithful(3);
  for (int k = 1; k <= 200; ++k) {
    bounded.client().write_sync(Value::from_int64(k));
    faithful.client().write_sync(Value::from_int64(k));
  }
  bounded.settle();
  faithful.settle();
  const auto b = bounded.net().process_as<TwoBitProcess>(1).memory_footprint();
  const auto f = faithful.net().process_as<TwoBitProcess>(1).memory_footprint();
  EXPECT_LT(b.history_bytes, f.history_bytes / 5);
  EXPECT_LT(b.retained_entries, 32u);  // O(ack_interval + lag), not O(writes)
  EXPECT_EQ(f.retained_entries, 201u);  // faithful keeps everything
}

// ---- crash-rejoin on the simulator ----------------------------------------

TEST(SimRecovery, RejoinerBootstrapsFromPeerCheckpoint) {
  auto group = make_faithful(3);  // default rejoiner factory (algo == kTwoBit)
  for (int k = 1; k <= 10; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.crash(2);
  for (int k = 11; k <= 20; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.recover(2);
  group.settle();

  const auto& p2 = group.net().process_as<TwoBitProcess>(2);
  EXPECT_TRUE(p2.has_recovered());
  EXPECT_FALSE(p2.recovering());
  EXPECT_GE(p2.checkpoints_adopted(), 1u);
  EXPECT_EQ(p2.wsync(2), 20);
  std::uint64_t served = 0;
  for (ProcessId pid = 0; pid < 2; ++pid) {
    served += group.net().process_as<TwoBitProcess>(pid).checkpoints_served();
  }
  EXPECT_GE(served, 2u) << "rejoin needs a quorum of checkpoint responses";
  EXPECT_EQ(group.client().read_sync(2).value.to_int64(), 20);
}

TEST(SimRecovery, ReadDuringBootstrapIsDeferredNotRefused) {
  auto group = make_faithful(3);
  group.crash(1);
  for (int k = 1; k <= 5; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.recover(1);
  // Submitted while the rejoiner is still collecting checkpoints: the READ
  // parks at the process and completes once bootstrap finishes.
  const OpResult out = group.client().read_sync(1);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.value.to_int64(), 5);
}

TEST(SimRecovery, BoundedGroupRejoinsAcrossAGcdPrefix) {
  // GC stalls at the crash point while the peer is down (a crashed process
  // is indistinguishable from a slow one, so its unacked suffix pins the
  // watermark), then a successful rejoin unpins it: the rejoiner bootstraps
  // from a checkpoint *above* everything it missed, and the watermark
  // catches up to the head everywhere.
  auto group = make_bounded(3, /*ack_interval=*/1, make_constant_delay(kDelta));
  for (int k = 1; k <= 15; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.crash(2);
  for (int k = 16; k <= 40; ++k) {
    group.client().write_sync(Value::from_int64(k));
  }
  group.settle();
  const auto& writer = group.net().process_as<TwoBitProcess>(0);
  EXPECT_LE(writer.history_base(), 15) << "GC must stall while a peer is down";

  group.recover(2);
  group.settle();
  EXPECT_EQ(writer.history_base(), 40) << "rejoin unpins the watermark";
  const auto& p2 = group.net().process_as<TwoBitProcess>(2);
  EXPECT_TRUE(p2.has_recovered());
  EXPECT_GT(p2.history_base(), 15)
      << "the rejoiner bootstraps from a checkpoint, not the GC'd prefix";
  EXPECT_EQ(group.client().read_sync(2).value.to_int64(), 40);
}

TEST(SimRecovery, FaultPlanCrashRejoinHistoryIsAtomic) {
  // A scheduled crash_rejoin mid-workload, checked for atomicity: the
  // deterministic plan crashes the highest id (p2) at t=5000 and rejoins it
  // at t=30000 while the writer and a reader keep going closed-loop.
  auto group = make_faithful(3);
  FaultPlan::crash_rejoin(group.config(), 1, 5'000, 30'000)
      .install(group.net());

  HistoryLog log;
  SeqNo widx = 0;
  std::function<void()> next_write = [&] {
    if (widx >= 25) return;
    ++widx;
    Value v = Value::from_int64(widx);
    const auto id = log.begin_write(0, group.net().now(), widx, v);
    group.begin_write(std::move(v), [&, id] {
      log.end_write(id, group.net().now());
      group.net().schedule_after(400, next_write);
    });
  };
  int reads_left = 25;
  std::function<void()> next_read = [&] {
    if (reads_left-- <= 0) return;
    const auto id = log.begin_read(1, group.net().now());
    group.begin_read(1, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
      group.net().schedule_after(300, next_read);
    });
  };
  group.net().schedule_at(0, next_write);
  group.net().schedule_at(10, next_read);
  // Reads at the rejoined process once it is back (chained: the process is
  // sequential, so each read starts only after the previous one completed).
  int rejoin_reads_left = 3;
  std::function<void()> next_rejoin_read = [&] {
    if (rejoin_reads_left-- <= 0) return;
    const auto id = log.begin_read(2, group.net().now());
    group.begin_read(2, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
      group.net().schedule_after(500, next_rejoin_read);
    });
  };
  group.net().schedule_at(60'000, next_rejoin_read);
  (void)group.net().run();

  EXPECT_TRUE(group.net().process_as<TwoBitProcess>(2).has_recovered());
  const auto verdict = SwmrChecker::check(log.ops(), group.config().initial);
  EXPECT_TRUE(verdict.ok) << verdict.error;
}

// ---- crash-rejoin on the real runtimes ------------------------------------

/// Reads at a freshly recovered process: the recover command races the
/// client submit, so poll until the submit is accepted.
template <typename Net>
OpResult read_after_recovery(Net& net, ProcessId pid) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    OpResult out = net.client().read_sync(pid);
    if (out.status.ok()) return out;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return net.client().read_sync(pid);
}

TEST(ThreadRecovery, CrashedProcessRejoinsAndServesReads) {
  ThreadNetwork::Options opt;
  opt.cfg = make_cfg(3);
  opt.algo = Algorithm::kTwoBit;
  opt.min_delay_us = 0;
  opt.max_delay_us = 100;
  ThreadNetwork net(opt);
  net.start();
  for (int k = 1; k <= 5; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
  }
  net.crash(2);
  while (!net.crashed(2)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(net.client().read_sync(2).status.code(), StatusCode::kCrashed);
  for (int k = 6; k <= 10; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
  }

  net.recover(2);
  const OpResult out = read_after_recovery(net, 2);
  ASSERT_TRUE(out.status.ok()) << out.status.message();
  EXPECT_EQ(out.value.to_int64(), 10);
  EXPECT_EQ(out.version, 10);
  // The rejoiner keeps serving: writes after the rejoin land there too.
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(11)).status.ok());
  EXPECT_EQ(net.client().read_sync(2).value.to_int64(), 11);
  net.stop();
}

TEST(SocketRecovery, CrashedProcessRejoinsAndServesReads) {
  SocketNetwork::Options opt;
  opt.cfg = make_cfg(3);
  opt.algo = Algorithm::kTwoBit;
  SocketNetwork net(opt);
  net.start();
  for (int k = 1; k <= 5; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
  }
  net.crash(1);
  while (!net.crashed(1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(net.client().read_sync(1).status.code(), StatusCode::kCrashed);
  for (int k = 6; k <= 10; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
  }

  net.recover(1);
  const OpResult out = read_after_recovery(net, 1);
  ASSERT_TRUE(out.status.ok()) << out.status.message();
  EXPECT_EQ(out.value.to_int64(), 10);
  EXPECT_EQ(out.version, 10);
  ASSERT_TRUE(net.client().write_sync(Value::from_int64(11)).status.ok());
  EXPECT_EQ(net.client().read_sync(1).value.to_int64(), 11);
  net.stop();
}

}  // namespace
}  // namespace tbr
