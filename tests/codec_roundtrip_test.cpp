// Codec round-trip property tests over randomized Message fields.
//
// decode(encode(m)) must reproduce every field the codec carries, for any
// well-formed message — the buffer-pooled runtimes now encode into recycled
// strings of arbitrary prior content, so "encode_into fully determines the
// wire bytes" is load-bearing, not cosmetic. Each codec is additionally
// exercised through one deliberately dirty reused buffer to pin exactly
// that property, and through its truncation contract (every prefix of a
// valid frame must throw, never misparse).

#include <gtest/gtest.h>

#include "abd/phased_codec.hpp"
#include "abd/specs.hpp"
#include "common/rng.hpp"
#include "core/twobit_codec.hpp"
#include "link/link_codec.hpp"
#include "mwmr/mwmr_process.hpp"

namespace tbr {
namespace {

Value random_value(Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return Value();
    case 1:
      return Value::from_int64(rng.uniform(-1'000'000, 1'000'000));
    case 2:
      return Value::from_string("v" + std::to_string(rng.uniform(0, 999)));
    default:
      return Value::filler(static_cast<std::size_t>(rng.uniform(0, 2048)),
                           static_cast<std::uint8_t>(rng.uniform(0, 255)));
  }
}

void expect_roundtrip(const Codec& codec, const Message& msg,
                      std::string& reused_buffer) {
  // encode_into must fully determine the bytes regardless of what the
  // recycled buffer held before.
  codec.encode_into(msg, reused_buffer);
  const std::string fresh = codec.encode(msg);
  EXPECT_EQ(reused_buffer, fresh)
      << "encode_into must clear and overwrite the reused buffer";

  const Message back = codec.decode(reused_buffer);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.seq, msg.seq);
  EXPECT_EQ(back.aux, msg.aux);
  EXPECT_EQ(back.has_value, msg.has_value);
  if (msg.has_value) {
    EXPECT_EQ(back.value, msg.value);
  }

  // Truncation contract: no prefix may parse.
  for (std::size_t cut = 0; cut < reused_buffer.size(); ++cut) {
    EXPECT_THROW((void)codec.decode(
                     std::string_view(reused_buffer).substr(0, cut)),
                 ContractViolation)
        << "prefix of length " << cut << " must not parse";
  }
}

std::string dirty_buffer() { return std::string(512, '\xEE'); }

TEST(CodecRoundtrip, TwoBitRandomized) {
  Rng rng(2024);
  const TwoBitCodec& codec = twobit_codec();
  std::string buf = dirty_buffer();
  for (int iter = 0; iter < 400; ++iter) {
    Message msg;
    msg.type = static_cast<std::uint8_t>(rng.uniform(0, 3));
    // WRITE0/WRITE1 carry a value; READ/PROCEED must not.
    const bool is_write = msg.type <= 1;
    msg.has_value = is_write;
    if (is_write) msg.value = random_value(rng);
    expect_roundtrip(codec, msg, buf);
  }
}

TEST(CodecRoundtrip, PhasedAbdRandomized) {
  Rng rng(2025);
  std::string buf = dirty_buffer();
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    const PhasedCodec codec(abd_unbounded_spec(), n);
    for (int iter = 0; iter < 150; ++iter) {
      Message msg;
      msg.type = static_cast<std::uint8_t>(rng.uniform(0, 3));
      msg.seq = rng.uniform(0, 1'000'000);
      msg.aux = rng.uniform(0, 1'000'000);
      msg.has_value = rng.chance(0.5);
      if (msg.has_value) msg.value = random_value(rng);
      expect_roundtrip(codec, msg, buf);
    }
  }
}

TEST(CodecRoundtrip, MwmrTimestampsSurviveTheWire) {
  // The MWMR register rides the phased codec with packed (seq, writer)
  // timestamps; the packing must survive a wire round-trip bit-exactly.
  Rng rng(2026);
  const std::uint32_t n = 7;
  const PhasedCodec codec(abd_unbounded_spec(), n);
  std::string buf = dirty_buffer();
  for (int iter = 0; iter < 300; ++iter) {
    const SeqNo seq = rng.uniform(0, 1'000'000);
    const auto writer = static_cast<ProcessId>(rng.uniform(0, n - 1));
    Message msg;
    msg.type = static_cast<std::uint8_t>(rng.uniform(0, 3));
    msg.seq = pack_ts(seq, writer);
    msg.aux = rng.uniform(0, 1'000'000);
    msg.has_value = rng.chance(0.5);
    if (msg.has_value) msg.value = random_value(rng);
    expect_roundtrip(codec, msg, buf);

    const Message back = codec.decode(codec.encode(msg));
    EXPECT_EQ(ts_seq(back.seq), seq);
    EXPECT_EQ(ts_writer(back.seq), writer);
  }
}

TEST(CodecRoundtrip, LinkRandomized) {
  Rng rng(2027);
  const LinkCodec& codec = link_codec();
  std::string buf = dirty_buffer();
  for (int iter = 0; iter < 400; ++iter) {
    Message msg;
    const bool data = rng.chance(0.5);
    msg.type = static_cast<std::uint8_t>(data ? LinkType::kData
                                              : LinkType::kAck);
    msg.seq = rng.uniform(0, 1'000'000'000);
    msg.has_value = data;
    if (data) msg.value = random_value(rng);
    expect_roundtrip(codec, msg, buf);
  }
}

}  // namespace
}  // namespace tbr
